// Table 1: confusion matrices for congestion detection using Ping-Pair on
// the 2.4 GHz and 5 GHz bands (paper Section 8.1). Cross-traffic TCP flows
// ramp from 0 to 7; the instrumented AP's queue log provides ground truth
// ("persistent" = >= 90% of samples show a non-empty queue); a decision
// stump trained with 10-fold cross-validation recovers the ~5 ms threshold.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/classifier.h"
#include "core/ping_pair.h"
#include "fleet/fleet_runner.h"
#include "scenario/testbed.h"
#include "sim/rng.h"
#include "transport/udp_stream.h"
#include "stats/confusion.h"
#include "stats/stump.h"
#include "wifi/rate_table.h"

using namespace kwikr;

namespace {

struct LabelledRun {
  std::vector<stats::LabelledSample> samples;  // (tq_ms, persistent).
};

/// One load step: `flows` TCP bulk flows (saturating -> persistent queue)
/// and/or a sub-saturation UDP stream (`udp_fraction` of the service rate,
/// non-persistent queue) to other stations on the same AP. 30 Ping-Pair
/// measurements, each labelled from the AP queue ground truth over the
/// surrounding second.
LabelledRun RunLoadStep(wifi::Band band, int flows, double udp_fraction,
                        std::uint64_t seed) {
  scenario::Testbed testbed(
      scenario::Testbed::Config{seed, wifi::PhyParams{}});
  scenario::Bss::Config bc;
  bc.ap.band = band;
  auto& bss = testbed.AddBss(bc);
  const std::int64_t rate = wifi::McsRates(band)[3];
  auto& client = bss.AddStation(testbed.NextStationAddress(), rate);
  for (int i = 0; i < flows; ++i) {
    auto& station = bss.AddStation(testbed.NextStationAddress(), rate);
    testbed.AddTcpBulkFlows(bss, station, 1);
  }
  std::unique_ptr<transport::UdpCbrSender> udp;
  if (udp_fraction > 0.0) {
    auto& station = bss.AddStation(testbed.NextStationAddress(), rate);
    transport::UdpCbrSender::Config cbr;
    cbr.src = 997;
    cbr.dst = station.address();
    cbr.flow = 60;
    cbr.packet_bytes = 1200;
    cbr.interval = sim::FromSeconds(
        1200.0 * 8.0 / (udp_fraction * static_cast<double>(rate)));
    udp = std::make_unique<transport::UdpCbrSender>(
        testbed.loop(), testbed.ids(), cbr,
        [&bss](net::Packet p) { bss.SendFromWan(std::move(p)); });
    udp->Start();
  }
  testbed.StartCrossTraffic();

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::PingPairProber::Config pcfg;
  pcfg.interval = sim::Millis(500);
  core::PingPairProber prober(testbed.loop(), transport, pcfg, 1);
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) prober.OnReply(p, at);
  });

  // Instrumented-AP ground truth: queue depth every 10 ms.
  std::vector<std::pair<sim::Time, bool>> queue_log;
  sim::PeriodicTimer sampler(testbed.loop(), sim::Millis(10), [&] {
    queue_log.emplace_back(
        testbed.loop().now(),
        bss.ap().DownlinkQueueLength(wifi::AccessCategory::kBestEffort) > 0);
  });
  sampler.Start();
  prober.Start();
  // Warm-up for TCP, then measure until ~30 samples are in.
  testbed.loop().RunUntil(sim::Seconds(22));
  prober.Stop();
  sampler.Stop();

  LabelledRun run;
  for (const auto& s : prober.samples()) {
    if (s.completed_at < sim::Seconds(5)) continue;  // warm-up.
    // Ground truth over the second surrounding the measurement.
    int nonempty = 0;
    int total = 0;
    for (const auto& [at, busy] : queue_log) {
      if (at >= s.completed_at - sim::Millis(1000) && at <= s.completed_at) {
        ++total;
        nonempty += busy ? 1 : 0;
      }
    }
    if (total == 0) continue;
    const bool persistent = nonempty >= total * 9 / 10;
    run.samples.push_back(
        stats::LabelledSample{sim::ToMillis(s.tq), persistent});
    if (run.samples.size() >= 30) break;
  }
  return run;
}

struct LoadStep {
  int flows = 0;
  double udp_fraction = 0.0;
};

std::size_t RunBand(wifi::Band band, const char* name,
                    std::uint64_t seed_base, int jobs,
                    obs::MetricsRegistry* registry) {
  // Light, non-saturating loads (idle and partial-rate UDP), then 1..7
  // saturating TCP cross flows, as in the paper's sweep.
  std::vector<LoadStep> steps;
  for (double udp_fraction : {0.0, 0.15, 0.3, 0.45, 0.55, 0.65}) {
    steps.push_back(LoadStep{0, udp_fraction});
  }
  for (int flows = 1; flows <= 7; ++flows) {
    steps.push_back(LoadStep{flows, 0.0});
  }

  // Each load step is an independent testbed seeded from its own stream, so
  // the sweep shards across workers; samples are concatenated in step order
  // regardless of which worker finished first.
  const sim::Rng seed_root(seed_base);
  const auto report =
      fleet::RunFleet(steps.size(), jobs, [&](std::size_t i) {
        return RunLoadStep(band, steps[i].flows, steps[i].udp_fraction,
                           seed_root.Fork(i).Next());
      });
  std::vector<stats::LabelledSample> all;
  for (const auto& run : report.results) {
    all.insert(all.end(), run.samples.begin(), run.samples.end());
  }

  double cv_accuracy = 0.0;
  const auto classifier = core::CongestionClassifier::Train(all, 10,
                                                            &cv_accuracy);
  stats::ConfusionMatrix matrix;
  for (const auto& s : all) {
    matrix.Add(s.positive, classifier.ClassifyMillis(s.feature));
  }

  std::printf("\n--- Table 1: %s band ---\n", name);
  std::printf("trained threshold: %.2f ms (paper: 5 ms), 10-fold CV "
              "accuracy %.1f%%\n", classifier.threshold_ms(),
              100.0 * cv_accuracy);
  std::printf("ground truth      n | classified non-persistent | persistent\n");
  std::printf("%s", matrix.ToTableRows().c_str());
  std::printf("overall accuracy: %.1f%% (paper: ~90%%)\n",
              100.0 * matrix.accuracy());

  if (registry != nullptr) {
    const obs::Labels labels = {{"band", name}};
    registry->GetCounter("table1_samples_total", labels).Add(all.size());
    std::uint64_t persistent = 0;
    for (const auto& s : all) persistent += s.positive ? 1 : 0;
    registry->GetCounter("table1_persistent_total", labels).Add(persistent);
    registry->GetCounter("table1_true_positives_total", labels)
        .Add(static_cast<std::uint64_t>(matrix.true_positives()));
    registry->GetCounter("table1_false_positives_total", labels)
        .Add(static_cast<std::uint64_t>(matrix.false_positives()));
    registry->GetGauge("table1_cv_accuracy", labels).Max(cv_accuracy);
    registry->GetGauge("table1_threshold_ms", labels)
        .Max(classifier.threshold_ms());
  }
  return steps.size();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 1 — congestion-detection confusion matrices",
                "0..7 TCP cross flows; 30 labelled Ping-Pair measurements "
                "per step;\nground truth: >= 90% non-empty AP queue samples.");
  const int jobs = bench::ParseJobs(argc, argv);
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics =
      bench::MetricsRequested(argc, argv) ? &registry : nullptr;
  bench::WallTimer timer;
  std::size_t steps = 0;
  steps += RunBand(wifi::Band::k2_4GHz, "2.4 GHz", 1100, jobs, metrics);
  steps += RunBand(wifi::Band::k5GHz, "5 GHz", 1200, jobs, metrics);
  std::printf("\n");
  bench::PrintFleetTiming("table1_confusion", jobs, timer.ElapsedMs(),
                          static_cast<long>(steps));
  bench::ExportMetrics(argc, argv, registry);
  return 0;
}
