// Figure 10: Wi-Fi downlink delay "in the wild". For every call in the
// Monte-Carlo population we take the 95th-percentile Ping-Pair queueing
// delay, attributed to the call itself ("Skype") vs cross-traffic, and plot
// the distribution of those per-call percentiles (paper Section 8.4; the
// production study covered 119,789 calls — we scale the population down and
// keep the statistic definitions identical).
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/exporters.h"
#include "scenario/wild_population.h"

using namespace kwikr;

namespace {

/// Population timeline: per-call JSONL concatenated in index order, which
/// makes the bytes independent of --jobs (each line carries "call":N).
std::string ConcatTimelines(const scenario::WildResults& results) {
  std::string out;
  for (const auto& call : results.calls) out += call.timeline_jsonl;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Figure 10 — Wi-Fi downlink delay in the wild",
                "Per-call 95th-pct queueing delay, split self vs "
                "cross-traffic.\nPaper: cross-traffic dominates; worst 5% of "
                "calls see >= ~98 ms of cross-traffic delay.");

  scenario::WildConfig config;
  config.calls = bench::ParseIntFlag(argc, argv, "--calls", 150);
  config.base_seed = 1010;
  config.call_duration = sim::Seconds(60);
  config.jobs = bench::ParseJobs(argc, argv);
  // --shard-arms: BSS-group intra-scenario sharding — each environment's
  // baseline/Kwikr arms become separate fleet tasks (bit-identical results;
  // finer task granularity for the worker pool).
  config.shard_arms = bench::HasFlag(argc, argv, "--shard-arms");

  // --metrics-out: merged per-environment registry; every value in it is a
  // simulated quantity, so the export is bit-identical for any --jobs.
  obs::MetricsRegistry registry;
  if (bench::MetricsRequested(argc, argv)) config.metrics = &registry;

  // --timeline-out: sim-time series sampling on every Kwikr arm, written as
  // one JSONL file for the whole population (bit-identical for any --jobs).
  const char* timeline_out =
      bench::ParseStringFlag(argc, argv, "--timeline-out");
  config.timeline = timeline_out != nullptr;
  config.timeline_interval = sim::Millis(
      bench::ParseIntFlag(argc, argv, "--timeline-interval-ms", 10));

  bench::WallTimer timer;
  const scenario::WildResults results = scenario::RunWildPopulation(config);
  const double wall_ms = timer.ElapsedMs();

  std::vector<double> self_ms;
  std::vector<double> cross_ms;
  std::vector<double> total_ms;
  for (const auto& call : results.calls) {
    if (call.probe_samples < 10) continue;
    self_ms.push_back(call.p95_ta_ms);
    cross_ms.push_back(call.p95_tc_ms);
    total_ms.push_back(call.p95_tq_ms);
  }

  std::printf("distribution of per-call 95th%%ile queueing delay (ms), "
              "n=%zu calls:\n\n", total_ms.size());
  std::printf("%-18s %8s %8s %8s %8s %8s\n", "", "50th", "75th", "90th",
              "95th", "99th");
  auto row = [](const char* label, const std::vector<double>& v) {
    std::printf("%-18s %8.1f %8.1f %8.1f %8.1f %8.1f\n", label,
                stats::Percentile(v, 50.0), stats::Percentile(v, 75.0),
                stats::Percentile(v, 90.0), stats::Percentile(v, 95.0),
                stats::Percentile(v, 99.0));
  };
  row("Skype (self)", self_ms);
  row("Cross-traffic", cross_ms);
  row("Total", total_ms);

  std::printf("\ncross-traffic exceeds self-delay in %.0f%% of calls with "
              "measurable delay\n",
              [&] {
                int dominated = 0;
                int measurable = 0;
                for (std::size_t i = 0; i < cross_ms.size(); ++i) {
                  if (total_ms[i] > 1.0) {
                    ++measurable;
                    if (cross_ms[i] > self_ms[i]) ++dominated;
                  }
                }
                return measurable > 0 ? 100.0 * dominated / measurable : 0.0;
              }());

  std::printf("\n");
  double serial_wall_ms = 0.0;
  if (config.jobs != 1 && bench::HasFlag(argc, argv, "--compare-serial")) {
    scenario::WildConfig serial = config;
    serial.jobs = 1;
    // The reference run must not merge into the same registry twice.
    serial.metrics = nullptr;
    serial.fleet_metrics = nullptr;
    bench::WallTimer serial_timer;
    const scenario::WildResults serial_results =
        scenario::RunWildPopulation(serial);
    serial_wall_ms = serial_timer.ElapsedMs();
    bench::PrintFleetTiming("fig10_wild_delay", 1, serial_wall_ms,
                            config.calls);
    std::printf("determinism: jobs=%d results %s jobs=1 results\n",
                config.jobs,
                std::equal(results.calls.begin(), results.calls.end(),
                           serial_results.calls.begin(),
                           serial_results.calls.end(),
                           [](const auto& a, const auto& b) {
                             return a.p95_tq_ms == b.p95_tq_ms &&
                                    a.p95_ta_ms == b.p95_ta_ms &&
                                    a.p95_tc_ms == b.p95_tc_ms &&
                                    a.probe_samples == b.probe_samples &&
                                    a.baseline_rate_kbps ==
                                        b.baseline_rate_kbps &&
                                    a.kwikr_rate_kbps == b.kwikr_rate_kbps;
                           })
                    ? "byte-identical to"
                    : "DIVERGE from");
    if (config.timeline) {
      std::printf("timeline determinism: jobs=%d timeline %s jobs=1 "
                  "timeline\n",
                  config.jobs,
                  ConcatTimelines(results) == ConcatTimelines(serial_results)
                      ? "byte-identical to"
                      : "DIVERGES from");
    }
  }
  std::uint64_t events_executed = 0;
  for (const auto& call : results.calls) events_executed += call.events_executed;
  bench::PrintFleetTiming("fig10_wild_delay", config.jobs, wall_ms,
                          config.calls, serial_wall_ms, events_executed);
  bench::ExportMetrics(argc, argv, registry);

  if (timeline_out != nullptr) {
    const std::string timeline = ConcatTimelines(results);
    std::ofstream out(timeline_out, std::ios::binary | std::ios::trunc);
    if (out) {
      out << timeline;
      std::printf("timeline: wrote %zu bytes to %s\n", timeline.size(),
                  timeline_out);
    } else {
      std::fprintf(stderr, "timeline: cannot write %s\n", timeline_out);
    }
  }

  // KWIKR_TRACE_DIR: Chrome-trace one example call (the Kwikr arm of the
  // first environment's configuration) rather than the whole population.
  if (bench::TraceDir() != nullptr) {
    obs::ChromeTraceWriter writer;
    obs::Tracer tracer;
    tracer.SetSink(&writer);
    scenario::ExperimentConfig example;
    example.seed = config.base_seed;
    example.duration = sim::Seconds(30);
    example.sample_queue = true;
    example.calls[0].kwikr = true;
    example.tracer = &tracer;
    scenario::RunCallExperiment(example);
    bench::ExportTrace(writer);
  }
  return 0;
}
