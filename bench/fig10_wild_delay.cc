// Figure 10: Wi-Fi downlink delay "in the wild". For every call in the
// Monte-Carlo population we take the 95th-percentile Ping-Pair queueing
// delay, attributed to the call itself ("Skype") vs cross-traffic, and plot
// the distribution of those per-call percentiles (paper Section 8.4; the
// production study covered 119,789 calls — we scale the population down and
// keep the statistic definitions identical).
//
// Two execution modes:
//
//  * Legacy in-RAM mode (default): RunWildPopulation holds every call's
//    result in a vector. Fine up to a few thousand calls.
//  * Spill mode (--spill-dir DIR): the fleet::ShardRunner streams per-call
//    results to JSONL spill files from forked worker processes
//    (--processes P), optionally as one shard of a cluster-wide sweep
//    (--shard k/n), checkpointing every --checkpoint-every calls so a
//    killed run continues with --resume. Peak RSS is then independent of
//    --calls: percentiles come from mergeable stats::Histogram sketches
//    (exact bin-count merge), not from in-RAM sample vectors, so a
//    million-call sweep runs in a bounded footprint and the merged
//    artifacts are byte-identical for any worker x shard split.
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fleet/shard_runner.h"
#include "obs/exporters.h"
#include "obs/registry_io.h"
#include "scenario/wild_population.h"
#include "stats/histogram.h"

using namespace kwikr;

namespace {

/// Population timeline: per-call JSONL concatenated in index order, which
/// makes the bytes independent of --jobs (each line carries "call":N).
std::string ConcatTimelines(const scenario::WildResults& results) {
  std::string out;
  for (const auto& call : results.calls) out += call.timeline_jsonl;
  return out;
}

bool EnsureDir(const std::string& path) {
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

/// Delay-distribution accumulator shared by both modes; in spill mode it is
/// fed one decoded call at a time so nothing per-call stays resident.
struct DelayAccumulator {
  // [0, 1000] ms at ~0.5 ms resolution: queueing delays beyond a second
  // clamp into the top bin but keep their exact max.
  static constexpr stats::Histogram::Config kBinning{0.0, 1000.0, 2048};
  /// Paper §3.2: a per-call p95 needs at least this many ping-pair samples
  /// to be meaningful; calls below the floor are excluded from every
  /// distribution (and counted, so short --call-seconds runs warn loudly
  /// instead of silently reporting percentiles of near-empty calls).
  static constexpr std::uint64_t kSampleFloor = 10;
  stats::Histogram self_ms{kBinning};
  stats::Histogram cross_ms{kBinning};
  stats::Histogram total_ms{kBinning};
  std::uint64_t measurable = 0;
  std::uint64_t cross_dominated = 0;
  std::uint64_t events = 0;
  std::uint64_t below_floor = 0;  ///< calls excluded by kSampleFloor.

  void Add(const scenario::WildCallResult& call) {
    events += call.events_executed;
    if (call.probe_samples < kSampleFloor) {
      ++below_floor;
      return;
    }
    self_ms.Add(call.p95_ta_ms);
    cross_ms.Add(call.p95_tc_ms);
    total_ms.Add(call.p95_tq_ms);
    if (call.p95_tq_ms > 1.0) {
      ++measurable;
      if (call.p95_tc_ms > call.p95_ta_ms) ++cross_dominated;
    }
  }

  [[nodiscard]] double DominatedPct() const {
    return measurable > 0 ? 100.0 * static_cast<double>(cross_dominated) /
                                static_cast<double>(measurable)
                          : 0.0;
  }

  void PrintTable() const {
    std::printf("distribution of per-call 95th%%ile queueing delay (ms), "
                "n=%lld calls:\n\n",
                static_cast<long long>(total_ms.count()));
    std::printf("%-18s %8s %8s %8s %8s %8s\n", "", "50th", "75th", "90th",
                "95th", "99th");
    auto row = [](const char* label, const stats::Histogram& h) {
      std::printf("%-18s %8.1f %8.1f %8.1f %8.1f %8.1f\n", label,
                  h.Percentile(50.0), h.Percentile(75.0), h.Percentile(90.0),
                  h.Percentile(95.0), h.Percentile(99.0));
    };
    row("Skype (self)", self_ms);
    row("Cross-traffic", cross_ms);
    row("Total", total_ms);
    std::printf("\ncross-traffic exceeds self-delay in %.0f%% of calls with "
                "measurable delay\n\n",
                DominatedPct());
  }

  /// Canonical JSON for the byte-compare gates: every number is either an
  /// exact integer or a %.17g double of a deterministic quantity.
  [[nodiscard]] std::string Json(int calls) const {
    char buffer[256];
    std::string out = "{\"bench\":\"fig10_wild_delay\",\"mode\":\"spill\"";
    std::snprintf(buffer, sizeof(buffer), ",\"calls\":%d,\"n\":%lld", calls,
                  static_cast<long long>(total_ms.count()));
    out += buffer;
    auto series = [&](const char* name, const stats::Histogram& h) {
      std::snprintf(buffer, sizeof(buffer),
                    ",\"%s\":{\"p50\":%.17g,\"p75\":%.17g,\"p90\":%.17g,"
                    "\"p95\":%.17g,\"p99\":%.17g,\"max\":%.17g}",
                    name, h.Percentile(50.0), h.Percentile(75.0),
                    h.Percentile(90.0), h.Percentile(95.0),
                    h.Percentile(99.0), h.max());
      out += buffer;
    };
    series("self_ms", self_ms);
    series("cross_ms", cross_ms);
    series("total_ms", total_ms);
    std::snprintf(buffer, sizeof(buffer),
                  ",\"cross_dominates_pct\":%.17g,\"events\":%llu,"
                  "\"sample_floor\":%llu,\"calls_below_floor\":%llu}\n",
                  DominatedPct(), static_cast<unsigned long long>(events),
                  static_cast<unsigned long long>(kSampleFloor),
                  static_cast<unsigned long long>(below_floor));
    out += buffer;
    return out;
  }
};

/// Loud sub-floor warning shared by both modes: percentiles computed from
/// calls with almost no probe samples are statistical noise, so short
/// --call-seconds runs must not pass silently.
void WarnBelowFloor(std::uint64_t below_floor, std::uint64_t total_calls,
                    int call_seconds) {
  if (below_floor == 0) return;
  std::fprintf(
      stderr,
      "WARNING: %llu of %llu calls produced fewer than %llu ping-pair "
      "samples (the paper's Section 3.2 floor) and were EXCLUDED from every "
      "percentile above — a per-call p95 over so few samples is noise, not "
      "a delay estimate. Raise --call-seconds (currently %d) until every "
      "call clears the floor.\n",
      static_cast<unsigned long long>(below_floor),
      static_cast<unsigned long long>(total_calls),
      static_cast<unsigned long long>(DelayAccumulator::kSampleFloor),
      call_seconds);
}

/// --spill-dir mode: shard-runner execution + hierarchical merge.
int RunSpillMode(int argc, char** argv, const char* spill_dir) {
  scenario::WildConfig wild;
  const int calls = bench::ParseIntFlag(argc, argv, "--calls", 150);
  wild.base_seed = 1010;
  const int call_seconds =
      bench::ParseIntFlag(argc, argv, "--call-seconds", 60);
  wild.call_duration = sim::Seconds(call_seconds);
  wild.jobs = bench::ParseJobs(argc, argv);
  const char* timeline_out =
      bench::ParseStringFlag(argc, argv, "--timeline-out");
  wild.timeline =
      timeline_out != nullptr || bench::HasFlag(argc, argv, "--timeline");
  wild.timeline_interval = sim::Millis(
      bench::ParseIntFlag(argc, argv, "--timeline-interval-ms", 10));
  const bool metrics_on = bench::MetricsRequested(argc, argv) ||
                          bench::HasFlag(argc, argv, "--metrics");

  fleet::ShardRunnerConfig config;
  config.total_items = static_cast<std::uint64_t>(std::max(calls, 0));
  const char* shard_text =
      bench::ParseStringFlag(argc, argv, "--shard", "0/1");
  if (std::sscanf(shard_text, "%d/%d", &config.shard.index,
                  &config.shard.count) != 2 ||
      config.shard.count < 1 || config.shard.index < 0 ||
      config.shard.index >= config.shard.count) {
    std::fprintf(stderr, "--shard wants k/n with 0 <= k < n, got '%s'\n",
                 shard_text);
    return 2;
  }
  config.processes = bench::ParseIntFlag(argc, argv, "--processes", 1);
  config.spill_dir = spill_dir;
  config.checkpoint_every = static_cast<std::uint64_t>(std::max(
      bench::ParseIntFlag(argc, argv, "--checkpoint-every", 256), 1));
  config.resume = bench::HasFlag(argc, argv, "--resume");
  // Everything that shapes per-call bytes; deliberately NOT --processes,
  // --jobs, or --checkpoint-every — those repartition work without changing
  // any result, and a resume may legally alter them per worker topology
  // rules (the manifest pins processes per shard separately).
  {
    char fp[256];
    std::snprintf(fp, sizeof(fp),
                  "fig10;calls=%d;seed=%llu;call_seconds=%d;shards=%d;"
                  "metrics=%d;timeline=%d;interval_ms=%d",
                  calls, static_cast<unsigned long long>(wild.base_seed),
                  call_seconds, config.shard.count, metrics_on ? 1 : 0,
                  wild.timeline ? 1 : 0,
                  bench::ParseIntFlag(argc, argv, "--timeline-interval-ms",
                                      10));
    config.fingerprint = fp;
  }

  if (!EnsureDir(config.spill_dir)) {
    std::fprintf(stderr, "cannot create spill dir %s\n",
                 config.spill_dir.c_str());
    return 1;
  }

  fleet::ShardRunStatus run_status;
  run_status.ok = true;
  double run_wall_ms = 0.0;
  if (!bench::HasFlag(argc, argv, "--merge-only")) {
    fleet::ShardRunner runner(
        config, [&](std::uint64_t begin, std::uint64_t end) {
          fleet::ChunkOutput out;
          scenario::WildConfig chunk_config = wild;
          obs::MetricsRegistry chunk_registry;
          if (metrics_on) chunk_config.metrics = &chunk_registry;
          scenario::RunWildRange(
              chunk_config, begin, end,
              [&](std::uint64_t index, scenario::WildCallResult&& result) {
                out.results_jsonl +=
                    scenario::EncodeWildCallLine(index, result);
                out.timeline_jsonl += result.timeline_jsonl;
              });
          if (metrics_on) {
            out.metrics_jsonl = obs::SerializeRegistry(chunk_registry);
          }
          return out;
        });
    bench::WallTimer timer;
    run_status = runner.Run();
    run_wall_ms = timer.ElapsedMs();
    if (!run_status.ok) {
      std::fprintf(stderr, "fleet: %s\n", run_status.error.c_str());
      return 1;
    }
    std::printf("fleet: shard %d/%d finished %llu calls (%llu resumed from "
                "checkpoints) in %.1f ms with %d worker process(es)\n",
                config.shard.index, config.shard.count,
                static_cast<unsigned long long>(run_status.items_done),
                static_cast<unsigned long long>(run_status.items_resumed),
                run_wall_ms, std::max(config.processes, 1));
  }

  // ---- hierarchical merge: worker spills -> shard -> global artifacts ----
  const std::string merged_dir = config.spill_dir + "/merged";
  if (!EnsureDir(merged_dir)) {
    std::fprintf(stderr, "cannot create %s\n", merged_dir.c_str());
    return 1;
  }

  DelayAccumulator accumulator;
  obs::MetricsRegistry registry;
  std::uint64_t decode_failures = 0;
  std::ofstream merged_timeline;
  std::ofstream extra_timeline;
  if (wild.timeline) {
    merged_timeline.open(merged_dir + "/timeline.jsonl",
                         std::ios::binary | std::ios::trunc);
    if (timeline_out != nullptr) {
      extra_timeline.open(timeline_out, std::ios::binary | std::ios::trunc);
    }
  }

  fleet::MergeConsumer consumer;
  consumer.on_result_line = [&](std::uint64_t index, std::string_view line) {
    scenario::WildCallResult call;
    std::uint64_t decoded_index = 0;
    if (!scenario::DecodeWildCallLine(line, &decoded_index, &call) ||
        decoded_index != index) {
      ++decode_failures;
      return;
    }
    accumulator.Add(call);
  };
  if (metrics_on) consumer.metrics = &registry;
  if (wild.timeline) {
    consumer.on_timeline = [&](std::string_view bytes) {
      merged_timeline.write(bytes.data(),
                            static_cast<std::streamsize>(bytes.size()));
      if (extra_timeline.is_open()) {
        extra_timeline.write(bytes.data(),
                             static_cast<std::streamsize>(bytes.size()));
      }
    };
  }

  const fleet::MergeStatus merge = fleet::MergeShardSpills(config, consumer);
  if (!merge.ok) {
    std::fprintf(stderr, "merge: %s\n", merge.error.c_str());
    return 1;
  }
  const std::uint64_t peak_rss =
      std::max(merge.peak_worker_rss_kb, run_status.peak_worker_rss_kb);
  char headline[512];
  std::snprintf(
      headline, sizeof(headline),
      "{\"bench\":\"fleet_shard\",\"calls\":%d,\"shard\":\"%d/%d\","
      "\"processes\":%d,\"jobs\":%d,\"checkpoint_every\":%llu,"
      "\"items_done\":%llu,\"items_resumed\":%llu,\"wall_ms\":%.1f,"
      "\"calls_per_sec\":%.2f,\"peak_worker_rss_kb\":%llu,"
      "\"rss_kb_per_1e5_calls\":%.1f}",
      calls, config.shard.index, config.shard.count,
      std::max(config.processes, 1), wild.jobs,
      static_cast<unsigned long long>(config.checkpoint_every),
      static_cast<unsigned long long>(run_status.items_done),
      static_cast<unsigned long long>(run_status.items_resumed), run_wall_ms,
      run_wall_ms > 0.0
          ? static_cast<double>(run_status.items_done) / (run_wall_ms / 1e3)
          : 0.0,
      static_cast<unsigned long long>(peak_rss),
      calls > 0 ? static_cast<double>(peak_rss) * 1e5 /
                      static_cast<double>(calls)
                : 0.0);
  if (!merge.complete) {
    // Nothing wrong: another shard of the cluster sweep is still running
    // (or this machine only owns a slice). Report and exit cleanly.
    std::printf("merge pending: %s\n", merge.error.c_str());
    std::printf("%s\n", headline);
    return 0;
  }
  if (decode_failures > 0) {
    std::fprintf(stderr,
                 "merge: %llu spill lines failed to decode — corrupt spill\n",
                 static_cast<unsigned long long>(decode_failures));
    return 1;
  }

  accumulator.PrintTable();
  WarnBelowFloor(accumulator.below_floor, merge.items, call_seconds);
  const std::string percentiles = accumulator.Json(calls);
  {
    std::ofstream out(merged_dir + "/percentiles.json",
                      std::ios::binary | std::ios::trunc);
    out << percentiles;
  }
  std::printf("merged %llu calls -> %s/percentiles.json\n",
              static_cast<unsigned long long>(merge.items),
              merged_dir.c_str());
  if (metrics_on) {
    obs::WritePrometheus(registry, (merged_dir + "/metrics.prom").c_str());
    bench::ExportMetrics(argc, argv, registry);
  }
  if (wild.timeline) {
    merged_timeline.close();
    std::printf("timeline: merged stream at %s/timeline.jsonl\n",
                merged_dir.c_str());
  }
  std::printf("%s\n", headline);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Figure 10 — Wi-Fi downlink delay in the wild",
                "Per-call 95th-pct queueing delay, split self vs "
                "cross-traffic.\nPaper: cross-traffic dominates; worst 5% of "
                "calls see >= ~98 ms of cross-traffic delay.");

  if (const char* spill_dir =
          bench::ParseStringFlag(argc, argv, "--spill-dir")) {
    return RunSpillMode(argc, argv, spill_dir);
  }
  if (bench::HasFlag(argc, argv, "--processes") ||
      bench::HasFlag(argc, argv, "--shard") ||
      bench::HasFlag(argc, argv, "--resume")) {
    std::fprintf(stderr,
                 "--processes/--shard/--resume need --spill-dir DIR (the "
                 "multi-process runner streams results through spill "
                 "files)\n");
    return 2;
  }

  scenario::WildConfig config;
  config.calls = bench::ParseIntFlag(argc, argv, "--calls", 150);
  config.base_seed = 1010;
  config.call_duration =
      sim::Seconds(bench::ParseIntFlag(argc, argv, "--call-seconds", 60));
  config.jobs = bench::ParseJobs(argc, argv);
  // --shard-arms: BSS-group intra-scenario sharding — each environment's
  // baseline/Kwikr arms become separate fleet tasks (bit-identical results;
  // finer task granularity for the worker pool).
  config.shard_arms = bench::HasFlag(argc, argv, "--shard-arms");

  // --metrics-out: merged per-environment registry; every value in it is a
  // simulated quantity, so the export is bit-identical for any --jobs.
  obs::MetricsRegistry registry;
  if (bench::MetricsRequested(argc, argv)) config.metrics = &registry;

  // --timeline-out: sim-time series sampling on every Kwikr arm, written as
  // one JSONL file for the whole population (bit-identical for any --jobs).
  const char* timeline_out =
      bench::ParseStringFlag(argc, argv, "--timeline-out");
  config.timeline = timeline_out != nullptr;
  config.timeline_interval = sim::Millis(
      bench::ParseIntFlag(argc, argv, "--timeline-interval-ms", 10));

  bench::WallTimer timer;
  const scenario::WildResults results = scenario::RunWildPopulation(config);
  const double wall_ms = timer.ElapsedMs();

  std::vector<double> self_ms;
  std::vector<double> cross_ms;
  std::vector<double> total_ms;
  std::uint64_t below_floor = 0;
  for (const auto& call : results.calls) {
    if (call.probe_samples < DelayAccumulator::kSampleFloor) {
      ++below_floor;
      continue;
    }
    self_ms.push_back(call.p95_ta_ms);
    cross_ms.push_back(call.p95_tc_ms);
    total_ms.push_back(call.p95_tq_ms);
  }

  std::printf("distribution of per-call 95th%%ile queueing delay (ms), "
              "n=%zu calls:\n\n", total_ms.size());
  std::printf("%-18s %8s %8s %8s %8s %8s\n", "", "50th", "75th", "90th",
              "95th", "99th");
  auto row = [](const char* label, const std::vector<double>& v) {
    std::printf("%-18s %8.1f %8.1f %8.1f %8.1f %8.1f\n", label,
                stats::Percentile(v, 50.0), stats::Percentile(v, 75.0),
                stats::Percentile(v, 90.0), stats::Percentile(v, 95.0),
                stats::Percentile(v, 99.0));
  };
  row("Skype (self)", self_ms);
  row("Cross-traffic", cross_ms);
  row("Total", total_ms);

  std::printf("\ncross-traffic exceeds self-delay in %.0f%% of calls with "
              "measurable delay\n",
              [&] {
                int dominated = 0;
                int measurable = 0;
                for (std::size_t i = 0; i < cross_ms.size(); ++i) {
                  if (total_ms[i] > 1.0) {
                    ++measurable;
                    if (cross_ms[i] > self_ms[i]) ++dominated;
                  }
                }
                return measurable > 0 ? 100.0 * dominated / measurable : 0.0;
              }());
  WarnBelowFloor(below_floor, results.calls.size(),
                 bench::ParseIntFlag(argc, argv, "--call-seconds", 60));

  std::printf("\n");
  double serial_wall_ms = 0.0;
  if (config.jobs != 1 && bench::HasFlag(argc, argv, "--compare-serial")) {
    scenario::WildConfig serial = config;
    serial.jobs = 1;
    // The reference run must not merge into the same registry twice.
    serial.metrics = nullptr;
    serial.fleet_metrics = nullptr;
    bench::WallTimer serial_timer;
    const scenario::WildResults serial_results =
        scenario::RunWildPopulation(serial);
    serial_wall_ms = serial_timer.ElapsedMs();
    bench::PrintFleetTiming("fig10_wild_delay", 1, serial_wall_ms,
                            config.calls);
    std::printf("determinism: jobs=%d results %s jobs=1 results\n",
                config.jobs,
                std::equal(results.calls.begin(), results.calls.end(),
                           serial_results.calls.begin(),
                           serial_results.calls.end(),
                           [](const auto& a, const auto& b) {
                             return a.p95_tq_ms == b.p95_tq_ms &&
                                    a.p95_ta_ms == b.p95_ta_ms &&
                                    a.p95_tc_ms == b.p95_tc_ms &&
                                    a.probe_samples == b.probe_samples &&
                                    a.baseline_rate_kbps ==
                                        b.baseline_rate_kbps &&
                                    a.kwikr_rate_kbps == b.kwikr_rate_kbps;
                           })
                    ? "byte-identical to"
                    : "DIVERGE from");
    if (config.timeline) {
      std::printf("timeline determinism: jobs=%d timeline %s jobs=1 "
                  "timeline\n",
                  config.jobs,
                  ConcatTimelines(results) == ConcatTimelines(serial_results)
                      ? "byte-identical to"
                      : "DIVERGES from");
    }
  }
  std::uint64_t events_executed = 0;
  for (const auto& call : results.calls) events_executed += call.events_executed;
  bench::PrintFleetTiming("fig10_wild_delay", config.jobs, wall_ms,
                          config.calls, serial_wall_ms, events_executed);
  bench::ExportMetrics(argc, argv, registry);

  if (timeline_out != nullptr) {
    const std::string timeline = ConcatTimelines(results);
    std::ofstream out(timeline_out, std::ios::binary | std::ios::trunc);
    if (out) {
      out << timeline;
      std::printf("timeline: wrote %zu bytes to %s\n", timeline.size(),
                  timeline_out);
    } else {
      std::fprintf(stderr, "timeline: cannot write %s\n", timeline_out);
    }
  }

  // KWIKR_TRACE_DIR: Chrome-trace one example call (the Kwikr arm of the
  // first environment's configuration) rather than the whole population.
  if (bench::TraceDir() != nullptr) {
    obs::ChromeTraceWriter writer;
    obs::Tracer tracer;
    tracer.SetSink(&writer);
    scenario::ExperimentConfig example;
    example.seed = config.base_seed;
    example.duration = sim::Seconds(30);
    example.sample_queue = true;
    example.calls[0].kwikr = true;
    example.tracer = &tracer;
    scenario::RunCallExperiment(example);
    bench::ExportTrace(writer);
  }
  return 0;
}
