// Event-loop microbenchmark: schedule/cancel/dispatch throughput of the
// allocation-free scheduler (sim::EventLoop) versus a replica of the
// pre-rewrite scheduler (std::function events in a std::priority_queue with
// live/cancelled unordered_sets). Both run identical workloads whose event
// closures capture a Packet-sized payload by value, the shape that dominates
// the simulation's hot path.
//
// Usage:
//   micro_eventloop [--quick] [--json FILE] [--baseline FILE]
//
// --json writes a single JSON object (the BENCH_eventloop.json trajectory
// record). --baseline reads a previous record and exits non-zero when
// events/sec regressed more than 20% against it — the perf gate wired into
// scripts/check.sh. --quick shrinks the workload for CI smoke runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "sim/event_loop.h"
#include "sim/time.h"

// ------------------------------------------------- allocation accounting ----
// Global new/delete overrides count every heap allocation in the process so
// the bench can prove the dispatch path is allocation-free.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kwikr {
namespace {

// ------------------------------------------------------ legacy scheduler ----
// Replica of the pre-rewrite sim::EventLoop: kept here (not in src/) so the
// benchmark always measures the new scheduler against the exact baseline it
// replaced, independent of future src/ changes.

class LegacyEventLoop {
 public:
  using EventId = std::uint64_t;

  [[nodiscard]] sim::Time now() const { return now_; }

  EventId ScheduleAt(sim::Time at, std::function<void()> fn) {
    const EventId id = next_id_++;
    queue_.push(Event{std::max(at, now_), id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  EventId ScheduleIn(sim::Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + std::max<sim::Duration>(delay, 0),
                      std::move(fn));
  }

  bool Cancel(EventId id) {
    const auto it = live_.find(id);
    if (it == live_.end()) return false;
    live_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  void Run() {
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (auto it = cancelled_.find(event.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      live_.erase(event.id);
      now_ = event.at;
      ++executed_;
      event.fn();
    }
  }

  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    sim::Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  sim::Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;
};

/// The production scheduler forced into heap-only mode: isolates the
/// hierarchical timer wheel's contribution in the trajectory record (the
/// legacy loop differs in far more than the timer structure).
struct HeapOnlyEventLoop : sim::EventLoop {
  HeapOnlyEventLoop() : sim::EventLoop(sim::SchedulerMode::kHeapOnly) {}
};

// -------------------------------------------------------------- workloads ----

/// Packet-sized ballast: every hop in the real simulation moves a ~168-byte
/// net::Packet through an event closure.
struct Payload {
  unsigned char bytes[152] = {};
};

std::uint64_t g_sink = 0;

/// Self-rescheduling "frame hop" chain mirroring the simulator's per-packet
/// event sequence: a deliver event carries the Payload by value (the
/// net.wire_prop / wifi.deliver shape), which triggers small [this]-capture
/// control events (wifi.arbitration / wifi.tx_done shape), and every hop
/// arms a guard timer that is disarmed before it fires (the tcp.rto /
/// probe.timeout pattern — TCP cancels and re-arms its RTO on every ACK).
/// Runs `chains` concurrent chains of `hops` frame hops each; returns
/// dispatched events/sec (3 events run per hop; the guard never runs).
template <typename Loop>
double DispatchThroughput(int chains, int hops, std::uint64_t* allocations) {
  Loop loop;
  struct Chain {
    Loop* loop;
    int remaining;
    std::uint64_t guard = 0;  // both schedulers' EventId is uint64.
    void Deliver(Payload payload) {
      g_sink += payload.bytes[0];
      payload.bytes[0] ^= static_cast<unsigned char>(remaining);
      guard = loop->ScheduleIn(sim::Millis(50), [this] { g_sink += 1; });
      loop->ScheduleIn(sim::Micros(5), [this] { Arbitrate(); });
      // The frame rides the chain state while "on the air", like the wifi
      // channel's in-flight burst queue.
      in_flight = payload;
    }
    void Arbitrate() {
      loop->ScheduleIn(sim::Micros(9), [this] { TxDone(); });
    }
    void TxDone() {
      loop->Cancel(guard);
      g_sink += in_flight.bytes[1];
      if (--remaining <= 0) return;
      loop->ScheduleIn(sim::Micros(86),
                       [this, payload = in_flight] { Deliver(payload); });
    }
    Payload in_flight;
  };
  static_assert(sim::InlineTask::fits_inline<
                decltype([c = static_cast<Chain*>(nullptr),
                          p = Payload{}] { c->Deliver(p); })>);

  std::vector<Chain> state(static_cast<std::size_t>(chains));
  // Warmup: one untimed round primes the scheduler's capacities so the
  // measured phase is steady-state. The real loop needs a full L1 wheel
  // revolution (134.2 ms of simulated time; a hop advances 100 us, so 1400
  // hops) before every L1 bucket has seen its high-water guard-tombstone
  // fill — shorter warmups leave bucket vectors growing (allocating) inside
  // the measured phase. The legacy loop's hash tables prime within a few
  // hops, and its untimed round runs ~9x slower, so it keeps the short one.
  const int warmup_hops = std::is_same_v<Loop, sim::EventLoop> ? 1'400 : 8;
  for (auto& chain : state) {
    chain = Chain{&loop, warmup_hops};
    loop.ScheduleIn(sim::Micros(1), [&chain] { chain.Deliver(Payload{}); });
  }
  loop.Run();

  for (auto& chain : state) {
    chain = Chain{&loop, hops};
    loop.ScheduleIn(sim::Micros(1), [&chain] { chain.Deliver(Payload{}); });
  }
  const std::uint64_t executed_before = loop.executed();
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto begin = std::chrono::steady_clock::now();
  loop.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  *allocations = g_allocations.load(std::memory_order_relaxed) - allocs_before;
  const auto events =
      static_cast<double>(loop.executed() - executed_before);
  return events / seconds;
}

/// Timeout churn: schedule batches of guard timers and cancel most before
/// they fire — the ping-pair / TCP-RTO pattern that hammers Cancel. Returns
/// scheduler operations (schedule + cancel + dispatch) per second.
template <typename Loop>
double CancelChurnThroughput(int rounds, int batch) {
  Loop loop;
  std::vector<std::uint64_t> ids;  // both schedulers' EventId is uint64.
  ids.reserve(static_cast<std::size_t>(batch));
  std::uint64_t ops = 0;
  const auto begin = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    ids.clear();
    for (int i = 0; i < batch; ++i) {
      ids.push_back(loop.ScheduleIn(sim::Micros(10 + i), [] { ++g_sink; }));
      ++ops;
    }
    // Cancel 3 of every 4 (timeouts almost always get disarmed).
    for (int i = 0; i < batch; ++i) {
      if (i % 4 != 3) {
        loop.Cancel(ids[static_cast<std::size_t>(i)]);
        ++ops;
      }
    }
    loop.Run();
    ops += static_cast<std::uint64_t>(batch) / 4;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return static_cast<double>(ops) / seconds;
}

/// Dispatch throughput of the new loop with an attached probe (the
/// observability tax measured by obs_test stays visible in the trajectory).
class CountingProbe : public sim::EventLoopProbe {
 public:
  void OnExecuted(const char*, sim::Time, double) override { ++count_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

double ProbedDispatchThroughput(int chains, int hops) {
  sim::EventLoop loop;
  CountingProbe probe;
  loop.SetProbe(&probe);
  struct Chain {
    sim::EventLoop* loop;
    int remaining;
    void Hop(Payload payload) {
      g_sink += payload.bytes[0];
      if (--remaining <= 0) return;
      loop->ScheduleIn(sim::Micros(100), [this, payload] { Hop(payload); });
    }
  };
  std::vector<Chain> state(static_cast<std::size_t>(chains));
  for (auto& chain : state) {
    chain = Chain{&loop, hops};
    loop.ScheduleIn(sim::Micros(1), [&chain] { chain.Hop(Payload{}); });
  }

  const auto begin = std::chrono::steady_clock::now();
  loop.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return static_cast<double>(probe.count()) / seconds;
}

// ------------------------------------------------------------- reporting ----

/// Minimal scanner for `"key": <number>` in a flat JSON object — enough to
/// read back our own BENCH_eventloop.json without a JSON library.
double JsonNumber(const std::string& text, const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return fallback;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

struct Results {
  int dispatch_events = 0;
  double events_per_sec = 0;
  double heap_only_events_per_sec = 0;
  double legacy_events_per_sec = 0;
  double probe_events_per_sec = 0;
  double cancel_ops_per_sec = 0;
  double legacy_cancel_ops_per_sec = 0;
  double dispatch_allocs_per_event = 0;
  double legacy_dispatch_allocs_per_event = 0;
  double wall_ms = 0;
};

std::string ToJson(const Results& r, bool quick) {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"micro_eventloop\",\"mode\":\"%s\","
      "\"scheduler\":\"wheel\",\"dispatch_events\":%d,"
      "\"events_per_sec\":%.0f,\"heap_only_events_per_sec\":%.0f,"
      "\"wheel_vs_heap_speedup\":%.2f,\"legacy_events_per_sec\":%.0f,"
      "\"dispatch_speedup\":%.2f,"
      "\"probe_events_per_sec\":%.0f,"
      "\"cancel_ops_per_sec\":%.0f,\"legacy_cancel_ops_per_sec\":%.0f,"
      "\"cancel_speedup\":%.2f,"
      "\"dispatch_allocs_per_event\":%.4f,"
      "\"legacy_dispatch_allocs_per_event\":%.2f,"
      "\"wall_ms\":%.1f,\"peak_rss_kb\":%lu}\n",
      quick ? "quick" : "full", r.dispatch_events, r.events_per_sec,
      r.heap_only_events_per_sec,
      r.heap_only_events_per_sec > 0
          ? r.events_per_sec / r.heap_only_events_per_sec
          : 0.0,
      r.legacy_events_per_sec,
      r.legacy_events_per_sec > 0 ? r.events_per_sec / r.legacy_events_per_sec
                                  : 0.0,
      r.probe_events_per_sec, r.cancel_ops_per_sec,
      r.legacy_cancel_ops_per_sec,
      r.legacy_cancel_ops_per_sec > 0
          ? r.cancel_ops_per_sec / r.legacy_cancel_ops_per_sec
          : 0.0,
      r.dispatch_allocs_per_event, r.legacy_dispatch_allocs_per_event,
      r.wall_ms, bench::PeakRssKb());
  return buffer;
}

}  // namespace
}  // namespace kwikr

int main(int argc, char** argv) {
  using namespace kwikr;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ParseStringFlag(argc, argv, "--json");
  const char* baseline_path = bench::ParseStringFlag(argc, argv, "--baseline");

  bench::Header("Micro — event loop",
                "Schedule/cancel/dispatch throughput: allocation-free "
                "scheduler vs the std::function + hash-set baseline.");

  // 1024 concurrent chains keeps ~1k events pending, the population-scale
  // regime the fleet runner operates in (fig10 wild sweeps run hundreds of
  // calls, each with several in-flight timers and frames). Heap depth and
  // cache footprint — not just per-op constants — are part of what the
  // rewrite improves, so the bench measures that regime.
  const int chains = 1'024;
  const int hops = quick ? 125 : 1'000;
  const int churn_rounds = quick ? 400 : 4'000;
  const int churn_batch = 256;
  const int reps = 3;
  // Each frame hop dispatches 3 events (deliver, arbitrate, tx-done); the
  // guard timer is always cancelled before firing.
  const int dispatched = 3 * chains * hops;

  Results best;
  best.dispatch_events = dispatched;
  bench::WallTimer total;
  // Best-of-N keeps the committed trajectory stable against scheduler noise
  // on loaded machines.
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t allocs = 0;
    const double eps =
        DispatchThroughput<sim::EventLoop>(chains, hops, &allocs);
    if (eps > best.events_per_sec) {
      best.events_per_sec = eps;
      best.dispatch_allocs_per_event =
          static_cast<double>(allocs) / dispatched;
    }
    std::uint64_t heap_only_allocs = 0;
    best.heap_only_events_per_sec = std::max(
        best.heap_only_events_per_sec,
        DispatchThroughput<HeapOnlyEventLoop>(chains, hops,
                                              &heap_only_allocs));
    std::uint64_t legacy_allocs = 0;
    best.legacy_events_per_sec = std::max(
        best.legacy_events_per_sec,
        DispatchThroughput<LegacyEventLoop>(chains, hops, &legacy_allocs));
    best.legacy_dispatch_allocs_per_event =
        static_cast<double>(legacy_allocs) / dispatched;
    best.probe_events_per_sec = std::max(
        best.probe_events_per_sec, ProbedDispatchThroughput(chains, hops));
    best.cancel_ops_per_sec =
        std::max(best.cancel_ops_per_sec,
                 CancelChurnThroughput<sim::EventLoop>(churn_rounds,
                                                      churn_batch));
    best.legacy_cancel_ops_per_sec =
        std::max(best.legacy_cancel_ops_per_sec,
                 CancelChurnThroughput<LegacyEventLoop>(churn_rounds,
                                                       churn_batch));
  }
  best.wall_ms = total.ElapsedMs();

  std::printf("dispatch  %12.0f ev/s   (legacy %12.0f ev/s, %.2fx)\n",
              best.events_per_sec, best.legacy_events_per_sec,
              best.events_per_sec / best.legacy_events_per_sec);
  std::printf("heap-only %12.0f ev/s   (wheel %.2fx)\n",
              best.heap_only_events_per_sec,
              best.events_per_sec / best.heap_only_events_per_sec);
  std::printf("probed    %12.0f ev/s\n", best.probe_events_per_sec);
  std::printf("cancel    %12.0f op/s   (legacy %12.0f op/s, %.2fx)\n",
              best.cancel_ops_per_sec, best.legacy_cancel_ops_per_sec,
              best.cancel_ops_per_sec / best.legacy_cancel_ops_per_sec);
  std::printf("allocs/dispatched event: %.4f (legacy %.2f)\n",
              best.dispatch_allocs_per_event,
              best.legacy_dispatch_allocs_per_event);

  const std::string json = ToJson(best, quick);
  std::fputs(json.c_str(), stdout);
  if (json_path != nullptr) {
    if (std::FILE* out = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
      std::printf("bench: wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "bench: cannot open %s\n", json_path);
      return 1;
    }
  }

  if (best.dispatch_allocs_per_event > 0.0) {
    std::fprintf(stderr,
                 "FAIL: dispatch path allocated (%.4f allocs/event; "
                 "expected 0)\n",
                 best.dispatch_allocs_per_event);
    return 1;
  }

  if (baseline_path != nullptr) {
    std::FILE* file = std::fopen(baseline_path, "r");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot read baseline %s\n", baseline_path);
      return 1;
    }
    std::string text;
    char chunk[512];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      text.append(chunk, n);
    }
    std::fclose(file);
    const double reference = JsonNumber(text, "events_per_sec", 0.0);
    if (reference <= 0.0) {
      std::fprintf(stderr, "bench: baseline %s has no events_per_sec\n",
                   baseline_path);
      return 1;
    }
    const double ratio = best.events_per_sec / reference;
    std::printf("baseline: %.0f ev/s committed, measured %.0f ev/s "
                "(%.0f%%)\n",
                reference, best.events_per_sec, ratio * 100.0);
    if (ratio < 0.8) {
      std::fprintf(stderr,
                   "FAIL: events/sec regressed >20%% vs %s (%.2fx)\n",
                   baseline_path, ratio);
      return 1;
    }
  }
  return 0;
}
