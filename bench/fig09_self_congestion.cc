// Figure 9: self-inflicted congestion. The wired downlink is throttled by a
// token-bucket filter mid-call; with the congestion attributable to the call
// itself, Kwikr must back off exactly like the baseline and show the same
// loss profile (paper Section 8.3).
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/call_experiment.h"

using namespace kwikr;

namespace {

scenario::ExperimentConfig ThrottledCall(std::uint64_t seed, bool kwikr) {
  scenario::ExperimentConfig config;
  config.seed = seed;
  config.duration = sim::Seconds(180);
  config.cross_stations = 0;
  config.throttle_bps = 300'000;
  config.throttle_start = sim::Seconds(60);
  config.throttle_end = sim::Seconds(120);
  config.calls[0].kwikr = kwikr;
  return config;
}

}  // namespace

int main() {
  bench::Header("Figure 9 — self-inflicted congestion (token-bucket throttle)",
                "Downlink throttled to 300 kbps t=60..120 s; no cross "
                "traffic.\nPaper: Kwikr backs off like regular Skype; "
                "similar losses.");

  constexpr int kCalls = 10;
  std::vector<double> baseline_loss;
  std::vector<double> kwikr_loss;
  std::vector<double> representative_baseline;
  std::vector<double> representative_kwikr;
  double base_throttled = 0.0;
  double kwikr_throttled = 0.0;

  for (int i = 0; i < kCalls; ++i) {
    const std::uint64_t seed = 900 + i;
    const auto base = scenario::RunCallExperiment(ThrottledCall(seed, false));
    const auto kwik = scenario::RunCallExperiment(ThrottledCall(seed, true));
    baseline_loss.push_back(base.calls[0].loss_pct);
    kwikr_loss.push_back(kwik.calls[0].loss_pct);
    for (int t = 70; t < 120; ++t) {
      base_throttled += base.calls[0].rate_series_kbps[t] / (50.0 * kCalls);
      kwikr_throttled += kwik.calls[0].rate_series_kbps[t] / (50.0 * kCalls);
    }
    if (i == 0) {
      representative_baseline = base.calls[0].rate_series_kbps;
      representative_kwikr = kwik.calls[0].rate_series_kbps;
    }
  }

  std::printf("\n--- Figure 9(a): representative execution (kbps) ---\n");
  const std::string labels[] = {"Skype", "Skype+Kwikr"};
  const std::vector<double> series[] = {representative_baseline,
                                        representative_kwikr};
  bench::PrintSeries(labels, series, /*stride=*/5);
  std::printf("\nmean rate inside throttle window: Skype %.0f kbps, "
              "Kwikr %.0f kbps (both must respect the 300 kbps cap)\n",
              base_throttled, kwikr_throttled);

  std::printf("\n--- Figure 9(b): packet losses (%%) across calls ---\n");
  bench::PrintPercentiles("Skype", baseline_loss);
  bench::PrintPercentiles("Skype with Kwikr", kwikr_loss);
  return 0;
}
