// Figure 7: channel access delay for normal- vs high-priority ping probes
// (paper Section 8.2). With contenders on the channel, the high-priority
// probe's access delay stays low and flat while the normal-priority one
// grows — the EDCA differentiation Ping-Pair exploits.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/channel_access.h"
#include "scenario/testbed.h"
#include "stats/summary.h"
#include "transport/udp_stream.h"

using namespace kwikr;

namespace {

stats::RunningSummary MeasureAccessDelay(int contenders, std::uint8_t tos,
                                         std::uint64_t seed) {
  scenario::Testbed testbed(
      scenario::Testbed::Config{seed, wifi::PhyParams{}});
  auto& bss = testbed.AddBss(scenario::Bss::Config{});
  auto& client = bss.AddStation(testbed.NextStationAddress(), 26'000'000);

  std::vector<std::unique_ptr<transport::UdpCbrSender>> senders;
  for (int i = 0; i < contenders; ++i) {
    auto& station =
        bss.AddStation(testbed.NextStationAddress(), 26'000'000);
    transport::UdpCbrSender::Config cbr;
    cbr.src = station.address();
    cbr.dst = 5000;
    cbr.packet_bytes = 1000;
    cbr.interval = sim::Millis(1);
    wifi::Station* sp = &station;
    senders.push_back(std::make_unique<transport::UdpCbrSender>(
        testbed.loop(), testbed.ids(), cbr,
        [sp](net::Packet p) { sp->Send(std::move(p)); }));
    senders.back()->Start();
  }

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::ChannelAccessEstimator::Config cfg;
  cfg.interval = sim::Millis(20);
  cfg.tos = tos;
  core::ChannelAccessEstimator estimator(testbed.loop(), transport, cfg,
                                         testbed.channel().phy());
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) estimator.OnReply(p, at);
  });
  estimator.Start();
  testbed.loop().RunUntil(sim::Seconds(30));
  estimator.Stop();

  stats::RunningSummary summary;
  for (const auto e : estimator.estimates()) {
    summary.Add(sim::ToMicros(e));
  }
  return summary;
}

}  // namespace

int main() {
  bench::Header("Figure 7 — access delay by probe priority",
                "3 contending uploaders; probe pairs at each priority.\n"
                "Paper: high-priority access delay stays low (~us scale) "
                "regardless of contention.");
  std::printf("%12s %16s %12s %10s\n", "priority", "mean(us)", "ci95(us)",
              "n");
  const auto normal =
      MeasureAccessDelay(3, net::kTosBestEffort, 700);
  std::printf("%12s %16.1f %12.1f %10lld\n", "Normal", normal.mean(),
              normal.ci95_halfwidth(),
              static_cast<long long>(normal.count()));
  const auto high = MeasureAccessDelay(3, net::kTosVoice, 701);
  std::printf("%12s %16.1f %12.1f %10lld\n", "High", high.mean(),
              high.ci95_halfwidth(), static_cast<long long>(high.count()));
  std::printf("\nratio normal/high = %.1fx\n",
              high.mean() > 0 ? normal.mean() / high.mean() : 0.0);
  return 0;
}
