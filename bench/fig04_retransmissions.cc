// Figure 4: impact of link-layer retransmissions on queueing-delay estimates
// using the dual-Ping-Pair technique (paper Section 5.6). The client starts
// near the AP, walks away (weak link, heavy retransmissions) and comes back.
// The dual filter discards divergent measurements so the accepted/smoothed
// series stays flat; an unfiltered single-pair prober is shown for contrast.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ping_pair.h"
#include "scenario/testbed.h"
#include "stats/ewma.h"

using namespace kwikr;

int main() {
  bench::Header("Figure 4 — dual-Ping-Pair under link-layer retransmissions",
                "Client walks away from the AP (t=15..45 s weak link) and "
                "back.\nPaper: filtered estimates stay < 5 ms despite up to "
                "6 link-layer transmissions.");

  scenario::Testbed testbed(scenario::Testbed::Config{404, wifi::PhyParams{}});
  auto& bss = testbed.AddBss(scenario::Bss::Config{});
  auto& client = bss.AddStation(testbed.NextStationAddress(), 65'000'000);
  testbed.InstallStationErrorModel();

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::PingPairProber::Config dual_config;
  dual_config.dual = true;
  dual_config.interval = sim::Millis(100);
  core::PingPairProber dual(testbed.loop(), transport, dual_config, 1);

  core::PingPairProber::Config single_config;
  single_config.dual = false;
  single_config.interval = sim::Millis(100);
  single_config.ident = 0x5151;
  core::PingPairProber single(testbed.loop(), transport, single_config, 1);

  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) {
      dual.OnReply(p, at);
      single.OnReply(p, at);
    }
  });

  // The walk: distance (m) as a function of time.
  auto distance_at = [](double t) {
    if (t < 15.0) return 2.0;
    if (t < 25.0) return 2.0 + (t - 15.0) * 6.0;  // walking away.
    if (t < 45.0) return 62.0;                    // far, weak link.
    if (t < 55.0) return 62.0 - (t - 45.0) * 6.0; // walking back.
    return 2.0;
  };
  for (int t = 0; t < 70; ++t) {
    testbed.loop().ScheduleAt(sim::Seconds(t), [&client, &distance_at, t] {
      client.SetLinkQuality(wifi::LinkQualityAtDistance(
          wifi::Band::k2_4GHz, distance_at(static_cast<double>(t))));
    });
  }

  dual.Start();
  single.Start();
  testbed.loop().RunUntil(sim::Seconds(70));
  dual.Stop();
  single.Stop();

  // Per-second series, as in the paper's figure.
  std::vector<double> max_transmissions(70, 0.0);
  std::vector<double> max_tq(70, 0.0);
  std::vector<double> smoothed_tq(70, 0.0);
  std::vector<double> unfiltered_max_tq(70, 0.0);
  stats::Ewma ewma(0.25);
  for (const auto& s : dual.samples()) {
    const auto sec = static_cast<std::size_t>(s.completed_at / sim::kSecond);
    if (sec >= 70) continue;
    max_transmissions[sec] = std::max(
        max_transmissions[sec], static_cast<double>(s.max_reply_transmissions));
    max_tq[sec] = std::max(max_tq[sec], sim::ToMillis(s.tq));
    smoothed_tq[sec] = ewma.Update(sim::ToMillis(s.tq));
  }
  for (const auto& s : single.samples()) {
    const auto sec = static_cast<std::size_t>(s.completed_at / sim::kSecond);
    if (sec >= 70) continue;
    unfiltered_max_tq[sec] =
        std::max(unfiltered_max_tq[sec], sim::ToMillis(s.tq));
  }

  const std::string labels[] = {"maxTx", "maxTq(ms)", "ewmaTq(ms)",
                                "unfiltered(ms)"};
  const std::vector<double> series[] = {max_transmissions, max_tq, smoothed_tq,
                                        unfiltered_max_tq};
  bench::PrintSeries(labels, series, /*stride=*/2);

  const auto& st = dual.stats();
  std::printf("\ndual-Ping-Pair: %llu rounds, %llu accepted, "
              "%llu divergence-discards, %llu gap-discards, %llu timeouts\n",
              (unsigned long long)st.rounds, (unsigned long long)st.valid,
              (unsigned long long)st.dual_divergence,
              (unsigned long long)st.dual_gap,
              (unsigned long long)st.timeouts);
  return 0;
}
