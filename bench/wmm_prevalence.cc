// Section 5.5: checking for WMM prioritization. Reproduces (a) the six-AP
// accuracy test ("checking for reversal in at least 3 of 5 runs led to
// accurate detection"), (b) the mTurk-style prevalence survey over a
// population of APs with the paper's measured 77% WMM prior, and (c) an
// ablation showing the detector's conservative fallback on idle APs (no
// standing queue to observe; see core::WmmDetector documentation).
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/wmm_detector.h"
#include "scenario/testbed.h"
#include "wifi/rate_table.h"

using namespace kwikr;

namespace {

struct ApModel {
  const char* name;
  wifi::Band band;
  int mcs;  ///< client rate index.
  std::array<std::size_t, wifi::kNumAccessCategories> queues;
};

bool DetectOnce(const ApModel& model, bool wmm, bool ambient,
                std::uint64_t seed) {
  scenario::Testbed testbed(
      scenario::Testbed::Config{seed, wifi::PhyParams{}});
  scenario::Bss::Config bc;
  bc.ap.band = model.band;
  bc.ap.wmm_enabled = wmm;
  bc.ap.queue_capacity = model.queues;
  auto& bss = testbed.AddBss(bc);
  const std::int64_t rate = wifi::McsRates(model.band)[model.mcs];
  auto& client = bss.AddStation(testbed.NextStationAddress(), rate);
  auto& sink = bss.AddStation(testbed.NextStationAddress(), rate);

  if (ambient) {
    // Ambient downlink traffic (the environments the paper probed all had
    // some): TCP keeps a standing queue at any PHY rate.
    testbed.AddTcpBulkFlows(bss, sink, 6);
    testbed.StartCrossTraffic();
  }

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::WmmDetector detector(testbed.loop(), transport,
                             core::WmmDetector::Config{});
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) detector.OnReply(p, at);
  });
  core::WmmResult result;
  // Let the TCP flows fill the queue before probing.
  testbed.loop().RunUntil(sim::Seconds(8));
  detector.Run([&](const core::WmmResult& r) { result = r; });
  testbed.loop().RunUntil(sim::Seconds(14));
  return result.wmm_enabled;
}

}  // namespace

int main() {
  bench::Header("Section 5.5 — WMM prioritization detection",
                "Six AP models x 5 detection runs each; then a prevalence "
                "survey over\n171 APs (77% WMM prior, the paper's measured "
                "value).");

  const ApModel models[] = {
      {"Netgear-2.4", wifi::Band::k2_4GHz, 3, {64, 150, 64, 64}},
      {"Netgear-5", wifi::Band::k5GHz, 3, {64, 150, 64, 64}},
      {"LinkSys", wifi::Band::k2_4GHz, 4, {32, 100, 32, 32}},
      {"TP-Link", wifi::Band::k2_4GHz, 2, {64, 200, 64, 64}},
      {"Cisco", wifi::Band::k5GHz, 5, {128, 256, 128, 128}},
      {"D-Link", wifi::Band::k2_4GHz, 3, {64, 80, 64, 64}},
  };

  std::printf("\n--- six-AP accuracy (5 detections per AP and mode) ---\n");
  std::printf("%-14s %14s %14s\n", "AP model", "WMM detected", "FIFO detected");
  int correct = 0;
  int total = 0;
  for (const auto& model : models) {
    int wmm_hits = 0;
    int fifo_hits = 0;
    for (int run = 0; run < 5; ++run) {
      const std::uint64_t seed = 1400 + total * 10 + run;
      if (DetectOnce(model, true, true, seed)) ++wmm_hits;
      if (!DetectOnce(model, false, true, seed + 5)) ++fifo_hits;
    }
    correct += wmm_hits + fifo_hits;
    ++total;
    std::printf("%-14s %11d/5 %11d/5\n", model.name, wmm_hits, fifo_hits);
  }
  std::printf("overall accuracy: %.0f%% (paper: accurate detection in all "
              "six networks)\n",
              100.0 * correct / (static_cast<double>(total) * 10));

  std::printf("\n--- prevalence survey: 171 APs, 77%% WMM prior ---\n");
  sim::Rng population(2024);
  int actually_wmm = 0;
  int detected_wmm = 0;
  int false_positives = 0;
  int misses = 0;
  for (int ap = 0; ap < 171; ++ap) {
    const auto& model = models[population.UniformInt(0, 5)];
    const bool wmm = population.Bernoulli(0.77);
    actually_wmm += wmm ? 1 : 0;
    const bool detected = DetectOnce(model, wmm, true,
                                     3000 + static_cast<std::uint64_t>(ap));
    detected_wmm += detected ? 1 : 0;
    if (detected && !wmm) ++false_positives;
    if (!detected && wmm) ++misses;
  }
  std::printf("ground truth WMM: %d/171 (%.0f%%)  detected: %d/171 (%.0f%%)\n",
              actually_wmm, 100.0 * actually_wmm / 171.0, detected_wmm,
              100.0 * detected_wmm / 171.0);
  std::printf("false positives: %d, misses: %d (paper: 77%% of 171 APs "
              "WMM-enabled)\n", false_positives, misses);

  std::printf("\n--- ablation: idle AP (no ambient traffic) ---\n");
  int idle_detected = 0;
  for (int run = 0; run < 10; ++run) {
    if (DetectOnce(models[0], true, false, 5000 + run)) ++idle_detected;
  }
  std::printf("WMM AP detected on idle network in %d/10 attempts — with no "
              "standing\nqueue the detector conservatively reports no-WMM "
              "and Kwikr falls back to\nbaseline behaviour (safe; paper "
              "Section 7.3).\n", idle_detected);
  return 0;
}
