// Section 5.5: checking for WMM prioritization. Reproduces (a) the six-AP
// accuracy test ("checking for reversal in at least 3 of 5 runs led to
// accurate detection"), (b) the mTurk-style prevalence survey over a
// population of APs with the paper's measured 77% WMM prior, and (c) an
// ablation showing the detector's conservative fallback on idle APs (no
// standing queue to observe; see core::WmmDetector documentation).
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/wmm_detector.h"
#include "fleet/fleet_metrics.h"
#include "fleet/fleet_runner.h"
#include "scenario/testbed.h"
#include "sim/rng.h"
#include "wifi/rate_table.h"

using namespace kwikr;

namespace {

struct ApModel {
  const char* name;
  wifi::Band band;
  int mcs;  ///< client rate index.
  std::array<std::size_t, wifi::kNumAccessCategories> queues;
};

bool DetectOnce(const ApModel& model, bool wmm, bool ambient,
                std::uint64_t seed) {
  scenario::Testbed testbed(
      scenario::Testbed::Config{seed, wifi::PhyParams{}});
  scenario::Bss::Config bc;
  bc.ap.band = model.band;
  bc.ap.wmm_enabled = wmm;
  bc.ap.queue_capacity = model.queues;
  auto& bss = testbed.AddBss(bc);
  const std::int64_t rate = wifi::McsRates(model.band)[model.mcs];
  auto& client = bss.AddStation(testbed.NextStationAddress(), rate);
  auto& sink = bss.AddStation(testbed.NextStationAddress(), rate);

  if (ambient) {
    // Ambient downlink traffic (the environments the paper probed all had
    // some): TCP keeps a standing queue at any PHY rate.
    testbed.AddTcpBulkFlows(bss, sink, 6);
    testbed.StartCrossTraffic();
  }

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::WmmDetector detector(testbed.loop(), transport,
                             core::WmmDetector::Config{});
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) detector.OnReply(p, at);
  });
  core::WmmResult result;
  // Let the TCP flows fill the queue before probing.
  testbed.loop().RunUntil(sim::Seconds(8));
  detector.Run([&](const core::WmmResult& r) { result = r; });
  testbed.loop().RunUntil(sim::Seconds(14));
  return result.wmm_enabled;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Section 5.5 — WMM prioritization detection",
                "Six AP models x 5 detection runs each; then a prevalence "
                "survey over\n171 APs (77% WMM prior, the paper's measured "
                "value).");
  const int jobs = bench::ParseJobs(argc, argv);
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics =
      bench::MetricsRequested(argc, argv) ? &registry : nullptr;
  bench::WallTimer timer;
  long detections = 0;

  const ApModel models[] = {
      {"Netgear-2.4", wifi::Band::k2_4GHz, 3, {64, 150, 64, 64}},
      {"Netgear-5", wifi::Band::k5GHz, 3, {64, 150, 64, 64}},
      {"LinkSys", wifi::Band::k2_4GHz, 4, {32, 100, 32, 32}},
      {"TP-Link", wifi::Band::k2_4GHz, 2, {64, 200, 64, 64}},
      {"Cisco", wifi::Band::k5GHz, 5, {128, 256, 128, 128}},
      {"D-Link", wifi::Band::k2_4GHz, 3, {64, 80, 64, 64}},
  };

  std::printf("\n--- six-AP accuracy (5 detections per AP and mode) ---\n");
  std::printf("%-14s %14s %14s\n", "AP model", "WMM detected", "FIFO detected");
  // One fleet task per AP model; runs within a model fork off the model's
  // seed streams (replacing the old `1400 + model*10 + run` arithmetic).
  struct ModelScore {
    int wmm_hits = 0;
    int fifo_hits = 0;
  };
  const sim::Rng accuracy_root(1400);
  const auto accuracy = fleet::RunFleet(
      std::size(models), jobs, [&](std::size_t m) {
        ModelScore score;
        for (std::size_t run = 0; run < 5; ++run) {
          const std::uint64_t wmm_seed =
              accuracy_root.Fork(m * 16 + run).Next();
          const std::uint64_t fifo_seed =
              accuracy_root.Fork(m * 16 + 8 + run).Next();
          if (DetectOnce(models[m], true, true, wmm_seed)) ++score.wmm_hits;
          if (!DetectOnce(models[m], false, true, fifo_seed)) {
            ++score.fifo_hits;
          }
        }
        return score;
      });
  int correct = 0;
  for (std::size_t m = 0; m < std::size(models); ++m) {
    const ModelScore& score = accuracy.results[m];
    correct += score.wmm_hits + score.fifo_hits;
    std::printf("%-14s %11d/5 %11d/5\n", models[m].name, score.wmm_hits,
                score.fifo_hits);
  }
  detections += static_cast<long>(std::size(models)) * 10;
  std::printf("overall accuracy: %.0f%% (paper: accurate detection in all "
              "six networks)\n",
              100.0 * correct / (static_cast<double>(std::size(models)) * 10));

  std::printf("\n--- prevalence survey: 171 APs, 77%% WMM prior ---\n");
  // The population draws stay serial (one shared stream defines who is
  // WMM-enabled); the 171 detections then shard across workers, each task
  // merging its own confusion cell into the shared FleetMetrics.
  constexpr int kSurveyAps = 171;
  struct SurveyAp {
    int model = 0;
    bool wmm = false;
  };
  sim::Rng population(2024);
  std::vector<SurveyAp> aps(kSurveyAps);
  for (auto& ap : aps) {
    ap.model = static_cast<int>(population.UniformInt(0, 5));
    ap.wmm = population.Bernoulli(0.77);
  }
  const sim::Rng survey_root(3000);
  fleet::FleetMetrics survey_metrics;
  fleet::RunFleet(aps.size(), jobs, [&](std::size_t ap) -> int {
    const bool detected = DetectOnce(models[aps[ap].model], aps[ap].wmm, true,
                                     survey_root.Fork(ap).Next());
    stats::ConfusionMatrix cell;
    cell.Add(aps[ap].wmm, detected);
    survey_metrics.MergeConfusion("survey", cell);
    return detected ? 1 : 0;
  });
  const stats::ConfusionMatrix survey = survey_metrics.Confusion("survey");
  const auto actually_wmm = survey.actual_positives();
  const auto detected_wmm = survey.true_positives() + survey.false_positives();
  detections += kSurveyAps;
  std::printf("ground truth WMM: %lld/171 (%.0f%%)  detected: %lld/171 "
              "(%.0f%%)\n",
              static_cast<long long>(actually_wmm),
              100.0 * static_cast<double>(actually_wmm) / 171.0,
              static_cast<long long>(detected_wmm),
              100.0 * static_cast<double>(detected_wmm) / 171.0);
  std::printf("false positives: %lld, misses: %lld (paper: 77%% of 171 APs "
              "WMM-enabled)\n",
              static_cast<long long>(survey.false_positives()),
              static_cast<long long>(survey.false_negatives()));

  if (metrics != nullptr) {
    metrics->GetCounter("wmm_accuracy_correct_total").Add(correct);
    metrics->GetCounter("wmm_accuracy_runs_total")
        .Add(static_cast<std::uint64_t>(std::size(models)) * 10);
    metrics->GetCounter("wmm_survey_aps_total").Add(kSurveyAps);
    metrics
        ->GetCounter("wmm_survey_outcomes_total", {{"cell", "true_positive"}})
        .Add(static_cast<std::uint64_t>(survey.true_positives()));
    metrics
        ->GetCounter("wmm_survey_outcomes_total", {{"cell", "false_positive"}})
        .Add(static_cast<std::uint64_t>(survey.false_positives()));
    metrics
        ->GetCounter("wmm_survey_outcomes_total", {{"cell", "false_negative"}})
        .Add(static_cast<std::uint64_t>(survey.false_negatives()));
    metrics
        ->GetCounter("wmm_survey_outcomes_total", {{"cell", "true_negative"}})
        .Add(static_cast<std::uint64_t>(survey.true_negatives()));
  }

  std::printf("\n--- ablation: idle AP (no ambient traffic) ---\n");
  const sim::Rng idle_root(5000);
  const auto idle = fleet::RunFleet(10, jobs, [&](std::size_t run) -> int {
    return DetectOnce(models[0], true, false, idle_root.Fork(run).Next())
               ? 1
               : 0;
  });
  int idle_detected = 0;
  for (const int detected : idle.results) idle_detected += detected;
  detections += 10;
  std::printf("WMM AP detected on idle network in %d/10 attempts — with no "
              "standing\nqueue the detector conservatively reports no-WMM "
              "and Kwikr falls back to\nbaseline behaviour (safe; paper "
              "Section 7.3).\n\n", idle_detected);
  bench::PrintFleetTiming("wmm_prevalence", jobs, timer.ElapsedMs(),
                          detections);
  bench::ExportMetrics(argc, argv, registry);
  return 0;
}
