// Ablation: the Kwikr noise-scaling factor beta (Equation 3). The paper
// tunes beta = 4 empirically; this sweep shows the benefit/safety trade-off:
// beta = 0 disables the modulation (baseline behaviour), small beta reacts
// too strongly to cross-traffic delay, large beta stops reacting to it
// entirely (loss-driven backoff remains the safety net).
#include <vector>

#include "bench_util.h"
#include "scenario/call_experiment.h"
#include "stats/percentile.h"
#include "stats/summary.h"

using namespace kwikr;

int main() {
  bench::Header("Ablation — Equation 3 noise-scaling factor beta",
                "Congested calls (2 clients x 10 TCP flows, t=40..80 of "
                "120 s), 5 seeds per beta.\nPaper: beta = 4 'adequate'.");

  std::printf("%8s %18s %12s %12s %14s\n", "beta", "rate@congest(kbps)",
              "loss(%)", "rtt p95(ms)", "whole-call kbps");
  for (double beta : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    stats::RunningSummary rate;
    stats::RunningSummary loss;
    stats::RunningSummary whole;
    std::vector<double> rtt;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      scenario::ExperimentConfig config;
      config.seed = 1500 + seed;
      config.duration = sim::Seconds(120);
      config.cross_stations = 2;
      config.flows_per_station = 10;
      config.congestion_start = sim::Seconds(40);
      config.congestion_end = sim::Seconds(80);
      config.calls[0].kwikr = true;
      config.calls[0].beta = beta;
      const auto metrics = scenario::RunCallExperiment(config);
      rate.Add(metrics.calls[0].mean_rate_congested_kbps);
      loss.Add(metrics.calls[0].loss_pct);
      whole.Add(metrics.calls[0].mean_rate_kbps);
      for (double r : metrics.calls[0].rtt_ms) rtt.push_back(r);
    }
    std::printf("%8.0f %18.0f %12.2f %12.0f %14.0f\n", beta, rate.mean(),
                loss.mean(), stats::Percentile(rtt, 95.0), whole.mean());
  }
  return 0;
}
