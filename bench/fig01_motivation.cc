// Figure 1: congestion response of Skype / FaceTime / Hangouts profiles
// vis-a-vis a foreground TCP flow, plus the Skype call's RTT (paper
// Section 3). Cross-traffic TCP bulk transfers run during the shaded window;
// the real-time baselines collapse and recover slowly while TCP recovers to
// a fair share within seconds.
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/call_experiment.h"

using namespace kwikr;

namespace {

struct Profile {
  const char* name;
  rtc::RateController::Config controller;
};

scenario::ExperimentMetrics RunProfile(const Profile& profile) {
  scenario::ExperimentConfig config;
  config.seed = 17;
  config.duration = sim::Seconds(170);
  config.cross_stations = 3;  // "6 devices" worth of TCP bulk transfers.
  config.flows_per_station = 2;
  config.congestion_start = sim::Seconds(50);
  config.congestion_end = sim::Seconds(110);
  config.foreground_tcp = true;
  // Fast MCS, as on the paper's Windows laptops, and a moderate AP buffer:
  // one foreground TCP flow inflates delay only mildly, so the call
  // coexists with it until the six-device congestion begins.
  config.client_rate_bps = 65'000'000;
  // Deep buffers, as the paper's 400-700 ms congestion RTT implies.
  config.be_queue_capacity = 512;
  config.calls[0].kwikr = false;
  config.calls[0].controller = profile.controller;
  config.calls[0].controller.max_rate_bps = 2'500'000;
  return scenario::RunCallExperiment(config);
}

}  // namespace

int main() {
  bench::Header("Figure 1 — motivation: conservative congestion response",
                "Cross-traffic TCP bulk transfers t=50..110 s; data rates in "
                "kbps.\nPaper: apps collapse at onset and take 10s of "
                "seconds to recover; TCP recovers quickly.");

  const Profile profiles[] = {
      {"Skype", rtc::RateController::SkypeProfile()},
      {"FaceTime", rtc::RateController::FaceTimeProfile()},
      {"Hangouts", rtc::RateController::HangoutsProfile()},
  };

  std::vector<double> skype_rtt;
  for (const auto& profile : profiles) {
    const auto metrics = RunProfile(profile);
    std::printf("\n--- Figure 1: %s vs foreground TCP ---\n", profile.name);
    const std::string labels[] = {std::string(profile.name) + "(kbps)",
                                  "TCP(kbps)"};
    const std::vector<double> series[] = {metrics.calls[0].rate_series_kbps,
                                          metrics.tcp_rate_series_kbps};
    bench::PrintSeries(labels, series, /*stride=*/5);
    if (profile.name == std::string("Skype")) {
      skype_rtt = metrics.calls[0].rtt_ms;
    }
  }

  std::printf("\n--- Figure 1(d): Skype per-feedback RTT (ms) ---\n");
  bench::PrintPercentiles("Skype RTT during call", skype_rtt);
  return 0;
}
