// Table 3: bandwidth gains from the randomized A/B deployment, bucketed by
// the severity of cross-traffic-induced queueing delay (paper Section 8.4).
// Paired baseline/Kwikr calls run under common random numbers; gains are
// reported with one-sided Welch (mean) and Mann-Whitney (median) p-values.
#include "bench_util.h"
#include "scenario/wild_population.h"

using namespace kwikr;

int main(int argc, char** argv) {
  bench::Header("Table 3 — bandwidth gains from the A/B deployment",
                "Buckets by per-call 95th-pct cross-traffic delay.\n"
                "Paper: gains grow with cross-traffic severity (3.3%..8.6%),"
                " p <= 0.1.");

  scenario::WildConfig config;
  config.calls = bench::ParseIntFlag(argc, argv, "--calls", 150);
  config.base_seed = 1010;  // same population as Figure 10.
  config.call_duration = sim::Seconds(60);
  config.jobs = bench::ParseJobs(argc, argv);

  obs::MetricsRegistry registry;
  if (bench::MetricsRequested(argc, argv)) config.metrics = &registry;

  bench::WallTimer timer;
  const scenario::WildResults results = scenario::RunWildPopulation(config);
  const double wall_ms = timer.ElapsedMs();

  std::printf("%22s %10s %14s %10s %14s %10s %8s\n",
              "95th%ile cross (ms) >=", "% calls", "avg gain (%)", "p(Welch)",
              "median gain (%)", "p(MWU)", "n");
  for (double threshold : {75.0, 100.0, 150.0}) {
    const auto row = scenario::ComputeAbBucket(results, threshold);
    std::printf("%22.0f %10.1f %14.1f %10.3f %14.1f %10.3f %8d\n",
                row.threshold_ms, row.percent_calls_covered,
                row.avg_gain_percent, row.avg_gain_p_value,
                row.median_gain_percent, row.median_gain_p_value,
                row.calls_in_bucket);
  }

  // Whole-population safety check (paper: "no statistically significant
  // degradation in RTT or packet loss").
  double rtt_base = 0.0, rtt_kwikr = 0.0, loss_base = 0.0, loss_kwikr = 0.0;
  for (const auto& call : results.calls) {
    rtt_base += call.baseline_rtt_p50_ms / results.calls.size();
    rtt_kwikr += call.kwikr_rtt_p50_ms / results.calls.size();
    loss_base += call.baseline_loss_pct / results.calls.size();
    loss_kwikr += call.kwikr_loss_pct / results.calls.size();
  }
  std::printf("\nsafety: median-RTT mean %.1f -> %.1f ms; loss %.2f%% -> "
              "%.2f%%\n\n", rtt_base, rtt_kwikr, loss_base, loss_kwikr);

  double serial_wall_ms = 0.0;
  if (config.jobs != 1 && bench::HasFlag(argc, argv, "--compare-serial")) {
    scenario::WildConfig serial = config;
    serial.jobs = 1;
    // The reference run must not merge into the same registry twice.
    serial.metrics = nullptr;
    serial.fleet_metrics = nullptr;
    bench::WallTimer serial_timer;
    scenario::RunWildPopulation(serial);
    serial_wall_ms = serial_timer.ElapsedMs();
    bench::PrintFleetTiming("table3_ab_gains", 1, serial_wall_ms,
                            config.calls);
  }
  bench::PrintFleetTiming("table3_ab_gains", config.jobs, wall_ms,
                          config.calls, serial_wall_ms);
  bench::ExportMetrics(argc, argv, registry);
  return 0;
}
