// Figure 5: co-channel interference. A UDP "call" (20 ms packets) runs on
// AP1 while a neighbouring co-channel AP2 carries heavy TCP downloads for
// 30 s. Both the flow's one-way delay and the Ping-Pair AP-downlink delay
// rise during the interference window (paper Section 8.1).
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ping_pair.h"
#include "scenario/testbed.h"
#include "transport/udp_stream.h"

using namespace kwikr;

int main() {
  bench::Header("Figure 5 — co-channel interference",
                "Neighbouring AP congested t=85..115 s; 1 s averages.\n"
                "Paper: both OWD and Ping-Pair delay rise during the window.");

  scenario::Testbed testbed(scenario::Testbed::Config{505, wifi::PhyParams{}});
  auto& bss1 = testbed.AddBss(scenario::Bss::Config{});
  scenario::Bss::Config bc2;
  bc2.ap.address = 2;
  auto& bss2 = testbed.AddBss(bc2);

  // AP1: the observed client with a simulated call (20 ms UDP downlink).
  // A low MCS stretches frame airtimes so co-channel contention shows up
  // clearly in the delay series.
  auto& client = bss1.AddStation(testbed.NextStationAddress(), 6'500'000);
  const net::FlowId call_flow = testbed.NextFlowId();
  transport::UdpCbrSender::Config cbr;
  cbr.src = testbed.NextServerAddress();
  cbr.dst = client.address();
  cbr.flow = call_flow;
  cbr.packet_bytes = 1200;
  cbr.interval = sim::Millis(20);
  transport::UdpCbrSender call(testbed.loop(), testbed.ids(), cbr,
                               [&bss1](net::Packet p) {
                                 bss1.SendFromWan(std::move(p));
                               });
  transport::UdpOwdReceiver owd(call_flow);

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss1.ap().address());
  core::PingPairProber::Config pcfg;
  pcfg.interval = sim::Millis(200);  // 5 probes/s as in the experiment.
  core::PingPairProber prober(testbed.loop(), transport, pcfg, call_flow);
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) {
      prober.OnReply(p, at);
    } else {
      prober.OnFlowPacket(p, at);
      owd.OnPacket(p, at);
    }
  });

  // AP2: six clients with 20 parallel TCP downloads each, t=85..115 s.
  for (int i = 0; i < 6; ++i) {
    auto& neighbor =
        bss2.AddStation(testbed.NextStationAddress(), 26'000'000);
    testbed.AddTcpBulkFlows(bss2, neighbor, 20);
  }
  testbed.ScheduleCrossTraffic(sim::Seconds(85), sim::Seconds(115));

  call.Start();
  prober.Start();
  testbed.loop().RunUntil(sim::Seconds(200));
  call.Stop();
  prober.Stop();

  // 1-second averages of normalized OWD and of Ping-Pair Tq.
  constexpr int kSeconds = 200;
  std::vector<double> owd_sum(kSeconds, 0.0);
  std::vector<double> owd_n(kSeconds, 0.0);
  const auto normalized = owd.NormalizedOwdMillis();
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    const auto sec =
        static_cast<std::size_t>(owd.samples()[i].arrival / sim::kSecond);
    if (sec < kSeconds) {
      owd_sum[sec] += normalized[i];
      owd_n[sec] += 1.0;
    }
  }
  std::vector<double> tq_sum(kSeconds, 0.0);
  std::vector<double> tq_n(kSeconds, 0.0);
  for (const auto& s : prober.samples()) {
    const auto sec = static_cast<std::size_t>(s.completed_at / sim::kSecond);
    if (sec < kSeconds) {
      tq_sum[sec] += sim::ToMillis(s.tq);
      tq_n[sec] += 1.0;
    }
  }
  std::vector<double> owd_avg(kSeconds, 0.0);
  std::vector<double> tq_avg(kSeconds, 0.0);
  for (int t = 0; t < kSeconds; ++t) {
    owd_avg[t] = owd_n[t] > 0 ? owd_sum[t] / owd_n[t] : 0.0;
    tq_avg[t] = tq_n[t] > 0 ? tq_sum[t] / tq_n[t] : 0.0;
  }

  const std::string labels[] = {"OWD(ms)", "APdelay(ms)"};
  const std::vector<double> series[] = {owd_avg, tq_avg};
  bench::PrintSeries(labels, series, /*stride=*/4);

  // Summary: window vs outside.
  double in_owd = 0.0, out_owd = 0.0, in_tq = 0.0, out_tq = 0.0;
  int in_n = 0, out_n = 0;
  for (int t = 0; t < kSeconds; ++t) {
    if (t >= 87 && t < 113) {
      in_owd += owd_avg[t];
      in_tq += tq_avg[t];
      ++in_n;
    } else if (t > 5) {
      out_owd += owd_avg[t];
      out_tq += tq_avg[t];
      ++out_n;
    }
  }
  std::printf("\nmeans: interference window OWD=%.1f ms APdelay=%.1f ms | "
              "outside OWD=%.1f ms APdelay=%.1f ms\n",
              in_owd / in_n, in_tq / in_n, out_owd / out_n, out_tq / out_n);
  return 0;
}
