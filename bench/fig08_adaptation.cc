// Figure 8: Kwikr vs baseline Skype under mid-call cross-traffic congestion
// (paper Section 8.3). 40 three-minute calls (20 per arm) with heavy TCP
// downloads during the middle minute: (a) a representative execution,
// (b) the data-rate CDF, (c) RTT percentiles, (d) loss percentiles.
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/call_experiment.h"

using namespace kwikr;

namespace {

scenario::ExperimentConfig CallConfigFor(std::uint64_t seed, bool kwikr) {
  scenario::ExperimentConfig config;
  config.seed = seed;
  config.duration = sim::Seconds(180);
  config.cross_stations = 2;       // two clients...
  config.flows_per_station = 20;   // ...20 parallel downloads each.
  config.congestion_start = sim::Seconds(60);
  config.congestion_end = sim::Seconds(120);
  config.calls[0].kwikr = kwikr;
  return config;
}

}  // namespace

int main() {
  bench::Header("Figure 8 — adaptation to cross-traffic congestion",
                "40 calls x 3 min; congestion t=60..120 s (2 clients x 20 "
                "TCP flows).\nPaper: Kwikr ~20% higher data rate, same RTT "
                "and loss.");

  constexpr int kCallsPerArm = 20;
  std::vector<double> baseline_rates;
  std::vector<double> kwikr_rates;
  std::vector<double> baseline_congested;
  std::vector<double> kwikr_congested;
  std::vector<double> baseline_rtt;
  std::vector<double> kwikr_rtt;
  std::vector<double> baseline_loss;
  std::vector<double> kwikr_loss;
  std::vector<double> representative_baseline;
  std::vector<double> representative_kwikr;

  for (int i = 0; i < kCallsPerArm; ++i) {
    const std::uint64_t seed = 800 + i;
    const auto base =
        scenario::RunCallExperiment(CallConfigFor(seed, false));
    const auto kwik =
        scenario::RunCallExperiment(CallConfigFor(seed, true));
    baseline_rates.push_back(base.calls[0].mean_rate_kbps);
    kwikr_rates.push_back(kwik.calls[0].mean_rate_kbps);
    baseline_congested.push_back(base.calls[0].mean_rate_congested_kbps);
    kwikr_congested.push_back(kwik.calls[0].mean_rate_congested_kbps);
    baseline_loss.push_back(base.calls[0].loss_pct);
    kwikr_loss.push_back(kwik.calls[0].loss_pct);
    for (double r : base.calls[0].rtt_ms) baseline_rtt.push_back(r);
    for (double r : kwik.calls[0].rtt_ms) kwikr_rtt.push_back(r);
    if (i == 0) {
      representative_baseline = base.calls[0].rate_series_kbps;
      representative_kwikr = kwik.calls[0].rate_series_kbps;
    }
  }

  std::printf("\n--- Figure 8(a): representative execution (kbps) ---\n");
  const std::string labels[] = {"Skype", "Skype+Kwikr"};
  const std::vector<double> series[] = {representative_baseline,
                                        representative_kwikr};
  bench::PrintSeries(labels, series, /*stride=*/5);

  std::printf("\n--- Figure 8(b): per-call average data rate (kbps) ---\n");
  bench::PrintCdf("Skype", baseline_rates);
  bench::PrintCdf("Skype with Kwikr", kwikr_rates);
  double base_mean = 0.0;
  double kwikr_mean = 0.0;
  for (double r : baseline_rates) base_mean += r / kCallsPerArm;
  for (double r : kwikr_rates) kwikr_mean += r / kCallsPerArm;
  std::printf("mean rate: Skype %.0f kbps, Kwikr %.0f kbps (gain %.0f%%)\n",
              base_mean, kwikr_mean,
              100.0 * (kwikr_mean - base_mean) / base_mean);
  double base_cong = 0.0;
  double kwikr_cong = 0.0;
  for (double r : baseline_congested) base_cong += r / kCallsPerArm;
  for (double r : kwikr_congested) kwikr_cong += r / kCallsPerArm;
  std::printf("rate inside the congestion window: Skype %.0f kbps, Kwikr "
              "%.0f kbps (gain %.0f%%)\n(paper reports 20%% over the call; "
              "the within-episode gain is larger, Section 8.4)\n",
              base_cong, kwikr_cong,
              100.0 * (kwikr_cong - base_cong) / base_cong);

  std::printf("\n--- Figure 8(c): round-trip time (ms) ---\n");
  bench::PrintPercentiles("Skype", baseline_rtt);
  bench::PrintPercentiles("Skype with Kwikr", kwikr_rtt);

  std::printf("\n--- Figure 8(d): packet loss (%%) across calls ---\n");
  bench::PrintPercentiles("Skype", baseline_loss);
  bench::PrintPercentiles("Skype with Kwikr", kwikr_loss);
  return 0;
}
