// Ablation: adaptation stacks x Ping-Pair information. The paper's Section 6
// notes the Kwikr idea applies to any delay-driven controller and sketches
// the direct modification d <- d - Tc for schemes like GCC; this bench runs
// the fig-8 congestion scenario over four combinations:
//
//   UKF baseline   | Skype-style estimator, uninformed
//   UKF + Kwikr    | Equation-3 noise modulation (the paper's system)
//   GCC baseline   | delay-gradient (WebRTC-style) controller, uninformed
//   GCC + Kwikr    | gradient computed on d - Tc
#include "bench_util.h"
#include "scenario/call_experiment.h"
#include "stats/percentile.h"
#include "stats/summary.h"

using namespace kwikr;

namespace {

struct Arm {
  const char* name;
  rtc::MediaReceiver::Adaptation adaptation;
  bool kwikr;
};

}  // namespace

int main() {
  bench::Header("Ablation — adaptation stacks x Ping-Pair information",
                "Congested calls (2 clients x 10 TCP flows, t=40..80 of "
                "120 s), 5 seeds per arm.");

  const Arm arms[] = {
      {"UKF baseline", rtc::MediaReceiver::Adaptation::kUkfConservative,
       false},
      {"UKF + Kwikr", rtc::MediaReceiver::Adaptation::kUkfConservative,
       true},
      {"GCC baseline", rtc::MediaReceiver::Adaptation::kDelayGradient,
       false},
      {"GCC + Kwikr", rtc::MediaReceiver::Adaptation::kDelayGradient, true},
  };

  std::printf("%-14s %18s %12s %12s %16s\n", "arm", "rate@congest(kbps)",
              "loss(%)", "rtt p95(ms)", "whole-call kbps");
  for (const Arm& arm : arms) {
    stats::RunningSummary rate;
    stats::RunningSummary loss;
    stats::RunningSummary whole;
    std::vector<double> rtt;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      scenario::ExperimentConfig config;
      config.seed = 1600 + seed;
      config.duration = sim::Seconds(120);
      config.cross_stations = 2;
      config.flows_per_station = 10;
      config.congestion_start = sim::Seconds(40);
      config.congestion_end = sim::Seconds(80);
      config.calls[0].adaptation = arm.adaptation;
      config.calls[0].kwikr = arm.kwikr;
      const auto metrics = scenario::RunCallExperiment(config);
      rate.Add(metrics.calls[0].mean_rate_congested_kbps);
      loss.Add(metrics.calls[0].loss_pct);
      whole.Add(metrics.calls[0].mean_rate_kbps);
      for (double r : metrics.calls[0].rtt_ms) rtt.push_back(r);
    }
    std::printf("%-14s %18.0f %12.2f %12.0f %16.0f\n", arm.name, rate.mean(),
                loss.mean(), stats::Percentile(rtt, 95.0), whole.mean());
  }
  std::printf("\nBoth stacks gain from Ping-Pair information; the informed "
              "backoff under real\nloss keeps both safe.\n");
  return 0;
}
