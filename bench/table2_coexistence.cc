// Table 2: Kwikr flows co-existing with other flows (paper Section 8.3).
// 30 experiments of two simultaneous two-minute calls: both legacy, mixed,
// and both Kwikr. Cell (measured, background) reports the measured call's
// data rate +- 95% CI.
#include "bench_util.h"
#include "scenario/call_experiment.h"
#include "stats/summary.h"

using namespace kwikr;

namespace {

/// Runs one two-call experiment; returns the per-call mean rates.
std::pair<double, double> RunPair(bool kwikr_a, bool kwikr_b,
                                  std::uint64_t seed) {
  scenario::ExperimentConfig config;
  config.seed = seed;
  config.duration = sim::Seconds(120);
  config.cross_stations = 0;
  // Constrained link (low MCS), as on the paper's Android phones: the two
  // calls genuinely share capacity instead of both saturating their caps.
  config.client_rate_bps = 4'000'000;
  config.calls = {scenario::CallConfig{}, scenario::CallConfig{}};
  config.calls[0].kwikr = kwikr_a;
  config.calls[1].kwikr = kwikr_b;
  const auto metrics = scenario::RunCallExperiment(config);
  return {metrics.calls[0].mean_rate_kbps, metrics.calls[1].mean_rate_kbps};
}

}  // namespace

int main() {
  bench::Header("Table 2 — co-existence of Kwikr and legacy calls",
                "30 experiments x two simultaneous 2-min calls; mean rate "
                "+- 95% CI (kbps).\nPaper: co-existence has no significant "
                "impact on either side.");

  constexpr int kRuns = 10;
  stats::RunningSummary skype_bg_skype;   // measured Skype, background Skype
  stats::RunningSummary skype_bg_kwikr;   // measured Skype, background Kwikr
  stats::RunningSummary kwikr_bg_skype;   // measured Kwikr, background Skype
  stats::RunningSummary kwikr_bg_kwikr;   // measured Kwikr, background Kwikr

  for (int i = 0; i < kRuns; ++i) {
    const std::uint64_t seed = 1300 + i;
    const auto [s1, s2] = RunPair(false, false, seed);
    skype_bg_skype.Add(s1);
    skype_bg_skype.Add(s2);
    const auto [s3, k1] = RunPair(false, true, seed + 100);
    skype_bg_kwikr.Add(s3);
    kwikr_bg_skype.Add(k1);
    const auto [k2, k3] = RunPair(true, true, seed + 200);
    kwikr_bg_kwikr.Add(k2);
    kwikr_bg_kwikr.Add(k3);
  }

  std::printf("%-22s | %-22s | %-22s\n", "Measured flow",
              "bg: Skype", "bg: Skype with Kwikr");
  std::printf("%-22s | %8.0f +- %-6.0f kbps | %8.0f +- %-6.0f kbps\n",
              "Skype", skype_bg_skype.mean(),
              skype_bg_skype.ci95_halfwidth(), skype_bg_kwikr.mean(),
              skype_bg_kwikr.ci95_halfwidth());
  std::printf("%-22s | %8.0f +- %-6.0f kbps | %8.0f +- %-6.0f kbps\n",
              "Skype with Kwikr", kwikr_bg_skype.mean(),
              kwikr_bg_skype.ci95_halfwidth(), kwikr_bg_kwikr.mean(),
              kwikr_bg_kwikr.ci95_halfwidth());
  return 0;
}
