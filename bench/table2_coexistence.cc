// Table 2: Kwikr flows co-existing with other flows (paper Section 8.3).
// 30 experiments of two simultaneous two-minute calls: both legacy, mixed,
// and both Kwikr. Cell (measured, background) reports the measured call's
// data rate +- 95% CI.
//
// Extended with the CC x qdisc grid (the "2026 bottleneck" question): one
// congested call per (congestion control, queue discipline) cell, reporting
// the Ping-Pair decomposition Tq/Ta/Tc so the attribution's survival under
// AQM is read straight off the table. Both halves are fleet-sharded
// (`--jobs N`, bit-identical for any worker count: every task derives its
// whole run from its index).
#include <vector>

#include "bench_util.h"
#include "fleet/fleet_runner.h"
#include "scenario/call_experiment.h"
#include "stats/summary.h"

using namespace kwikr;

namespace {

/// Runs one two-call experiment; returns the per-call mean rates.
std::pair<double, double> RunPair(bool kwikr_a, bool kwikr_b,
                                  std::uint64_t seed) {
  scenario::ExperimentConfig config;
  config.seed = seed;
  config.duration = sim::Seconds(120);
  config.cross_stations = 0;
  // Constrained link (low MCS), as on the paper's Android phones: the two
  // calls genuinely share capacity instead of both saturating their caps.
  config.client_rate_bps = 4'000'000;
  config.calls = {scenario::CallConfig{}, scenario::CallConfig{}};
  config.calls[0].kwikr = kwikr_a;
  config.calls[1].kwikr = kwikr_b;
  const auto metrics = scenario::RunCallExperiment(config);
  return {metrics.calls[0].mean_rate_kbps, metrics.calls[1].mean_rate_kbps};
}

/// One legacy-table task: pair kind (0 = both Skype, 1 = mixed, 2 = both
/// Kwikr) x iteration, seeded exactly as the original serial loop.
struct PairResult {
  double first = 0.0;
  double second = 0.0;
};

/// One CC x qdisc grid cell outcome.
struct GridResult {
  double rate_kbps = 0.0;
  double tq_p95_ms = 0.0;
  double ta_p95_ms = 0.0;
  double tc_p95_ms = 0.0;
  std::uint64_t aqm_drops = 0;
  std::uint64_t overflow_drops = 0;
};

double ProbeP95(const std::vector<core::PingPairSample>& samples,
                sim::Duration core::PingPairSample::*field) {
  std::vector<double> ms;
  ms.reserve(samples.size());
  for (const auto& s : samples) ms.push_back(sim::ToMillis(s.*field));
  return stats::Percentile(ms, 95.0);
}

constexpr transport::CcAlgorithm kCcAxis[] = {
    transport::CcAlgorithm::kReno, transport::CcAlgorithm::kCubic,
    transport::CcAlgorithm::kWestwood, transport::CcAlgorithm::kBbr};
constexpr wifi::QdiscKind kQdiscAxis[] = {
    wifi::QdiscKind::kDropTail, wifi::QdiscKind::kCoDel,
    wifi::QdiscKind::kFqCoDel};

GridResult RunGridCell(std::size_t index) {
  const auto cc = kCcAxis[index / std::size(kQdiscAxis)];
  const auto qdisc = kQdiscAxis[index % std::size(kQdiscAxis)];
  scenario::ExperimentConfig config;
  config.seed = 2200 + index;  // index-derived: fleet-determinism contract.
  config.duration = sim::Seconds(60);
  config.cross_stations = 1;
  config.flows_per_station = 6;
  config.congestion_start = sim::Seconds(10);
  config.congestion_end = sim::Seconds(50);
  config.cross_cc = cc;
  config.qdisc.kind = qdisc;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  const auto metrics = scenario::RunCallExperiment(config);
  const auto& call = metrics.calls.at(0);
  GridResult r;
  r.rate_kbps = call.mean_rate_congested_kbps;
  r.tq_p95_ms = ProbeP95(call.probe_samples, &core::PingPairSample::tq);
  r.ta_p95_ms = ProbeP95(call.probe_samples, &core::PingPairSample::ta);
  r.tc_p95_ms = ProbeP95(call.probe_samples, &core::PingPairSample::tc);
  for (int ac = 0; ac < wifi::kNumAccessCategories; ++ac) {
    const obs::Labels labels = {
        {"ac", wifi::Name(static_cast<wifi::AccessCategory>(ac))}};
    r.aqm_drops += registry.GetCounter("qdisc_aqm_drops_total", labels).value();
    r.overflow_drops +=
        registry.GetCounter("qdisc_overflow_drops_total", labels).value();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 2 — co-existence of Kwikr and legacy calls",
                "30 experiments x two simultaneous 2-min calls; mean rate "
                "+- 95% CI (kbps).\nPaper: co-existence has no significant "
                "impact on either side.");
  const int jobs = bench::ParseJobs(argc, argv);

  constexpr int kRuns = 10;
  bench::WallTimer timer;
  // Task layout: 3 pair kinds x kRuns iterations, seeds exactly as the
  // original serial loop (1300+i / 1400+i / 1500+i).
  const auto legacy = fleet::RunFleet(
      3 * kRuns, jobs, [](std::size_t index) -> PairResult {
        const auto kind = static_cast<int>(index / kRuns);
        const auto seed =
            static_cast<std::uint64_t>(1300 + 100 * kind + index % kRuns);
        const auto [a, b] =
            RunPair(/*kwikr_a=*/kind == 2, /*kwikr_b=*/kind >= 1, seed);
        return PairResult{a, b};
      });

  stats::RunningSummary skype_bg_skype;   // measured Skype, background Skype
  stats::RunningSummary skype_bg_kwikr;   // measured Skype, background Kwikr
  stats::RunningSummary kwikr_bg_skype;   // measured Kwikr, background Skype
  stats::RunningSummary kwikr_bg_kwikr;   // measured Kwikr, background Kwikr
  for (std::size_t index = 0; index < legacy.results.size(); ++index) {
    const auto& pair = legacy.results[index];  // index order: deterministic.
    switch (index / kRuns) {
      case 0:
        skype_bg_skype.Add(pair.first);
        skype_bg_skype.Add(pair.second);
        break;
      case 1:
        skype_bg_kwikr.Add(pair.first);
        kwikr_bg_skype.Add(pair.second);
        break;
      default:
        kwikr_bg_kwikr.Add(pair.first);
        kwikr_bg_kwikr.Add(pair.second);
        break;
    }
  }

  std::printf("%-22s | %-22s | %-22s\n", "Measured flow",
              "bg: Skype", "bg: Skype with Kwikr");
  std::printf("%-22s | %8.0f +- %-6.0f kbps | %8.0f +- %-6.0f kbps\n",
              "Skype", skype_bg_skype.mean(),
              skype_bg_skype.ci95_halfwidth(), skype_bg_kwikr.mean(),
              skype_bg_kwikr.ci95_halfwidth());
  std::printf("%-22s | %8.0f +- %-6.0f kbps | %8.0f +- %-6.0f kbps\n",
              "Skype with Kwikr", kwikr_bg_skype.mean(),
              kwikr_bg_skype.ci95_halfwidth(), kwikr_bg_kwikr.mean(),
              kwikr_bg_kwikr.ci95_halfwidth());

  // ---- CC x qdisc grid ----------------------------------------------------
  std::printf("\nCC x qdisc grid — congested call, Ping-Pair decomposition "
              "(p95, ms) + qdisc outcomes:\n");
  std::printf("%-10s %-10s | %10s %8s %8s %8s | %9s %9s\n", "cc", "qdisc",
              "rate_kbps", "Tq", "Ta", "Tc", "aqm_drop", "ovf_drop");
  constexpr std::size_t kCells = std::size(kCcAxis) * std::size(kQdiscAxis);
  const auto grid = fleet::RunFleet(kCells, jobs, RunGridCell);
  for (std::size_t index = 0; index < grid.results.size(); ++index) {
    const auto& cell = grid.results[index];
    std::printf(
        "%-10s %-10s | %10.0f %8.2f %8.2f %8.2f | %9llu %9llu\n",
        transport::Name(kCcAxis[index / std::size(kQdiscAxis)]),
        wifi::Name(kQdiscAxis[index % std::size(kQdiscAxis)]),
        cell.rate_kbps, cell.tq_p95_ms, cell.ta_p95_ms, cell.tc_p95_ms,
        static_cast<unsigned long long>(cell.aqm_drops),
        static_cast<unsigned long long>(cell.overflow_drops));
  }
  const double wall_ms = timer.ElapsedMs();

  double serial_wall_ms = 0.0;
  if (jobs != 1 && bench::HasFlag(argc, argv, "--compare-serial")) {
    bench::WallTimer serial_timer;
    const auto ref_legacy =
        fleet::RunFleet(3 * kRuns, 1, [](std::size_t index) -> PairResult {
          const auto kind = static_cast<int>(index / kRuns);
          const auto seed =
              static_cast<std::uint64_t>(1300 + 100 * kind + index % kRuns);
          const auto [a, b] =
              RunPair(/*kwikr_a=*/kind == 2, /*kwikr_b=*/kind >= 1, seed);
          return PairResult{a, b};
        });
    (void)ref_legacy;
    fleet::RunFleet(kCells, 1, RunGridCell);
    serial_wall_ms = serial_timer.ElapsedMs();
    bench::PrintFleetTiming("table2_coexistence", 1, serial_wall_ms,
                            3 * kRuns + static_cast<long>(kCells));
  }
  bench::PrintFleetTiming("table2_coexistence", jobs, wall_ms,
                          3 * kRuns + static_cast<long>(kCells),
                          serial_wall_ms);
  return 0;
}
