// Micro-benchmarks (google-benchmark) for the substrate hot paths: event
// loop scheduling, RNG, UKF updates, checksum, EDCA channel throughput, and
// a full call-experiment second.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/checksum.h"
#include "rtc/ukf.h"
#include "scenario/call_experiment.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "stats/percentile.h"
#include "wifi/channel.h"

using namespace kwikr;

namespace {

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleIn(i, [&counter] { ++counter; });
    }
    loop.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_UkfUpdate(benchmark::State& state) {
  rtc::LeakyBucketUkf ukf;
  double delay = 0.0;
  for (auto _ : state) {
    delay = delay > 0.1 ? 0.0 : delay + 0.001;
    ukf.Update(delay, 1200.0, 0.02, 0.01);
  }
  benchmark::DoNotOptimize(ukf.bandwidth_bps());
}
BENCHMARK(BM_UkfUpdate);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(state.range(0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500);

void BM_Percentile(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<double> samples;
  samples.reserve(state.range(0));
  for (int i = 0; i < state.range(0); ++i) {
    samples.push_back(rng.UniformDouble());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Percentile(samples, 95.0));
  }
}
BENCHMARK(BM_Percentile)->Arg(1000)->Arg(100000);

void BM_SaturatedEdcaChannel(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    wifi::Channel channel(loop, sim::Rng{3});
    std::uint64_t delivered = 0;
    auto on_delivery = [&](wifi::Frame) { ++delivered; };
    const wifi::OwnerId dst =
        channel.RegisterOwner(on_delivery);
    const wifi::OwnerId src = channel.RegisterOwner(nullptr);
    const wifi::ContenderId c = channel.CreateContender(
        src, wifi::AccessCategory::kBestEffort, wifi::DefaultEdcaParams()[1],
        4096);
    for (int i = 0; i < 1000; ++i) {
      wifi::Frame frame;
      frame.dest = dst;
      frame.phy_rate_bps = 65'000'000;
      frame.packet.size_bytes = 1500;
      channel.Enqueue(c, std::move(frame));
    }
    loop.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SaturatedEdcaChannel);

void BM_CallExperimentSecond(benchmark::State& state) {
  // Cost of one simulated second of a congested call (whole pipeline).
  for (auto _ : state) {
    scenario::ExperimentConfig config;
    config.seed = 1;
    config.duration = sim::Seconds(10);
    config.cross_stations = 1;
    config.flows_per_station = 5;
    config.congestion_start = sim::Seconds(1);
    config.congestion_end = sim::Seconds(9);
    const auto metrics = scenario::RunCallExperiment(config);
    benchmark::DoNotOptimize(metrics.calls[0].mean_rate_kbps);
  }
  state.SetItemsProcessed(state.iterations() * 10);  // sim-seconds.
}
BENCHMARK(BM_CallExperimentSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
