#pragma once

// Shared formatting helpers for the reproduction harnesses. Each bench
// prints the rows/series of one table or figure from the paper; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Set KWIKR_CSV_DIR=<dir> to additionally dump every printed series/CDF as a
// plot-ready CSV file named after the experiment.

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "obs/exporters.h"
#include "obs/metrics.h"
#include "stats/percentile.h"

namespace kwikr::bench {
namespace internal {

inline std::string& CurrentExperiment() {
  static std::string name;
  return name;
}

inline std::string Slug(const std::string& text) {
  std::string slug;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
    if (slug.size() >= 48) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// Opens <KWIKR_CSV_DIR>/<experiment>_<kind>.csv, or nullptr when CSV export
/// is off. The caller fcloses. An unopenable path (missing directory, no
/// permission) is reported on stderr instead of silently dropping the dump.
inline std::FILE* OpenCsv(const char* kind) {
  const char* dir = std::getenv("KWIKR_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  // Atomic: fleet-backed benches may export from worker threads when run
  // with --jobs > 1.
  static std::atomic<int> sequence{0};
  char path[512];
  std::snprintf(path, sizeof(path), "%s/%s_%02d_%s.csv", dir,
                Slug(CurrentExperiment()).c_str(),
                sequence.fetch_add(1, std::memory_order_relaxed), kind);
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "KWIKR_CSV_DIR: cannot open %s for writing\n", path);
  }
  return file;
}

}  // namespace internal

// ------------------------------------------------ fleet execution flags ----

/// True when `flag` (e.g. "--compare-serial") appears in argv.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Parses `<flag> N` from argv; returns `fallback` when absent/malformed.
inline int ParseIntFlag(int argc, char** argv, const char* flag,
                        int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

/// Parses the shared `--jobs N` knob of the fleet-backed benches
/// (1 = serial, 0 = one worker per hardware thread).
inline int ParseJobs(int argc, char** argv, int fallback = 1) {
  return ParseIntFlag(argc, argv, "--jobs", fallback);
}

// --------------------------------------------------- observability flags ---

/// Parses `<flag> <value>` from argv; returns `fallback` when absent.
inline const char* ParseStringFlag(int argc, char** argv, const char* flag,
                                   const char* fallback = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// True when the shared `--metrics-out <file>` knob is present — benches use
/// this to decide whether to plumb a registry through the run at all.
inline bool MetricsRequested(int argc, char** argv) {
  return ParseStringFlag(argc, argv, "--metrics-out") != nullptr;
}

/// Handles `--metrics-out <file>`: serializes the registry in Prometheus
/// text format to the file ("-" = stdout). No-op without the flag.
inline void ExportMetrics(int argc, char** argv,
                          const obs::MetricsRegistry& registry) {
  const char* path = ParseStringFlag(argc, argv, "--metrics-out");
  if (path == nullptr) return;
  if (std::strcmp(path, "-") == 0) {
    std::fputs(obs::PrometheusText(registry).c_str(), stdout);
    return;
  }
  if (obs::WritePrometheus(registry, path)) {
    std::printf("metrics: wrote %zu series to %s\n", registry.size(), path);
  }
}

/// Chrome-trace export directory from KWIKR_TRACE_DIR, or nullptr when the
/// variable is unset/empty. Benches that support tracing attach an
/// obs::ChromeTraceWriter to one example call and write
/// <dir>/<experiment>_trace.json.
inline const char* TraceDir() {
  const char* dir = std::getenv("KWIKR_TRACE_DIR");
  return (dir != nullptr && *dir != '\0') ? dir : nullptr;
}

/// Writes a Chrome trace to <KWIKR_TRACE_DIR>/<experiment>_trace.json.
inline void ExportTrace(const obs::ChromeTraceWriter& writer) {
  const char* dir = TraceDir();
  if (dir == nullptr) return;
  char path[512];
  std::snprintf(path, sizeof(path), "%s/%s_trace.json", dir,
                internal::Slug(internal::CurrentExperiment()).c_str());
  if (writer.WriteJson(path)) {
    std::printf("trace: wrote %zu events to %s\n", writer.events(), path);
  }
}

/// Wall-clock stopwatch for the fleet timing records.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set of this process in kB (VmHWM from /proc/self/status);
/// 0 when unavailable. The container has no /usr/bin/time, so the bench
/// records report their own peak RSS.
inline unsigned long PeakRssKb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  unsigned long kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lu kB", &kb) == 1) break;
  }
  std::fclose(status);
  return kb;
}

/// Emits the machine-readable timing record of a fleet-backed bench — one
/// JSON object per line so the perf trajectory can be scraped with grep.
/// When a serial (jobs=1) reference time is supplied, the achieved speedup
/// is included and echoed human-readably. When the total dispatched-event
/// count is supplied, simulator events/sec rides along (the scheduler
/// throughput achieved inside a full scenario, complementing
/// micro_eventloop's synthetic number).
inline void PrintFleetTiming(const char* bench, int jobs, double wall_ms,
                             long calls, double serial_wall_ms = 0.0,
                             std::uint64_t events = 0) {
  std::printf("{\"bench\":\"%s\",\"jobs\":%d,\"wall_ms\":%.1f,\"calls\":%ld",
              bench, jobs, wall_ms, calls);
  if (events > 0 && wall_ms > 0.0) {
    std::printf(",\"events\":%llu,\"events_per_sec\":%.0f",
                static_cast<unsigned long long>(events),
                static_cast<double>(events) / (wall_ms / 1000.0));
  }
  if (serial_wall_ms > 0.0 && wall_ms > 0.0) {
    std::printf(",\"speedup_vs_serial\":%.2f", serial_wall_ms / wall_ms);
  }
  std::printf(",\"peak_rss_kb\":%lu}\n", PeakRssKb());
  if (serial_wall_ms > 0.0 && wall_ms > 0.0) {
    std::printf("fleet: jobs=%d ran %.1f ms vs %.1f ms serial (%.2fx)\n",
                jobs, wall_ms, serial_wall_ms, serial_wall_ms / wall_ms);
  }
}

inline void Header(const char* experiment, const char* description) {
  internal::CurrentExperiment() = experiment;
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Prints a time series as "t=<s>  <label0>=<v0> <label1>=<v1> ...", one row
/// per `stride` seconds. With KWIKR_CSV_DIR set, the full-resolution series
/// is also written as CSV.
inline void PrintSeries(std::span<const std::string> labels,
                        std::span<const std::vector<double>> series,
                        int stride = 2) {
  std::size_t length = 0;
  for (const auto& s : series) length = std::max(length, s.size());
  std::printf("%6s", "t(s)");
  for (const auto& label : labels) std::printf(" %12s", label.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < length; t += stride) {
    std::printf("%6zu", t);
    for (const auto& s : series) {
      if (t < s.size()) {
        std::printf(" %12.1f", s[t]);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
  }

  if (std::FILE* csv = internal::OpenCsv("series")) {
    std::fprintf(csv, "t_s");
    for (const auto& label : labels) {
      std::fprintf(csv, ",%s", label.c_str());
    }
    std::fprintf(csv, "\n");
    for (std::size_t t = 0; t < length; ++t) {
      std::fprintf(csv, "%zu", t);
      for (const auto& s : series) {
        if (t < s.size()) {
          std::fprintf(csv, ",%g", s[t]);
        } else {
          std::fprintf(csv, ",");
        }
      }
      std::fprintf(csv, "\n");
    }
    std::fclose(csv);
  }
}

/// Prints the paper's percentile bars (50th/75th/90th/95th).
inline void PrintPercentiles(const char* label,
                             std::span<const double> samples) {
  std::printf("%-24s 50th=%8.2f 75th=%8.2f 90th=%8.2f 95th=%8.2f (n=%zu)\n",
              label, stats::Percentile(samples, 50.0),
              stats::Percentile(samples, 75.0),
              stats::Percentile(samples, 90.0),
              stats::Percentile(samples, 95.0), samples.size());
}

/// Prints a CDF as value rows at fixed cumulative fractions; with
/// KWIKR_CSV_DIR set, the full empirical CDF is also written as CSV.
inline void PrintCdf(const char* label, std::span<const double> samples) {
  stats::EmpiricalCdf cdf(std::vector<double>(samples.begin(), samples.end()));
  std::printf("%s CDF (n=%zu):\n", label, samples.size());
  for (double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("  p%-4.0f %10.1f\n", p, cdf.Quantile(p));
  }
  if (std::FILE* csv = internal::OpenCsv("cdf")) {
    std::fprintf(csv, "value,fraction,label\n");
    for (const auto& [value, fraction] : cdf.Curve(512)) {
      std::fprintf(csv, "%g,%g,%s\n", value, fraction, label);
    }
    std::fclose(csv);
  }
}

}  // namespace kwikr::bench
