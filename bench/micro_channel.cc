// Frame-path microbenchmark: saturated EDCA contention plus a ping-pair
// probe driven through wifi::Channel, timing the devirtualized-hook /
// pooled-ring fast path end to end (enqueue -> contention -> airtime ->
// delivery -> refill). Global operator-new counting proves the steady-state
// frame cycle is allocation-free: after warmup, every ring, scratch vector
// and event-loop slot chunk sits at its high-water mark, so a single heap
// allocation during the measured phase fails the bench.
//
// Usage:
//   micro_channel [--quick] [--json FILE] [--baseline FILE] [--breakdown]
//
// --json writes the BENCH_channel.json trajectory record: the headline
// mode:"burst" line first (what --baseline gates on — JsonNumber reads the
// first match), then, with --breakdown, a second mode:"breakdown" line with
// the per-stage cycle attribution (arbitration / airtime / delivery shares
// of the instrumented frame cycle) and the airtime-cache hit rate.
// --baseline reads a previous record and exits non-zero when frames/sec
// regressed more than 20% against it — the perf gate wired into
// scripts/check.sh. --quick shrinks the simulated horizon for CI smoke
// runs. The breakdown rep runs with the StageProfile attached (cycle reads
// on the frame path), so it is measured separately and never contaminates
// the headline numbers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "bench_util.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "wifi/channel.h"
#include "wifi/edca.h"

// ------------------------------------------------- allocation accounting ----
// Global new/delete overrides count every heap allocation in the process so
// the bench can prove the frame enqueue/dispatch cycle is allocation-free.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace kwikr {
namespace {

// --------------------------------------------------------------- workload ----

/// Closed-loop saturation harness: one AP with a downlink contender per
/// access category, two stations with bulk best-effort uplinks, and the
/// paper's ping-pair probe (one BE + one VO contender carrying small ICMP
/// echoes). Every delivered or retry-dropped frame immediately refills its
/// source contender, so every queue stays at its prefill depth forever —
/// the sustained-contention regime the fig10 scenarios spend their time in.
/// Packet::flow carries the source-contender index so one delivery handler
/// serves every owner.
class Harness {
 public:
  Harness() : channel_(loop_, sim::Rng(0xC0FFEE)) {
    const auto handler =
        wifi::Channel::DeliveryHandler::Member<&Harness::OnDelivery>(this);
    const wifi::OwnerId ap = channel_.RegisterOwner(handler);
    const wifi::OwnerId sta1 = channel_.RegisterOwner(handler);
    const wifi::OwnerId sta2 = channel_.RegisterOwner(handler);
    channel_.SetDropHandler(
        wifi::Channel::DropHandler::Member<&Harness::OnRetryDrop>(this));

    const auto edca = wifi::DefaultEdcaParams();
    // AP downlink: all four WMM access categories contend (bulk video-call
    // shape: fat BE/BK/VI frames, thin VO frames), split across stations.
    AddTx(ap, sta1, wifi::AccessCategory::kBackground, edca, 1200, 0x20);
    AddTx(ap, sta1, wifi::AccessCategory::kBestEffort, edca, 1200, 0x00);
    AddTx(ap, sta2, wifi::AccessCategory::kVideo, edca, 1200, 0xa0);
    AddTx(ap, sta2, wifi::AccessCategory::kVoice, edca, 200, 0xb8);
    // Station bulk uplinks (the self-congestion side of the paper).
    AddTx(sta1, ap, wifi::AccessCategory::kBestEffort, edca, 1200, 0x00);
    AddTx(sta2, ap, wifi::AccessCategory::kBestEffort, edca, 1200, 0x00);
    // Ping-pair probe from sta1: one BE echo and one VO echo, 84 bytes each
    // (64-byte ICMP payload + headers), the paper's probe shape.
    probe_begin_ = specs_count_;
    AddProbe(sta1, ap, wifi::AccessCategory::kBestEffort, edca, 0x00);
    AddProbe(sta1, ap, wifi::AccessCategory::kVoice, edca, 0xb8);

    // Prefill to a power-of-two depth: the rings allocate up to their
    // high-water mark here, during setup, and never again (refills are 1:1
    // with consumption, so depth never exceeds the prefill).
    for (std::uint32_t i = 0; i < specs_count_; ++i) {
      const std::size_t depth = i >= probe_begin_ ? 2 : 32;
      for (std::size_t k = 0; k < depth; ++k) Refill(i);
    }
  }

  void RunFor(sim::Duration d) { loop_.RunFor(d); }

  [[nodiscard]] wifi::Channel& channel() { return channel_; }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t probe_delivered() const {
    return probe_delivered_;
  }
  [[nodiscard]] std::uint64_t executed() const { return loop_.executed(); }
  [[nodiscard]] std::uint64_t collisions() const {
    return channel_.collisions();
  }
  [[nodiscard]] std::uint64_t retry_drops() const { return retry_drops_; }
  [[nodiscard]] double busy_fraction() const {
    return channel_.BusyFraction();
  }

 private:
  struct TxSpec {
    wifi::ContenderId id = 0;
    /// Prebuilt refill frame: every refill of a spec enqueues the same
    /// shape, so the source keeps one template and clones it — the idiom
    /// real traffic sources use — instead of zero-initializing a fresh
    /// net::Packet per delivered frame.
    wifi::Frame frame;
  };

  void AddTx(wifi::OwnerId owner, wifi::OwnerId dest, wifi::AccessCategory ac,
             const std::array<wifi::EdcaParams, wifi::kNumAccessCategories>&
                 edca,
             std::int32_t size_bytes, std::uint8_t tos) {
    TxSpec& spec = specs_[specs_count_++];
    spec.id = channel_.CreateContender(owner, ac, edca[wifi::Index(ac)], 64);
    spec.frame.dest = dest;
    spec.frame.phy_rate_bps = 120'000'000;
    spec.frame.packet.size_bytes = size_bytes;
    spec.frame.packet.tos = tos;
    spec.frame.packet.flow = specs_count_ - 1;
  }

  void AddProbe(wifi::OwnerId owner, wifi::OwnerId dest,
                wifi::AccessCategory ac,
                const std::array<wifi::EdcaParams,
                                 wifi::kNumAccessCategories>& edca,
                std::uint8_t tos) {
    AddTx(owner, dest, ac, edca, 84, tos);
    specs_[specs_count_ - 1].frame.packet.protocol = net::Protocol::kIcmp;
  }

  void Refill(std::uint32_t spec_index) {
    const TxSpec& spec = specs_[spec_index];
    channel_.Enqueue(spec.id, wifi::Frame(spec.frame));
  }

  void OnDelivery(wifi::Frame&& frame) {
    ++delivered_;
    if (frame.packet.flow >= probe_begin_) ++probe_delivered_;
    Refill(frame.packet.flow);
  }

  void OnRetryDrop(const wifi::Frame& frame) {
    ++retry_drops_;
    Refill(frame.packet.flow);
  }

  sim::EventLoop loop_;
  wifi::Channel channel_;
  TxSpec specs_[8];
  std::uint32_t specs_count_ = 0;
  std::uint32_t probe_begin_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t probe_delivered_ = 0;
  std::uint64_t retry_drops_ = 0;
};

// ------------------------------------------------------------- reporting ----

/// Minimal scanner for `"key": <number>` in a flat JSON object — enough to
/// read back our own BENCH_channel.json without a JSON library.
double JsonNumber(const std::string& text, const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return fallback;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

struct Results {
  double frames_per_sec = 0;       ///< delivered frames per wall second.
  double events_per_sec = 0;       ///< loop events per wall second.
  double allocs_per_frame = 0;     ///< heap allocations per delivered frame.
  double probe_share = 0;          ///< probe fraction of delivered frames.
  double busy_fraction = 0;        ///< medium utilization (saturation proof).
  std::uint64_t frames = 0;
  std::uint64_t collisions = 0;
  std::uint64_t retry_drops = 0;
  double wall_ms = 0;
};

std::string ToJson(const Results& r, bool quick) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"micro_channel\",\"mode\":\"%s\","
      "\"frames\":%llu,\"frames_per_sec\":%.0f,\"events_per_sec\":%.0f,"
      "\"allocs_per_frame\":%.4f,\"probe_share\":%.4f,"
      "\"busy_fraction\":%.3f,\"collisions\":%llu,\"retry_drops\":%llu,"
      "\"wall_ms\":%.1f,\"peak_rss_kb\":%lu}\n",
      // The committed (non-quick) trajectory line is tagged with the
      // frame-path generation so regressions bisect cleanly: "burst" = TXOP
      // burst batching + shared airtime cache + SIMD sweeps (vs "batched" =
      // the SoA EdcaCore sweeps, vs the retired per-contender "full").
      quick ? "quick" : "burst", static_cast<unsigned long long>(r.frames),
      r.frames_per_sec, r.events_per_sec, r.allocs_per_frame, r.probe_share,
      r.busy_fraction, static_cast<unsigned long long>(r.collisions),
      static_cast<unsigned long long>(r.retry_drops), r.wall_ms,
      bench::PeakRssKb());
  return buffer;
}

/// One extra instrumented rep: attach a wifi::Channel::StageProfile, run the
/// same closed loop, and attribute the instrumented cycles to arbitration
/// (EdcaCore sweeps + winner resolution), airtime (shape-cache lookups) and
/// delivery (owner hooks). Shares are of the instrumented total — event-loop
/// dispatch and MAC bookkeeping live in the remainder — and the cycle unit
/// (TSC / generic timer) cancels out of the ratios.
std::string BreakdownJson(bool quick, sim::Duration warmup,
                          sim::Duration horizon) {
  Harness harness;
  wifi::Channel::StageProfile profile;
  harness.RunFor(warmup);
  harness.channel().SetStageProfile(&profile);
  const std::uint64_t frames_before = harness.delivered();
  harness.RunFor(horizon);
  harness.channel().SetStageProfile(nullptr);
  const std::uint64_t frames = harness.delivered() - frames_before;
  const double total = static_cast<double>(
      profile.arbitration_cycles + profile.airtime_cycles +
      profile.delivery_cycles);
  const auto share = [total](std::uint64_t cycles) {
    return total > 0 ? static_cast<double>(cycles) / total : 0.0;
  };
  const auto& cache = harness.channel().airtime_cache();
  const double lookups =
      static_cast<double>(cache.hits() + cache.misses());
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"micro_channel\",\"mode\":\"breakdown\",\"quick\":%d,"
      "\"frames\":%llu,"
      "\"share_arbitration\":%.4f,\"share_airtime\":%.4f,"
      "\"share_delivery\":%.4f,"
      "\"arbitration_calls\":%llu,\"airtime_calls\":%llu,"
      "\"delivery_calls\":%llu,"
      "\"airtime_cache_hit_rate\":%.6f,\"airtime_cache_evictions\":%llu}\n",
      quick ? 1 : 0, static_cast<unsigned long long>(frames),
      share(profile.arbitration_cycles), share(profile.airtime_cycles),
      share(profile.delivery_cycles),
      static_cast<unsigned long long>(profile.arbitration_calls),
      static_cast<unsigned long long>(profile.airtime_calls),
      static_cast<unsigned long long>(profile.delivery_calls),
      lookups > 0 ? static_cast<double>(cache.hits()) / lookups : 0.0,
      static_cast<unsigned long long>(cache.evictions()));
  return buffer;
}

}  // namespace
}  // namespace kwikr

int main(int argc, char** argv) {
  using namespace kwikr;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const bool breakdown = bench::HasFlag(argc, argv, "--breakdown");
  const char* json_path = bench::ParseStringFlag(argc, argv, "--json");
  const char* baseline_path = bench::ParseStringFlag(argc, argv, "--baseline");

  bench::Header("Micro — wifi channel frame path",
                "Saturated multi-AC EDCA contention + ping-pair probe through "
                "wifi::Channel; proves the steady-state frame cycle is "
                "allocation-free.");

  // Warmup runs the closed loop long enough for every FrameRing, backlog
  // vector and event-loop slot chunk to reach its high-water mark; the
  // measured phase must then be allocation-free.
  const sim::Duration warmup = sim::Millis(500);
  const sim::Duration horizon =
      quick ? sim::Seconds(10) : sim::Seconds(120);
  const int reps = 3;

  Results best;
  bench::WallTimer total;
  // Best-of-N keeps the committed trajectory stable against scheduler noise
  // on loaded machines.
  for (int rep = 0; rep < reps; ++rep) {
    Harness harness;
    harness.RunFor(warmup);
    const std::uint64_t frames_before = harness.delivered();
    const std::uint64_t events_before = harness.executed();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const auto begin = std::chrono::steady_clock::now();
    harness.RunFor(horizon);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    const std::uint64_t frames = harness.delivered() - frames_before;
    const double fps = static_cast<double>(frames) / seconds;
    if (fps > best.frames_per_sec) {
      best.frames_per_sec = fps;
      best.events_per_sec =
          static_cast<double>(harness.executed() - events_before) / seconds;
      best.allocs_per_frame =
          static_cast<double>(allocs) / static_cast<double>(frames);
      best.frames = frames;
      best.probe_share = static_cast<double>(harness.probe_delivered()) /
                         static_cast<double>(harness.delivered());
      best.busy_fraction = harness.busy_fraction();
      best.collisions = harness.collisions();
      best.retry_drops = harness.retry_drops();
    }
  }
  best.wall_ms = total.ElapsedMs();

  std::printf("frames    %12.0f frames/s (%llu frames, probe share %.3f)\n",
              best.frames_per_sec,
              static_cast<unsigned long long>(best.frames), best.probe_share);
  std::printf("events    %12.0f ev/s\n", best.events_per_sec);
  std::printf("medium    busy %.3f, %llu collisions, %llu retry drops\n",
              best.busy_fraction,
              static_cast<unsigned long long>(best.collisions),
              static_cast<unsigned long long>(best.retry_drops));
  std::printf("allocs/frame cycle: %.4f\n", best.allocs_per_frame);

  std::string json = ToJson(best, quick);
  std::fputs(json.c_str(), stdout);
  if (breakdown) {
    // Separate instrumented rep, emitted AFTER the headline line: the
    // --baseline gate and trajectory tooling read the first match of each
    // key, so the breakdown record can never shadow the gated numbers.
    const std::string extra = BreakdownJson(quick, warmup, horizon);
    std::fputs(extra.c_str(), stdout);
    json += extra;
  }
  if (json_path != nullptr) {
    if (std::FILE* out = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
      std::printf("bench: wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "bench: cannot open %s\n", json_path);
      return 1;
    }
  }

  if (best.allocs_per_frame > 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state frame cycle allocated (%.4f "
                 "allocs/frame; expected 0)\n",
                 best.allocs_per_frame);
    return 1;
  }

  if (baseline_path != nullptr) {
    std::FILE* file = std::fopen(baseline_path, "r");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot read baseline %s\n", baseline_path);
      return 1;
    }
    std::string text;
    char chunk[512];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      text.append(chunk, n);
    }
    std::fclose(file);
    const double reference = JsonNumber(text, "frames_per_sec", 0.0);
    if (reference <= 0.0) {
      std::fprintf(stderr, "bench: baseline %s has no frames_per_sec\n",
                   baseline_path);
      return 1;
    }
    const double ratio = best.frames_per_sec / reference;
    std::printf("baseline: %.0f frames/s committed, measured %.0f frames/s "
                "(%.0f%%)\n",
                reference, best.frames_per_sec, ratio * 100.0);
    if (ratio < 0.8) {
      std::fprintf(stderr,
                   "FAIL: frames/sec regressed >20%% vs %s (%.2fx)\n",
                   baseline_path, ratio);
      return 1;
    }
  }
  return 0;
}
