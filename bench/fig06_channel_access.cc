// Figure 6: estimated channel access delay vs number of channel contenders
// (paper Section 8.2). Contenders upload one 1000-byte UDP packet per
// millisecond; the estimator sends same-priority ping pairs and accepts only
// measurements with consecutive 802.11 sequence numbers and no retry bit.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/channel_access.h"
#include "scenario/testbed.h"
#include "stats/summary.h"
#include "transport/udp_stream.h"

using namespace kwikr;

namespace {

stats::RunningSummary MeasureAccessDelay(int contenders, std::uint8_t tos,
                                         std::uint64_t seed) {
  scenario::Testbed testbed(
      scenario::Testbed::Config{seed, wifi::PhyParams{}});
  auto& bss = testbed.AddBss(scenario::Bss::Config{});
  auto& client = bss.AddStation(testbed.NextStationAddress(), 26'000'000);

  std::vector<std::unique_ptr<transport::UdpCbrSender>> senders;
  for (int i = 0; i < contenders; ++i) {
    auto& station =
        bss.AddStation(testbed.NextStationAddress(), 26'000'000);
    transport::UdpCbrSender::Config cbr;
    cbr.src = station.address();
    cbr.dst = 5000;  // toward the WAN; payload content is irrelevant.
    cbr.packet_bytes = 1000;
    cbr.interval = sim::Millis(1);
    wifi::Station* sp = &station;
    senders.push_back(std::make_unique<transport::UdpCbrSender>(
        testbed.loop(), testbed.ids(), cbr,
        [sp](net::Packet p) { sp->Send(std::move(p)); }));
    senders.back()->Start();
  }

  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::ChannelAccessEstimator::Config cfg;
  cfg.interval = sim::Millis(20);
  cfg.tos = tos;
  core::ChannelAccessEstimator estimator(testbed.loop(), transport, cfg,
                                         testbed.channel().phy());
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) estimator.OnReply(p, at);
  });
  estimator.Start();
  // ~1500 probes, as in the paper.
  testbed.loop().RunUntil(sim::Seconds(30));
  estimator.Stop();

  stats::RunningSummary summary;
  for (const auto e : estimator.estimates()) {
    summary.Add(sim::ToMicros(e));
  }
  return summary;
}

}  // namespace

int main() {
  bench::Header("Figure 6 — channel access delay vs contenders",
                "Contenders upload 1 pkt/ms; normal-priority probes; 95% CI.\n"
                "Paper: delay grows with the number of contenders.");
  std::printf("%12s %16s %12s %10s\n", "contenders", "mean(us)", "ci95(us)",
              "n");
  for (int contenders = 0; contenders <= 4; ++contenders) {
    const auto summary = MeasureAccessDelay(
        contenders, net::kTosBestEffort, 600 + contenders);
    std::printf("%12d %16.1f %12.1f %10lld\n", contenders, summary.mean(),
                summary.ci95_halfwidth(),
                static_cast<long long>(summary.count()));
  }
  return 0;
}
