#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_spec.h"
#include "faults/gilbert_elliott.h"
#include "net/wired_link.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "wifi/channel.h"

namespace kwikr::core {
class PingPairProber;
}
namespace kwikr::wifi {
class AccessPoint;
class Station;
}

namespace kwikr::faults {

/// Everything the injector did, as plain counters. Deterministic in the
/// (seed, spec) pair; also mirrored into an obs::MetricsRegistry when one
/// is attached (as `fault_*` series).
struct FaultCounters {
  std::uint64_t ge_losses = 0;        ///< attempts failed by the GE chain.
  std::uint64_t ge_bursts = 0;        ///< Good→Bad transitions taken.
  std::uint64_t reordered = 0;        ///< frames delivered late on purpose.
  std::uint64_t duplicated = 0;       ///< extra frame copies delivered.
  std::uint64_t dropped = 0;          ///< frames swallowed post-MAC.
  std::uint64_t wan_losses = 0;       ///< packets lost on the wired link.
  std::uint64_t wan_jitters = 0;      ///< packets held back by WAN jitter.
  std::uint64_t wmm_downgrades = 0;   ///< prioritized packets demoted to BE.
  std::uint64_t churn_switches = 0;   ///< link-quality flips performed.
  std::uint64_t schedule_toggles = 0; ///< mid-call schedule entries fired.
};

/// Realizes a FaultSpec against a simulated environment: installs the hook
/// points (wifi::Channel error model + delivery faults, AP downlink
/// classifier, net::WiredLink faults, station link churn, prober clock
/// skew) and arms the mid-call schedule. One injector serves one event
/// loop; construct it next to the Testbed and attach the parts the
/// scenario actually builds — every Attach* is optional and composable.
///
/// Determinism contract: all randomness comes from the sim::Rng passed at
/// construction (fork it from the experiment seed with a dedicated stream),
/// and every decision is made at a simulated event, so the same
/// (seed, spec) produces the identical impairment trace on every run and
/// for any fleet worker count.
class FaultInjector {
 public:
  FaultInjector(sim::EventLoop& loop, FaultSpec spec, sim::Rng rng,
                obs::MetricsRegistry* metrics = nullptr,
                obs::Labels labels = {});

  ~FaultInjector();  // out of line: ChurnState is incomplete here.

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the Gilbert–Elliott error model (composed with `inner`:
  /// independent loss processes) and the delivery mangling hook
  /// (reorder/duplicate/drop) on the shared medium. Both hooks dispatch
  /// statically into this injector (FunctionRef::Member), so the injector
  /// must outlive the channel's use of them — it already must, as the
  /// armed schedule references it. `inner` is retained by reference too.
  void AttachChannel(wifi::Channel& channel,
                     wifi::FrameErrorModel inner = nullptr);

  /// Installs the WMM-partial downlink classifier (kPartial mode only;
  /// kOff is applied via AccessPoint::Config::wmm_enabled by the caller).
  void AttachAccessPoint(wifi::AccessPoint& ap);

  /// Installs WAN loss/jitter on one wired link (usually the downlink).
  void AttachWan(net::WiredLink& link);

  /// Starts MAC-rate downshift churn on `station`: every churn period the
  /// station flips between its current link quality and the configured
  /// degraded one. No-op unless churn is configured.
  void AttachStationChurn(wifi::Station& station);

  /// Installs the skewed client clock on a prober. No-op without skew.
  void AttachProber(core::PingPairProber& prober);

  /// Arms the mid-call schedule (call once, after the attaches).
  void Arm();

  /// Whether a fault class is currently active (initially: configured
  /// faults are active; the schedule toggles them).
  [[nodiscard]] bool active(FaultKind kind) const {
    return active_[static_cast<int>(kind)];
  }

  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// The Gilbert–Elliott chain (null when GE is not configured) — the
  /// timeline sampler's fault-state probe surface.
  [[nodiscard]] const GilbertElliott* gilbert_elliott() const {
    return ge_.get();
  }

  /// Attaches a flight recorder: every counted fault action (GE bursts and
  /// losses, mangles, WAN faults, schedule toggles, ...) also records a
  /// kFaultTransition event whose detail is the counter name. The names are
  /// string literals at the count sites, so recording stays alloc-free.
  /// Null detaches.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  struct ChurnState;

  void ChurnTick(ChurnState& churn);
  void CountObs(const char* which, std::uint64_t n = 1);
  /// FrameErrorModel target: GE verdict composed with inner_error_model_.
  double ChannelErrorProb(wifi::OwnerId tx, wifi::OwnerId rx,
                          const wifi::Frame& frame);
  /// DeliveryFaultHook target: reorder/duplicate/drop per spec_.mangle.
  wifi::Channel::DeliveryFault MangleDelivery(const wifi::Frame& frame,
                                              sim::Time at);

  sim::EventLoop& loop_;
  FaultSpec spec_;
  sim::Rng rng_;
  obs::MetricsRegistry* metrics_;
  obs::Labels labels_;
  obs::FlightRecorder* recorder_ = nullptr;
  bool active_[kNumFaultKinds] = {};
  std::unique_ptr<GilbertElliott> ge_;
  wifi::FrameErrorModel inner_error_model_;
  std::vector<std::unique_ptr<ChurnState>> churns_;
  FaultCounters counters_;
};

}  // namespace kwikr::faults
