#include "faults/injector.h"

#include <algorithm>
#include <utility>

#include "core/ping_pair.h"
#include "wifi/access_point.h"
#include "wifi/station.h"

namespace kwikr::faults {

/// Flip-flop between a station's healthy link and the degraded one; owned
/// by the injector so the timer callback has a stable address.
struct FaultInjector::ChurnState {
  ChurnState(FaultInjector* injector, sim::EventLoop& loop,
             sim::Duration period, wifi::Station* s, wifi::LinkQuality h)
      : station(s),
        healthy(h),
        timer(loop, period, [injector, this] { injector->ChurnTick(*this); }) {
  }

  wifi::Station* station;
  wifi::LinkQuality healthy;
  bool degraded = false;
  sim::PeriodicTimer timer;
};

FaultInjector::FaultInjector(sim::EventLoop& loop, FaultSpec spec,
                             sim::Rng rng, obs::MetricsRegistry* metrics,
                             obs::Labels labels)
    : loop_(loop),
      spec_(std::move(spec)),
      rng_(rng),
      metrics_(metrics),
      labels_(std::move(labels)) {
  auto set = [this](FaultKind kind, bool on) {
    active_[static_cast<int>(kind)] = on;
  };
  set(FaultKind::kGilbertElliott, spec_.ge.enable);
  set(FaultKind::kReorder, spec_.mangle.reorder_prob > 0.0);
  set(FaultKind::kDuplicate, spec_.mangle.duplicate_prob > 0.0);
  set(FaultKind::kDrop, spec_.mangle.drop_prob > 0.0);
  set(FaultKind::kWan, spec_.wan.loss_prob > 0.0 || spec_.wan.jitter_prob > 0.0);
  set(FaultKind::kChurn, spec_.churn.period_ms > 0.0);
  set(FaultKind::kSkew, spec_.skew.ppm != 0.0 || spec_.skew.offset_ms != 0.0);
  set(FaultKind::kWmm, spec_.wmm.mode == FaultSpec::WmmMode::kPartial);

  if (spec_.ge.enable) {
    GilbertElliott::Config ge;
    ge.mean_good = sim::FromSeconds(spec_.ge.mean_good_ms / 1000.0);
    ge.mean_bad = sim::FromSeconds(spec_.ge.mean_bad_ms / 1000.0);
    ge.loss_good = spec_.ge.loss_good;
    ge.loss_bad = spec_.ge.loss_bad;
    // The chain gets its own forked stream so attaching more hook points
    // never perturbs the burst schedule.
    ge_ = std::make_unique<GilbertElliott>(ge, rng_.Fork());
  }
}

FaultInjector::~FaultInjector() = default;

void FaultInjector::CountObs(const char* which, std::uint64_t n) {
  if (n == 0) return;
  if (recorder_ != nullptr) {
    recorder_->Record(loop_.now(), obs::FlightEventKind::kFaultTransition, 0,
                      n, which);
  }
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter(std::string("fault_") + which + "_total", labels_)
      .Add(n);
}

void FaultInjector::AttachChannel(wifi::Channel& channel,
                                  wifi::FrameErrorModel inner) {
  inner_error_model_ = inner;
  channel.SetFrameErrorModel(
      wifi::FrameErrorModel::Member<&FaultInjector::ChannelErrorProb>(this));

  const FaultSpec::MangleSpec& mangle = spec_.mangle;
  if (mangle.reorder_prob > 0.0 || mangle.duplicate_prob > 0.0 ||
      mangle.drop_prob > 0.0) {
    channel.SetDeliveryFaultHook(
        wifi::Channel::DeliveryFaultHook::Member<
            &FaultInjector::MangleDelivery>(this));
  }
}

double FaultInjector::ChannelErrorProb(wifi::OwnerId tx, wifi::OwnerId rx,
                                       const wifi::Frame& frame) {
  // The GE verdict is drawn here (from the injector's rng) instead of
  // returning a probability: that keeps the loss count exact and the
  // burst schedule independent of the channel's own rng stream.
  if (ge_ != nullptr && active(FaultKind::kGilbertElliott)) {
    const std::uint64_t before = ge_->transitions();
    const bool was_bad = ge_->bad();
    const double p = ge_->LossProb(loop_.now());
    const std::uint64_t flips = ge_->transitions() - before;
    if (flips > 0) {
      const std::uint64_t bursts = was_bad ? flips / 2 : (flips + 1) / 2;
      counters_.ge_bursts += bursts;
      CountObs("ge_bursts", bursts);
    }
    if (p > 0.0 && rng_.Bernoulli(p)) {
      ++counters_.ge_losses;
      CountObs("ge_losses");
      return 1.0;  // this attempt is lost regardless of the rest.
    }
  }
  return inner_error_model_ ? inner_error_model_(tx, rx, frame) : 0.0;
}

wifi::Channel::DeliveryFault FaultInjector::MangleDelivery(
    const wifi::Frame& /*frame*/, sim::Time /*at*/) {
  const FaultSpec::MangleSpec& mangle = spec_.mangle;
  wifi::Channel::DeliveryFault fault;
  if (active(FaultKind::kDrop) && mangle.drop_prob > 0.0 &&
      rng_.Bernoulli(mangle.drop_prob)) {
    fault.drop = true;
    ++counters_.dropped;
    CountObs("dropped");
    return fault;
  }
  if (active(FaultKind::kDuplicate) && mangle.duplicate_prob > 0.0 &&
      rng_.Bernoulli(mangle.duplicate_prob)) {
    fault.duplicates = 1;
    ++counters_.duplicated;
    CountObs("duplicated");
  }
  if (active(FaultKind::kReorder) && mangle.reorder_prob > 0.0 &&
      rng_.Bernoulli(mangle.reorder_prob)) {
    fault.delay = sim::FromSeconds(mangle.reorder_delay_ms / 1000.0);
    ++counters_.reordered;
    CountObs("reordered");
  }
  return fault;
}

void FaultInjector::AttachAccessPoint(wifi::AccessPoint& ap) {
  if (spec_.wmm.mode != FaultSpec::WmmMode::kPartial) return;
  const double honor = spec_.wmm.honor_prob;
  ap.SetDownlinkClassifier(
      [this, honor](const net::Packet&,
                    wifi::AccessCategory chosen) -> wifi::AccessCategory {
        if (!active(FaultKind::kWmm) ||
            chosen == wifi::AccessCategory::kBestEffort) {
          return chosen;
        }
        if (rng_.Bernoulli(honor)) return chosen;
        ++counters_.wmm_downgrades;
        CountObs("wmm_downgrades");
        return wifi::AccessCategory::kBestEffort;
      });
}

void FaultInjector::AttachWan(net::WiredLink& link) {
  const FaultSpec::WanSpec wan = spec_.wan;
  if (wan.loss_prob <= 0.0 && wan.jitter_prob <= 0.0) return;
  link.SetFaultHook(
      [this, wan](const net::Packet&) -> net::WiredLink::LinkFault {
        net::WiredLink::LinkFault fault;
        if (!active(FaultKind::kWan)) return fault;
        if (wan.loss_prob > 0.0 && rng_.Bernoulli(wan.loss_prob)) {
          fault.drop = true;
          ++counters_.wan_losses;
          CountObs("wan_losses");
          return fault;
        }
        if (wan.jitter_prob > 0.0 && rng_.Bernoulli(wan.jitter_prob)) {
          fault.extra_delay = sim::FromSeconds(wan.jitter_ms / 1000.0);
          ++counters_.wan_jitters;
          CountObs("wan_jitters");
        }
        return fault;
      });
}

void FaultInjector::AttachStationChurn(wifi::Station& station) {
  if (spec_.churn.period_ms <= 0.0) return;
  const sim::Duration period =
      std::max<sim::Duration>(sim::FromSeconds(spec_.churn.period_ms / 1000.0),
                              sim::Millis(1));
  auto state = std::make_unique<ChurnState>(
      this, loop_, period, &station,
      wifi::LinkQuality{station.rate_bps(), station.frame_error_prob()});
  state->timer.Start(period);
  churns_.push_back(std::move(state));
}

void FaultInjector::ChurnTick(ChurnState& churn) {
  if (!active(FaultKind::kChurn)) {
    // Schedule turned churn off: restore the healthy link once.
    if (churn.degraded) {
      churn.station->SetLinkQuality(churn.healthy);
      churn.degraded = false;
    }
    return;
  }
  churn.degraded = !churn.degraded;
  churn.station->SetLinkQuality(
      churn.degraded ? wifi::LinkQuality{spec_.churn.low_rate_bps,
                                         spec_.churn.low_error_prob}
                     : churn.healthy);
  ++counters_.churn_switches;
  CountObs("churn_switches");
}

void FaultInjector::AttachProber(core::PingPairProber& prober) {
  if (spec_.skew.ppm == 0.0 && spec_.skew.offset_ms == 0.0) return;
  const sim::Duration offset =
      sim::FromSeconds(spec_.skew.offset_ms / 1000.0);
  const double ppm = spec_.skew.ppm;
  prober.SetClock([this, offset, ppm](sim::Time t) -> sim::Time {
    if (!active(FaultKind::kSkew)) return t;
    return t + offset +
           static_cast<sim::Time>(static_cast<double>(t) * ppm * 1e-6);
  });
}

void FaultInjector::Arm() {
  for (const FaultScheduleEntry& entry : spec_.schedule) {
    const int kind = static_cast<int>(entry.kind);
    const bool enable = entry.enable;
    auto toggle = [this, kind, enable] {
      active_[kind] = enable;
      ++counters_.schedule_toggles;
      CountObs("schedule_toggles");
    };
    static_assert(sim::InlineTask::fits_inline<decltype(toggle)>);
    loop_.ScheduleAt(entry.at, "fault.schedule", std::move(toggle));
  }
}

}  // namespace kwikr::faults
