#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace kwikr::faults {

/// Two-state Gilbert–Elliott bursty-loss channel (the Markov impairment
/// model of Teigen et al., "A Model of WiFi Performance With Bounded
/// Latency"): the channel dwells in a Good or a Bad state for exponentially
/// distributed sojourn times and applies a per-state per-attempt loss
/// probability. Driven by *sim time*, so loss bursts have a duration rather
/// than a frame count — a fast sender and a slow sender see the same burst.
///
/// Deterministic: all dwell draws come from the owned sim::Rng, and the
/// chain advances only in `LossProb`, whose call times are themselves
/// deterministic in a seeded simulation. Queries must be non-decreasing in
/// time (the natural order inside one event loop).
class GilbertElliott {
 public:
  struct Config {
    sim::Duration mean_good = sim::Millis(400);
    sim::Duration mean_bad = sim::Millis(40);
    double loss_good = 0.0;
    double loss_bad = 0.7;
  };

  GilbertElliott(Config config, sim::Rng rng);

  /// Per-attempt loss probability governing a transmission at `now`,
  /// advancing the chain across every dwell boundary passed since the last
  /// query. Starts in the Good state at the time of the first query.
  double LossProb(sim::Time now);

  [[nodiscard]] bool bad() const { return bad_; }
  /// State flips performed so far (a burst = one Good→Bad transition).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  [[nodiscard]] sim::Duration DrawDwell();

  Config config_;
  sim::Rng rng_;
  bool bad_ = false;
  bool started_ = false;
  sim::Time next_transition_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace kwikr::faults
