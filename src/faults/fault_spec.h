#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace kwikr::faults {

/// The fault classes the injector can toggle independently (mid-call
/// schedules address them by these names; see ParseFaultSpec).
enum class FaultKind {
  kGilbertElliott,  ///< "ge": bursty per-attempt frame loss on the medium.
  kReorder,         ///< "reorder": delivery-side extra latency (overtaking).
  kDuplicate,       ///< "duplicate": delivery-side frame duplication.
  kDrop,            ///< "drop": delivery-side frame vanishing (post-MAC).
  kWan,             ///< "wan": wired-downlink loss and jitter.
  kChurn,           ///< "churn": MAC-rate downshift churn on the client.
  kSkew,            ///< "skew": clock skew on probe timestamps.
  kWmm,             ///< "wmm": partial/absent WMM prioritization at the AP.
};
inline constexpr int kNumFaultKinds = 8;

/// Returns the schedule name of a fault kind ("ge", "reorder", ...).
const char* Name(FaultKind kind);

/// One mid-call schedule entry: at `at`, switch `kind` on or off.
struct FaultScheduleEntry {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kGilbertElliott;
  bool enable = true;
};

/// A declarative, deterministic impairment plan. Every knob defaults to
/// inert; a default-constructed spec injects nothing (`any()` is false).
/// All randomness used to realize the plan flows from one sim::Rng handed
/// to the FaultInjector, so the same (seed, spec) reproduces the same
/// impairment trace bit for bit.
///
/// Specs parse from key=value text (one key per line, `#` comments):
///
///   # Bursty loss: Gilbert–Elliott with mean dwell times per state.
///   ge.enable=1
///   ge.mean_good_ms=400
///   ge.mean_bad_ms=40
///   ge.loss_good=0.0
///   ge.loss_bad=0.7
///   # Delivery-layer mangling after MAC success.
///   reorder.prob=0.02
///   reorder.delay_ms=4
///   duplicate.prob=0.01
///   drop.prob=0.001
///   # Wired-downlink impairments.
///   wan.loss_prob=0.001
///   wan.jitter_prob=0.2
///   wan.jitter_ms=2
///   # AP WMM behaviour: on | off | partial.
///   wmm.mode=partial
///   wmm.honor_prob=0.4
///   # MAC-rate downshift churn on the client station.
///   churn.period_ms=1500
///   churn.low_rate_bps=6500000
///   churn.low_error_prob=0.05
///   # Clock skew applied to probe timestamps.
///   skew.ppm=150
///   skew.offset_ms=30
///   # Mid-call schedule: "<at_ms> <fault> on|off". A configured fault is
///   # active from t=0 unless an entry at 0 disables it.
///   schedule=10000 ge off
///   schedule=20000 ge on
struct FaultSpec {
  struct GilbertElliottSpec {
    bool enable = false;
    double mean_good_ms = 400.0;  ///< mean dwell in the Good state.
    double mean_bad_ms = 40.0;    ///< mean dwell in the Bad (burst) state.
    double loss_good = 0.0;       ///< per-attempt loss prob, Good state.
    double loss_bad = 0.7;        ///< per-attempt loss prob, Bad state.
  };

  /// Delivery-layer mangling, applied after a frame wins the medium: the
  /// receiver-side pathologies (reordering, duplication, vanishing frames)
  /// that MAC-level retransmission cannot explain.
  struct MangleSpec {
    double reorder_prob = 0.0;
    double reorder_delay_ms = 3.0;  ///< extra latency of a reordered frame.
    double duplicate_prob = 0.0;
    double drop_prob = 0.0;
  };

  struct WanSpec {
    double loss_prob = 0.0;
    double jitter_prob = 0.0;
    double jitter_ms = 0.0;  ///< extra propagation delay when jitter hits.
  };

  enum class WmmMode {
    kHonest,   ///< AP honours TOS→AC mapping (when wmm_enabled).
    kOff,      ///< AP collapses all downlink traffic into Best Effort.
    kPartial,  ///< AP honours priority with probability `honor_prob`.
  };
  struct WmmSpec {
    WmmMode mode = WmmMode::kHonest;
    double honor_prob = 0.5;  ///< only meaningful in kPartial mode.
  };

  struct ChurnSpec {
    double period_ms = 0.0;  ///< 0 = disabled; toggles every period.
    std::int64_t low_rate_bps = 6'500'000;
    double low_error_prob = 0.0;  ///< frame error prob while downshifted.
  };

  struct SkewSpec {
    double ppm = 0.0;       ///< clock rate error, parts per million.
    double offset_ms = 0.0; ///< constant clock offset.
  };

  GilbertElliottSpec ge;
  MangleSpec mangle;
  WanSpec wan;
  WmmSpec wmm;
  ChurnSpec churn;
  SkewSpec skew;
  std::vector<FaultScheduleEntry> schedule;

  /// True when any fault class is configured (an all-defaults spec returns
  /// false and the experiment runs exactly as without a fault plan).
  [[nodiscard]] bool any() const;
};

/// Parses key=value text into `*spec` (on top of its current values).
/// Returns false and describes the first offending line in `*error` on
/// malformed input; `*spec` is unspecified in that case.
bool ParseFaultSpec(std::string_view text, FaultSpec* spec,
                    std::string* error);

}  // namespace kwikr::faults
