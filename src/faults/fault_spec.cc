#include "faults/fault_spec.h"

#include <cstdlib>
#include <sstream>

namespace kwikr::faults {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view value, double* out) {
  const std::string copy(value);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view value, std::int64_t* out) {
  const std::string copy(value);
  char* end = nullptr;
  const long long v = std::strtoll(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseBool(std::string_view value, bool* out) {
  if (value == "1" || value == "true" || value == "on") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "false" || value == "off") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseKind(std::string_view name, FaultKind* out) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == Name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// "<at_ms> <fault> on|off", e.g. "10000 ge off".
bool ParseSchedule(std::string_view value, FaultScheduleEntry* out) {
  std::istringstream in{std::string(value)};
  double at_ms = 0.0;
  std::string kind;
  std::string state;
  if (!(in >> at_ms >> kind >> state) || at_ms < 0) return false;
  std::string rest;
  if (in >> rest) return false;  // trailing tokens.
  if (!ParseKind(kind, &out->kind)) return false;
  if (!ParseBool(state, &out->enable)) return false;
  out->at = sim::FromSeconds(at_ms / 1000.0);
  return true;
}

}  // namespace

const char* Name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGilbertElliott: return "ge";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kWan: return "wan";
    case FaultKind::kChurn: return "churn";
    case FaultKind::kSkew: return "skew";
    case FaultKind::kWmm: return "wmm";
  }
  return "?";
}

bool FaultSpec::any() const {
  return ge.enable || mangle.reorder_prob > 0.0 ||
         mangle.duplicate_prob > 0.0 || mangle.drop_prob > 0.0 ||
         wan.loss_prob > 0.0 || wan.jitter_prob > 0.0 ||
         wmm.mode != WmmMode::kHonest || churn.period_ms > 0.0 ||
         skew.ppm != 0.0 || skew.offset_ms != 0.0 || !schedule.empty();
}

bool ParseFaultSpec(std::string_view text, FaultSpec* spec,
                    std::string* error) {
  int line_no = 0;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    ++line_no;

    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": expected key=value";
      }
      return false;
    }
    const std::string_view key = Trim(line.substr(0, eq));
    const std::string_view value = Trim(line.substr(eq + 1));

    bool ok = true;
    if (key == "ge.enable") {
      ok = ParseBool(value, &spec->ge.enable);
    } else if (key == "ge.mean_good_ms") {
      ok = ParseDouble(value, &spec->ge.mean_good_ms);
    } else if (key == "ge.mean_bad_ms") {
      ok = ParseDouble(value, &spec->ge.mean_bad_ms);
    } else if (key == "ge.loss_good") {
      ok = ParseDouble(value, &spec->ge.loss_good);
    } else if (key == "ge.loss_bad") {
      ok = ParseDouble(value, &spec->ge.loss_bad);
    } else if (key == "reorder.prob") {
      ok = ParseDouble(value, &spec->mangle.reorder_prob);
    } else if (key == "reorder.delay_ms") {
      ok = ParseDouble(value, &spec->mangle.reorder_delay_ms);
    } else if (key == "duplicate.prob") {
      ok = ParseDouble(value, &spec->mangle.duplicate_prob);
    } else if (key == "drop.prob") {
      ok = ParseDouble(value, &spec->mangle.drop_prob);
    } else if (key == "wan.loss_prob") {
      ok = ParseDouble(value, &spec->wan.loss_prob);
    } else if (key == "wan.jitter_prob") {
      ok = ParseDouble(value, &spec->wan.jitter_prob);
    } else if (key == "wan.jitter_ms") {
      ok = ParseDouble(value, &spec->wan.jitter_ms);
    } else if (key == "wmm.mode") {
      if (value == "on") {
        spec->wmm.mode = FaultSpec::WmmMode::kHonest;
      } else if (value == "off") {
        spec->wmm.mode = FaultSpec::WmmMode::kOff;
      } else if (value == "partial") {
        spec->wmm.mode = FaultSpec::WmmMode::kPartial;
      } else {
        ok = false;
      }
    } else if (key == "wmm.honor_prob") {
      ok = ParseDouble(value, &spec->wmm.honor_prob);
    } else if (key == "churn.period_ms") {
      ok = ParseDouble(value, &spec->churn.period_ms);
    } else if (key == "churn.low_rate_bps") {
      ok = ParseInt64(value, &spec->churn.low_rate_bps);
    } else if (key == "churn.low_error_prob") {
      ok = ParseDouble(value, &spec->churn.low_error_prob);
    } else if (key == "skew.ppm") {
      ok = ParseDouble(value, &spec->skew.ppm);
    } else if (key == "skew.offset_ms") {
      ok = ParseDouble(value, &spec->skew.offset_ms);
    } else if (key == "schedule") {
      FaultScheduleEntry entry;
      ok = ParseSchedule(value, &entry);
      if (ok) spec->schedule.push_back(entry);
    } else {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": unknown key '" +
                 std::string(key) + "'";
      }
      return false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad value '" +
                 std::string(value) + "' for key '" + std::string(key) + "'";
      }
      return false;
    }
  }
  return true;
}

}  // namespace kwikr::faults
