#include "faults/gilbert_elliott.h"

#include <algorithm>

namespace kwikr::faults {

GilbertElliott::GilbertElliott(Config config, sim::Rng rng)
    : config_(config), rng_(rng) {}

sim::Duration GilbertElliott::DrawDwell() {
  const sim::Duration mean = bad_ ? config_.mean_bad : config_.mean_good;
  const double drawn =
      rng_.Exponential(std::max<double>(static_cast<double>(mean), 1.0));
  return std::max<sim::Duration>(static_cast<sim::Duration>(drawn), 1);
}

double GilbertElliott::LossProb(sim::Time now) {
  if (!started_) {
    started_ = true;
    next_transition_ = now + DrawDwell();
  }
  while (now >= next_transition_) {
    bad_ = !bad_;
    ++transitions_;
    next_transition_ += DrawDwell();
  }
  return bad_ ? config_.loss_bad : config_.loss_good;
}

}  // namespace kwikr::faults
