#pragma once

#include <cstdint>
#include <span>

namespace kwikr::wifi {

/// Operating band. The paper evaluates Ping-Pair on both bands of a
/// dual-band Netgear WNDR3800 (Table 1); the 5 GHz band is modelled with
/// higher PHY rates and a cleaner channel.
enum class Band { k2_4GHz, k5GHz };

/// 802.11n single-stream MCS data rates (long guard interval), bps.
std::span<const std::int64_t> McsRates(Band band);

/// Highest MCS rate for the band.
std::int64_t MaxRate(Band band);

/// Simple distance-driven link model used by the mobility scenario
/// (Figure 4): stepping away from the AP lowers the MCS and raises the
/// per-attempt frame error probability.
struct LinkQuality {
  std::int64_t rate_bps = 0;
  double frame_error_prob = 0.0;
};

/// Maps a distance in metres to (rate, error probability). Monotone:
/// rate non-increasing, error probability non-decreasing in distance.
LinkQuality LinkQualityAtDistance(Band band, double distance_m);

}  // namespace kwikr::wifi
