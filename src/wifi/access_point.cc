#include "wifi/access_point.h"

#include <utility>

#include "wifi/station.h"

namespace kwikr::wifi {

AccessPoint::AccessPoint(Channel& channel, Config config)
    : channel_(channel), config_(config) {
  owner_ = channel_.RegisterOwner(
      Channel::DeliveryHandler::Member<&AccessPoint::OnUplinkFrame>(this));
  const auto params = DefaultEdcaParams();
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    downlink_[ac] = channel_.CreateContender(
        owner_, static_cast<AccessCategory>(ac), params[ac],
        config_.queue_capacity[ac]);
    qdisc_[ac] = MakeQueueDiscipline(channel_, downlink_[ac], config_.qdisc,
                                     config_.queue_capacity[ac]);
  }
  // AQM disciplines need OnTxComplete to trickle the next frame down;
  // DropTail doesn't, and leaving the feedback slot null preserves the
  // seed's exact channel fast path.
  if (config_.qdisc.kind != QdiscKind::kDropTail) BindTxHooks();
}

void AccessPoint::BindTxHooks() {
  if (tx_hooks_bound_) return;
  tx_hooks_bound_ = true;
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    tx_hooks_[ac] = AcTxHook{this, ac};
    channel_.SetTxFeedback(
        downlink_[ac],
        Channel::TxFeedback::Member<&AcTxHook::OnOutcome>(&tx_hooks_[ac]));
  }
}

void AccessPoint::AcTxHook::OnOutcome(const Frame& frame, bool delivered,
                                      int attempts) {
  ap->OnDownlinkTxOutcome(ac, frame, delivered, attempts);
}

void AccessPoint::AttachStation(Station* station) {
  stations_[station->address()] = station;
}

void AccessPoint::DetachStation(Station* station) {
  const auto it = stations_.find(station->address());
  if (it != stations_.end() && it->second == station) {
    stations_.erase(it);
  }
}

void AccessPoint::DeliverFromWan(net::Packet packet) {
  EnqueueDownlink(std::move(packet));
}

void AccessPoint::SetWanForwarder(std::function<void(net::Packet)> forwarder) {
  wan_forwarder_ = std::move(forwarder);
}

void AccessPoint::SetDownlinkClassifier(DownlinkClassifier classifier) {
  downlink_classifier_ = std::move(classifier);
}

void AccessPoint::EnableRateAdaptation(ArfPolicy::Config config) {
  arf_enabled_ = true;
  arf_config_ = config;
  BindTxHooks();
}

void AccessPoint::SetFlightRecorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    qdisc_[ac]->SetFlightRecorder(recorder, static_cast<std::uint8_t>(ac));
  }
  // Retry drops are only visible through TxFeedback; binding it is safe on
  // every discipline (see the header note).
  if (recorder != nullptr) BindTxHooks();
}

void AccessPoint::OnDownlinkTxOutcome(int ac, const Frame& frame,
                                      bool delivered, int attempts) {
  if (arf_enabled_) {
    const auto it = arf_.find(frame.packet.dst);
    if (it != arf_.end()) it->second->OnOutcome(delivered, attempts);
  }
  if (recorder_ != nullptr && !delivered) {
    recorder_->Record(channel_.loop().now(), obs::FlightEventKind::kRetryDrop,
                      static_cast<std::uint8_t>(ac),
                      static_cast<std::uint64_t>(attempts));
  }
  // The head frame left the contender queue: let an AQM discipline top the
  // hardware queue back up (deferred internally; see the re-entrancy
  // contract in queue_discipline.h).
  qdisc_[ac]->OnTxComplete();
}

const ArfPolicy* AccessPoint::ArfFor(net::Address station) const {
  const auto it = arf_.find(station);
  return it == arf_.end() ? nullptr : it->second.get();
}

std::size_t AccessPoint::DownlinkQueueLength(AccessCategory ac) const {
  return channel_.QueueLength(downlink_[Index(ac)]) +
         qdisc_[Index(ac)]->backlog();
}

std::size_t AccessPoint::TotalDownlinkQueueLength() const {
  std::size_t total = 0;
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    total += channel_.QueueLength(downlink_[ac]) + qdisc_[ac]->backlog();
  }
  return total;
}

std::uint64_t AccessPoint::downlink_queue_drops() const {
  std::uint64_t total = 0;
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    total += channel_.QueueDrops(downlink_[ac]) +
             qdisc_[ac]->overflow_drops();
  }
  return total;
}

std::uint64_t AccessPoint::DownlinkQueueDrops(AccessCategory ac) const {
  return channel_.QueueDrops(downlink_[Index(ac)]) +
         qdisc_[Index(ac)]->overflow_drops();
}

std::uint64_t AccessPoint::DownlinkRetryDrops(AccessCategory ac) const {
  return channel_.RetryDrops(downlink_[Index(ac)]);
}

std::uint64_t AccessPoint::DownlinkDelivered(AccessCategory ac) const {
  return channel_.Delivered(downlink_[Index(ac)]);
}

void AccessPoint::OnUplinkFrame(Frame&& frame) {
  net::Packet& packet = frame.packet;
  if (packet.dst == config_.address) {
    // Addressed to the AP itself: answer echo requests (the Ping-Pair and
    // channel-access probes); everything else is dropped.
    if (packet.protocol == net::Protocol::kIcmp &&
        packet.icmp.type == net::IcmpType::kEchoRequest) {
      net::Packet reply = packet;
      reply.src = config_.address;
      reply.dst = packet.src;
      reply.icmp.type = net::IcmpType::kEchoReply;
      // Per the ICMP standard the reply echoes the request's TOS byte
      // (paper Section 5.2) — `reply.tos` is already the request's.
      reply.mac = net::MacInfo{};
      ++echo_replies_sent_;
      EnqueueDownlink(std::move(reply));
    }
    return;
  }
  if (stations_.contains(packet.dst)) {
    // Station-to-station traffic relays through the AP's downlink.
    EnqueueDownlink(std::move(packet));
    return;
  }
  if (wan_forwarder_) {
    wan_forwarder_(std::move(packet));
  } else {
    ++unroutable_drops_;
    if (recorder_ != nullptr) {
      recorder_->Record(channel_.loop().now(),
                        obs::FlightEventKind::kUnroutableDrop, 0,
                        unroutable_drops_, "no_wan_forwarder");
    }
  }
}

void AccessPoint::EnqueueDownlink(net::Packet&& packet) {
  const auto it = stations_.find(packet.dst);
  if (it == stations_.end()) {
    ++unroutable_drops_;
    if (recorder_ != nullptr) {
      recorder_->Record(channel_.loop().now(),
                        obs::FlightEventKind::kUnroutableDrop, 0,
                        unroutable_drops_, "unknown_station");
    }
    return;
  }
  Station* station = it->second;
  AccessCategory ac = config_.wmm_enabled ? TosToAccessCategory(packet.tos)
                                          : AccessCategory::kBestEffort;
  if (downlink_classifier_) ac = downlink_classifier_(packet, ac);
  std::int64_t rate_bps;
  if (arf_enabled_) {
    auto& policy = arf_[packet.dst];
    if (policy == nullptr) {
      const auto rates = McsRates(config_.band);
      policy = std::make_unique<ArfPolicy>(rates, rates.size() / 2,
                                           arf_config_);
    }
    rate_bps = policy->rate_bps();
  } else {
    rate_bps = station->rate_bps();
  }
  // Prvalue Frame: elided into Enqueue's parameter and moved straight into
  // the ring cell — one Frame copy end to end, not three. DropTail forwards
  // this to the contender unchanged; AQM disciplines stamp and buffer it.
  qdisc_[Index(ac)]->Enqueue(
      Frame{std::move(packet), station->owner(), rate_bps});
}

}  // namespace kwikr::wifi
