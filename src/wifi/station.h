#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "net/packet.h"
#include "wifi/channel.h"
#include "wifi/edca.h"
#include "wifi/rate_adaptation.h"
#include "wifi/rate_table.h"

namespace kwikr::wifi {

class AccessPoint;

/// A Wi-Fi client station. Uplink transmissions contend per access category
/// (chosen from the packet TOS); downlink deliveries fan out to registered
/// receivers with MAC metadata (sequence number, retry flag, PHY rate)
/// stamped in `packet.mac` — the information the paper's Linux tool reads
/// from the capture interface.
class Station {
 public:
  struct Config {
    net::Address address = 100;
    std::int64_t rate_bps = 65'000'000;  ///< current MCS rate, both ways.
    double frame_error_prob = 0.0;       ///< per-attempt wireless loss.
  };

  /// Receiver callback: packet plus its arrival time.
  using Receiver = std::function<void(const net::Packet&, sim::Time)>;

  Station(Channel& channel, AccessPoint& ap, Config config);

  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  /// Sends a packet uplink through the AC matching its TOS byte.
  void Send(net::Packet packet);

  /// Registers a downlink receiver (multiple allowed; all see every packet).
  void AddReceiver(Receiver receiver);

  /// Adjusts the link (mobility): new MCS rate and frame error probability.
  void SetLinkQuality(LinkQuality quality);

  /// Enables ARF rate adaptation on the uplink: the station picks its MCS
  /// from frame outcomes instead of a fixed configured rate. Combine with
  /// SetDistance + Testbed::InstallDistanceErrorModel so the error surface
  /// actually depends on the chosen rate.
  void EnableRateAdaptation(Band band, ArfPolicy::Config config = {});

  /// Sets the distance to the AP for the rate-dependent error model.
  void SetDistance(double metres) { distance_m_ = metres; }
  [[nodiscard]] double distance_m() const { return distance_m_; }
  [[nodiscard]] const ArfPolicy* arf() const { return arf_.get(); }

  /// Re-associates with a different AP (a Wi-Fi handoff). Pending downlink
  /// frames at the old AP are lost, as in a real roam; subsequent uplink
  /// traffic goes through the new BSS. `quality` is the link to the new AP.
  void Roam(AccessPoint& new_ap, LinkQuality quality);

  /// Called with the new gateway address after every Roam.
  using RoamCallback = std::function<void(net::Address new_gateway)>;
  void AddRoamCallback(RoamCallback callback);

  /// Address of the currently associated AP (the probing gateway).
  [[nodiscard]] net::Address gateway() const;

  /// Operating band of the currently associated AP.
  [[nodiscard]] Band band() const;

  [[nodiscard]] net::Address address() const { return config_.address; }
  [[nodiscard]] OwnerId owner() const { return owner_; }
  [[nodiscard]] std::int64_t rate_bps() const { return config_.rate_bps; }
  [[nodiscard]] double frame_error_prob() const {
    return config_.frame_error_prob;
  }
  [[nodiscard]] std::uint64_t uplink_queue_drops() const;

 private:
  void OnDownlinkFrame(Frame&& frame);
  void OnUplinkTxOutcome(const Frame& frame, bool delivered, int attempts);

  Channel& channel_;
  AccessPoint* ap_;
  Config config_;
  OwnerId owner_;
  std::array<ContenderId, kNumAccessCategories> uplink_;
  std::vector<Receiver> receivers_;
  std::vector<RoamCallback> roam_callbacks_;
  std::unique_ptr<ArfPolicy> arf_;
  double distance_m_ = 0.0;
};

}  // namespace kwikr::wifi
