#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/inline_task.h"
#include "sim/frame_ring.h"
#include "sim/function_ref.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "wifi/edca.h"

namespace kwikr::wifi {

/// Identifier of a MAC entity (an AP or a station). Every contender belongs
/// to one owner; an owner's access categories resolve internal (virtual)
/// collisions by priority as 802.11e specifies.
using OwnerId = std::uint32_t;

/// Opaque handle to a per-(owner, access-category) transmit queue.
using ContenderId = std::uint32_t;

/// A queued MAC frame: an IP packet plus link-layer transmit parameters.
struct Frame {
  net::Packet packet;
  OwnerId dest = 0;               ///< receiving MAC entity.
  std::int64_t phy_rate_bps = 0;  ///< PHY data rate for this frame.
};

// Size guards for the two structs that ride the per-frame fast path. A Frame
// travels (a) by value inside "wifi.deliver" closures, which must stay within
// sim::InlineTask's inline buffer or every delivery allocates, and (b) as a
// sim::FrameRing cell, where growth copies cost sizeof(Frame) each. Growing
// net::Packet grows both. If this fires, either shrink the new field, move
// the payload behind an out-of-band side table, or consciously raise
// InlineTask::kInlineCapacity (and re-run bench/micro_channel to see what the
// extra bytes cost per frame hop).
static_assert(sizeof(Frame) + 3 * sizeof(void*) <=
                  sim::InlineTask::kInlineCapacity,
              "wifi::Frame grew past the budget for a [this, dest, frame] "
              "delivery closure in sim::InlineTask's inline storage — frame "
              "delivery would silently start heap-allocating.");
static_assert(std::is_trivially_copyable_v<Frame>,
              "wifi::Frame must stay trivially copyable: FrameRing growth "
              "and InlineTask dispatch both assume memcpy-grade moves.");

/// Pluggable per-attempt frame-error model (wireless noise, not collisions).
/// Returns the probability in [0,1] that a single transmission attempt from
/// `tx` to `rx` is corrupted. Used by the mobility scenario of Figure 4.
///
/// Like every Channel hook this is a non-owning kwikr::FunctionRef: the
/// callable behind it must outlive the channel's use of it (bind a member
/// function with FunctionRef::Member, or keep the lambda in a named owner —
/// see scenario::Testbed and faults::FaultInjector for the two idioms).
using FrameErrorModel =
    FunctionRef<double(OwnerId tx, OwnerId rx, const Frame& frame)>;

/// Shared 802.11 medium implementing EDCA contention.
///
/// All BSSs attached to the same Channel contend with each other — this is
/// how the paper's co-channel interference setting (two APs on one channel,
/// Figure 5) is modelled.
///
/// Mechanics (event-driven, no per-slot events):
///  * Every contender owns a FIFO of Frames and EDCA parameters.
///  * When the medium goes idle, each backlogged contender's next possible
///    transmit start is `ref + AIFS + backoff_slots x slot`; the earliest
///    wins. Exact ties transmit simultaneously and collide (unless they share
///    an owner, in which case the higher access category wins the internal
///    collision and the lower one backs off, per 802.11e).
///  * Losers freeze their remaining backoff (decremented by the idle slots
///    that elapsed) and resume after the next idle transition, as in DCF.
///  * Failed attempts (collision or frame error) double the contention
///    window, set the 802.11 retry bit, and drop the frame after
///    `retry_limit` attempts.
///
/// Fast path: hooks are devirtualized FunctionRefs (one null check + one
/// indirect call, no allocation), per-contender queues are sim::FrameRing
/// (index arithmetic, no deque segment churn), AIFS is cached per contender,
/// and the backlog uses generation-stamped lazy removal so leaving contention
/// is O(1) instead of an O(n) erase. See DESIGN.md §11.
class Channel {
 public:
  /// Delivery callback: frame arrived intact at its destination. MacInfo in
  /// `frame.packet.mac` is filled in (sequence number, retry, rate, AC).
  /// The frame is handed over by rvalue reference so the 184-byte Frame is
  /// not re-copied at every hand-off layer (hook thunk, member function) —
  /// a receiver that wants a copy takes the parameter by value.
  using DeliveryHandler = FunctionRef<void(Frame&& frame)>;
  /// A frame was abandoned after retry_limit failed attempts.
  using DropHandler = FunctionRef<void(const Frame& frame)>;

  Channel(sim::EventLoop& loop, sim::Rng rng, PhyParams phy = PhyParams{});

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a MAC entity and its delivery handler; returns its OwnerId.
  /// The handler is non-owning — see FrameErrorModel's lifetime note.
  OwnerId RegisterOwner(DeliveryHandler on_delivery);

  /// Creates a transmit queue for (owner, ac) with the given EDCA parameters
  /// and queue capacity (frames). Drop-tail on overflow.
  ContenderId CreateContender(OwnerId owner, AccessCategory ac,
                              EdcaParams params,
                              std::size_t queue_capacity = 512);

  /// Enqueues a frame for transmission; returns false (and counts a drop) if
  /// the queue is full.
  bool Enqueue(ContenderId id, Frame frame);

  /// Installs the wireless frame-error model (default: no errors).
  void SetFrameErrorModel(FrameErrorModel model);

  /// Fault-injection verdict for one successfully received frame, consulted
  /// before its delivery is scheduled (see faults::FaultInjector). `delay`
  /// postpones this frame's delivery past later frames (reordering);
  /// `duplicates` delivers extra copies; `drop` swallows the frame after the
  /// MAC already counted it delivered (a vanishing-frame pathology).
  struct DeliveryFault {
    bool drop = false;
    int duplicates = 0;
    sim::Duration delay = 0;
  };
  using DeliveryFaultHook =
      FunctionRef<DeliveryFault(const Frame& frame, sim::Time at)>;
  /// Installs the delivery fault hook (default: none). The hook sees every
  /// frame that survived MAC contention, across all owners of this channel.
  void SetDeliveryFaultHook(DeliveryFaultHook hook);

  /// Optional handler invoked when a frame exhausts its retries.
  void SetDropHandler(DropHandler handler);

  /// Per-frame transmit feedback for one contender: `delivered` plus the
  /// link-layer attempts used. This is what rate-adaptation algorithms
  /// (wifi::ArfPolicy) consume.
  using TxFeedback =
      FunctionRef<void(const Frame& frame, bool delivered, int attempts)>;
  void SetTxFeedback(ContenderId id, TxFeedback feedback);

  /// Queue length of a contender (frames waiting, excluding in-flight).
  [[nodiscard]] std::size_t QueueLength(ContenderId id) const;
  /// Total frames ever enqueued minus delivered/dropped for this contender.
  [[nodiscard]] std::uint64_t Delivered(ContenderId id) const;
  [[nodiscard]] std::uint64_t QueueDrops(ContenderId id) const;
  [[nodiscard]] std::uint64_t RetryDrops(ContenderId id) const;

  /// Fraction of simulated time the medium was busy since construction.
  [[nodiscard]] double BusyFraction() const;

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }

  /// Total collisions (simultaneous-start events) observed.
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// Frames sent as TXOP burst continuations (without re-contending).
  [[nodiscard]] std::uint64_t txop_continuations() const {
    return txop_continuations_;
  }

 private:
  struct Contender {
    OwnerId owner = 0;
    AccessCategory ac = AccessCategory::kBestEffort;
    EdcaParams params;
    sim::Duration aifs = 0;  ///< cached phy_.Aifs(params); params are fixed.
    sim::FrameRing<Frame> queue;
    int backoff_slots = -1;  ///< -1 = needs a fresh draw.
    int cw = 0;              ///< current contention window.
    int attempts = 0;        ///< attempts for the head frame.
    sim::Time wait_ref = 0;  ///< when AIFS+backoff counting (re)started.
    bool counting = false;   ///< wait_ref valid for the current idle period.
    bool in_backlog = false;       ///< live member of backlogged_?
    std::uint32_t backlog_stamp = 0;  ///< generation of the live entry.
    sim::Duration txop_used = 0;  ///< airtime consumed in the current TXOP.
    std::uint64_t delivered = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t retry_drops = 0;
    TxFeedback tx_feedback;
  };

  struct Owner {
    DeliveryHandler on_delivery;
    std::uint16_t next_sequence = 0;
  };

  /// Backlog entry: a contender plus the generation it joined with. An entry
  /// is live iff the contender's (in_backlog, backlog_stamp) still match —
  /// leaving contention just flips the bool (O(1)); dead entries are skipped
  /// and compacted in place during the sweeps that walk the backlog anyway.
  /// The stamp disambiguates "left and rejoined before the next sweep":
  /// the stale earlier entry must not alias the fresh one, or the contender
  /// would be visited twice (and the rng draw order would shift).
  struct BacklogEntry {
    ContenderId id;
    std::uint32_t stamp;
  };

  [[nodiscard]] bool MediumIdle() const;
  [[nodiscard]] sim::Time CandidateStart(const Contender& c) const;
  void EnsureBackoffDrawn(Contender& c);
  void JoinBacklog(ContenderId id, Contender& c);
  void LeaveBacklog(Contender& c);
  void BeginIdlePeriod();
  void ScheduleArbitration();
  /// Arms (or re-arms) the arbitration event for candidate time `earliest`
  /// (max() means "no candidate": any pending arbitration is cancelled).
  void ArmArbitration(sim::Time earliest);
  /// Cancels the pending arbitration event, if any.
  void CancelArbitration();
  void StartTransmissions(sim::Time start);
  void FinishTransmissions(sim::Time end);
  void HandleFailure(Contender& c);
  void HandleSuccess(ContenderId id, sim::Time end);

  /// Walks the live backlog entries in insertion order, compacting dead ones
  /// out as it goes. `fn(id, contender)` must not append to backlogged_.
  template <typename Fn>
  void ForEachBacklogged(Fn&& fn) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < backlogged_.size(); ++i) {
      const BacklogEntry entry = backlogged_[i];
      Contender& c = contenders_[entry.id];
      if (!c.in_backlog || c.backlog_stamp != entry.stamp) continue;
      backlogged_[out++] = entry;
      fn(entry.id, c);
    }
    backlogged_.resize(out);
  }

  sim::EventLoop& loop_;
  sim::Rng rng_;
  PhyParams phy_;
  FrameErrorModel error_model_;
  DeliveryFaultHook delivery_fault_hook_;
  DropHandler drop_handler_;

  std::vector<Owner> owners_;
  std::vector<Contender> contenders_;
  std::vector<BacklogEntry> backlogged_;
  std::size_t backlog_live_ = 0;  ///< live entries in backlogged_.

  bool busy_ = false;
  sim::Time busy_until_ = 0;
  sim::EventId arbitration_event_ = 0;
  sim::Time scheduled_start_ = -1;

  /// The single transmission set currently on the air (the medium is a
  /// mutex: once busy_, no further arbitration fires until tx_done). Kept as
  /// a member so the tx_done closure captures nothing but `this` and the
  /// end time — the per-transmission vector allocations this replaces were
  /// a top line in the fig10 profile.
  std::vector<ContenderId> in_flight_;
  // Scratch for StartTransmissions (not re-entrant; event-driven only).
  std::vector<ContenderId> winners_scratch_;
  std::vector<ContenderId> losers_scratch_;

  sim::Duration busy_accum_ = 0;
  sim::Time busy_started_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t txop_continuations_ = 0;
};

}  // namespace kwikr::wifi
