#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/inline_task.h"
#include "sim/frame_ring.h"
#include "sim/function_ref.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "wifi/airtime_cache.h"
#include "wifi/edca.h"
#include "wifi/edca_core.h"

namespace kwikr::wifi {

/// Identifier of a MAC entity (an AP or a station). Every contender belongs
/// to one owner; an owner's access categories resolve internal (virtual)
/// collisions by priority as 802.11e specifies.
using OwnerId = std::uint32_t;

/// A queued MAC frame: an IP packet plus link-layer transmit parameters.
struct Frame {
  net::Packet packet;
  OwnerId dest = 0;               ///< receiving MAC entity.
  std::int64_t phy_rate_bps = 0;  ///< PHY data rate for this frame.
};

// Size guards for the two structs that ride the per-frame fast path. A Frame
// travels (a) by value inside "wifi.deliver" closures, which must stay within
// sim::InlineTask's inline buffer or every delivery allocates, and (b) as a
// sim::FrameRing cell, where growth copies cost sizeof(Frame) each. Growing
// net::Packet grows both. If this fires, either shrink the new field, move
// the payload behind an out-of-band side table, or consciously raise
// InlineTask::kInlineCapacity (and re-run bench/micro_channel to see what the
// extra bytes cost per frame hop).
static_assert(sizeof(Frame) + 3 * sizeof(void*) <=
                  sim::InlineTask::kInlineCapacity,
              "wifi::Frame grew past the budget for a [this, dest, frame] "
              "delivery closure in sim::InlineTask's inline storage — frame "
              "delivery would silently start heap-allocating.");
static_assert(std::is_trivially_copyable_v<Frame>,
              "wifi::Frame must stay trivially copyable: FrameRing growth "
              "and InlineTask dispatch both assume memcpy-grade moves.");

/// Pluggable per-attempt frame-error model (wireless noise, not collisions).
/// Returns the probability in [0,1] that a single transmission attempt from
/// `tx` to `rx` is corrupted. Used by the mobility scenario of Figure 4.
///
/// Like every Channel hook this is a non-owning kwikr::FunctionRef: the
/// callable behind it must outlive the channel's use of it (bind a member
/// function with FunctionRef::Member, or keep the lambda in a named owner —
/// see scenario::Testbed and faults::FaultInjector for the two idioms).
using FrameErrorModel =
    FunctionRef<double(OwnerId tx, OwnerId rx, const Frame& frame)>;

/// Shared 802.11 medium implementing EDCA contention.
///
/// All BSSs attached to the same Channel contend with each other — this is
/// how the paper's co-channel interference setting (two APs on one channel,
/// Figure 5) is modelled.
///
/// Mechanics (event-driven, no per-slot events):
///  * Every contender owns a FIFO of Frames and EDCA parameters.
///  * When the medium goes idle, each backlogged contender's next possible
///    transmit start is `ref + AIFS + backoff_slots x slot`; the earliest
///    wins. Exact ties transmit simultaneously and collide (unless they share
///    an owner, in which case the higher access category wins the internal
///    collision and the lower one backs off, per 802.11e).
///  * Losers freeze their remaining backoff (decremented by the idle slots
///    that elapsed) and resume after the next idle transition, as in DCF.
///  * Failed attempts (collision or frame error) double the contention
///    window, set the 802.11 retry bit, and drop the frame after
///    `retry_limit` attempts.
///
/// Fast path: hooks are devirtualized FunctionRefs (one null check + one
/// indirect call, no allocation), per-contender queues are sim::FrameRing
/// (index arithmetic, no deque segment churn), and the contention math —
/// countdown bases, backoff counters, the CW ladder — lives in wifi::EdcaCore
/// as struct-of-arrays columns swept in batched, largely branchless passes
/// (vectorized with SSE2/NEON kernels where the timing permits — see
/// wifi/edca_simd.h) with generation-stamped lazy backlog removal. Per-frame
/// airtime goes through a small shared (rate, size) -> duration table
/// (wifi::AirtimeCache), so the PHY airtime division runs once per frame
/// SHAPE per run, not per contender transition. TXOP bursts ride ONE
/// rearmable finish event (sim::EventLoop::RearmCurrentAt) and deliver each
/// frame's owner hook inline at its exact finish tick instead of scheduling
/// a per-frame delivery event. See DESIGN.md §11, §14 and §16.
class Channel {
 public:
  /// Delivery callback: frame arrived intact at its destination. MacInfo in
  /// `frame.packet.mac` is filled in (sequence number, retry, rate, AC).
  /// The frame is handed over by rvalue reference so the 184-byte Frame is
  /// not re-copied at every hand-off layer (hook thunk, member function) —
  /// a receiver that wants a copy takes the parameter by value.
  using DeliveryHandler = FunctionRef<void(Frame&& frame)>;
  /// A frame was abandoned after retry_limit failed attempts.
  using DropHandler = FunctionRef<void(const Frame& frame)>;

  Channel(sim::EventLoop& loop, sim::Rng rng, PhyParams phy = PhyParams{});

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a MAC entity and its delivery handler; returns its OwnerId.
  /// The handler is non-owning — see FrameErrorModel's lifetime note.
  OwnerId RegisterOwner(DeliveryHandler on_delivery);

  /// Creates a transmit queue for (owner, ac) with the given EDCA parameters
  /// and queue capacity (frames). Drop-tail on overflow.
  ContenderId CreateContender(OwnerId owner, AccessCategory ac,
                              EdcaParams params,
                              std::size_t queue_capacity = 512);

  /// Enqueues a frame for transmission; returns false (and counts a drop) if
  /// the queue is full.
  bool Enqueue(ContenderId id, Frame frame);

  /// Installs the wireless frame-error model (default: no errors).
  void SetFrameErrorModel(FrameErrorModel model);

  /// Fault-injection verdict for one successfully received frame, consulted
  /// before its delivery is scheduled (see faults::FaultInjector). `delay`
  /// postpones this frame's delivery past later frames (reordering);
  /// `duplicates` delivers extra copies; `drop` swallows the frame after the
  /// MAC already counted it delivered (a vanishing-frame pathology).
  struct DeliveryFault {
    bool drop = false;
    int duplicates = 0;
    sim::Duration delay = 0;
  };
  using DeliveryFaultHook =
      FunctionRef<DeliveryFault(const Frame& frame, sim::Time at)>;
  /// Installs the delivery fault hook (default: none). The hook sees every
  /// frame that survived MAC contention, across all owners of this channel.
  void SetDeliveryFaultHook(DeliveryFaultHook hook);

  /// Optional handler invoked when a frame exhausts its retries.
  void SetDropHandler(DropHandler handler);

  /// Per-frame transmit feedback for one contender: `delivered` plus the
  /// link-layer attempts used. This is what rate-adaptation algorithms
  /// (wifi::ArfPolicy) consume.
  using TxFeedback =
      FunctionRef<void(const Frame& frame, bool delivered, int attempts)>;
  void SetTxFeedback(ContenderId id, TxFeedback feedback);

  /// Queue length of a contender (frames waiting, excluding in-flight).
  [[nodiscard]] std::size_t QueueLength(ContenderId id) const;
  /// Total frames ever enqueued minus delivered/dropped for this contender.
  [[nodiscard]] std::uint64_t Delivered(ContenderId id) const;
  [[nodiscard]] std::uint64_t QueueDrops(ContenderId id) const;
  [[nodiscard]] std::uint64_t RetryDrops(ContenderId id) const;

  /// Fraction of simulated time the medium was busy since construction.
  [[nodiscard]] double BusyFraction() const;

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }

  /// Total collisions (simultaneous-start events) observed.
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// Frames sent as TXOP burst continuations (without re-contending).
  [[nodiscard]] std::uint64_t txop_continuations() const {
    return txop_continuations_;
  }

  /// The shared airtime shape cache (introspection: hit/miss counters feed
  /// the bench --breakdown record and the frame_path tests).
  [[nodiscard]] const AirtimeCache& airtime_cache() const {
    return airtime_cache_;
  }

  /// Per-stage cycle attribution for bench/micro_channel --breakdown.
  /// Detached (nullptr, the default) the frame cycle pays one predictable
  /// null-check branch per instrumented stage and no clock reads — the same
  /// contract as the flight recorder (DESIGN.md §15).
  struct StageProfile {
    std::uint64_t arbitration_cycles = 0;  ///< EdcaCore sweeps + winner work.
    std::uint64_t airtime_cycles = 0;      ///< airtime cache lookups.
    std::uint64_t delivery_cycles = 0;     ///< owner delivery hooks.
    std::uint64_t arbitration_calls = 0;
    std::uint64_t airtime_calls = 0;
    std::uint64_t delivery_calls = 0;
  };
  void SetStageProfile(StageProfile* profile) { stage_profile_ = profile; }

  /// Burst delivery batching: when on (the default), a delivered frame's
  /// owner hook runs inline at the tail of the finishing tx event — exact
  /// same tick, exact same hook order, one event-loop dispatch per burst
  /// frame instead of two — and TXOP continuations rearm the finish event in
  /// place instead of scheduling a fresh one. Off restores the pre-batching
  /// scheduled-delivery path (kept as the differential reference; the golden
  /// corpus must be byte-identical either way). Per-instance; flip only at
  /// setup.
  void SetDeliveryBatching(bool enabled) { delivery_batching_ = enabled; }
  [[nodiscard]] bool delivery_batching() const { return delivery_batching_; }
  /// Process-wide default for channels constructed afterwards (test-only:
  /// lets the golden on/off differential reach channels built deep inside
  /// scenario runners). Not thread-safe; set it before spawning workers.
  static void SetDefaultDeliveryBatchingForTest(bool enabled);

  /// Rebuilds the delivery staging ring with `capacity` slots (test-only:
  /// forces the overflow fallback path; capacity 0 rejects every push).
  void SetDeliverStageCapacityForTest(std::size_t capacity);

 private:
  struct Contender {
    OwnerId owner = 0;
    AccessCategory ac = AccessCategory::kBestEffort;
    EdcaParams params;
    sim::FrameRing<Frame> queue;
    int attempts = 0;        ///< attempts for the head frame.
    sim::Duration txop_used = 0;  ///< airtime consumed in the current TXOP.
    std::uint64_t delivered = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t retry_drops = 0;
    TxFeedback tx_feedback;
  };

  struct Owner {
    DeliveryHandler on_delivery;
    std::uint16_t next_sequence = 0;
  };

  [[nodiscard]] bool MediumIdle() const;
  /// Airtime of `f` through the shared shape cache (profiled when a
  /// StageProfile is attached).
  [[nodiscard]] sim::Duration FrameAirtimeCached(const Frame& f);
  /// Invokes every staged owner hook (batching mode), counting each as a
  /// logical dispatch so EventLoop::executed() — a golden-corpus observable —
  /// matches the scheduled-delivery path exactly.
  void DrainStagedDeliveries();
  void BeginIdlePeriod();
  void ScheduleArbitration();
  /// Arms (or re-arms) the arbitration event for candidate time `earliest`
  /// (EdcaCore::kNoCandidate means "no candidate": any pending arbitration
  /// is cancelled).
  void ArmArbitration(sim::Time earliest);
  /// Cancels the pending arbitration event, if any.
  void CancelArbitration();
  void StartTransmissions(sim::Time start);
  void FinishTransmissions(sim::Time end);
  void HandleFailure(ContenderId id);
  void HandleSuccess(ContenderId id, sim::Time end);

  sim::EventLoop& loop_;
  sim::Rng rng_;
  PhyParams phy_;
  EdcaCore edca_;  ///< the batched SoA contention machine.
  /// Shared (rate, size) -> airtime table; points at phy_, so it must be
  /// declared after it.
  AirtimeCache airtime_cache_;
  FrameErrorModel error_model_;
  DeliveryFaultHook delivery_fault_hook_;
  DropHandler drop_handler_;

  std::vector<Owner> owners_;
  std::vector<Contender> contenders_;

  bool busy_ = false;
  sim::Time busy_until_ = 0;
  sim::EventId arbitration_event_ = 0;
  sim::Time scheduled_start_ = -1;

  /// The single transmission set currently on the air (the medium is a
  /// mutex: once busy_, no further arbitration fires until tx_done). Kept as
  /// a member so the tx_done closure captures nothing but `this` and the
  /// end time — the per-transmission vector allocations this replaces were
  /// a top line in the fig10 profile.
  std::vector<ContenderId> in_flight_;
  /// Staging ring for same-tick deliveries: the common (unfaulted,
  /// undelayed) delivered frame is moved here and its "wifi.deliver" event
  /// captures only [this, dest] — 16 bytes instead of a 200-byte
  /// Frame-by-value closure, which removes a 184-byte copy plus the fat
  /// InlineTask slot traffic from every delivery. Safe because staged
  /// deliveries are popped FIFO in exactly their scheduling order: same-tick
  /// events dispatch in FIFO order, every staged event drains before the
  /// clock can advance, and nothing else touches the ring mid-invoke.
  /// Delayed / duplicated deliveries (fault hook) and ring overflow fall
  /// back to the by-value closure, which tolerates any ordering.
  sim::FrameRing<Frame> deliver_stage_;
  // Scratch for StartTransmissions (not re-entrant; event-driven only).
  std::vector<ContenderId> winners_scratch_;
  std::vector<ContenderId> losers_scratch_;

  sim::Duration busy_accum_ = 0;
  sim::Time busy_started_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t txop_continuations_ = 0;

  bool delivery_batching_ = true;  ///< see SetDeliveryBatching.
  StageProfile* stage_profile_ = nullptr;
};

}  // namespace kwikr::wifi
