#include "wifi/rate_adaptation.h"

#include <algorithm>
#include <cmath>

namespace kwikr::wifi {

double ErrorProbForRate(Band band, double distance_m, std::int64_t rate_bps) {
  const auto rates = McsRates(band);
  // Index of the attempted rate within the table.
  std::size_t attempted = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] == rate_bps) {
      attempted = i;
      break;
    }
    if (rates[i] > rate_bps) break;
    attempted = i;
  }
  // Highest sustainable MCS at this distance (same link model as
  // LinkQualityAtDistance).
  const double d = std::max(distance_m, 1.0);
  const double exponent = band == Band::k2_4GHz ? 3.0 : 3.5;
  const double loss_db = 10.0 * exponent * std::log10(d / 5.0);
  int sustainable = static_cast<int>(rates.size()) - 1;
  if (loss_db > 0.0) sustainable -= static_cast<int>(loss_db / 6.0);
  sustainable = std::clamp(sustainable, 0, static_cast<int>(rates.size()) - 1);

  const int excess = static_cast<int>(attempted) - sustainable;
  if (excess <= 0) {
    // At or below the sustainable rate: residual noise only.
    return excess == 0 && loss_db > 0.0 ? 0.02 : 0.002;
  }
  // Each MCS above the link budget multiplies the error sharply.
  return std::min(0.95, 0.05 * std::pow(4.0, excess));
}

ArfPolicy::ArfPolicy(std::span<const std::int64_t> rates,
                     std::size_t initial_index)
    : ArfPolicy(rates, initial_index, Config{}) {}

ArfPolicy::ArfPolicy(std::span<const std::int64_t> rates,
                     std::size_t initial_index, Config config)
    : rates_(rates),
      index_(std::min(initial_index, rates.size() - 1)),
      config_(config) {}

void ArfPolicy::StepDown() {
  if (index_ > 0) {
    --index_;
    ++steps_down_;
  }
  failures_ = 0;
  successes_ = 0;
  probing_ = false;
}

void ArfPolicy::OnOutcome(bool delivered, int attempts) {
  const bool clean = delivered && attempts <= 1;
  if (clean) {
    probing_ = false;
    failures_ = 0;
    if (++successes_ >= config_.up_after && index_ + 1 < rates_.size()) {
      ++index_;
      ++steps_up_;
      successes_ = 0;
      probing_ = true;  // next failure falls straight back.
    }
    return;
  }
  successes_ = 0;
  if (probing_) {
    // The probe at the higher rate failed: immediate fallback.
    StepDown();
    return;
  }
  if (++failures_ >= config_.down_after) StepDown();
}

}  // namespace kwikr::wifi
