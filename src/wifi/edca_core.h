#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/fastdiv.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace kwikr::wifi {

/// Opaque handle to a per-(owner, access-category) transmit queue.
using ContenderId = std::uint32_t;

/// The EDCA contention machine, batched: per-contender countdown state lives
/// in struct-of-arrays columns and every arbitration question ("who is
/// earliest", "who wins at t", "freeze the rest") is answered by a sweep
/// over the backlog instead of per-contender recomputation.
///
/// Layout (hot columns, indexed by ContenderId):
///   base_[id]     countdown origin: wait_ref + AIFS, set when counting
///                 (re)starts. A candidate start is base + backoff * slot.
///   backoff_[id]  remaining backoff slots; -1 = needs a fresh draw.
///   cw_[id]       current contention window (the CW ladder).
///   counting_[id] 1 while the countdown references the current idle period.
/// Static parameters (aifs, cw_min, cw_max) are separate cold columns; the
/// frame queues, retry counters and hooks stay with wifi::Channel — only the
/// contention math lives here, which is also what lets the randomized
/// differential test (tests/frame_path_test.cc) drive this machine against a
/// retained scalar reference without a Channel in the loop.
///
/// Sweeps are two-pass: a scalar pass walks the backlog entries in insertion
/// order, compacting dead ones and drawing missing backoffs (the RNG draw
/// ORDER is part of the repo's golden-corpus contract — it must match the
/// old per-contender code draw for draw), then a branchless pass computes
/// `base + backoff * slot` across the compacted ids at once and reduces or
/// freezes with conditional moves. Freezing divides the consumed idle time
/// by the slot length with a sim::FastDiv multiply — the ~25-cycle hardware
/// `div` this replaces ran once per counting non-winner per arbitration and
/// was the largest single cost of the old frame path. See DESIGN.md §14.
class EdcaCore {
 public:
  /// "No candidate" sentinel returned by the candidate sweeps.
  static constexpr sim::Time kNoCandidate =
      std::numeric_limits<sim::Time>::max();

  explicit EdcaCore(sim::Duration slot);

  /// Whether the vector (SSE2/NEON) column sweeps are in use. Defaults to
  /// "compiled in and the slot timing satisfies the kernels' value-range
  /// contract"; the KWIKR_EDCA_NO_SIMD environment variable (any value)
  /// forces the scalar branchless path — that is the portable-fallback CI
  /// leg. The two paths are state-identical by construction and pinned
  /// against each other by the EdcaCoreDifferential test.
  void SetSimdEnabled(bool enabled);
  [[nodiscard]] bool simd_enabled() const { return simd_enabled_; }

  /// Registers a contender with its (fixed) EDCA timing; returns its id.
  ContenderId Add(sim::Duration aifs, int cw_min, int cw_max);

  [[nodiscard]] std::size_t size() const { return backoff_.size(); }
  /// Live members of the backlog (contenders with pending traffic).
  [[nodiscard]] std::size_t backlog_live() const { return live_; }

  // Introspection (tests and the differential harness).
  [[nodiscard]] int cw(ContenderId id) const { return cw_[id]; }
  [[nodiscard]] int backoff(ContenderId id) const { return backoff_[id]; }
  [[nodiscard]] bool counting(ContenderId id) const {
    return counting_[id] != 0;
  }
  [[nodiscard]] bool in_backlog(ContenderId id) const {
    return in_backlog_[id] != 0;
  }

  /// The contender's queue went empty -> non-empty: (re)join contention with
  /// a fresh window and an undrawn backoff. With the medium idle the
  /// countdown starts at `now`; otherwise it waits for the next BeginIdle.
  void Join(ContenderId id, sim::Time now, bool medium_idle);

  /// The contender's queue drained: leave contention. O(1) — the backlog
  /// entry goes stale and is compacted out by the next sweep.
  void Leave(ContenderId id);

  /// Idle transition: restart every backlogged countdown at `now`, draw
  /// missing backoffs (in backlog order), and return the earliest candidate
  /// start time (kNoCandidate when the backlog is empty).
  sim::Time BeginIdle(sim::Time now, sim::Rng& rng);

  /// Re-evaluates candidates mid-idle (a contender joined or left): draws
  /// missing backoffs for counting contenders and returns their earliest
  /// candidate (kNoCandidate when none are counting).
  sim::Time EarliestCandidate(sim::Rng& rng);

  /// Arbitration at `start`: every counting contender whose candidate time
  /// equals `start` is appended to `winners` (in backlog order) and keeps
  /// counting; every other counting contender freezes — its backoff is
  /// decremented by the idle slots consumed before `start` and its countdown
  /// stops until the next BeginIdle.
  void Arbitrate(sim::Time start, std::vector<ContenderId>& winners);

  /// Successful transmission: the window resets and the post-transmission
  /// backoff will be drawn fresh.
  void OnTxSuccess(ContenderId id);

  /// Failed attempt that will be retried: the window doubles (CW ladder) and
  /// the countdown stops until the next idle transition.
  void OnTxFailure(ContenderId id);

  /// Frame dropped at the retry limit: the window resets for the next frame.
  void OnRetryDrop(ContenderId id);

 private:
  /// Backlog entry: a contender plus the generation it joined with. An entry
  /// is live iff (in_backlog_, stamp_) still match — leaving contention just
  /// flips the flag (O(1)); dead entries are skipped and compacted in place
  /// by the sweeps that walk the backlog anyway. The stamp disambiguates
  /// "left and rejoined before the next sweep": the stale earlier entry must
  /// not alias the fresh one, or the contender would be visited twice (and
  /// the RNG draw order would shift).
  struct BacklogEntry {
    ContenderId id;
    std::uint32_t stamp;
  };

  void DrawIfNeeded(ContenderId id, sim::Rng& rng) {
    if (backoff_[id] < 0) {
      backoff_[id] = static_cast<std::int32_t>(rng.UniformInt(0, cw_[id]));
    }
  }

  /// Scalar pass shared by every sweep: walks the backlog entries in
  /// insertion order, compacting dead ones out in place, and calls `fn(id)`
  /// for each live contender. Returns the live count; entries [0, count)
  /// are then valid input for the branchless column passes. `fn` must not
  /// append to backlogged_.
  template <typename Fn>
  std::size_t CompactBacklog(Fn&& fn) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < backlogged_.size(); ++i) {
      const BacklogEntry entry = backlogged_[i];
      if (in_backlog_[entry.id] == 0 || stamp_[entry.id] != entry.stamp) {
        continue;
      }
      backlogged_[out++] = entry;
      fn(entry.id);
    }
    backlogged_.resize(out);
    return out;
  }

  /// True when the batched sweeps may run the vector kernels over the FULL
  /// SoA columns [0, size()). Beyond the user switch this folds in the
  /// value-range gates of wifi/edca_simd.h: slot fits u32 (min-scan lane
  /// multiply) and the FastDiv magic fits u32 (freeze lane multiply). The
  /// per-arbitration delta-window check lives in Arbitrate itself.
  [[nodiscard]] bool UseSimd(std::size_t live_entries) const {
    // Full-column sweeps only pay off when the backlog is dense; sparse
    // populations (hundreds of registered contenders, a handful backlogged)
    // keep the compacted scalar walk. Either path computes identical state.
    return simd_ok_ && live_entries * 4 >= size();
  }

  sim::Duration slot_;
  sim::FastDiv slot_div_;
  bool simd_enabled_ = false;  ///< user/env switch (SetSimdEnabled).
  bool simd_ok_ = false;       ///< simd_enabled_ && value-range gates hold.

  // Hot SoA columns (indexed by ContenderId).
  std::vector<sim::Time> base_;
  std::vector<std::int32_t> backoff_;
  std::vector<std::int32_t> cw_;
  std::vector<std::uint8_t> counting_;
  // Fixed parameters + backlog membership (cold columns).
  std::vector<sim::Duration> aifs_;
  std::vector<std::int32_t> cw_min_;
  std::vector<std::int32_t> cw_max_;
  std::vector<std::uint8_t> in_backlog_;
  std::vector<std::uint32_t> stamp_;
  /// Candidate-time scratch column written by Arbitrate's first pass and
  /// read by its branchless freeze pass.
  std::vector<sim::Time> cand_;

  std::vector<BacklogEntry> backlogged_;
  std::size_t live_ = 0;
};

}  // namespace kwikr::wifi
