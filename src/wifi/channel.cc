#include "wifi/channel.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <utility>

namespace kwikr::wifi {

namespace {
// Bound on same-tick staged deliveries (see deliver_stage_). The invariant
// depth is 1 — the next delivery is staged strictly later in sim time — so
// this is pure headroom; overflow falls back to the by-value closure.
constexpr std::size_t kDeliverStageCapacity = 64;

// Process-wide construction default for delivery batching; test-only (the
// golden on/off differential flips it around scenario runs). Plain bool:
// single-threaded setup contract, documented on the setter.
bool g_default_delivery_batching = true;

// Cheap monotonic cycle counter for the --breakdown stage attribution.
// Shares are ratios of the same counter, so the unit (TSC ticks, generic
// timer ticks, or ns) cancels out.
inline std::uint64_t StageCycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}
}  // namespace

void Channel::SetDefaultDeliveryBatchingForTest(bool enabled) {
  g_default_delivery_batching = enabled;
}

Channel::Channel(sim::EventLoop& loop, sim::Rng rng, PhyParams phy)
    : loop_(loop),
      rng_(rng),
      phy_(phy),
      edca_(phy.slot),
      airtime_cache_(phy_),
      deliver_stage_(kDeliverStageCapacity) {
  delivery_batching_ = g_default_delivery_batching;
  // Pre-grow the staging ring to its bound at setup so the frame path's
  // zero-allocation invariant holds from the first delivery.
  for (std::size_t i = 0; i < kDeliverStageCapacity; ++i) {
    deliver_stage_.push_back(Frame{});
  }
  deliver_stage_.clear();
}

void Channel::SetDeliverStageCapacityForTest(std::size_t capacity) {
  deliver_stage_ = sim::FrameRing<Frame>(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    deliver_stage_.push_back(Frame{});
  }
  deliver_stage_.clear();
}

OwnerId Channel::RegisterOwner(DeliveryHandler on_delivery) {
  owners_.push_back(Owner{on_delivery, 0});
  return static_cast<OwnerId>(owners_.size() - 1);
}

ContenderId Channel::CreateContender(OwnerId owner, AccessCategory ac,
                                     EdcaParams params,
                                     std::size_t queue_capacity) {
  assert(owner < owners_.size());
  Contender c;
  c.owner = owner;
  c.ac = ac;
  c.params = params;
  c.queue = sim::FrameRing<Frame>(queue_capacity);
  contenders_.push_back(std::move(c));
  const ContenderId id =
      edca_.Add(phy_.Aifs(params), params.cw_min, params.cw_max);
  assert(id + 1 == contenders_.size());
  // Each contender appears at most once per arbitration round in these, so
  // contenders_.size() is a hard bound. Reserving here (setup time) keeps a
  // rare many-way tie late in a run from being the first to reach the
  // high-water mark — the steady state must never allocate (the invariant
  // bench/micro_channel enforces with its operator-new counter).
  winners_scratch_.reserve(contenders_.size());
  losers_scratch_.reserve(contenders_.size());
  in_flight_.reserve(contenders_.size());
  return id;
}

bool Channel::Enqueue(ContenderId id, Frame frame) {
  assert(id < contenders_.size());
  Contender& c = contenders_[id];
  if (!c.queue.push_back(std::move(frame))) {
    ++c.queue_drops;
    return false;
  }
  if (c.queue.size() == 1) {
    // Newly backlogged: join contention.
    c.attempts = 0;
    const bool idle = MediumIdle();
    edca_.Join(id, loop_.now(), idle);
    if (idle) ScheduleArbitration();
  }
  return true;
}

void Channel::SetFrameErrorModel(FrameErrorModel model) {
  error_model_ = model;
}

void Channel::SetDeliveryFaultHook(DeliveryFaultHook hook) {
  delivery_fault_hook_ = hook;
}

void Channel::SetDropHandler(DropHandler handler) { drop_handler_ = handler; }

void Channel::SetTxFeedback(ContenderId id, TxFeedback feedback) {
  assert(id < contenders_.size());
  contenders_[id].tx_feedback = feedback;
}

std::size_t Channel::QueueLength(ContenderId id) const {
  return contenders_[id].queue.size();
}

std::uint64_t Channel::Delivered(ContenderId id) const {
  return contenders_[id].delivered;
}

std::uint64_t Channel::QueueDrops(ContenderId id) const {
  return contenders_[id].queue_drops;
}

std::uint64_t Channel::RetryDrops(ContenderId id) const {
  return contenders_[id].retry_drops;
}

double Channel::BusyFraction() const {
  const sim::Time now = loop_.now();
  sim::Duration busy = busy_accum_;
  if (busy_) busy += now - busy_started_;
  if (now <= 0) return 0.0;
  return static_cast<double>(busy) / static_cast<double>(now);
}

bool Channel::MediumIdle() const { return !busy_; }

sim::Duration Channel::FrameAirtimeCached(const Frame& f) {
  if (stage_profile_ == nullptr) {
    return airtime_cache_.Lookup(f.packet.size_bytes, f.phy_rate_bps);
  }
  const std::uint64_t t0 = StageCycles();
  const sim::Duration airtime =
      airtime_cache_.Lookup(f.packet.size_bytes, f.phy_rate_bps);
  stage_profile_->airtime_cycles += StageCycles() - t0;
  ++stage_profile_->airtime_calls;
  return airtime;
}

void Channel::BeginIdlePeriod() {
  busy_ = false;
  // One batched sweep restarts every backlogged countdown AND finds the
  // earliest candidate (draw order and result are exactly those of the old
  // per-contender restart-then-rescan code — see EdcaCore::BeginIdle).
  const bool prof = stage_profile_ != nullptr;
  const std::uint64_t t0 = prof ? StageCycles() : 0;
  const sim::Time earliest = edca_.BeginIdle(loop_.now(), rng_);
  if (prof) {
    stage_profile_->arbitration_cycles += StageCycles() - t0;
    ++stage_profile_->arbitration_calls;
  }
  ArmArbitration(earliest);
}

void Channel::CancelArbitration() {
  if (arbitration_event_ != 0) {
    loop_.Cancel(arbitration_event_);
    arbitration_event_ = 0;
    scheduled_start_ = -1;
  }
}

void Channel::ScheduleArbitration() {
  if (edca_.backlog_live() == 0 || busy_) {
    CancelArbitration();
    return;
  }
  const bool prof = stage_profile_ != nullptr;
  const std::uint64_t t0 = prof ? StageCycles() : 0;
  const sim::Time earliest = edca_.EarliestCandidate(rng_);
  if (prof) {
    stage_profile_->arbitration_cycles += StageCycles() - t0;
    ++stage_profile_->arbitration_calls;
  }
  ArmArbitration(earliest);
}

void Channel::ArmArbitration(sim::Time earliest) {
  if (earliest == EdcaCore::kNoCandidate) {
    CancelArbitration();
    return;
  }
  // A pending arbitration at the same tick is already correct: keep it
  // instead of paying a Cancel + reschedule (the common case when a new
  // contender joins with a later candidate time).
  if (arbitration_event_ != 0) {
    if (scheduled_start_ == earliest) return;
    loop_.Cancel(arbitration_event_);
  }
  scheduled_start_ = earliest;
  auto arbitrate = [this, earliest] {
    arbitration_event_ = 0;
    scheduled_start_ = -1;
    StartTransmissions(earliest);
  };
  static_assert(sim::InlineTask::fits_inline<decltype(arbitrate)>);
  arbitration_event_ =
      loop_.ScheduleAt(earliest, "wifi.arbitration", std::move(arbitrate));
}

void Channel::StartTransmissions(sim::Time start) {
  // One core sweep does both halves of the arbitration outcome: contenders
  // whose candidate time is exactly `start` win the medium; every other
  // counting contender freezes its backoff with the idle slots consumed so
  // far (a branchless column pass — see EdcaCore::Arbitrate). The
  // winner/loser sets live in member scratch vectors: after warm-up this
  // function performs no allocation at all (see bench/micro_channel).
  const bool prof = stage_profile_ != nullptr;
  std::uint64_t t0 = prof ? StageCycles() : 0;
  std::vector<ContenderId>& winners = winners_scratch_;
  winners.clear();
  edca_.Arbitrate(start, winners);
  if (winners.empty()) {
    if (prof) {
      stage_profile_->arbitration_cycles += StageCycles() - t0;
      ++stage_profile_->arbitration_calls;
    }
    ScheduleArbitration();
    return;
  }

  // Resolve internal (same-owner) virtual collisions: the highest access
  // category transmits; lower ones behave as if they collided.
  in_flight_.clear();
  std::vector<ContenderId>& virtual_losers = losers_scratch_;
  virtual_losers.clear();
  for (ContenderId id : winners) {
    const Contender& c = contenders_[id];
    bool dominated = false;
    for (ContenderId other : winners) {
      if (other == id) continue;
      const Contender& o = contenders_[other];
      if (o.owner == c.owner && Index(o.ac) > Index(c.ac)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      virtual_losers.push_back(id);
    } else {
      in_flight_.push_back(id);
    }
  }
  for (ContenderId id : virtual_losers) HandleFailure(id);
  if (prof) {
    stage_profile_->arbitration_cycles += StageCycles() - t0;
    ++stage_profile_->arbitration_calls;
  }

  // Medium goes busy for the longest of the simultaneous transmissions.
  sim::Time end = start;
  for (ContenderId id : in_flight_) {
    Contender& c = contenders_[id];
    assert(!c.queue.empty());
    const Frame& f = c.queue.front();
    const sim::Duration airtime = FrameAirtimeCached(f);
    c.txop_used = airtime;  // a fresh medium win opens a new TXOP.
    end = std::max(end, start + airtime);
  }
  busy_ = true;
  busy_started_ = start;
  busy_until_ = end;

  // The transmitter set rides in in_flight_ (the medium is busy until
  // tx_done fires, so there is exactly one set in flight): the closure
  // captures two words instead of a heap-backed vector copy.
  if (delivery_batching_) {
    // Rearmable: TXOP continuations re-fire this same slot and closure (see
    // FinishTransmissions), so a whole burst costs one schedule. The closure
    // reads busy_until_ — updated per continuation — instead of capturing
    // the end time.
    auto tx_done = [this] { FinishTransmissions(busy_until_); };
    static_assert(sim::InlineTask::fits_inline<decltype(tx_done)>);
    loop_.ScheduleRearmableAt(end, "wifi.tx_done", std::move(tx_done));
  } else {
    auto tx_done = [this, end] { FinishTransmissions(end); };
    static_assert(sim::InlineTask::fits_inline<decltype(tx_done)>);
    loop_.ScheduleAt(end, "wifi.tx_done", std::move(tx_done));
  }
}

void Channel::FinishTransmissions(sim::Time end) {
  busy_accum_ += end - busy_started_;

  bool continued = false;
  if (in_flight_.size() > 1) {
    ++collisions_;
    for (ContenderId id : in_flight_) HandleFailure(id);
  } else if (in_flight_.size() == 1) {
    const ContenderId id = in_flight_.front();
    Contender& c = contenders_[id];
    assert(!c.queue.empty());
    const Frame& f = c.queue.front();
    double error_prob = 0.0;
    if (error_model_) error_prob = error_model_(c.owner, f.dest, f);
    if (rng_.Bernoulli(error_prob)) {
      HandleFailure(id);
    } else {
      HandleSuccess(id, end);
      // TXOP continuation (802.11e): within the AC's TXOP limit, further
      // queued frames go out back-to-back without re-contending.
      if (!c.queue.empty() && c.params.txop_limit > 0) {
        const Frame& next = c.queue.front();
        const sim::Duration airtime = FrameAirtimeCached(next);
        if (c.txop_used + airtime <= c.params.txop_limit) {
          c.txop_used += airtime;
          ++txop_continuations_;
          busy_started_ = end;
          // Burst frames are SIFS-separated inside the TXOP. in_flight_
          // already holds exactly {id}; the medium stays busy — no idle
          // transition yet.
          busy_until_ = end + phy_.sifs + airtime;
          if (delivery_batching_) {
            // Re-fire this very event (slot + closure reused, zero churn);
            // retag so the probe keeps the legacy tx_done/txop_burst split.
            loop_.RearmCurrentAt(busy_until_, "wifi.txop_burst");
          } else {
            auto finish_burst = [this, until = busy_until_] {
              FinishTransmissions(until);
            };
            static_assert(
                sim::InlineTask::fits_inline<decltype(finish_burst)>);
            loop_.ScheduleAt(busy_until_, "wifi.txop_burst",
                             std::move(finish_burst));
          }
          continued = true;
        }
      }
    }
  }

  if (!continued) BeginIdlePeriod();
  // Deliver the staged frame inline (batching mode), AFTER the medium-state
  // transition above: the owner hook observes exactly the channel state the
  // scheduled delivery event used to observe, and its reactions (Enqueue ->
  // Join -> arbitration re-arm, with their RNG draws) happen in the same
  // relative order.
  DrainStagedDeliveries();
}

void Channel::DrainStagedDeliveries() {
  if (!delivery_batching_) return;  // ring is owned by scheduled events.
  while (!deliver_stage_.empty()) {
    Frame& staged = deliver_stage_.front();
    Owner& owner = owners_[staged.dest];
    sim::EventLoopProbe* probe = loop_.probe();
    const bool prof = stage_profile_ != nullptr;
    const std::uint64_t t0 = prof ? StageCycles() : 0;
    if (probe == nullptr) {
      owner.on_delivery(std::move(staged));
    } else {
      const auto wall_begin = std::chrono::steady_clock::now();
      owner.on_delivery(std::move(staged));
      const double wall_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - wall_begin)
              .count();
      probe->OnExecuted("wifi.deliver", loop_.now(), wall_us);
    }
    if (prof) {
      stage_profile_->delivery_cycles += StageCycles() - t0;
      ++stage_profile_->delivery_calls;
    }
    deliver_stage_.pop_front();
    // The elided "wifi.deliver" dispatch still counts as a logical event:
    // executed() is a golden-corpus observable and must not move with the
    // batching optimization.
    loop_.CountInlineDispatches(1);
  }
}

void Channel::HandleFailure(ContenderId id) {
  Contender& c = contenders_[id];
  assert(!c.queue.empty());
  ++c.attempts;
  if (c.attempts >= phy_.retry_limit) {
    Frame dropped = std::move(c.queue.front());
    c.queue.pop_front();
    ++c.retry_drops;
    if (c.tx_feedback) c.tx_feedback(dropped, false, c.attempts);
    c.attempts = 0;
    edca_.OnRetryDrop(id);
    if (c.queue.empty()) edca_.Leave(id);
    if (drop_handler_) drop_handler_(dropped);
    return;
  }
  edca_.OnTxFailure(id);
}

void Channel::HandleSuccess(ContenderId id, sim::Time end) {
  Contender& c = contenders_[id];
  // The frame is stamped IN the ring head and moved straight into the
  // staging ring / delivery closure below — one 184-byte copy per delivered
  // frame, not two. Nothing between here and the pop re-enters this queue:
  // delivery runs after the medium-state transition (inline drain or
  // scheduled event), and the tx-feedback / fault hooks only update rate
  // state.
  Frame& frame = c.queue.front();
  ++c.delivered;

  Owner& owner = owners_[c.owner];
  frame.packet.mac.sequence = owner.next_sequence;
  owner.next_sequence = static_cast<std::uint16_t>(
      (owner.next_sequence + 1) & 0x0FFF);
  frame.packet.mac.transmissions = static_cast<std::uint8_t>(
      std::min(c.attempts + 1, 255));
  frame.packet.mac.retry = c.attempts > 0;
  frame.packet.mac.data_rate_bps = frame.phy_rate_bps;
  frame.packet.mac.access_category = static_cast<std::uint8_t>(Index(c.ac));

  if (c.tx_feedback) c.tx_feedback(frame, true, c.attempts + 1);
  c.attempts = 0;
  edca_.OnTxSuccess(id);

  const OwnerId dest = frame.dest;
  assert(dest < owners_.size());
  if (owners_[dest].on_delivery) {
    // Fault injection: the hook may swallow, delay (reorder) or duplicate
    // the delivery. The MAC bookkeeping above is untouched either way — a
    // faulted frame was still transmitted and acknowledged on the air.
    sim::Time deliver_at = end;
    int copies = 1;
    if (delivery_fault_hook_) {
      const DeliveryFault fault = delivery_fault_hook_(frame, end);
      if (fault.drop) {
        c.queue.pop_front();
        if (c.queue.empty()) edca_.Leave(id);
        return;
      }
      deliver_at = end + std::max<sim::Duration>(fault.delay, 0);
      copies = 1 + std::max(fault.duplicates, 0);
    }
    // Deliver at the end of the frame (now). The common (unfaulted,
    // undelayed) frame is moved into the staging ring: with batching on,
    // FinishTransmissions drains it inline right after the medium-state
    // transition (one dispatch for the whole frame cycle); with batching
    // off, a "wifi.deliver" event capturing only `this` pops it — staged
    // events fire FIFO in exactly their scheduling order (see
    // deliver_stage_).
    if (deliver_at == end && copies == 1 &&
        deliver_stage_.push_back(std::move(frame))) {
      c.queue.pop_front();
      if (!delivery_batching_) {
        auto deliver = [this] {
          Frame& staged = deliver_stage_.front();
          owners_[staged.dest].on_delivery(std::move(staged));
          deliver_stage_.pop_front();
        };
        static_assert(sim::InlineTask::fits_inline<decltype(deliver)>);
        loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver));
      }
    } else {
      // Delayed or duplicated deliveries (fault hook) and staging-ring
      // overflow tolerate arbitrary ordering, so they ride the
      // Frame-by-value closure — the largest event closure in the tree;
      // InlineTask's buffer is sized to hold it, and the static_assert
      // keeps that true as Packet/Frame grow.
      for (int copy = 1; copy < copies; ++copy) {
        auto deliver_copy = [this, dest, frame]() mutable {
          owners_[dest].on_delivery(std::move(frame));
        };
        static_assert(sim::InlineTask::fits_inline<decltype(deliver_copy)>);
        loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver_copy));
      }
      auto deliver = [this, dest, frame = std::move(frame)]() mutable {
        owners_[dest].on_delivery(std::move(frame));
      };
      static_assert(sim::InlineTask::fits_inline<decltype(deliver)>);
      c.queue.pop_front();
      loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver));
    }
  } else {
    c.queue.pop_front();
  }
  if (c.queue.empty()) edca_.Leave(id);
}

}  // namespace kwikr::wifi
