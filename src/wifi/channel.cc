#include "wifi/channel.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace kwikr::wifi {

Channel::Channel(sim::EventLoop& loop, sim::Rng rng, PhyParams phy)
    : loop_(loop), rng_(rng), phy_(phy) {}

OwnerId Channel::RegisterOwner(DeliveryHandler on_delivery) {
  owners_.push_back(Owner{std::move(on_delivery), 0});
  return static_cast<OwnerId>(owners_.size() - 1);
}

ContenderId Channel::CreateContender(OwnerId owner, AccessCategory ac,
                                     EdcaParams params,
                                     std::size_t queue_capacity) {
  assert(owner < owners_.size());
  Contender c;
  c.owner = owner;
  c.ac = ac;
  c.params = params;
  c.capacity = queue_capacity;
  c.cw = params.cw_min;
  contenders_.push_back(std::move(c));
  return static_cast<ContenderId>(contenders_.size() - 1);
}

bool Channel::Enqueue(ContenderId id, Frame frame) {
  assert(id < contenders_.size());
  Contender& c = contenders_[id];
  if (c.queue.size() >= c.capacity) {
    ++c.queue_drops;
    return false;
  }
  c.queue.push_back(std::move(frame));
  if (c.queue.size() == 1) {
    // Newly backlogged: join contention.
    backlogged_.push_back(id);
    c.backoff_slots = -1;
    c.cw = c.params.cw_min;
    c.attempts = 0;
    if (MediumIdle()) {
      c.wait_ref = loop_.now();
      c.counting = true;
      ScheduleArbitration();
    } else {
      c.counting = false;
    }
  }
  return true;
}

void Channel::SetFrameErrorModel(FrameErrorModel model) {
  error_model_ = std::move(model);
}

void Channel::SetDeliveryFaultHook(DeliveryFaultHook hook) {
  delivery_fault_hook_ = std::move(hook);
}

void Channel::SetDropHandler(DropHandler handler) {
  drop_handler_ = std::move(handler);
}

void Channel::SetTxFeedback(ContenderId id, TxFeedback feedback) {
  assert(id < contenders_.size());
  contenders_[id].tx_feedback = std::move(feedback);
}

std::size_t Channel::QueueLength(ContenderId id) const {
  return contenders_[id].queue.size();
}

std::uint64_t Channel::Delivered(ContenderId id) const {
  return contenders_[id].delivered;
}

std::uint64_t Channel::QueueDrops(ContenderId id) const {
  return contenders_[id].queue_drops;
}

std::uint64_t Channel::RetryDrops(ContenderId id) const {
  return contenders_[id].retry_drops;
}

double Channel::BusyFraction() const {
  const sim::Time now = loop_.now();
  sim::Duration busy = busy_accum_;
  if (busy_) busy += now - busy_started_;
  if (now <= 0) return 0.0;
  return static_cast<double>(busy) / static_cast<double>(now);
}

bool Channel::MediumIdle() const { return !busy_; }

void Channel::EnsureBackoffDrawn(Contender& c) {
  if (c.backoff_slots < 0) {
    c.backoff_slots =
        static_cast<int>(rng_.UniformInt(0, c.cw));
  }
}

sim::Time Channel::CandidateStart(const Contender& c) const {
  return c.wait_ref + phy_.Aifs(c.params) +
         static_cast<sim::Duration>(c.backoff_slots) * phy_.slot;
}

void Channel::BeginIdlePeriod() {
  busy_ = false;
  const sim::Time now = loop_.now();
  for (ContenderId id : backlogged_) {
    Contender& c = contenders_[id];
    c.wait_ref = now;
    c.counting = true;
  }
  ScheduleArbitration();
}

void Channel::ScheduleArbitration() {
  if (arbitration_event_ != 0) {
    loop_.Cancel(arbitration_event_);
    arbitration_event_ = 0;
    scheduled_start_ = -1;
  }
  if (backlogged_.empty() || busy_) return;

  sim::Time earliest = std::numeric_limits<sim::Time>::max();
  for (ContenderId id : backlogged_) {
    Contender& c = contenders_[id];
    if (!c.counting) continue;
    EnsureBackoffDrawn(c);
    earliest = std::min(earliest, CandidateStart(c));
  }
  if (earliest == std::numeric_limits<sim::Time>::max()) return;
  scheduled_start_ = earliest;
  auto arbitrate = [this, earliest] {
    arbitration_event_ = 0;
    scheduled_start_ = -1;
    StartTransmissions(earliest);
  };
  static_assert(sim::InlineTask::fits_inline<decltype(arbitrate)>);
  arbitration_event_ =
      loop_.ScheduleAt(earliest, "wifi.arbitration", std::move(arbitrate));
}

void Channel::StartTransmissions(sim::Time start) {
  // Collect everyone whose candidate time is exactly `start`.
  std::vector<ContenderId> winners;
  for (ContenderId id : backlogged_) {
    Contender& c = contenders_[id];
    if (!c.counting) continue;
    if (CandidateStart(c) == start) winners.push_back(id);
  }
  if (winners.empty()) {
    ScheduleArbitration();
    return;
  }

  // Resolve internal (same-owner) virtual collisions: the highest access
  // category transmits; lower ones behave as if they collided.
  std::vector<ContenderId> transmitters;
  std::vector<ContenderId> virtual_losers;
  for (ContenderId id : winners) {
    const Contender& c = contenders_[id];
    bool dominated = false;
    for (ContenderId other : winners) {
      if (other == id) continue;
      const Contender& o = contenders_[other];
      if (o.owner == c.owner && Index(o.ac) > Index(c.ac)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      virtual_losers.push_back(id);
    } else {
      transmitters.push_back(id);
    }
  }
  for (ContenderId id : virtual_losers) HandleFailure(contenders_[id]);

  // Freeze everyone else's backoff with the idle slots consumed so far.
  for (ContenderId id : backlogged_) {
    Contender& c = contenders_[id];
    if (!c.counting) continue;
    if (std::find(winners.begin(), winners.end(), id) != winners.end()) {
      continue;
    }
    const sim::Time countdown_start = c.wait_ref + phy_.Aifs(c.params);
    if (start > countdown_start) {
      const auto consumed =
          static_cast<int>((start - countdown_start) / phy_.slot);
      c.backoff_slots = std::max(0, c.backoff_slots - consumed);
    }
    c.counting = false;
  }

  // Medium goes busy for the longest of the simultaneous transmissions.
  sim::Time end = start;
  for (ContenderId id : transmitters) {
    Contender& c = contenders_[id];
    assert(!c.queue.empty());
    const Frame& f = c.queue.front();
    const sim::Duration airtime =
        phy_.FrameAirtime(f.packet.size_bytes, f.phy_rate_bps);
    c.txop_used = airtime;  // a fresh medium win opens a new TXOP.
    end = std::max(end, start + airtime);
  }
  busy_ = true;
  busy_started_ = start;
  busy_until_ = end;

  auto tx_done = [this, transmitters, start, end] {
    FinishTransmissions(transmitters, start, end);
  };
  static_assert(sim::InlineTask::fits_inline<decltype(tx_done)>);
  loop_.ScheduleAt(end, "wifi.tx_done", std::move(tx_done));
}

void Channel::FinishTransmissions(const std::vector<ContenderId>& transmitters,
                                  sim::Time /*start*/, sim::Time end) {
  busy_accum_ += end - busy_started_;

  if (transmitters.size() > 1) {
    ++collisions_;
    for (ContenderId id : transmitters) HandleFailure(contenders_[id]);
  } else if (transmitters.size() == 1) {
    const ContenderId id = transmitters.front();
    Contender& c = contenders_[id];
    assert(!c.queue.empty());
    const Frame& f = c.queue.front();
    double error_prob = 0.0;
    if (error_model_) error_prob = error_model_(c.owner, f.dest, f);
    if (rng_.Bernoulli(error_prob)) {
      HandleFailure(c);
    } else {
      HandleSuccess(id, end);
      // TXOP continuation (802.11e): within the AC's TXOP limit, further
      // queued frames go out back-to-back without re-contending.
      if (!c.queue.empty() && c.params.txop_limit > 0) {
        const Frame& next = c.queue.front();
        const sim::Duration airtime =
            phy_.FrameAirtime(next.packet.size_bytes, next.phy_rate_bps);
        if (c.txop_used + airtime <= c.params.txop_limit) {
          c.txop_used += airtime;
          ++txop_continuations_;
          busy_started_ = end;
          // Burst frames are SIFS-separated inside the TXOP.
          busy_until_ = end + phy_.sifs + airtime;
          std::vector<ContenderId> burst = {id};
          auto finish_burst = [this, burst = std::move(burst), end,
                               until = busy_until_] {
            FinishTransmissions(burst, end, until);
          };
          static_assert(sim::InlineTask::fits_inline<decltype(finish_burst)>);
          loop_.ScheduleAt(busy_until_, "wifi.txop_burst",
                           std::move(finish_burst));
          return;  // medium stays busy; no idle transition yet.
        }
      }
    }
  }

  BeginIdlePeriod();
}

void Channel::HandleFailure(Contender& c) {
  assert(!c.queue.empty());
  ++c.attempts;
  if (c.attempts >= phy_.retry_limit) {
    Frame dropped = std::move(c.queue.front());
    c.queue.pop_front();
    ++c.retry_drops;
    if (c.tx_feedback) c.tx_feedback(dropped, false, c.attempts);
    c.attempts = 0;
    c.cw = c.params.cw_min;
    c.backoff_slots = -1;
    if (c.queue.empty()) {
      const auto self =
          static_cast<ContenderId>(&c - contenders_.data());
      backlogged_.erase(
          std::remove(backlogged_.begin(), backlogged_.end(), self),
          backlogged_.end());
      c.counting = false;
    }
    if (drop_handler_) drop_handler_(dropped);
    return;
  }
  c.cw = std::min(c.cw * 2 + 1, c.params.cw_max);
  c.backoff_slots = -1;  // fresh draw from the doubled window.
  c.counting = false;    // resumes at the next idle transition.
}

void Channel::HandleSuccess(ContenderId id, sim::Time end) {
  Contender& c = contenders_[id];
  Frame frame = std::move(c.queue.front());
  c.queue.pop_front();
  ++c.delivered;

  Owner& owner = owners_[c.owner];
  frame.packet.mac.sequence = owner.next_sequence;
  owner.next_sequence = static_cast<std::uint16_t>(
      (owner.next_sequence + 1) & 0x0FFF);
  frame.packet.mac.transmissions = static_cast<std::uint8_t>(
      std::min(c.attempts + 1, 255));
  frame.packet.mac.retry = c.attempts > 0;
  frame.packet.mac.data_rate_bps = frame.phy_rate_bps;
  frame.packet.mac.access_category = static_cast<std::uint8_t>(Index(c.ac));

  if (c.tx_feedback) c.tx_feedback(frame, true, c.attempts + 1);
  c.attempts = 0;
  c.cw = c.params.cw_min;
  c.backoff_slots = -1;  // post-transmission backoff.
  if (c.queue.empty()) {
    backlogged_.erase(std::remove(backlogged_.begin(), backlogged_.end(), id),
                      backlogged_.end());
    c.counting = false;
  }

  const OwnerId dest = frame.dest;
  assert(dest < owners_.size());
  if (owners_[dest].on_delivery) {
    // Fault injection: the hook may swallow, delay (reorder) or duplicate
    // the delivery. The MAC bookkeeping above is untouched either way — a
    // faulted frame was still transmitted and acknowledged on the air.
    sim::Time deliver_at = end;
    int copies = 1;
    if (delivery_fault_hook_) {
      const DeliveryFault fault = delivery_fault_hook_(frame, end);
      if (fault.drop) return;
      deliver_at = end + std::max<sim::Duration>(fault.delay, 0);
      copies = 1 + std::max(fault.duplicates, 0);
    }
    // Deliver at the end of the frame (now). Scheduled rather than called
    // inline so receiver actions (e.g. an ICMP reply enqueue) observe a
    // consistent channel state. This Frame-by-value capture is the largest
    // event closure in the tree — InlineTask's buffer is sized to hold it,
    // and the static_assert keeps that true as Packet/Frame grow.
    for (int copy = 1; copy < copies; ++copy) {
      auto deliver_copy = [this, dest, frame]() mutable {
        owners_[dest].on_delivery(std::move(frame));
      };
      static_assert(sim::InlineTask::fits_inline<decltype(deliver_copy)>);
      loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver_copy));
    }
    auto deliver = [this, dest, frame = std::move(frame)]() mutable {
      owners_[dest].on_delivery(std::move(frame));
    };
    static_assert(sim::InlineTask::fits_inline<decltype(deliver)>);
    loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver));
  }
}

}  // namespace kwikr::wifi
