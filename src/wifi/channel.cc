#include "wifi/channel.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace kwikr::wifi {

Channel::Channel(sim::EventLoop& loop, sim::Rng rng, PhyParams phy)
    : loop_(loop), rng_(rng), phy_(phy) {}

OwnerId Channel::RegisterOwner(DeliveryHandler on_delivery) {
  owners_.push_back(Owner{on_delivery, 0});
  return static_cast<OwnerId>(owners_.size() - 1);
}

ContenderId Channel::CreateContender(OwnerId owner, AccessCategory ac,
                                     EdcaParams params,
                                     std::size_t queue_capacity) {
  assert(owner < owners_.size());
  Contender c;
  c.owner = owner;
  c.ac = ac;
  c.params = params;
  c.aifs = phy_.Aifs(params);
  c.queue = sim::FrameRing<Frame>(queue_capacity);
  c.cw = params.cw_min;
  contenders_.push_back(std::move(c));
  // Each contender appears at most once per arbitration round in these, so
  // contenders_.size() is a hard bound. Reserving here (setup time) keeps a
  // rare many-way tie late in a run from being the first to reach the
  // high-water mark — the steady state must never allocate (the invariant
  // bench/micro_channel enforces with its operator-new counter).
  winners_scratch_.reserve(contenders_.size());
  losers_scratch_.reserve(contenders_.size());
  in_flight_.reserve(contenders_.size());
  return static_cast<ContenderId>(contenders_.size() - 1);
}

void Channel::JoinBacklog(ContenderId id, Contender& c) {
  ++c.backlog_stamp;
  c.in_backlog = true;
  ++backlog_live_;
  backlogged_.push_back(BacklogEntry{id, c.backlog_stamp});
}

void Channel::LeaveBacklog(Contender& c) {
  // O(1): the vector entry goes stale and is compacted out by the next
  // backlog sweep (this replaced an O(n) erase per emptied queue).
  assert(c.in_backlog);
  c.in_backlog = false;
  --backlog_live_;
  c.counting = false;
}

bool Channel::Enqueue(ContenderId id, Frame frame) {
  assert(id < contenders_.size());
  Contender& c = contenders_[id];
  if (!c.queue.push_back(std::move(frame))) {
    ++c.queue_drops;
    return false;
  }
  if (c.queue.size() == 1) {
    // Newly backlogged: join contention.
    JoinBacklog(id, c);
    c.backoff_slots = -1;
    c.cw = c.params.cw_min;
    c.attempts = 0;
    if (MediumIdle()) {
      c.wait_ref = loop_.now();
      c.counting = true;
      ScheduleArbitration();
    } else {
      c.counting = false;
    }
  }
  return true;
}

void Channel::SetFrameErrorModel(FrameErrorModel model) {
  error_model_ = model;
}

void Channel::SetDeliveryFaultHook(DeliveryFaultHook hook) {
  delivery_fault_hook_ = hook;
}

void Channel::SetDropHandler(DropHandler handler) { drop_handler_ = handler; }

void Channel::SetTxFeedback(ContenderId id, TxFeedback feedback) {
  assert(id < contenders_.size());
  contenders_[id].tx_feedback = feedback;
}

std::size_t Channel::QueueLength(ContenderId id) const {
  return contenders_[id].queue.size();
}

std::uint64_t Channel::Delivered(ContenderId id) const {
  return contenders_[id].delivered;
}

std::uint64_t Channel::QueueDrops(ContenderId id) const {
  return contenders_[id].queue_drops;
}

std::uint64_t Channel::RetryDrops(ContenderId id) const {
  return contenders_[id].retry_drops;
}

double Channel::BusyFraction() const {
  const sim::Time now = loop_.now();
  sim::Duration busy = busy_accum_;
  if (busy_) busy += now - busy_started_;
  if (now <= 0) return 0.0;
  return static_cast<double>(busy) / static_cast<double>(now);
}

bool Channel::MediumIdle() const { return !busy_; }

void Channel::EnsureBackoffDrawn(Contender& c) {
  if (c.backoff_slots < 0) {
    c.backoff_slots =
        static_cast<int>(rng_.UniformInt(0, c.cw));
  }
}

sim::Time Channel::CandidateStart(const Contender& c) const {
  return c.wait_ref + c.aifs +
         static_cast<sim::Duration>(c.backoff_slots) * phy_.slot;
}

void Channel::BeginIdlePeriod() {
  busy_ = false;
  // One sweep restarts every backlogged contender's countdown AND finds the
  // earliest candidate (the per-entry work and the rng draw order are
  // exactly those of the old restart-sweep followed by
  // ScheduleArbitration's sweep — fused to halve the idle-transition cost).
  const sim::Time now = loop_.now();
  sim::Time earliest = std::numeric_limits<sim::Time>::max();
  ForEachBacklogged([this, now, &earliest](ContenderId, Contender& c) {
    c.wait_ref = now;
    c.counting = true;
    EnsureBackoffDrawn(c);
    earliest = std::min(earliest, CandidateStart(c));
  });
  ArmArbitration(earliest);
}

void Channel::CancelArbitration() {
  if (arbitration_event_ != 0) {
    loop_.Cancel(arbitration_event_);
    arbitration_event_ = 0;
    scheduled_start_ = -1;
  }
}

void Channel::ScheduleArbitration() {
  if (backlog_live_ == 0 || busy_) {
    CancelArbitration();
    return;
  }

  sim::Time earliest = std::numeric_limits<sim::Time>::max();
  ForEachBacklogged([this, &earliest](ContenderId, Contender& c) {
    if (!c.counting) return;
    EnsureBackoffDrawn(c);
    earliest = std::min(earliest, CandidateStart(c));
  });
  ArmArbitration(earliest);
}

void Channel::ArmArbitration(sim::Time earliest) {
  if (earliest == std::numeric_limits<sim::Time>::max()) {
    CancelArbitration();
    return;
  }
  // A pending arbitration at the same tick is already correct: keep it
  // instead of paying a Cancel + reschedule (the common case when a new
  // contender joins with a later candidate time).
  if (arbitration_event_ != 0) {
    if (scheduled_start_ == earliest) return;
    loop_.Cancel(arbitration_event_);
  }
  scheduled_start_ = earliest;
  auto arbitrate = [this, earliest] {
    arbitration_event_ = 0;
    scheduled_start_ = -1;
    StartTransmissions(earliest);
  };
  static_assert(sim::InlineTask::fits_inline<decltype(arbitrate)>);
  arbitration_event_ =
      loop_.ScheduleAt(earliest, "wifi.arbitration", std::move(arbitrate));
}

void Channel::StartTransmissions(sim::Time start) {
  // One sweep does both halves of the arbitration outcome: contenders
  // whose candidate time is exactly `start` win the medium; every other
  // counting contender freezes its backoff with the idle slots consumed so
  // far. (Winners and the frozen set are disjoint, so folding the old
  // second sweep in here is behavior-preserving — and drops a std::find
  // per non-winner.) The winner/loser sets live in member scratch vectors:
  // after warm-up this function performs no allocation at all (see
  // bench/micro_channel).
  std::vector<ContenderId>& winners = winners_scratch_;
  winners.clear();
  ForEachBacklogged([this, start, &winners](ContenderId id, Contender& c) {
    if (!c.counting) return;
    if (CandidateStart(c) == start) {
      winners.push_back(id);
      return;
    }
    const sim::Time countdown_start = c.wait_ref + c.aifs;
    if (start > countdown_start) {
      const auto consumed =
          static_cast<int>((start - countdown_start) / phy_.slot);
      c.backoff_slots = std::max(0, c.backoff_slots - consumed);
    }
    c.counting = false;
  });
  if (winners.empty()) {
    ScheduleArbitration();
    return;
  }

  // Resolve internal (same-owner) virtual collisions: the highest access
  // category transmits; lower ones behave as if they collided.
  in_flight_.clear();
  std::vector<ContenderId>& virtual_losers = losers_scratch_;
  virtual_losers.clear();
  for (ContenderId id : winners) {
    const Contender& c = contenders_[id];
    bool dominated = false;
    for (ContenderId other : winners) {
      if (other == id) continue;
      const Contender& o = contenders_[other];
      if (o.owner == c.owner && Index(o.ac) > Index(c.ac)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      virtual_losers.push_back(id);
    } else {
      in_flight_.push_back(id);
    }
  }
  for (ContenderId id : virtual_losers) HandleFailure(contenders_[id]);

  // Medium goes busy for the longest of the simultaneous transmissions.
  sim::Time end = start;
  for (ContenderId id : in_flight_) {
    Contender& c = contenders_[id];
    assert(!c.queue.empty());
    const Frame& f = c.queue.front();
    const sim::Duration airtime =
        phy_.FrameAirtime(f.packet.size_bytes, f.phy_rate_bps);
    c.txop_used = airtime;  // a fresh medium win opens a new TXOP.
    end = std::max(end, start + airtime);
  }
  busy_ = true;
  busy_started_ = start;
  busy_until_ = end;

  // The transmitter set rides in in_flight_ (the medium is busy until
  // tx_done fires, so there is exactly one set in flight): the closure
  // captures two words instead of a heap-backed vector copy.
  auto tx_done = [this, end] { FinishTransmissions(end); };
  static_assert(sim::InlineTask::fits_inline<decltype(tx_done)>);
  loop_.ScheduleAt(end, "wifi.tx_done", std::move(tx_done));
}

void Channel::FinishTransmissions(sim::Time end) {
  busy_accum_ += end - busy_started_;

  if (in_flight_.size() > 1) {
    ++collisions_;
    for (ContenderId id : in_flight_) HandleFailure(contenders_[id]);
  } else if (in_flight_.size() == 1) {
    const ContenderId id = in_flight_.front();
    Contender& c = contenders_[id];
    assert(!c.queue.empty());
    const Frame& f = c.queue.front();
    double error_prob = 0.0;
    if (error_model_) error_prob = error_model_(c.owner, f.dest, f);
    if (rng_.Bernoulli(error_prob)) {
      HandleFailure(c);
    } else {
      HandleSuccess(id, end);
      // TXOP continuation (802.11e): within the AC's TXOP limit, further
      // queued frames go out back-to-back without re-contending.
      if (!c.queue.empty() && c.params.txop_limit > 0) {
        const Frame& next = c.queue.front();
        const sim::Duration airtime =
            phy_.FrameAirtime(next.packet.size_bytes, next.phy_rate_bps);
        if (c.txop_used + airtime <= c.params.txop_limit) {
          c.txop_used += airtime;
          ++txop_continuations_;
          busy_started_ = end;
          // Burst frames are SIFS-separated inside the TXOP. in_flight_
          // already holds exactly {id}.
          busy_until_ = end + phy_.sifs + airtime;
          auto finish_burst = [this, until = busy_until_] {
            FinishTransmissions(until);
          };
          static_assert(sim::InlineTask::fits_inline<decltype(finish_burst)>);
          loop_.ScheduleAt(busy_until_, "wifi.txop_burst",
                           std::move(finish_burst));
          return;  // medium stays busy; no idle transition yet.
        }
      }
    }
  }

  BeginIdlePeriod();
}

void Channel::HandleFailure(Contender& c) {
  assert(!c.queue.empty());
  ++c.attempts;
  if (c.attempts >= phy_.retry_limit) {
    Frame dropped = std::move(c.queue.front());
    c.queue.pop_front();
    ++c.retry_drops;
    if (c.tx_feedback) c.tx_feedback(dropped, false, c.attempts);
    c.attempts = 0;
    c.cw = c.params.cw_min;
    c.backoff_slots = -1;
    if (c.queue.empty()) LeaveBacklog(c);
    if (drop_handler_) drop_handler_(dropped);
    return;
  }
  c.cw = std::min(c.cw * 2 + 1, c.params.cw_max);
  c.backoff_slots = -1;  // fresh draw from the doubled window.
  c.counting = false;    // resumes at the next idle transition.
}

void Channel::HandleSuccess(ContenderId id, sim::Time end) {
  Contender& c = contenders_[id];
  // The frame is stamped IN the ring head and moved straight into the
  // delivery closure below — one 184-byte copy per delivered frame, not
  // two. Nothing between here and the pop re-enters this queue: delivery
  // is scheduled (never called inline), and the tx-feedback / fault hooks
  // only update rate state.
  Frame& frame = c.queue.front();
  ++c.delivered;

  Owner& owner = owners_[c.owner];
  frame.packet.mac.sequence = owner.next_sequence;
  owner.next_sequence = static_cast<std::uint16_t>(
      (owner.next_sequence + 1) & 0x0FFF);
  frame.packet.mac.transmissions = static_cast<std::uint8_t>(
      std::min(c.attempts + 1, 255));
  frame.packet.mac.retry = c.attempts > 0;
  frame.packet.mac.data_rate_bps = frame.phy_rate_bps;
  frame.packet.mac.access_category = static_cast<std::uint8_t>(Index(c.ac));

  if (c.tx_feedback) c.tx_feedback(frame, true, c.attempts + 1);
  c.attempts = 0;
  c.cw = c.params.cw_min;
  c.backoff_slots = -1;  // post-transmission backoff.

  const OwnerId dest = frame.dest;
  assert(dest < owners_.size());
  if (owners_[dest].on_delivery) {
    // Fault injection: the hook may swallow, delay (reorder) or duplicate
    // the delivery. The MAC bookkeeping above is untouched either way — a
    // faulted frame was still transmitted and acknowledged on the air.
    sim::Time deliver_at = end;
    int copies = 1;
    if (delivery_fault_hook_) {
      const DeliveryFault fault = delivery_fault_hook_(frame, end);
      if (fault.drop) {
        c.queue.pop_front();
        if (c.queue.empty()) LeaveBacklog(c);
        return;
      }
      deliver_at = end + std::max<sim::Duration>(fault.delay, 0);
      copies = 1 + std::max(fault.duplicates, 0);
    }
    // Deliver at the end of the frame (now). Scheduled rather than called
    // inline so receiver actions (e.g. an ICMP reply enqueue) observe a
    // consistent channel state. This Frame-by-value capture is the largest
    // event closure in the tree — InlineTask's buffer is sized to hold it,
    // and the static_assert keeps that true as Packet/Frame grow.
    for (int copy = 1; copy < copies; ++copy) {
      auto deliver_copy = [this, dest, frame]() mutable {
        owners_[dest].on_delivery(std::move(frame));
      };
      static_assert(sim::InlineTask::fits_inline<decltype(deliver_copy)>);
      loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver_copy));
    }
    auto deliver = [this, dest, frame = std::move(frame)]() mutable {
      owners_[dest].on_delivery(std::move(frame));
    };
    static_assert(sim::InlineTask::fits_inline<decltype(deliver)>);
    c.queue.pop_front();
    loop_.ScheduleAt(deliver_at, "wifi.deliver", std::move(deliver));
  } else {
    c.queue.pop_front();
  }
  if (c.queue.empty()) LeaveBacklog(c);
}

}  // namespace kwikr::wifi
