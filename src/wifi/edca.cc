#include "wifi/edca.h"

#include "net/packet.h"

namespace kwikr::wifi {

const char* Name(AccessCategory ac) {
  switch (ac) {
    case AccessCategory::kBackground:
      return "BK";
    case AccessCategory::kBestEffort:
      return "BE";
    case AccessCategory::kVideo:
      return "VI";
    case AccessCategory::kVoice:
      return "VO";
  }
  return "?";
}

std::array<EdcaParams, kNumAccessCategories> DefaultEdcaParams() {
  std::array<EdcaParams, kNumAccessCategories> params;
  params[Index(AccessCategory::kBackground)] = EdcaParams{7, 15, 1023, 0};
  params[Index(AccessCategory::kBestEffort)] = EdcaParams{3, 15, 1023, 0};
  params[Index(AccessCategory::kVideo)] =
      EdcaParams{2, 7, 15, sim::Micros(3008)};
  params[Index(AccessCategory::kVoice)] =
      EdcaParams{2, 3, 7, sim::Micros(1504)};
  return params;
}

AccessCategory TosToAccessCategory(std::uint8_t tos) {
  const std::uint8_t dscp = tos >> 2;
  if (dscp == 46) return AccessCategory::kVoice;  // EF (TOS 0xb8)
  const std::uint8_t precedence = tos >> 5;
  switch (precedence) {
    case 6:
    case 7:
      return AccessCategory::kVoice;
    case 4:
    case 5:
      return AccessCategory::kVideo;
    case 1:
    case 2:
      return AccessCategory::kBackground;
    default:
      return AccessCategory::kBestEffort;
  }
}

}  // namespace kwikr::wifi
