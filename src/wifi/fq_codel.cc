#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/frame_ring.h"
#include "wifi/qdisc_internal.h"
#include "wifi/queue_discipline.h"

namespace kwikr::wifi {
namespace {

/// SplitMix64 finalizer: the same mixing function sim::Rng::Fork uses for
/// stream derivation, reused here to spread (flow, src, dst) over buckets.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// FQ-CoDel (RFC 8290): hash flows into buckets, serve buckets with
/// deficit-round-robin (new flows get priority for one quantum — the
/// "sparse flow" boost that keeps a ping fast under a bulk transfer), and
/// run an independent CoDel instance per bucket. Overflow drops from the
/// fattest bucket, so a single greedy flow cannot evict everyone else —
/// the flow-isolation property that should *decouple* Ping-Pair's probe
/// delay from cross-traffic queue depth.
class FqCoDelQdisc final : public detail::AqmQdiscBase {
 public:
  FqCoDelQdisc(Channel& channel, ContenderId contender, QdiscConfig config,
               std::size_t capacity_frames)
      : AqmQdiscBase(channel, contender, config, capacity_frames),
        flows_(config.flows == 0 ? 1 : config.flows) {}

  [[nodiscard]] std::size_t backlog() const override {
    return total_frames_;
  }
  [[nodiscard]] const char* name() const override { return "fq_codel"; }

 protected:
  void Admit(detail::Entry&& entry) override {
    const std::uint32_t index = Bucket(entry.frame.packet);
    Flow& flow = flows_[index];
    const std::int64_t bytes = entry.frame.packet.size_bytes;
    if (!flow.ring.push_back(std::move(entry))) {
      NoteOverflowDrop();
      return;
    }
    flow.backlog_bytes += bytes;
    ++total_frames_;
    if (flow.membership == Flow::kNone) {
      flow.deficit = config_.quantum_bytes;
      flow.membership = Flow::kNew;
      new_flows_.push_back(index);
    }
    if (total_frames_ > capacity_) DropFromFattestFlow();
  }

  std::optional<detail::Entry> Dequeue(sim::Time now) override {
    while (true) {
      std::deque<std::uint32_t>* list =
          !new_flows_.empty() ? &new_flows_ : &old_flows_;
      if (list->empty()) return std::nullopt;
      const std::uint32_t index = list->front();
      Flow& flow = flows_[index];
      if (flow.deficit <= 0) {
        // Quantum exhausted: replenish and rotate to the old-flows tail.
        flow.deficit += config_.quantum_bytes;
        list->pop_front();
        flow.membership = Flow::kOld;
        old_flows_.push_back(index);
        continue;
      }
      auto entry = CodelDequeue(flow, now);
      if (!entry) {
        // Bucket drained. A new flow demotes to the old list (it loses its
        // sparse-flow boost); an old flow leaves the rotation entirely.
        list->pop_front();
        if (flow.membership == Flow::kNew) {
          flow.membership = Flow::kOld;
          old_flows_.push_back(index);
        } else {
          flow.membership = Flow::kNone;
        }
        continue;
      }
      flow.deficit -= entry->frame.packet.size_bytes;
      return entry;
    }
  }

 private:
  struct Flow {
    enum Membership : std::uint8_t { kNone, kNew, kOld };

    sim::FrameRing<detail::Entry> ring;
    detail::CodelState codel;
    std::int64_t deficit = 0;
    std::int64_t backlog_bytes = 0;
    Membership membership = kNone;
  };

  static constexpr std::int64_t kMtuBytes = 1514;

  [[nodiscard]] std::uint32_t Bucket(const net::Packet& packet) const {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(packet.flow) << 32) ^
        (static_cast<std::uint64_t>(packet.src) << 16) ^
        static_cast<std::uint64_t>(packet.dst);
    return static_cast<std::uint32_t>(Mix64(key ^ config_.hash_seed) %
                                      flows_.size());
  }

  std::optional<detail::Entry> CodelDequeue(Flow& flow, sim::Time now) {
    return flow.codel.Dequeue(
        now, config_.target, config_.interval, kMtuBytes,
        [this, &flow]() -> std::optional<detail::Entry> {
          return PopFlow(flow);
        },
        [&flow] { return flow.backlog_bytes; },
        [this](detail::Entry&& dropped) {
          NoteAqmDrop();
          RecordSojourn(sim::ToMillis(channel_.loop().now() -
                                      dropped.enqueued_at));
        });
  }

  std::optional<detail::Entry> PopFlow(Flow& flow) {
    if (flow.ring.empty()) return std::nullopt;
    detail::Entry entry = std::move(flow.ring.front());
    flow.ring.pop_front();
    flow.backlog_bytes -= entry.frame.packet.size_bytes;
    --total_frames_;
    return entry;
  }

  void DropFromFattestFlow() {
    std::size_t fattest = 0;
    std::int64_t fattest_bytes = -1;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (flows_[i].backlog_bytes > fattest_bytes) {
        fattest_bytes = flows_[i].backlog_bytes;
        fattest = i;
      }
    }
    if (auto victim = PopFlow(flows_[fattest])) NoteOverflowDrop();
  }

  std::vector<Flow> flows_;
  std::deque<std::uint32_t> new_flows_;
  std::deque<std::uint32_t> old_flows_;
  std::size_t total_frames_ = 0;
};

}  // namespace

namespace detail {
std::unique_ptr<QueueDiscipline> MakeFqCoDelQdisc(Channel& channel,
                                                  ContenderId contender,
                                                  QdiscConfig config,
                                                  std::size_t capacity_frames) {
  return std::make_unique<FqCoDelQdisc>(channel, contender, config,
                                        capacity_frames);
}
}  // namespace detail

}  // namespace kwikr::wifi
