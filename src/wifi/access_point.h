#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/packet.h"
#include "wifi/channel.h"
#include "wifi/edca.h"
#include "wifi/queue_discipline.h"
#include "wifi/rate_adaptation.h"
#include "wifi/rate_table.h"

namespace kwikr::wifi {

class Station;

/// A Wi-Fi access point: four prioritized EDCA downlink queues, an ICMP echo
/// responder (the Ping-Pair probe target), and forwarding between the
/// wireless side and a wired/WAN side.
///
/// With `wmm_enabled = false` the AP collapses all downlink traffic into the
/// Best Effort queue — the behaviour the WMM detector (Section 5.5) must
/// distinguish.
class AccessPoint {
 public:
  struct Config {
    net::Address address = 1;
    Band band = Band::k2_4GHz;
    bool wmm_enabled = true;
    /// Per-AC downlink queue capacity in frames (BK, BE, VI, VO).
    std::array<std::size_t, kNumAccessCategories> queue_capacity = {64, 150,
                                                                    64, 64};
    /// Downlink queue discipline, applied to every AC. DropTail keeps the
    /// seed fast path (frames go straight into the contender ring); CoDel /
    /// FQ-CoDel buffer in the discipline and trickle-feed the contender.
    QdiscConfig qdisc;
  };

  AccessPoint(Channel& channel, Config config);

  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  /// Registers a station in this BSS (done by Station's constructor and by
  /// Station::Roam).
  void AttachStation(Station* station);

  /// Removes a station from this BSS (handoff). Frames already queued for
  /// it keep draining over the air (the station may still hear them, as
  /// during a real roam); new wired-side packets for it become unroutable
  /// here until upstream routing converges on the new AP.
  void DetachStation(Station* station);

  /// Wired-side ingress: routes the packet onto the downlink queue chosen by
  /// its TOS byte (or Best Effort when WMM is off). Unknown destinations are
  /// counted and dropped.
  void DeliverFromWan(net::Packet packet);

  /// Installs the wired-side egress used for packets whose destination is
  /// not in this BSS (uplink traffic to servers).
  void SetWanForwarder(std::function<void(net::Packet)> forwarder);

  /// Fault hook: overrides the downlink TOS→AC classification per packet.
  /// Receives the AC the normal path chose and returns the AC to enqueue
  /// on — how faults::FaultInjector realizes a "WMM-partial" AP that only
  /// sometimes honours priority (paper Section 5.5's adversary).
  using DownlinkClassifier = std::function<AccessCategory(
      const net::Packet& packet, AccessCategory chosen)>;
  void SetDownlinkClassifier(DownlinkClassifier classifier);

  /// Enables per-station ARF rate adaptation on the downlink: the AP learns
  /// each station's sustainable MCS from frame outcomes instead of using
  /// the station's configured rate.
  void EnableRateAdaptation(ArfPolicy::Config config = {});

  /// The ARF policy serving `station`, or nullptr (disabled / never sent).
  [[nodiscard]] const ArfPolicy* ArfFor(net::Address station) const;

  /// Attaches a flight recorder to the AP and its queue disciplines:
  /// unroutable drops, per-AC retry drops, and qdisc drops get recorded.
  /// Binding the TxFeedback hooks (needed for retry-drop visibility) is
  /// behaviour-neutral — the DropTail OnTxComplete is a no-op — so attaching
  /// a recorder never perturbs the simulation itself. Null detaches.
  void SetFlightRecorder(obs::FlightRecorder* recorder);

  /// Ground truth: frames waiting in one downlink AC queue (includes the
  /// frame currently contending, as a standing queue would).
  [[nodiscard]] std::size_t DownlinkQueueLength(AccessCategory ac) const;
  /// Sum over all ACs.
  [[nodiscard]] std::size_t TotalDownlinkQueueLength() const;

  [[nodiscard]] std::uint64_t downlink_queue_drops() const;
  /// Per-AC observability accessors: tail drops, retry-limit drops, and
  /// frames delivered on one downlink queue. Queue drops include the
  /// discipline's overflow drops (for DropTail those are the contender
  /// ring's tail drops, exactly as before).
  [[nodiscard]] std::uint64_t DownlinkQueueDrops(AccessCategory ac) const;
  [[nodiscard]] std::uint64_t DownlinkRetryDrops(AccessCategory ac) const;
  [[nodiscard]] std::uint64_t DownlinkDelivered(AccessCategory ac) const;
  /// The queue discipline serving one downlink AC (stats + sojourn sketch).
  [[nodiscard]] const QueueDiscipline& DownlinkQdisc(AccessCategory ac) const {
    return *qdisc_[Index(ac)];
  }
  [[nodiscard]] std::uint64_t unroutable_drops() const {
    return unroutable_drops_;
  }
  [[nodiscard]] std::uint64_t echo_replies_sent() const {
    return echo_replies_sent_;
  }

  [[nodiscard]] net::Address address() const { return config_.address; }
  [[nodiscard]] OwnerId owner() const { return owner_; }
  [[nodiscard]] Band band() const { return config_.band; }
  [[nodiscard]] bool wmm_enabled() const { return config_.wmm_enabled; }
  [[nodiscard]] Channel& channel() { return channel_; }

 private:
  /// Per-AC TxFeedback shim: Channel's feedback hook carries no AC, so each
  /// AC binds its own little member-function target that forwards with its
  /// index. One hook fans out to rate adaptation and the queue discipline.
  struct AcTxHook {
    AccessPoint* ap = nullptr;
    int ac = 0;
    void OnOutcome(const Frame& frame, bool delivered, int attempts);
  };

  void OnUplinkFrame(Frame&& frame);
  void OnDownlinkTxOutcome(int ac, const Frame& frame, bool delivered,
                           int attempts);
  void EnqueueDownlink(net::Packet&& packet);
  /// Binds the per-AC TxFeedback hooks (idempotent). Done eagerly for AQM
  /// disciplines, lazily by EnableRateAdaptation for the DropTail path so
  /// the seed configuration leaves the feedback slot null, as before.
  void BindTxHooks();

  Channel& channel_;
  Config config_;
  OwnerId owner_;
  std::array<ContenderId, kNumAccessCategories> downlink_;
  std::array<std::unique_ptr<QueueDiscipline>, kNumAccessCategories> qdisc_;
  std::array<AcTxHook, kNumAccessCategories> tx_hooks_;
  bool tx_hooks_bound_ = false;
  std::unordered_map<net::Address, Station*> stations_;
  std::function<void(net::Packet)> wan_forwarder_;
  DownlinkClassifier downlink_classifier_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint64_t unroutable_drops_ = 0;
  std::uint64_t echo_replies_sent_ = 0;
  bool arf_enabled_ = false;
  ArfPolicy::Config arf_config_;
  std::unordered_map<net::Address, std::unique_ptr<ArfPolicy>> arf_;
};

}  // namespace kwikr::wifi
