#include "wifi/rate_table.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace kwikr::wifi {
namespace {

// 802.11n MCS 0-7, one spatial stream, 20 MHz, 800 ns GI.
constexpr std::array<std::int64_t, 8> kRates24 = {
    6'500'000,  13'000'000, 19'500'000, 26'000'000,
    39'000'000, 52'000'000, 58'500'000, 65'000'000};

// 5 GHz: 40 MHz channel doubles throughput per MCS.
constexpr std::array<std::int64_t, 8> kRates5 = {
    13'500'000, 27'000'000,  40'500'000,  54'000'000,
    81'000'000, 108'000'000, 121'500'000, 135'000'000};

}  // namespace

std::span<const std::int64_t> McsRates(Band band) {
  return band == Band::k2_4GHz ? std::span<const std::int64_t>(kRates24)
                               : std::span<const std::int64_t>(kRates5);
}

std::int64_t MaxRate(Band band) { return McsRates(band).back(); }

LinkQuality LinkQualityAtDistance(Band band, double distance_m) {
  const auto rates = McsRates(band);
  // Log-distance path loss mapped onto MCS steps: full rate within 5 m,
  // dropping one MCS roughly every 6 dB of additional loss. 5 GHz attenuates
  // faster (higher path-loss exponent indoors).
  const double d = std::max(distance_m, 1.0);
  const double exponent = band == Band::k2_4GHz ? 3.0 : 3.5;
  const double loss_db = 10.0 * exponent * std::log10(d / 5.0);
  int mcs = static_cast<int>(rates.size()) - 1;
  if (loss_db > 0.0) {
    mcs -= static_cast<int>(loss_db / 6.0);
  }
  mcs = std::clamp(mcs, 0, static_cast<int>(rates.size()) - 1);

  // Error probability: negligible when link margin is comfortable, ramping
  // toward 0.5 at the edge of the lowest MCS.
  double error = 0.0;
  if (loss_db > 0.0) {
    const double margin_used = loss_db / (6.0 * static_cast<double>(rates.size()));
    error = std::clamp(margin_used * margin_used * 2.0, 0.0, 0.5);
  }
  return LinkQuality{rates[static_cast<std::size_t>(mcs)], error};
}

}  // namespace kwikr::wifi
