#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "obs/flight_recorder.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "wifi/channel.h"

namespace kwikr::wifi {

/// Queue disciplines for the AP downlink (the paper's bottleneck). DropTail
/// is the seed behaviour; CoDel and FQ-CoDel are the 2026 bottleneck the
/// CC×qdisc grid interrogates.
enum class QdiscKind : std::uint8_t {
  kDropTail,  ///< bounded FIFO, tail drop (byte-identical to the seed).
  kCoDel,     ///< sojourn-time AQM (RFC 8289).
  kFqCoDel,   ///< DRR flow isolation + per-flow CoDel (RFC 8290).
};

/// Schedule name of a discipline ("droptail", "codel", "fq_codel").
const char* Name(QdiscKind kind);

/// Parses a schedule name (accepts "fq_codel", "fq-codel", "fqcodel").
bool ParseQdiscKind(std::string_view text, QdiscKind* out);

struct QdiscConfig {
  QdiscKind kind = QdiscKind::kDropTail;
  sim::Duration target = sim::Millis(5);      ///< CoDel sojourn target.
  sim::Duration interval = sim::Millis(100);  ///< CoDel sliding interval.
  std::uint32_t flows = 64;          ///< FQ-CoDel hash buckets.
  std::int64_t quantum_bytes = 1514; ///< FQ-CoDel DRR quantum (one MTU).
  /// FQ hash perturbation. Derive from sim::Rng::Fork (scenario layer does)
  /// so fleet-sharded runs stay bit-identical; never seed from wall clock.
  std::uint64_t hash_seed = 0;
  /// AQM disciplines keep at most this many frames down in the channel
  /// contender ("hardware") queue; the rest wait in the qdisc where sojourn
  /// time is measured. Two keeps the contender busy with no airtime gap.
  std::size_t hw_limit = 2;
};

/// Interface over the AP downlink enqueue path of one access category.
///
/// The discipline sits between TOS classification and the channel contender
/// queue. DropTail forwards straight through (no buffering, no events — the
/// seed fast path, byte-identical). AQM disciplines buffer frames in their
/// own sim::FrameRing storage, feed the contender a trickle of hw_limit
/// frames, and decide drops from sojourn time at dequeue.
///
/// Re-entrancy contract: OnTxComplete is invoked from inside the channel's
/// TxFeedback dispatch, where the contender ring's front() reference is
/// live — implementations must NOT call Channel::Enqueue synchronously from
/// it (a ring Grow() would dangle that reference). Defer via a scheduled
/// event; see AqmQdiscBase.
class QueueDiscipline {
 public:
  QueueDiscipline(Channel& channel, ContenderId contender, QdiscConfig config,
                  std::size_t capacity_frames)
      : channel_(channel),
        contender_(contender),
        config_(config),
        capacity_(capacity_frames),
        sojourn_ms_(stats::Histogram::Config{0.0, 1000.0, 256}) {}

  QueueDiscipline(const QueueDiscipline&) = delete;
  QueueDiscipline& operator=(const QueueDiscipline&) = delete;
  virtual ~QueueDiscipline() = default;

  /// A classified downlink frame. Must not be called from inside a channel
  /// hook (the AP's ingress paths are event contexts, which is fine).
  virtual void Enqueue(Frame&& frame) = 0;

  /// One frame left the head of this contender's channel queue (delivered
  /// or retry-dropped). Called from TxFeedback — see re-entrancy contract.
  virtual void OnTxComplete() {}

  /// Frames buffered inside the discipline (excludes the channel queue).
  [[nodiscard]] virtual std::size_t backlog() const { return 0; }

  [[nodiscard]] virtual const char* name() const = 0;

  /// Frames accepted from the classifier.
  [[nodiscard]] std::uint64_t enqueued() const { return enqueued_; }
  /// Frames handed to the channel contender.
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  /// Frames dropped by the AQM control law (sojourn above target).
  [[nodiscard]] std::uint64_t aqm_drops() const { return aqm_drops_; }
  /// Frames dropped because the discipline's buffer was full.
  [[nodiscard]] std::uint64_t overflow_drops() const {
    return overflow_drops_;
  }
  /// Sojourn time (ms) spent inside the discipline, recorded at dequeue.
  [[nodiscard]] const stats::Histogram& sojourn_ms() const {
    return sojourn_ms_;
  }
  /// Most recent dequeue sojourn (ms) — the timeline sampler's probe
  /// surface (the histogram has no "latest" notion).
  [[nodiscard]] double last_sojourn_ms() const { return last_sojourn_ms_; }

  /// Attaches a flight recorder; drops recorded here carry `tag` (the AC
  /// index, by AP convention). Null detaches — the detached drop paths stay
  /// a single null check.
  void SetFlightRecorder(obs::FlightRecorder* recorder, std::uint8_t tag) {
    recorder_ = recorder;
    recorder_tag_ = tag;
  }

 protected:
  /// Hands a frame to the channel contender; false = contender ring full.
  bool Feed(Frame&& frame) {
    if (!channel_.Enqueue(contender_, std::move(frame))) return false;
    ++forwarded_;
    return true;
  }

  /// Counting helpers: every drop/sojourn site funnels through these so the
  /// flight-recorder hook lives in exactly one place per event kind.
  void RecordSojourn(double ms) {
    last_sojourn_ms_ = ms;
    sojourn_ms_.Add(ms);
  }
  void NoteAqmDrop() {
    ++aqm_drops_;
    if (recorder_ != nullptr) {
      recorder_->Record(channel_.loop().now(),
                        obs::FlightEventKind::kQdiscAqmDrop, recorder_tag_,
                        aqm_drops_);
    }
  }
  void NoteOverflowDrop() {
    ++overflow_drops_;
    if (recorder_ != nullptr) {
      recorder_->Record(channel_.loop().now(),
                        obs::FlightEventKind::kQdiscOverflowDrop,
                        recorder_tag_, overflow_drops_);
    }
  }
  void NoteTailDrop() {
    if (recorder_ != nullptr) {
      recorder_->Record(channel_.loop().now(), obs::FlightEventKind::kFrameDrop,
                        recorder_tag_);
    }
  }

  Channel& channel_;
  const ContenderId contender_;
  const QdiscConfig config_;
  const std::size_t capacity_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t aqm_drops_ = 0;
  std::uint64_t overflow_drops_ = 0;
  double last_sojourn_ms_ = 0.0;
  stats::Histogram sojourn_ms_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint8_t recorder_tag_ = 0;
};

/// Builds the configured discipline over (channel, contender).
/// `capacity_frames` is the AC's queue bound: for DropTail it is enforced by
/// the contender ring exactly as before; AQM disciplines enforce it on their
/// internal buffer instead. Never returns null.
std::unique_ptr<QueueDiscipline> MakeQueueDiscipline(
    Channel& channel, ContenderId contender, QdiscConfig config,
    std::size_t capacity_frames);

}  // namespace kwikr::wifi
