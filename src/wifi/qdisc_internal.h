#pragma once

// Internal machinery shared by the AQM queue disciplines (codel.cc,
// fq_codel.cc): the timestamped buffer entry, the hardware-queue trickle
// base class, and the RFC 8289 CoDel dropping state machine.

#include <cmath>
#include <optional>

#include "sim/event_loop.h"
#include "sim/time.h"
#include "wifi/queue_discipline.h"

namespace kwikr::wifi::detail {

/// wifi::Frame must stay trivially copyable and within the InlineTask size
/// budget, so the sojourn timestamp AQM needs lives here, in qdisc-internal
/// storage, not on the Frame itself.
struct Entry {
  Frame frame;
  sim::Time enqueued_at = 0;
};

/// Base for buffering disciplines: keeps at most hw_limit frames down in
/// the channel contender queue and tops it up as transmissions complete.
/// The refill after OnTxComplete is deferred through a zero-delay event
/// because TxFeedback fires while the contender ring's front() reference is
/// live (see QueueDiscipline's re-entrancy contract); the refill from
/// Enqueue is synchronous, as AP ingress runs in plain event context.
class AqmQdiscBase : public QueueDiscipline {
 public:
  using QueueDiscipline::QueueDiscipline;

  void Enqueue(Frame&& frame) final {
    ++enqueued_;
    Admit(Entry{std::move(frame), channel_.loop().now()});
    Refill();
  }

  void OnTxComplete() final {
    if (in_hw_ > 0) --in_hw_;
    if (refill_pending_) return;
    refill_pending_ = true;
    channel_.loop().ScheduleAt(channel_.loop().now(), "wifi.qdisc_refill",
                               [this] {
                                 refill_pending_ = false;
                                 Refill();
                               });
  }

 protected:
  /// Buffers the entry (dropping for overflow as the discipline dictates).
  virtual void Admit(Entry&& entry) = 0;
  /// Next frame to transmit after AQM drop decisions; nullopt = empty.
  virtual std::optional<Entry> Dequeue(sim::Time now) = 0;

  void Refill() {
    while (in_hw_ < config_.hw_limit) {
      auto entry = Dequeue(channel_.loop().now());
      if (!entry) break;
      RecordSojourn(
          sim::ToMillis(channel_.loop().now() - entry->enqueued_at));
      if (Feed(std::move(entry->frame))) {
        ++in_hw_;
      } else {
        NoteOverflowDrop();  // contender ring full (hw_limit misconfigured).
      }
    }
  }

 private:
  std::size_t in_hw_ = 0;
  bool refill_pending_ = false;
};

/// RFC 8289 CoDel dropping state for one queue. The queue itself is owned
/// by the caller and accessed through callables so both the single-queue
/// CoDel discipline and FQ-CoDel's per-flow queues reuse the same control
/// law:
///   pop()           -> std::optional<Entry>   removes + returns the head
///   backlog_bytes() -> std::int64_t           bytes still queued
///   drop(Entry&&)                             counts an AQM drop
struct CodelState {
  sim::Time first_above = 0;  ///< 0 = sojourn not persistently above target.
  sim::Time drop_next = 0;
  std::uint32_t count = 0;
  std::uint32_t last_count = 0;
  bool dropping = false;

  static sim::Time ControlLaw(sim::Time t, sim::Duration interval,
                              std::uint32_t count) {
    return t + static_cast<sim::Duration>(
                   static_cast<double>(interval) /
                   std::sqrt(static_cast<double>(count)));
  }

  template <typename PopFn, typename BacklogBytesFn, typename DropFn>
  std::optional<Entry> Dequeue(sim::Time now, sim::Duration target,
                               sim::Duration interval,
                               std::int64_t mtu_bytes, PopFn&& pop,
                               BacklogBytesFn&& backlog_bytes,
                               DropFn&& drop) {
    bool ok_to_drop = false;
    auto dodequeue = [&]() -> std::optional<Entry> {
      auto entry = pop();
      if (!entry) {
        first_above = 0;
        ok_to_drop = false;
        return entry;
      }
      const sim::Duration sojourn = now - entry->enqueued_at;
      if (sojourn < target || backlog_bytes() <= mtu_bytes) {
        // Below target (or the queue can drain within a frame): leave the
        // dropping window.
        first_above = 0;
        ok_to_drop = false;
      } else if (first_above == 0) {
        first_above = now + interval;
        ok_to_drop = false;
      } else {
        ok_to_drop = now >= first_above;
      }
      return entry;
    };

    auto entry = dodequeue();
    if (!entry) {
      dropping = false;
      return entry;
    }
    if (dropping) {
      if (!ok_to_drop) {
        dropping = false;
      } else {
        while (dropping && now >= drop_next) {
          ++count;
          drop(std::move(*entry));
          entry = dodequeue();
          if (!entry) {
            dropping = false;
            return entry;
          }
          if (!ok_to_drop) {
            dropping = false;
          } else {
            drop_next = ControlLaw(drop_next, interval, count);
          }
        }
      }
    } else if (ok_to_drop) {
      // Enter the dropping state with the re-entry shortcut: resume near
      // the drop rate that last controlled the queue.
      drop(std::move(*entry));
      entry = dodequeue();
      if (!entry) {
        dropping = false;
        return entry;
      }
      dropping = true;
      const std::uint32_t delta = count - last_count;
      count = (delta > 1 && now - drop_next < 16 * interval) ? delta : 1;
      last_count = count;
      drop_next = ControlLaw(now, interval, count);
    }
    return entry;
  }
};

}  // namespace kwikr::wifi::detail
