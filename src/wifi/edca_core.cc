#include "wifi/edca_core.h"

#include <algorithm>
#include <cassert>

namespace kwikr::wifi {

ContenderId EdcaCore::Add(sim::Duration aifs, int cw_min, int cw_max) {
  base_.push_back(0);
  backoff_.push_back(-1);
  cw_.push_back(cw_min);
  counting_.push_back(0);
  aifs_.push_back(aifs);
  cw_min_.push_back(cw_min);
  cw_max_.push_back(cw_max);
  in_backlog_.push_back(0);
  stamp_.push_back(0);
  cand_.push_back(0);
  return static_cast<ContenderId>(backoff_.size() - 1);
}

void EdcaCore::Join(ContenderId id, sim::Time now, bool medium_idle) {
  assert(id < size());
  ++stamp_[id];
  in_backlog_[id] = 1;
  ++live_;
  backlogged_.push_back(BacklogEntry{id, stamp_[id]});
  backoff_[id] = -1;  // fresh draw at the next sweep.
  cw_[id] = cw_min_[id];
  if (medium_idle) {
    base_[id] = now + aifs_[id];
    counting_[id] = 1;
  } else {
    counting_[id] = 0;  // countdown starts at the next idle transition.
  }
}

void EdcaCore::Leave(ContenderId id) {
  assert(in_backlog_[id] != 0);
  in_backlog_[id] = 0;
  --live_;
  counting_[id] = 0;
}

sim::Time EdcaCore::BeginIdle(sim::Time now, sim::Rng& rng) {
  // Scalar pass: restart every backlogged countdown and draw missing
  // backoffs in backlog order (the draw order is contractual — see the
  // class comment).
  const std::size_t n = CompactBacklog([&](ContenderId id) {
    base_[id] = now + aifs_[id];
    counting_[id] = 1;
    DrawIfNeeded(id, rng);
  });
  // Branchless pass: one batched candidate computation + min-scan. Every
  // live contender is counting here, so no mask is needed.
  sim::Time earliest = kNoCandidate;
  for (std::size_t i = 0; i < n; ++i) {
    const ContenderId id = backlogged_[i].id;
    const sim::Time cand =
        base_[id] + static_cast<sim::Duration>(backoff_[id]) * slot_;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

sim::Time EdcaCore::EarliestCandidate(sim::Rng& rng) {
  const std::size_t n = CompactBacklog([&](ContenderId id) {
    if (counting_[id] != 0) DrawIfNeeded(id, rng);
  });
  // Batched candidate + min-scan, masking out non-counting contenders with
  // a conditional move (their base/backoff may be stale but are always
  // initialized, so the dead lane's arithmetic is well-defined).
  sim::Time earliest = kNoCandidate;
  for (std::size_t i = 0; i < n; ++i) {
    const ContenderId id = backlogged_[i].id;
    sim::Time cand =
        base_[id] + static_cast<sim::Duration>(backoff_[id]) * slot_;
    cand = counting_[id] != 0 ? cand : kNoCandidate;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

void EdcaCore::Arbitrate(sim::Time start, std::vector<ContenderId>& winners) {
  // Pass 1 (scalar): compact, batch-compute candidate times into the cand_
  // column, and collect the winners in backlog order. Counting contenders
  // always have a drawn backoff here (the sweep that armed this arbitration
  // drew them).
  const std::size_t n = CompactBacklog([&](ContenderId id) {
    const sim::Time cand =
        base_[id] + static_cast<sim::Duration>(backoff_[id]) * slot_;
    cand_[id] = cand;
    if (counting_[id] != 0 && cand == start) winners.push_back(id);
  });
  // Pass 2 (branchless): freeze every counting non-winner — decrement its
  // backoff by the idle slots consumed before `start` and stop its
  // countdown; winners keep counting, non-counting lanes are untouched.
  // The slot division is a FastDiv multiply, exact by construction.
  for (std::size_t i = 0; i < n; ++i) {
    const ContenderId id = backlogged_[i].id;
    const bool was_counting = counting_[id] != 0;
    const bool winner = cand_[id] == start;
    const sim::Duration delta = start - base_[id];
    const auto consumed = static_cast<std::int32_t>(
        delta > 0 ? slot_div_.Divide(delta) : 0);
    const std::int32_t frozen = std::max(0, backoff_[id] - consumed);
    backoff_[id] = (was_counting && !winner) ? frozen : backoff_[id];
    counting_[id] = static_cast<std::uint8_t>(was_counting && winner);
  }
}

void EdcaCore::OnTxSuccess(ContenderId id) {
  cw_[id] = cw_min_[id];
  backoff_[id] = -1;  // post-transmission backoff: fresh draw.
}

void EdcaCore::OnTxFailure(ContenderId id) {
  cw_[id] = std::min(cw_[id] * 2 + 1, cw_max_[id]);
  backoff_[id] = -1;  // fresh draw from the doubled window.
  counting_[id] = 0;  // resumes at the next idle transition.
}

void EdcaCore::OnRetryDrop(ContenderId id) {
  cw_[id] = cw_min_[id];
  backoff_[id] = -1;
}

}  // namespace kwikr::wifi
