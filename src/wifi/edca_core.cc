#include "wifi/edca_core.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "wifi/edca_simd.h"

namespace kwikr::wifi {

EdcaCore::EdcaCore(sim::Duration slot) : slot_(slot), slot_div_(slot) {
  SetSimdEnabled(edca_simd::kHaveSimd &&
                 std::getenv("KWIKR_EDCA_NO_SIMD") == nullptr);
}

void EdcaCore::SetSimdEnabled(bool enabled) {
  simd_enabled_ = enabled;
  // Value-range gates (see wifi/edca_simd.h): the min-scan multiplies
  // backoff (u32) by slot (must fit u32); the freeze kernel replays the
  // FastDiv multiply-shift with a 32x32->64 lane multiply, so the magic must
  // exist and fit u32 (slot >= 2^8 with the 2^40 shift). Default WMM timing
  // (slot = 9000 ns, magic ~ 1.22e8) passes both.
  simd_ok_ = simd_enabled_ && edca_simd::kHaveSimd && slot_ > 0 &&
             static_cast<std::uint64_t>(slot_) <= 0xFFFFFFFFull &&
             slot_div_.magic() != 0 && slot_div_.magic() <= 0xFFFFFFFFull;
}

ContenderId EdcaCore::Add(sim::Duration aifs, int cw_min, int cw_max) {
  base_.push_back(0);
  backoff_.push_back(-1);
  cw_.push_back(cw_min);
  counting_.push_back(0);
  aifs_.push_back(aifs);
  cw_min_.push_back(cw_min);
  cw_max_.push_back(cw_max);
  in_backlog_.push_back(0);
  stamp_.push_back(0);
  cand_.push_back(0);
  return static_cast<ContenderId>(backoff_.size() - 1);
}

void EdcaCore::Join(ContenderId id, sim::Time now, bool medium_idle) {
  assert(id < size());
  ++stamp_[id];
  in_backlog_[id] = 1;
  ++live_;
  backlogged_.push_back(BacklogEntry{id, stamp_[id]});
  backoff_[id] = -1;  // fresh draw at the next sweep.
  cw_[id] = cw_min_[id];
  if (medium_idle) {
    base_[id] = now + aifs_[id];
    counting_[id] = 1;
  } else {
    counting_[id] = 0;  // countdown starts at the next idle transition.
  }
}

void EdcaCore::Leave(ContenderId id) {
  assert(in_backlog_[id] != 0);
  in_backlog_[id] = 0;
  --live_;
  counting_[id] = 0;
}

sim::Time EdcaCore::BeginIdle(sim::Time now, sim::Rng& rng) {
  // Scalar pass: restart every backlogged countdown and draw missing
  // backoffs in backlog order (the draw order is contractual — see the
  // class comment).
  const std::size_t n = CompactBacklog([&](ContenderId id) {
    base_[id] = now + aifs_[id];
    counting_[id] = 1;
    DrawIfNeeded(id, rng);
  });
  // Batched candidate computation + min-scan. After the scalar pass the
  // counting flag marks exactly the live backlog members (counting implies
  // live — every Leave/OnTxFailure clears it), so the vector path can sweep
  // the full columns [0, size()) gather-free with counting_ as the mask and
  // compute the identical minimum; see wifi/edca_simd.h.
  if (UseSimd(n)) {
    return edca_simd::MinCandidateMasked(
        base_.data(), backoff_.data(), counting_.data(), size(),
        static_cast<std::uint32_t>(slot_));
  }
  // Scalar: every live contender is counting here, so no mask is needed.
  sim::Time earliest = kNoCandidate;
  for (std::size_t i = 0; i < n; ++i) {
    const ContenderId id = backlogged_[i].id;
    const sim::Time cand =
        base_[id] + static_cast<sim::Duration>(backoff_[id]) * slot_;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

sim::Time EdcaCore::EarliestCandidate(sim::Rng& rng) {
  const std::size_t n = CompactBacklog([&](ContenderId id) {
    if (counting_[id] != 0) DrawIfNeeded(id, rng);
  });
  // Batched candidate + min-scan, masking out non-counting contenders with
  // a conditional move (their base/backoff may be stale but are always
  // initialized, so the dead lane's arithmetic is well-defined). The vector
  // path sweeps the full columns with the same counting mask — counting
  // lanes are all live and freshly drawn, masked lanes contribute nothing.
  if (UseSimd(n)) {
    return edca_simd::MinCandidateMasked(
        base_.data(), backoff_.data(), counting_.data(), size(),
        static_cast<std::uint32_t>(slot_));
  }
  sim::Time earliest = kNoCandidate;
  for (std::size_t i = 0; i < n; ++i) {
    const ContenderId id = backlogged_[i].id;
    sim::Time cand =
        base_[id] + static_cast<sim::Duration>(backoff_[id]) * slot_;
    cand = counting_[id] != 0 ? cand : kNoCandidate;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

void EdcaCore::Arbitrate(sim::Time start, std::vector<ContenderId>& winners) {
  // Pass 1 (scalar): compact, batch-compute candidate times into the cand_
  // column, and collect the winners in backlog order. Counting contenders
  // always have a drawn backoff here (the sweep that armed this arbitration
  // drew them).
  // `wide` flags any live counting lane whose idle delta falls outside the
  // FastDiv fast window; the vector freeze replays the multiply-shift
  // unconditionally, so such a round must take the scalar pass (whose
  // Divide() falls back to the exact hardware divide).
  bool wide = false;
  const std::size_t n = CompactBacklog([&](ContenderId id) {
    const sim::Time cand =
        base_[id] + static_cast<sim::Duration>(backoff_[id]) * slot_;
    cand_[id] = cand;
    if (counting_[id] != 0) {
      if (cand == start) winners.push_back(id);
      wide |= start - base_[id] >= sim::FastDiv::kMaxFastDividend;
    }
  });
  // Pass 2 (branchless): freeze every counting non-winner — decrement its
  // backoff by the idle slots consumed before `start` and stop its
  // countdown; winners keep counting, non-counting lanes are untouched.
  // The slot division is a FastDiv multiply, exact by construction. The
  // vector path sweeps the full columns: non-counting lanes blend through
  // unchanged (stale cand_ entries are masked by the counting flag), and
  // every counting lane was refreshed by pass 1 above.
  if (!wide && UseSimd(n)) {
    edca_simd::FreezeColumns(start, base_.data(), cand_.data(),
                             backoff_.data(), counting_.data(), size(),
                             slot_div_.magic());
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const ContenderId id = backlogged_[i].id;
    const bool was_counting = counting_[id] != 0;
    const bool winner = cand_[id] == start;
    const sim::Duration delta = start - base_[id];
    const auto consumed = static_cast<std::int32_t>(
        delta > 0 ? slot_div_.Divide(delta) : 0);
    const std::int32_t frozen = std::max(0, backoff_[id] - consumed);
    backoff_[id] = (was_counting && !winner) ? frozen : backoff_[id];
    counting_[id] = static_cast<std::uint8_t>(was_counting && winner);
  }
}

void EdcaCore::OnTxSuccess(ContenderId id) {
  cw_[id] = cw_min_[id];
  backoff_[id] = -1;  // post-transmission backoff: fresh draw.
}

void EdcaCore::OnTxFailure(ContenderId id) {
  cw_[id] = std::min(cw_[id] * 2 + 1, cw_max_[id]);
  backoff_[id] = -1;  // fresh draw from the doubled window.
  counting_[id] = 0;  // resumes at the next idle transition.
}

void EdcaCore::OnRetryDrop(ContenderId id) {
  cw_[id] = cw_min_[id];
  backoff_[id] = -1;
}

}  // namespace kwikr::wifi
