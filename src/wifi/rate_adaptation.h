#pragma once

#include <cstdint>
#include <span>

#include "wifi/rate_table.h"

namespace kwikr::wifi {

/// Per-attempt frame error probability when transmitting at `rate_bps` to a
/// receiver `distance_m` away. Monotone: faster rates and longer distances
/// are more fragile. Complements LinkQualityAtDistance (which returns the
/// rate a perfect controller would pick): this is the surface a rate
///-adaptation algorithm actually explores.
double ErrorProbForRate(Band band, double distance_m, std::int64_t rate_bps);

/// Classic ARF (Automatic Rate Fallback) over an MCS table:
///  * `up_after` consecutive clean first-attempt deliveries step the rate up
///    (the first frame after a step-up is a probe — if it fails, step back
///    immediately);
///  * `down_after` consecutive failed/retried frames step the rate down.
///
/// The transmitter feeds every frame outcome via OnOutcome; the simulator
/// wires this to the Channel's per-contender TX feedback.
class ArfPolicy {
 public:
  struct Config {
    int up_after = 10;
    int down_after = 2;
  };

  ArfPolicy(std::span<const std::int64_t> rates, std::size_t initial_index);
  ArfPolicy(std::span<const std::int64_t> rates, std::size_t initial_index,
            Config config);

  /// @param delivered frame eventually ACKed.
  /// @param attempts link-layer transmissions used (1 = clean).
  void OnOutcome(bool delivered, int attempts);

  [[nodiscard]] std::int64_t rate_bps() const { return rates_[index_]; }
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] std::int64_t steps_up() const { return steps_up_; }
  [[nodiscard]] std::int64_t steps_down() const { return steps_down_; }

 private:
  void StepDown();

  std::span<const std::int64_t> rates_;
  std::size_t index_;
  Config config_;
  int successes_ = 0;
  int failures_ = 0;
  bool probing_ = false;  ///< first frame after a step-up.
  std::int64_t steps_up_ = 0;
  std::int64_t steps_down_ = 0;
};

}  // namespace kwikr::wifi
