#include <memory>
#include <optional>
#include <utility>

#include "sim/frame_ring.h"
#include "wifi/qdisc_internal.h"
#include "wifi/queue_discipline.h"

namespace kwikr::wifi {
namespace {

/// CoDel (RFC 8289) over a single FIFO: frames queue in arrival order, and
/// the dequeue path drops from the head — at a rate that increases as
/// sqrt(count) — while the head sojourn time has stayed above target for a
/// full interval. Unlike drop-tail it pushes back on *standing* queues
/// specifically, which is exactly the component Ping-Pair's Tq measures.
class CoDelQdisc final : public detail::AqmQdiscBase {
 public:
  CoDelQdisc(Channel& channel, ContenderId contender, QdiscConfig config,
             std::size_t capacity_frames)
      : AqmQdiscBase(channel, contender, config, capacity_frames),
        ring_(capacity_frames) {}

  [[nodiscard]] std::size_t backlog() const override { return ring_.size(); }
  [[nodiscard]] const char* name() const override { return "codel"; }

 protected:
  void Admit(detail::Entry&& entry) override {
    const std::int64_t bytes = entry.frame.packet.size_bytes;
    if (!ring_.push_back(std::move(entry))) {
      NoteOverflowDrop();  // push_back refused: entry untouched, frame lost.
      return;
    }
    backlog_bytes_ += bytes;
  }

  std::optional<detail::Entry> Dequeue(sim::Time now) override {
    return codel_.Dequeue(
        now, config_.target, config_.interval, kMtuBytes,
        [this]() -> std::optional<detail::Entry> {
          if (ring_.empty()) return std::nullopt;
          detail::Entry entry = std::move(ring_.front());
          ring_.pop_front();
          backlog_bytes_ -= entry.frame.packet.size_bytes;
          return entry;
        },
        [this] { return backlog_bytes_; },
        [this](detail::Entry&& dropped) {
          NoteAqmDrop();
          RecordSojourn(sim::ToMillis(channel_.loop().now() -
                                      dropped.enqueued_at));
        });
  }

 private:
  static constexpr std::int64_t kMtuBytes = 1514;

  sim::FrameRing<detail::Entry> ring_;
  std::int64_t backlog_bytes_ = 0;
  detail::CodelState codel_;
};

}  // namespace

namespace detail {
std::unique_ptr<QueueDiscipline> MakeCoDelQdisc(Channel& channel,
                                                ContenderId contender,
                                                QdiscConfig config,
                                                std::size_t capacity_frames) {
  return std::make_unique<CoDelQdisc>(channel, contender, config,
                                      capacity_frames);
}
}  // namespace detail

}  // namespace kwikr::wifi
