#include "wifi/queue_discipline.h"

#include <memory>
#include <utility>

namespace kwikr::wifi {

namespace detail {
std::unique_ptr<QueueDiscipline> MakeCoDelQdisc(Channel& channel,
                                                ContenderId contender,
                                                QdiscConfig config,
                                                std::size_t capacity_frames);
std::unique_ptr<QueueDiscipline> MakeFqCoDelQdisc(Channel& channel,
                                                  ContenderId contender,
                                                  QdiscConfig config,
                                                  std::size_t capacity_frames);
}  // namespace detail

const char* Name(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kDropTail:
      return "droptail";
    case QdiscKind::kCoDel:
      return "codel";
    case QdiscKind::kFqCoDel:
      return "fq_codel";
  }
  return "unknown";
}

bool ParseQdiscKind(std::string_view text, QdiscKind* out) {
  if (text == "droptail") {
    *out = QdiscKind::kDropTail;
  } else if (text == "codel") {
    *out = QdiscKind::kCoDel;
  } else if (text == "fq_codel" || text == "fq-codel" || text == "fqcodel") {
    *out = QdiscKind::kFqCoDel;
  } else {
    return false;
  }
  return true;
}

namespace {

/// The seed behaviour: forward straight into the contender ring, which
/// already implements bounded-FIFO tail drop. No buffering, no timestamps,
/// no events — the frame takes exactly the code path it took before the
/// QueueDiscipline extraction, so Reno-over-DropTail runs stay
/// byte-identical.
class DropTailQdisc final : public QueueDiscipline {
 public:
  using QueueDiscipline::QueueDiscipline;

  void Enqueue(Frame&& frame) override {
    ++enqueued_;
    // false = contender counted a tail drop; the recorder (when attached)
    // wants the event too.
    if (!Feed(std::move(frame))) NoteTailDrop();
  }

  [[nodiscard]] const char* name() const override { return "droptail"; }
};

}  // namespace

std::unique_ptr<QueueDiscipline> MakeQueueDiscipline(
    Channel& channel, ContenderId contender, QdiscConfig config,
    std::size_t capacity_frames) {
  switch (config.kind) {
    case QdiscKind::kCoDel:
      return detail::MakeCoDelQdisc(channel, contender, config,
                                    capacity_frames);
    case QdiscKind::kFqCoDel:
      return detail::MakeFqCoDelQdisc(channel, contender, config,
                                      capacity_frames);
    case QdiscKind::kDropTail:
      break;
  }
  return std::make_unique<DropTailQdisc>(channel, contender, config,
                                         capacity_frames);
}

}  // namespace kwikr::wifi
