#pragma once

#include <array>
#include <cstdint>

#include "sim/time.h"

namespace kwikr::wifi {

/// 802.11e / WMM access categories, in increasing priority order
/// (paper Section 5.1).
enum class AccessCategory : std::uint8_t {
  kBackground = 0,
  kBestEffort = 1,
  kVideo = 2,
  kVoice = 3,
};
inline constexpr int kNumAccessCategories = 4;

constexpr int Index(AccessCategory ac) { return static_cast<int>(ac); }

const char* Name(AccessCategory ac);

/// EDCA contention parameters for one access category.
struct EdcaParams {
  int aifsn = 3;     ///< AIFS = SIFS + aifsn * slot.
  int cw_min = 15;   ///< initial contention window (slots).
  int cw_max = 1023; ///< cap for exponential backoff.
  /// Transmit-opportunity limit: once this AC wins the medium it may send
  /// further queued frames back-to-back (SIFS-separated) while their
  /// cumulative airtime stays within the limit. 0 = one frame per win
  /// (802.11 default for BE/BK; WMM grants VI/VO a burst).
  sim::Duration txop_limit = 0;
};

/// Standard WMM parameter set (802.11-2016 defaults for a station; the AP
/// side uses slightly smaller windows in the standard, but the station set is
/// the conventional simulation default). Includes the WMM TXOP limits
/// (VO 1.504 ms, VI 3.008 ms).
std::array<EdcaParams, kNumAccessCategories> DefaultEdcaParams();

/// Maps an IP TOS byte to the WMM access category, following the common
/// DSCP-precedence mapping used by APs: precedence 6-7 and DSCP EF -> Voice,
/// 4-5 -> Video, 1-2 -> Background, else Best Effort.
AccessCategory TosToAccessCategory(std::uint8_t tos);

/// PHY-level timing constants. Defaults approximate 802.11n.
struct PhyParams {
  sim::Duration slot = sim::Micros(9);
  sim::Duration sifs = sim::Micros(16);
  sim::Duration preamble = sim::Micros(20);       ///< PLCP preamble+header.
  sim::Duration ack_duration = sim::Micros(28);   ///< ACK at basic rate.
  std::int32_t mac_overhead_bytes = 34;           ///< MAC header + FCS.
  int retry_limit = 7;                            ///< attempts before drop.

  [[nodiscard]] sim::Duration Aifs(const EdcaParams& params) const {
    return sifs + params.aifsn * slot;
  }

  /// Total medium occupancy of one data frame attempt: preamble + payload at
  /// `rate_bps` + SIFS + ACK.
  [[nodiscard]] sim::Duration FrameAirtime(std::int32_t ip_bytes,
                                           std::int64_t rate_bps) const {
    const std::int64_t bits =
        static_cast<std::int64_t>(ip_bytes + mac_overhead_bytes) * 8;
    return preamble + sim::TransmissionTime(bits, rate_bps) + sifs +
           ack_duration;
  }

  /// Payload-only transmission time, as the paper's attribution formula uses
  /// (s_a / R, Section 5.3).
  [[nodiscard]] static sim::Duration PayloadTime(std::int32_t ip_bytes,
                                                 std::int64_t rate_bps) {
    return sim::TransmissionTime(static_cast<std::int64_t>(ip_bytes) * 8,
                                 rate_bps);
  }
};

}  // namespace kwikr::wifi
