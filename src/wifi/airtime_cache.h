#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "wifi/edca.h"

namespace kwikr::wifi {

/// Shared (rate_bps, size_bytes) -> frame-airtime table for wifi::Channel.
///
/// PhyParams::FrameAirtime is a pure function, so this cache can never change
/// behaviour — only skip the TransmissionTime division. It replaces the old
/// per-contender one-entry memo, which thrashed whenever two frame shapes
/// alternated on one contender (rate-adaptation ladder walks) and recomputed
/// the same shape once per contender in multi-station scenarios. A run's
/// distinct frame shapes number in the dozens (payload sizes x rate ladder
/// steps), so a small fixed table holds the entire working set.
///
/// Layout: open-addressed, power-of-two sized, linear probe of at most
/// kProbeLimit slots, then a deterministic overwrite of the home slot (the
/// eviction victim depends only on the key sequence — determinism is free
/// because values are pure anyway, but keeping the *cost* sequence
/// deterministic keeps wall-clock profiles reproducible). rate_bps == 0 marks
/// an empty slot (a 0 bps rate is not transmittable). Storage is sized once
/// at construction and never reallocates: the steady-state frame cycle stays
/// zero-allocation (bench/micro_channel's operator-new counter enforces it).
class AirtimeCache {
 public:
  static constexpr std::size_t kDefaultSlots = 256;
  static constexpr std::size_t kProbeLimit = 4;

  explicit AirtimeCache(const PhyParams& phy,
                        std::size_t slots = kDefaultSlots)
      : phy_(&phy), mask_(RoundUpPow2(slots) - 1), table_(mask_ + 1) {}

  /// Airtime of a frame shape, computed at most once per shape per eviction
  /// lifetime. Always equals phy.FrameAirtime(size_bytes, rate_bps).
  ///
  /// A one-entry front memo short-circuits the hash for back-to-back
  /// lookups of one shape — the TXOP-burst pattern, where the same queue
  /// head shape is probed once per continuation. Unlike the retired
  /// per-contender memo this sits in FRONT of the shared table, so
  /// alternating shapes fall through to their table slots instead of
  /// recomputing the PHY division.
  [[nodiscard]] sim::Duration Lookup(std::int32_t size_bytes,
                                     std::int64_t rate_bps) {
    if (last_rate_bps_ == rate_bps && last_size_bytes_ == size_bytes) {
      ++hits_;
      return last_airtime_;
    }
    const sim::Duration airtime = LookupTable(size_bytes, rate_bps);
    last_rate_bps_ = rate_bps;
    last_size_bytes_ = size_bytes;
    last_airtime_ = airtime;
    return airtime;
  }

  /// Table path behind the front memo (hash + bounded linear probe).
  [[nodiscard]] sim::Duration LookupTable(std::int32_t size_bytes,
                                          std::int64_t rate_bps) {
    const std::size_t home = Hash(size_bytes, rate_bps) & mask_;
    std::size_t idx = home;
    for (std::size_t probe = 0; probe < kProbeLimit; ++probe) {
      Entry& e = table_[idx];
      if (e.rate_bps == rate_bps && e.size_bytes == size_bytes) {
        ++hits_;
        return e.airtime;
      }
      if (e.rate_bps == 0) {
        ++misses_;
        e.rate_bps = rate_bps;
        e.size_bytes = size_bytes;
        e.airtime = phy_->FrameAirtime(size_bytes, rate_bps);
        return e.airtime;
      }
      idx = (idx + 1) & mask_;
    }
    // Probe run exhausted: overwrite the home slot. Deterministic, and the
    // displaced shape simply recomputes on its next appearance.
    ++misses_;
    ++evictions_;
    Entry& e = table_[home];
    e.rate_bps = rate_bps;
    e.size_bytes = size_bytes;
    e.airtime = phy_->FrameAirtime(size_bytes, rate_bps);
    return e.airtime;
  }

  // Introspection (tests and the --breakdown bench record).
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t slots() const { return mask_ + 1; }

 private:
  struct Entry {
    std::int64_t rate_bps = 0;  ///< 0 = empty (rate 0 is untransmittable).
    std::int32_t size_bytes = 0;
    sim::Duration airtime = 0;
  };

  static std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  static std::uint64_t Hash(std::int32_t size_bytes, std::int64_t rate_bps) {
    // SplitMix64-style finalizer over the packed key: both fields influence
    // every output bit, so ladder-adjacent rates don't cluster.
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(size_bytes))
                       << 32) ^
                      static_cast<std::uint64_t>(rate_bps);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  const PhyParams* phy_;
  std::size_t mask_;
  std::vector<Entry> table_;
  // One-entry front memo (see Lookup). rate 0 = empty, as in Entry.
  std::int64_t last_rate_bps_ = 0;
  std::int32_t last_size_bytes_ = 0;
  sim::Duration last_airtime_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace kwikr::wifi
