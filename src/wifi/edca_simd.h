#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "sim/fastdiv.h"
#include "sim/time.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define KWIKR_EDCA_SIMD_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define KWIKR_EDCA_SIMD_NEON 1
#endif

namespace kwikr::wifi::edca_simd {

/// Whether a vector implementation of the EDCA column sweeps is compiled in.
/// Without one, the kernels below resolve to the scalar branchless loops —
/// the same loops the differential reference pins, so behaviour is identical
/// either way (see DESIGN.md §16).
inline constexpr bool kHaveSimd =
#if defined(KWIKR_EDCA_SIMD_SSE2) || defined(KWIKR_EDCA_SIMD_NEON)
    true;
#else
    false;
#endif

inline constexpr sim::Time kNoCandidate = std::numeric_limits<sim::Time>::max();

/// Both kernels sweep the FULL SoA columns [0, n) gather-free, masking dead
/// lanes with `counting` — valid because counting[id] != 0 implies the
/// contender is a live backlog member (every Leave/OnTxFailure clears the
/// flag), so masked lanes contribute nothing and their stale base/backoff
/// arithmetic is computed-then-discarded, never UB (vector lanes, no traps).
///
/// Value-range contract (the EdcaCore gate enforces it before selecting the
/// vector path):
///  * counting lanes have a drawn backoff: 0 <= backoff < 2^31;
///  * slot fits u32 (the 32x32->64 lane multiply is exact for any backoff);
///  * for the freeze kernel, magic != 0, magic < 2^32, and every counting
///    lane's positive delta = start - base is < FastDiv::kMaxFastDividend
///    (checked per arbitration in the scalar winner pass) so the
///    multiply-shift equals floor(delta / slot) exactly.

// ----------------------------------------------------------- scalar forms --
// Branchless scalar kernels: the portable fallback AND the semantics
// definition the vector paths must match bit for bit (unit-tested against
// each other over randomized columns in tests/frame_path_test.cc).

inline sim::Time MinCandidateMaskedScalar(const sim::Time* base,
                                          const std::int32_t* backoff,
                                          const std::uint8_t* counting,
                                          std::size_t n, std::uint32_t slot) {
  sim::Time earliest = kNoCandidate;
  for (std::size_t i = 0; i < n; ++i) {
    sim::Time cand =
        base[i] + static_cast<sim::Duration>(backoff[i]) *
                      static_cast<sim::Duration>(slot);
    cand = counting[i] != 0 ? cand : kNoCandidate;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

inline void FreezeColumnsScalar(sim::Time start, const sim::Time* base,
                                const sim::Time* cand, std::int32_t* backoff,
                                std::uint8_t* counting, std::size_t n,
                                std::uint64_t magic) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool was_counting = counting[i] != 0;
    const bool winner = cand[i] == start;
    const sim::Duration delta = start - base[i];
    const auto consumed = static_cast<std::int32_t>(
        delta > 0 ? static_cast<std::int64_t>(
                        (static_cast<std::uint64_t>(delta) * magic) >>
                        sim::FastDiv::kMagicShift)
                  : 0);
    const std::int32_t frozen = std::max(0, backoff[i] - consumed);
    backoff[i] = (was_counting && !winner) ? frozen : backoff[i];
    counting[i] = static_cast<std::uint8_t>(was_counting && winner);
  }
}

// ------------------------------------------------------------- SSE2 forms --
#if defined(KWIKR_EDCA_SIMD_SSE2)

namespace detail {
/// a > b for signed 64-bit lanes whose difference cannot overflow (all EDCA
/// operands are in [-(2^62), 2^62]): the sign of b - a decides, and SSE2's
/// 32-bit arithmetic shift replicated over the high dwords broadcasts it.
inline __m128i CmpGt64(__m128i a, __m128i b) {
  const __m128i diff = _mm_sub_epi64(b, a);
  const __m128i sign = _mm_srai_epi32(diff, 31);
  return _mm_shuffle_epi32(sign, _MM_SHUFFLE(3, 3, 1, 1));
}

inline __m128i Select(__m128i mask, __m128i if_true, __m128i if_false) {
  return _mm_or_si128(_mm_and_si128(mask, if_true),
                      _mm_andnot_si128(mask, if_false));
}

/// 64-bit lane masks (all-ones / all-zero) from two {0,1} counting bytes.
inline __m128i MaskFromCounting(std::uint8_t c0, std::uint8_t c1) {
  return _mm_set_epi64x(-static_cast<std::int64_t>(c1),
                        -static_cast<std::int64_t>(c0));
}
}  // namespace detail

inline sim::Time MinCandidateMasked(const sim::Time* base,
                                    const std::int32_t* backoff,
                                    const std::uint8_t* counting,
                                    std::size_t n, std::uint32_t slot) {
  const __m128i slot_v = _mm_set1_epi64x(static_cast<std::int64_t>(slot));
  const __m128i max_v = _mm_set1_epi64x(kNoCandidate);
  __m128i acc = max_v;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i base_v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + i));
    // Two backoffs land in 32-bit lanes {0,1}; spread to {0,2} so the
    // unsigned 32x32->64 multiply reads them. Dead lanes may hold -1
    // (undrawn) — their product is garbage and masked off below.
    const __m128i b32 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(backoff + i));
    const __m128i spread = _mm_shuffle_epi32(b32, _MM_SHUFFLE(3, 1, 3, 0));
    const __m128i prod = _mm_mul_epu32(spread, slot_v);
    const __m128i cand = _mm_add_epi64(base_v, prod);
    const __m128i live = detail::MaskFromCounting(counting[i], counting[i + 1]);
    const __m128i masked = detail::Select(live, cand, max_v);
    acc = detail::Select(detail::CmpGt64(acc, masked), masked, acc);
  }
  alignas(16) std::int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  sim::Time earliest = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) {
    sim::Time cand =
        base[i] + static_cast<sim::Duration>(backoff[i]) *
                      static_cast<sim::Duration>(slot);
    cand = counting[i] != 0 ? cand : kNoCandidate;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

inline void FreezeColumns(sim::Time start, const sim::Time* base,
                          const sim::Time* cand, std::int32_t* backoff,
                          std::uint8_t* counting, std::size_t n,
                          std::uint64_t magic) {
  const __m128i start_v = _mm_set1_epi64x(start);
  const __m128i magic_v = _mm_set1_epi64x(static_cast<std::int64_t>(magic));
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i base_v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + i));
    const __m128i cand_v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(cand + i));
    const __m128i was = detail::MaskFromCounting(counting[i], counting[i + 1]);
    // winner: 64-bit equality from two 32-bit equalities.
    const __m128i eq32 = _mm_cmpeq_epi32(cand_v, start_v);
    const __m128i winner = _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    // consumed = delta > 0 ? (delta * magic) >> 40 : 0. Negative deltas are
    // zeroed before the multiply; live counting lanes are < 2^24 (gate), so
    // the low-dword lane multiply is the exact FastDiv multiply-shift.
    const __m128i delta = _mm_sub_epi64(start_v, base_v);
    const __m128i dneg = detail::CmpGt64(zero, delta);
    const __m128i dpos = _mm_andnot_si128(dneg, delta);
    const __m128i consumed =
        _mm_srli_epi64(_mm_mul_epu32(dpos, magic_v), sim::FastDiv::kMagicShift);
    // frozen = max(0, backoff - consumed), in 64-bit lanes. Counting lanes
    // have backoff >= 0, so the zero-extending spread is value-preserving.
    const __m128i b32 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(backoff + i));
    const __m128i b64 = _mm_shuffle_epi32(b32, _MM_SHUFFLE(3, 1, 3, 0));
    const __m128i b64z = _mm_and_si128(
        b64, _mm_set1_epi64x(0x00000000FFFFFFFFll));
    const __m128i sub = _mm_sub_epi64(b64z, consumed);
    const __m128i frozen = _mm_andnot_si128(detail::CmpGt64(zero, sub), sub);
    // backoff = (was && !winner) ? frozen : backoff.
    const __m128i take = _mm_andnot_si128(winner, was);
    const __m128i out64 = detail::Select(take, frozen, b64z);
    // Repack the two result dwords (lanes 0 and 2) into 8 bytes. Lanes that
    // kept their old value round-trip exactly: a kept backoff may be -1
    // (undrawn dead lane) whose zero-extension is truncated right back.
    const __m128i packed = _mm_shuffle_epi32(out64, _MM_SHUFFLE(3, 3, 2, 0));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(backoff + i), packed);
    // counting = was && winner — two bytes, cheaper recomputed scalar than
    // funnelled through a vector byte store.
    counting[i] = static_cast<std::uint8_t>(counting[i] != 0 &&
                                            cand[i] == start);
    counting[i + 1] = static_cast<std::uint8_t>(counting[i + 1] != 0 &&
                                                cand[i + 1] == start);
  }
  if (i < n) {
    FreezeColumnsScalar(start, base + i, cand + i, backoff + i, counting + i,
                        n - i, magic);
  }
}

// ------------------------------------------------------------- NEON forms --
#elif defined(KWIKR_EDCA_SIMD_NEON)

inline sim::Time MinCandidateMasked(const sim::Time* base,
                                    const std::int32_t* backoff,
                                    const std::uint8_t* counting,
                                    std::size_t n, std::uint32_t slot) {
  const uint32x2_t slot_v = vdup_n_u32(slot);
  const int64x2_t max_v = vdupq_n_s64(kNoCandidate);
  int64x2_t acc = max_v;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t base_v = vld1q_s64(base + i);
    const uint32x2_t b32 = vreinterpret_u32_s32(vld1_s32(backoff + i));
    const uint64x2_t prod = vmull_u32(b32, slot_v);
    const int64x2_t cand = vaddq_s64(base_v, vreinterpretq_s64_u64(prod));
    const uint64x2_t live = {counting[i] ? ~0ull : 0ull,
                             counting[i + 1] ? ~0ull : 0ull};
    const int64x2_t masked = vbslq_s64(live, cand, max_v);
    acc = vbslq_s64(vcgtq_s64(acc, masked), masked, acc);
  }
  sim::Time earliest =
      std::min(vgetq_lane_s64(acc, 0), vgetq_lane_s64(acc, 1));
  for (; i < n; ++i) {
    sim::Time cand =
        base[i] + static_cast<sim::Duration>(backoff[i]) *
                      static_cast<sim::Duration>(slot);
    cand = counting[i] != 0 ? cand : kNoCandidate;
    earliest = cand < earliest ? cand : earliest;
  }
  return earliest;
}

inline void FreezeColumns(sim::Time start, const sim::Time* base,
                          const sim::Time* cand, std::int32_t* backoff,
                          std::uint8_t* counting, std::size_t n,
                          std::uint64_t magic) {
  const int64x2_t start_v = vdupq_n_s64(start);
  const uint32x2_t magic_v = vdup_n_u32(static_cast<std::uint32_t>(magic));
  const int64x2_t zero = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t base_v = vld1q_s64(base + i);
    const int64x2_t cand_v = vld1q_s64(cand + i);
    const uint64x2_t was = {counting[i] ? ~0ull : 0ull,
                            counting[i + 1] ? ~0ull : 0ull};
    const uint64x2_t winner = vceqq_s64(cand_v, start_v);
    const int64x2_t delta = vsubq_s64(start_v, base_v);
    const int64x2_t dpos =
        vbslq_s64(vcgtq_s64(zero, delta), zero, delta);
    // Low dwords of the (gated < 2^24) deltas times the (gated < 2^32) magic.
    const uint32x2_t d32 = vmovn_u64(vreinterpretq_u64_s64(dpos));
    const uint64x2_t consumed =
        vshrq_n_u64(vmull_u32(d32, magic_v), sim::FastDiv::kMagicShift);
    const uint32x2_t b32 = vreinterpret_u32_s32(vld1_s32(backoff + i));
    const int64x2_t b64 = vreinterpretq_s64_u64(vmovl_u32(b32));
    const int64x2_t sub = vsubq_s64(b64, vreinterpretq_s64_u64(consumed));
    const int64x2_t frozen = vbslq_s64(vcgtq_s64(zero, sub), zero, sub);
    const uint64x2_t take = vbicq_u64(was, winner);
    const int64x2_t out64 = vbslq_s64(take, frozen, b64);
    vst1_s32(backoff + i,
             vreinterpret_s32_u32(vmovn_u64(vreinterpretq_u64_s64(out64))));
    counting[i] = static_cast<std::uint8_t>(counting[i] != 0 &&
                                            cand[i] == start);
    counting[i + 1] = static_cast<std::uint8_t>(counting[i + 1] != 0 &&
                                                cand[i + 1] == start);
  }
  if (i < n) {
    FreezeColumnsScalar(start, base + i, cand + i, backoff + i, counting + i,
                        n - i, magic);
  }
}

// ---------------------------------------------------------- portable-only --
#else

inline sim::Time MinCandidateMasked(const sim::Time* base,
                                    const std::int32_t* backoff,
                                    const std::uint8_t* counting,
                                    std::size_t n, std::uint32_t slot) {
  return MinCandidateMaskedScalar(base, backoff, counting, n, slot);
}

inline void FreezeColumns(sim::Time start, const sim::Time* base,
                          const sim::Time* cand, std::int32_t* backoff,
                          std::uint8_t* counting, std::size_t n,
                          std::uint64_t magic) {
  FreezeColumnsScalar(start, base, cand, backoff, counting, n, magic);
}

#endif

}  // namespace kwikr::wifi::edca_simd
