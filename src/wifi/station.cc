#include "wifi/station.h"

#include <utility>

#include "wifi/access_point.h"

namespace kwikr::wifi {

Station::Station(Channel& channel, AccessPoint& ap, Config config)
    : channel_(channel), ap_(&ap), config_(config) {
  owner_ = channel_.RegisterOwner(
      Channel::DeliveryHandler::Member<&Station::OnDownlinkFrame>(this));
  const auto params = DefaultEdcaParams();
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    uplink_[ac] = channel_.CreateContender(
        owner_, static_cast<AccessCategory>(ac), params[ac]);
  }
  ap_->AttachStation(this);
}

void Station::Send(net::Packet packet) {
  const AccessCategory ac = TosToAccessCategory(packet.tos);
  // Prvalue Frame: elided straight into Enqueue's parameter, which moves
  // straight into the ring cell — one Frame copy end to end, not three.
  channel_.Enqueue(uplink_[Index(ac)],
                   Frame{std::move(packet), ap_->owner(), config_.rate_bps});
}

void Station::AddReceiver(Receiver receiver) {
  receivers_.push_back(std::move(receiver));
}

void Station::SetLinkQuality(LinkQuality quality) {
  config_.rate_bps = quality.rate_bps;
  config_.frame_error_prob = quality.frame_error_prob;
}

void Station::EnableRateAdaptation(Band band, ArfPolicy::Config config) {
  const auto rates = McsRates(band);
  // Start mid-table; ARF finds the level.
  arf_ = std::make_unique<ArfPolicy>(rates, rates.size() / 2, config);
  config_.rate_bps = arf_->rate_bps();
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    channel_.SetTxFeedback(
        uplink_[ac],
        Channel::TxFeedback::Member<&Station::OnUplinkTxOutcome>(this));
  }
}

void Station::OnUplinkTxOutcome(const Frame& /*frame*/, bool delivered,
                                int attempts) {
  arf_->OnOutcome(delivered, attempts);
  config_.rate_bps = arf_->rate_bps();
}

void Station::Roam(AccessPoint& new_ap, LinkQuality quality) {
  if (&new_ap == ap_) return;
  ap_->DetachStation(this);
  ap_ = &new_ap;
  SetLinkQuality(quality);
  ap_->AttachStation(this);
  for (const auto& cb : roam_callbacks_) cb(ap_->address());
}

void Station::AddRoamCallback(RoamCallback callback) {
  roam_callbacks_.push_back(std::move(callback));
}

net::Address Station::gateway() const { return ap_->address(); }

Band Station::band() const { return ap_->band(); }

std::uint64_t Station::uplink_queue_drops() const {
  std::uint64_t total = 0;
  for (int ac = 0; ac < kNumAccessCategories; ++ac) {
    total += channel_.QueueDrops(uplink_[ac]);
  }
  return total;
}

void Station::OnDownlinkFrame(Frame&& frame) {
  const sim::Time arrival = channel_.loop().now();
  for (const auto& receiver : receivers_) {
    receiver(frame.packet, arrival);
  }
}

}  // namespace kwikr::wifi
