#include "stats/welch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/summary.h"

namespace kwikr::stats {
namespace {

struct WelchCore {
  double t = 0.0;
  double df = 1.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  bool valid = false;
};

WelchCore ComputeWelch(std::span<const double> a, std::span<const double> b) {
  WelchCore core;
  if (a.size() < 2 || b.size() < 2) return core;
  RunningSummary sa;
  RunningSummary sb;
  for (double x : a) sa.Add(x);
  for (double x : b) sb.Add(x);
  const double va = sa.variance() / static_cast<double>(a.size());
  const double vb = sb.variance() / static_cast<double>(b.size());
  core.mean_a = sa.mean();
  core.mean_b = sb.mean();
  if (va + vb <= 0.0) {
    // Degenerate: zero variance. Identical means => no evidence; otherwise
    // treat as infinitely significant.
    core.t = (core.mean_a == core.mean_b) ? 0.0
             : (core.mean_a > core.mean_b ? 1e9 : -1e9);
    core.df = static_cast<double>(a.size() + b.size() - 2);
    core.valid = true;
    return core;
  }
  core.t = (core.mean_a - core.mean_b) / std::sqrt(va + vb);
  const double num = (va + vb) * (va + vb);
  const double den = va * va / static_cast<double>(a.size() - 1) +
                     vb * vb / static_cast<double>(b.size() - 1);
  core.df = den > 0.0 ? num / den
                      : static_cast<double>(a.size() + b.size() - 2);
  core.valid = true;
  return core;
}

struct MannWhitneyCore {
  double z = 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  bool valid = false;
};

MannWhitneyCore ComputeMannWhitney(std::span<const double> a,
                                   std::span<const double> b) {
  MannWhitneyCore core;
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0) return core;

  RunningSummary sa;
  RunningSummary sb;
  for (double x : a) sa.Add(x);
  for (double x : b) sb.Add(x);
  core.mean_a = sa.mean();
  core.mean_b = sb.mean();

  // Rank the pooled samples, averaging ranks over ties.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(n1 + n2);
  for (double x : a) pooled.push_back({x, true});
  for (double x : b) pooled.push_back({x, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& l, const Tagged& r) { return l.value < r.value; });

  const double n = static_cast<double>(n1 + n2);
  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].value == pooled[i].value) {
      ++j;
    }
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j + 1)) / 2.0;
    const double tie_size = static_cast<double>(j - i + 1);
    if (tie_size > 1.0) {
      tie_correction += tie_size * tie_size * tie_size - tie_size;
    }
    for (std::size_t k = i; k <= j; ++k) {
      if (pooled[k].from_a) rank_sum_a += avg_rank;
    }
    i = j + 1;
  }

  const double u_a = rank_sum_a - static_cast<double>(n1) *
                                      (static_cast<double>(n1) + 1.0) / 2.0;
  const double mu = static_cast<double>(n1) * static_cast<double>(n2) / 2.0;
  const double sigma2 =
      static_cast<double>(n1) * static_cast<double>(n2) / 12.0 *
      ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (sigma2 <= 0.0) return core;
  // Continuity correction toward the mean.
  const double cc = u_a > mu ? -0.5 : (u_a < mu ? 0.5 : 0.0);
  core.z = (u_a - mu + cc) / std::sqrt(sigma2);
  core.valid = true;
  return core;
}

}  // namespace

TestResult WelchTTest(std::span<const double> a, std::span<const double> b) {
  const WelchCore core = ComputeWelch(a, b);
  TestResult result;
  result.mean_a = core.mean_a;
  result.mean_b = core.mean_b;
  if (!core.valid) return result;
  result.statistic = core.t;
  result.df = core.df;
  result.p_value = 2.0 * (1.0 - StudentTCdf(std::fabs(core.t), core.df));
  return result;
}

TestResult WelchTTestGreater(std::span<const double> a,
                             std::span<const double> b) {
  const WelchCore core = ComputeWelch(a, b);
  TestResult result;
  result.mean_a = core.mean_a;
  result.mean_b = core.mean_b;
  if (!core.valid) return result;
  result.statistic = core.t;
  result.df = core.df;
  result.p_value = 1.0 - StudentTCdf(core.t, core.df);
  return result;
}

TestResult MannWhitneyU(std::span<const double> a, std::span<const double> b) {
  const MannWhitneyCore core = ComputeMannWhitney(a, b);
  TestResult result;
  result.mean_a = core.mean_a;
  result.mean_b = core.mean_b;
  if (!core.valid) return result;
  result.statistic = core.z;
  result.p_value = 2.0 * (1.0 - NormalCdf(std::fabs(core.z)));
  return result;
}

TestResult MannWhitneyUGreater(std::span<const double> a,
                               std::span<const double> b) {
  const MannWhitneyCore core = ComputeMannWhitney(a, b);
  TestResult result;
  result.mean_a = core.mean_a;
  result.mean_b = core.mean_b;
  if (!core.valid) return result;
  result.statistic = core.z;
  result.p_value = 1.0 - NormalCdf(core.z);
  return result;
}

}  // namespace kwikr::stats
