#pragma once

#include <cstddef>
#include <vector>

namespace kwikr::stats {

/// A labelled scalar sample for threshold training.
struct LabelledSample {
  double feature = 0.0;  ///< e.g. a Ping-Pair delay estimate in ms.
  bool positive = false; ///< ground truth (e.g. persistent queue).
};

/// A one-split decision tree ("decision stump"): predicts positive when
/// feature > threshold. This is the classifier the paper trains with 10-fold
/// cross-validation to obtain the 5 ms Ping-Pair congestion threshold
/// (Section 8.1 / Table 1).
class DecisionStump {
 public:
  DecisionStump() = default;
  explicit DecisionStump(double threshold) : threshold_(threshold) {}

  [[nodiscard]] bool Predict(double feature) const {
    return feature > threshold_;
  }
  [[nodiscard]] double threshold() const { return threshold_; }

  /// Trains the accuracy-optimal threshold on `data`. Candidate thresholds
  /// are midpoints between adjacent distinct feature values. Ties are broken
  /// toward the smallest threshold.
  static DecisionStump Train(const std::vector<LabelledSample>& data);

 private:
  double threshold_ = 0.0;
};

/// Result of k-fold cross-validation of a decision stump.
struct CrossValidationResult {
  double mean_accuracy = 0.0;       ///< mean held-out accuracy across folds.
  std::vector<double> fold_thresholds;  ///< threshold trained in each fold.
  DecisionStump final_stump;        ///< stump trained on the full data set.
};

/// Runs k-fold CV (deterministic interleaved fold assignment) and then trains
/// the final stump on all data, as the paper does for Table 1.
CrossValidationResult CrossValidateStump(
    const std::vector<LabelledSample>& data, std::size_t folds);

}  // namespace kwikr::stats
