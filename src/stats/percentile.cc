#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

namespace kwikr::stats {
namespace {

double InterpolateSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double Percentile(std::span<const double> samples, double p) {
  if (samples.empty()) return 0.0;  // documented empty-input contract.
  std::vector<double> scratch(samples.begin(), samples.end());
  const std::size_t n = scratch.size();
  if (n == 1) return scratch.front();
  // O(n) selection instead of a full O(n log n) sort: nth_element places the
  // exact order statistic sorted[lo] at index lo, and the interpolation
  // partner sorted[lo + 1] is the minimum of the upper partition. The
  // arithmetic below is the same as InterpolateSorted's, so results are
  // bit-identical to the sorted reference (golden outputs depend on this;
  // see PercentileMatchesSortedReference in stats_test).
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  const auto lo_it = scratch.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), lo_it, scratch.end());
  const double lo_val = *lo_it;
  if (hi == lo) return lo_val;
  const double hi_val = *std::min_element(lo_it + 1, scratch.end());
  return lo_val + frac * (hi_val - lo_val);
}

std::vector<double> Percentiles(std::span<const double> samples,
                                std::span<const double> ps) {
  if (samples.empty()) return std::vector<double>(ps.size(), 0.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(InterpolateSorted(sorted, p));
  return out;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::At(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double p) const {
  return InterpolateSorted(sorted_, p);
}

std::vector<std::pair<double, double>> EmpiricalCdf::Curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (sorted_.empty() || points == 0) return curve;
  const std::size_t step = std::max<std::size_t>(1, sorted_.size() / points);
  for (std::size_t i = 0; i < sorted_.size(); i += step) {
    curve.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                       static_cast<double>(sorted_.size()));
  }
  if (curve.back().second < 1.0) {
    curve.emplace_back(sorted_.back(), 1.0);
  }
  return curve;
}

}  // namespace kwikr::stats
