#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace kwikr::stats {

void RunningSummary::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningSummary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double RunningSummary::stderror() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningSummary::ci95_halfwidth() const { return 1.96 * stderror(); }

void RunningSummary::Reset() { *this = RunningSummary{}; }

void RunningSummary::Merge(const RunningSummary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace kwikr::stats
