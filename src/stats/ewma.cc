#include "stats/ewma.h"

#include <cassert>

namespace kwikr::stats {

Ewma::Ewma(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

double Ewma::Update(double sample) {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
  } else {
    value_ += alpha_ * (sample - value_);
  }
  return value_;
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace kwikr::stats
