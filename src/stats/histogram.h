#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kwikr::stats {

/// Fixed-bin histogram percentile sketch.
///
/// The mergeable counterpart of `Percentile`: each worker of a parallel
/// sweep accumulates samples into its own Histogram and the shards are
/// combined with `Merge` (exactly associative — a merged histogram equals
/// the histogram of the concatenated samples). Quantile queries interpolate
/// within a bin, so the error is bounded by one bin width inside [lo, hi];
/// samples outside the range are clamped into the edge bins but the exact
/// observed min/max are tracked so extreme quantiles stay honest.
class Histogram {
 public:
  struct Config {
    double lo = 0.0;
    double hi = 1000.0;
    std::size_t bins = 256;
  };

  Histogram();  ///< default binning (Config{}).
  explicit Histogram(Config config);

  void Add(double sample);

  /// Merges another histogram into this one. Both must share the same
  /// binning (lo/hi/bins); merging incompatible sketches is a logic error.
  void Merge(const Histogram& other);

  /// Reconstructs a histogram from its serialized parts — the inverse of
  /// reading (config, counts, count, min, max) off an existing sketch. The
  /// cross-process spill/merge codecs depend on this to rebuild a worker's
  /// sketch exactly on the other side of a file. `counts` must have
  /// `config.bins` entries and sum to `count`; violating that is a logic
  /// error (the codecs validate before calling).
  static Histogram FromParts(Config config, std::vector<std::int64_t> counts,
                             std::int64_t count, double min, double max);

  /// p-th percentile estimate, p in [0, 100]. An empty histogram returns
  /// 0.0, matching `stats::Percentile` on an empty input.
  [[nodiscard]] double Percentile(double p) const;

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const std::vector<std::int64_t>& counts() const {
    return counts_;
  }

  void Reset();

 private:
  [[nodiscard]] double BinWidth() const;

  Config config_;
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace kwikr::stats
