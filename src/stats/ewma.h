#pragma once

namespace kwikr::stats {

/// Exponentially weighted moving average.
///
/// The first observation initializes the average; subsequent observations are
/// blended with weight `alpha` (higher alpha = faster tracking). This is the
/// smoother applied to Ping-Pair queueing-delay estimates before they are fed
/// to the bandwidth estimator (paper, Section 5.6 / Figure 4).
class Ewma {
 public:
  /// @param alpha blend weight in (0, 1].
  explicit Ewma(double alpha);

  /// Folds in one observation and returns the updated average.
  double Update(double sample);

  /// Current smoothed value; 0.0 until the first Update().
  [[nodiscard]] double value() const { return value_; }

  /// True once at least one sample has been folded in.
  [[nodiscard]] bool initialized() const { return initialized_; }

  /// Forgets all state.
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace kwikr::stats
