#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace kwikr::stats {

/// Returns the p-th percentile (p in [0, 100]) of `samples` using linear
/// interpolation between closest ranks. Implemented as an O(n)
/// std::nth_element selection (not a full sort); the result is bit-identical
/// to interpolating over the sorted samples.
///
/// Empty-input contract: an empty `samples` returns exactly 0.0 (not NaN,
/// not UB) — callers summarising possibly-empty buckets (wild-population
/// rows, benches) rely on this and must not need their own guard. The same
/// contract holds for `Percentiles` (all-zero output) and
/// `EmpiricalCdf::Quantile`.
double Percentile(std::span<const double> samples, double p);

/// Convenience: several percentiles of one sample set, sorted once. Empty
/// `samples` yields 0.0 for every requested percentile.
std::vector<double> Percentiles(std::span<const double> samples,
                                std::span<const double> ps);

/// An empirical CDF: sorted (value, cumulative-fraction) points suitable for
/// printing the paper's CDF figures (e.g. Figure 8(b)).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double At(double x) const;

  /// p-th percentile, p in [0, 100]; 0.0 when the CDF holds no samples.
  [[nodiscard]] double Quantile(double p) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evenly spaced (value, fraction) rows for plotting; at most `points`.
  [[nodiscard]] std::vector<std::pair<double, double>> Curve(
      std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace kwikr::stats
