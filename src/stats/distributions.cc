#include "stats/distributions.h"

#include <cmath>
#include <limits>

namespace kwikr::stats {
namespace {

// Continued fraction for the incomplete beta function, modified Lentz.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) { return std::lgamma(x); }

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace kwikr::stats
