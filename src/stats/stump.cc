#include "stats/stump.h"

#include <algorithm>
#include <cstddef>

namespace kwikr::stats {
namespace {

double AccuracyAt(const std::vector<LabelledSample>& data, double threshold) {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& s : data) {
    if ((s.feature > threshold) == s.positive) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace

DecisionStump DecisionStump::Train(const std::vector<LabelledSample>& data) {
  if (data.empty()) return DecisionStump{0.0};
  std::vector<double> features;
  features.reserve(data.size());
  for (const auto& s : data) features.push_back(s.feature);
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()),
                 features.end());

  // Candidates: below the minimum, midpoints, above the maximum.
  std::vector<double> candidates;
  candidates.reserve(features.size() + 1);
  candidates.push_back(features.front() - 1.0);
  for (std::size_t i = 0; i + 1 < features.size(); ++i) {
    candidates.push_back((features[i] + features[i + 1]) / 2.0);
  }
  candidates.push_back(features.back() + 1.0);

  double best_threshold = candidates.front();
  double best_accuracy = -1.0;
  for (double t : candidates) {
    const double acc = AccuracyAt(data, t);
    if (acc > best_accuracy) {
      best_accuracy = acc;
      best_threshold = t;
    }
  }
  return DecisionStump{best_threshold};
}

CrossValidationResult CrossValidateStump(
    const std::vector<LabelledSample>& data, std::size_t folds) {
  CrossValidationResult result;
  if (data.empty() || folds < 2) {
    result.final_stump = DecisionStump::Train(data);
    return result;
  }
  folds = std::min(folds, data.size());
  double accuracy_sum = 0.0;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<LabelledSample> train;
    std::vector<LabelledSample> test;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (i % folds == fold) {
        test.push_back(data[i]);
      } else {
        train.push_back(data[i]);
      }
    }
    const DecisionStump stump = DecisionStump::Train(train);
    result.fold_thresholds.push_back(stump.threshold());
    accuracy_sum += AccuracyAt(test, stump.threshold());
  }
  result.mean_accuracy = accuracy_sum / static_cast<double>(folds);
  result.final_stump = DecisionStump::Train(data);
  return result;
}

}  // namespace kwikr::stats
