#include "stats/confusion.h"

#include <cstdio>

namespace kwikr::stats {

void ConfusionMatrix::Add(bool ground_truth_positive, bool predicted_positive) {
  if (ground_truth_positive) {
    if (predicted_positive) {
      ++tp_;
    } else {
      ++fn_;
    }
  } else {
    if (predicted_positive) {
      ++fp_;
    } else {
      ++tn_;
    }
  }
}

double ConfusionMatrix::accuracy() const {
  const std::int64_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp_ + tn_) / static_cast<double>(n);
}

double ConfusionMatrix::true_positive_rate() const {
  const std::int64_t n = actual_positives();
  if (n == 0) return 0.0;
  return static_cast<double>(tp_) / static_cast<double>(n);
}

double ConfusionMatrix::true_negative_rate() const {
  const std::int64_t n = actual_negatives();
  if (n == 0) return 0.0;
  return static_cast<double>(tn_) / static_cast<double>(n);
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  tp_ += other.tp_;
  tn_ += other.tn_;
  fp_ += other.fp_;
  fn_ += other.fn_;
}

std::string ConfusionMatrix::ToTableRows() const {
  char buf[256];
  std::string out;
  const double tnr = 100.0 * true_negative_rate();
  const double tpr = 100.0 * true_positive_rate();
  std::snprintf(buf, sizeof(buf),
                "Non-persistent %6lld | %6lld (%5.1f%%) | %6lld (%5.1f%%)\n",
                static_cast<long long>(actual_negatives()),
                static_cast<long long>(tn_), tnr,
                static_cast<long long>(fp_), 100.0 - tnr);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "Persistent     %6lld | %6lld (%5.1f%%) | %6lld (%5.1f%%)\n",
                static_cast<long long>(actual_positives()),
                static_cast<long long>(fn_), 100.0 - tpr,
                static_cast<long long>(tp_), tpr);
  out += buf;
  return out;
}

}  // namespace kwikr::stats
