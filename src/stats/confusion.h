#pragma once

#include <cstdint>
#include <string>

namespace kwikr::stats {

/// Binary confusion matrix for the paper's Table 1 ("persistent" vs
/// "non-persistent" queue classification).
///
/// Convention: `positive` means *persistent congestion*.
class ConfusionMatrix {
 public:
  void Add(bool ground_truth_positive, bool predicted_positive);

  [[nodiscard]] std::int64_t true_positives() const { return tp_; }
  [[nodiscard]] std::int64_t true_negatives() const { return tn_; }
  [[nodiscard]] std::int64_t false_positives() const { return fp_; }
  [[nodiscard]] std::int64_t false_negatives() const { return fn_; }

  [[nodiscard]] std::int64_t actual_positives() const { return tp_ + fn_; }
  [[nodiscard]] std::int64_t actual_negatives() const { return tn_ + fp_; }
  [[nodiscard]] std::int64_t total() const { return tp_ + tn_ + fp_ + fn_; }

  /// (TP + TN) / total; 0 when empty.
  [[nodiscard]] double accuracy() const;
  /// TP / (TP + FN); a.k.a. recall / sensitivity. 0 when no positives.
  [[nodiscard]] double true_positive_rate() const;
  /// TN / (TN + FP); specificity. 0 when no negatives.
  [[nodiscard]] double true_negative_rate() const;

  void Merge(const ConfusionMatrix& other);

  /// Renders the two paper-style rows:
  ///   Non-persistent  N  tn (x%)  fp (y%)
  ///   Persistent      N  fn (x%)  tp (y%)
  [[nodiscard]] std::string ToTableRows() const;

 private:
  std::int64_t tp_ = 0;
  std::int64_t tn_ = 0;
  std::int64_t fp_ = 0;
  std::int64_t fn_ = 0;
};

}  // namespace kwikr::stats
