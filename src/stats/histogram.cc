#include "stats/histogram.h"

#include <algorithm>
#include <cassert>

namespace kwikr::stats {

Histogram::Histogram() : Histogram(Config{}) {}

Histogram::Histogram(Config config) : config_(config) {
  assert(config_.bins > 0);
  assert(config_.lo < config_.hi);
  counts_.assign(config_.bins, 0);
}

double Histogram::BinWidth() const {
  return (config_.hi - config_.lo) / static_cast<double>(config_.bins);
}

void Histogram::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double offset = (sample - config_.lo) / BinWidth();
  std::size_t bin = 0;
  if (offset > 0.0) {
    bin = std::min(static_cast<std::size_t>(offset), config_.bins - 1);
  }
  ++counts_[bin];
}

void Histogram::Merge(const Histogram& other) {
  assert(config_.lo == other.config_.lo && config_.hi == other.config_.hi &&
         config_.bins == other.config_.bins);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

Histogram Histogram::FromParts(Config config, std::vector<std::int64_t> counts,
                               std::int64_t count, double min, double max) {
  Histogram histogram(config);
  assert(counts.size() == config.bins);
  histogram.counts_ = std::move(counts);
  histogram.count_ = count;
  histogram.min_ = min;
  histogram.max_ = max;
  return histogram;
}

double Histogram::min() const { return count_ > 0 ? min_ : 0.0; }

double Histogram::max() const { return count_ > 0 ? max_ : 0.0; }

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly, so report them exactly — this also
  // keeps clamped out-of-range samples honest at the tails.
  if (clamped == 0.0) return min_;
  if (clamped == 100.0) return max_;
  // Target cumulative count under the closest-rank convention; the result
  // is then clamped to the observed [min, max] so clamped edge bins cannot
  // report values outside the data.
  const double target =
      clamped / 100.0 * static_cast<double>(count_ - 1) + 1.0;
  std::int64_t cumulative = 0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    if (counts_[bin] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[bin];
    if (static_cast<double>(cumulative) >= target) {
      const double frac = (target - before) / static_cast<double>(counts_[bin]);
      const double value =
          config_.lo + (static_cast<double>(bin) + frac) * BinWidth();
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  counts_.assign(config_.bins, 0);
  count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace kwikr::stats
