#pragma once

namespace kwikr::stats {

/// Regularized incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Lentz's method). Domain: a, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Standard normal CDF.
double NormalCdf(double z);

/// ln Gamma(x) for x > 0 (Lanczos approximation).
double LogGamma(double x);

}  // namespace kwikr::stats
