#pragma once

#include <span>

namespace kwikr::stats {

/// Result of a two-sample location test.
struct TestResult {
  double statistic = 0.0;   ///< t (Welch) or z (Mann-Whitney) statistic.
  double p_value = 1.0;     ///< two-sided unless noted by the caller.
  double df = 0.0;          ///< Welch-Satterthwaite degrees of freedom.
  double mean_a = 0.0;
  double mean_b = 0.0;
};

/// Welch's unequal-variance t-test on two independent samples. Used for the
/// Table 3 significance columns. Two-sided p-value.
TestResult WelchTTest(std::span<const double> a, std::span<const double> b);

/// One-sided Welch test of H1: mean(a) > mean(b). Matches the paper's framing
/// "gain in bandwidth ... (p-value)".
TestResult WelchTTestGreater(std::span<const double> a,
                             std::span<const double> b);

/// Mann-Whitney U test (normal approximation with tie correction),
/// two-sided. Robust check on medians for skewed bandwidth distributions.
TestResult MannWhitneyU(std::span<const double> a, std::span<const double> b);

/// One-sided Mann-Whitney: H1 is "a stochastically greater than b". Used for
/// the paper's *median* gain significance in Table 3.
TestResult MannWhitneyUGreater(std::span<const double> a,
                               std::span<const double> b);

}  // namespace kwikr::stats
