#pragma once

#include <cstdint>

namespace kwikr::stats {

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Used everywhere a bench or scenario needs `mean ± CI` rows (e.g. the
/// paper's Table 2 co-existence data rates, Figures 6/7 error bars).
class RunningSummary {
 public:
  void Add(double sample);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double stderror() const;
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void Reset();

  /// Merges another summary into this one (parallel reduction).
  void Merge(const RunningSummary& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace kwikr::stats
