#include "rtc/ukf.h"

#include <algorithm>
#include <cmath>

namespace kwikr::rtc {
namespace {

// Sigma-point spread: Julier's symmetric set with kappa = 1 gives strictly
// positive weights (W0 = kappa/(L+kappa), Wi = 1/(2(L+kappa))), which keeps
// the covariance update well-conditioned around the max(0, .) nonlinearity.
constexpr int kStateDim = 2;
constexpr double kKappa = 1.0;
constexpr double kSpread = kStateDim + kKappa;  // (L + kappa)

struct Chol2 {
  double l00 = 0.0;
  double l10 = 0.0;
  double l11 = 0.0;
};

Chol2 Cholesky2(const std::array<std::array<double, 2>, 2>& p) {
  Chol2 c;
  c.l00 = std::sqrt(std::max(p[0][0], 1e-12));
  c.l10 = p[0][1] / c.l00;
  c.l11 = std::sqrt(std::max(p[1][1] - c.l10 * c.l10, 1e-12));
  return c;
}

}  // namespace

LeakyBucketUkf::LeakyBucketUkf() : LeakyBucketUkf(Config{}) {}

LeakyBucketUkf::LeakyBucketUkf(Config config) : config_(config) {
  bw_ = config_.initial_bandwidth_bps / 8.0;  // state is bytes/s.
  q_ = 0.0;
  const double sbw = config_.initial_bandwidth_stddev_bps / 8.0;
  const double sq = config_.initial_queue_stddev_bytes;
  p_ = {{{sbw * sbw, 0.0}, {0.0, sq * sq}}};
}

void LeakyBucketUkf::Update(double delay_s, double packet_bytes,
                            double inter_send_s,
                            double cross_traffic_delay_s) {
  inter_send_s = std::clamp(inter_send_s, 0.0, 1.0);

  // --- Sigma points from the current state ---------------------------------
  const Chol2 chol = Cholesky2(p_);
  const double scale = std::sqrt(kSpread);
  // Columns of scale * chol(P).
  const double d0_bw = scale * chol.l00;
  const double d0_q = scale * chol.l10;
  const double d1_bw = 0.0;
  const double d1_q = scale * chol.l11;

  std::array<Vec2, 5> chi = {{
      {bw_, q_},
      {bw_ + d0_bw, q_ + d0_q},
      {bw_ - d0_bw, q_ - d0_q},
      {bw_ + d1_bw, q_ + d1_q},
      {bw_ - d1_bw, q_ - d1_q},
  }};
  const double w0 = kKappa / kSpread;
  const double wi = 1.0 / (2.0 * kSpread);
  const std::array<double, 5> w = {w0, wi, wi, wi, wi};

  // --- Predict: propagate through the leaky-bucket process -----------------
  // The queue is allowed to go negative inside the filter (and is clamped on
  // the posterior mean instead): clamping every sigma point at zero would
  // destroy the measurement gradient whenever the per-step drain exceeds the
  // sigma spread, leaving the filter blind to rising delay.
  for (auto& x : chi) {
    const double bw = std::max(x[0], config_.min_bandwidth_bps / 8.0);
    x[1] = x[1] + packet_bytes - bw * inter_send_s;
  }
  Vec2 mean = {0.0, 0.0};
  for (int i = 0; i < 5; ++i) {
    mean[0] += w[i] * chi[i][0];
    mean[1] += w[i] * chi[i][1];
  }
  Mat2 pred = {{{0.0, 0.0}, {0.0, 0.0}}};
  for (int i = 0; i < 5; ++i) {
    const double dbw = chi[i][0] - mean[0];
    const double dq = chi[i][1] - mean[1];
    pred[0][0] += w[i] * dbw * dbw;
    pred[0][1] += w[i] * dbw * dq;
    pred[1][1] += w[i] * dq * dq;
  }
  const double qbw = config_.bandwidth_process_stddev_bps / 8.0;
  const double qq = config_.queue_process_stddev_bytes;
  pred[0][0] += qbw * qbw;
  pred[1][1] += qq * qq;
  pred[1][0] = pred[0][1];

  // --- Observation: d = Q / BW + e ------------------------------------------
  std::array<double, 5> y{};
  for (int i = 0; i < 5; ++i) {
    const double bw = std::max(chi[i][0], config_.min_bandwidth_bps / 8.0);
    y[i] = chi[i][1] / bw;
  }
  double y_mean = 0.0;
  for (int i = 0; i < 5; ++i) y_mean += w[i] * y[i];

  // Kwikr's Equation 3 displaces only the '+' observation-noise sigma point
  // to sqrt(sigma_e^2 + beta * Tc^2) while the '-' point keeps sigma_e. The
  // literal Wan/van-der-Merwe weights at alpha = 1e-3 turn that one-sided
  // displacement into a divergent mean shift, so we use the moment-matched
  // equivalent of the displaced pair: observation noise with positive mean
  // (sigma_plus - sigma_e)/2 and standard deviation (sigma_plus + sigma_e)/2.
  // At Tc = 0 this reduces exactly to the unmodified filter; as Tc grows the
  // delay observation is (a) partly attributed to cross traffic via the mean
  // and (b) down-weighted via the inflated variance — the paper's two stated
  // effects (Section 6).
  const double sigma_e = config_.observation_stddev_s;
  const double sigma_plus = std::sqrt(
      sigma_e * sigma_e + config_.beta * cross_traffic_delay_s *
                              cross_traffic_delay_s);
  const double noise_mean = (sigma_plus - sigma_e) / 2.0;
  const double noise_stddev = (sigma_plus + sigma_e) / 2.0;

  double pyy = noise_stddev * noise_stddev;
  Vec2 pxy = {0.0, 0.0};
  for (int i = 0; i < 5; ++i) {
    const double dy = y[i] - y_mean;
    pyy += w[i] * dy * dy;
    pxy[0] += w[i] * (chi[i][0] - mean[0]) * dy;
    pxy[1] += w[i] * (chi[i][1] - mean[1]) * dy;
  }

  const double innovation = delay_s - y_mean - noise_mean;
  last_innovation_s_ = innovation;
  const Vec2 gain = {pxy[0] / pyy, pxy[1] / pyy};

  bw_ = mean[0] + gain[0] * innovation;
  q_ = mean[1] + gain[1] * innovation;
  p_[0][0] = pred[0][0] - gain[0] * pyy * gain[0];
  p_[0][1] = pred[0][1] - gain[0] * pyy * gain[1];
  p_[1][1] = pred[1][1] - gain[1] * pyy * gain[1];
  p_[1][0] = p_[0][1];
  Clamp();
}

void LeakyBucketUkf::Clamp() {
  bw_ = std::clamp(bw_, config_.min_bandwidth_bps / 8.0,
                   config_.max_bandwidth_bps / 8.0);
  q_ = std::max(q_, 0.0);
  p_[0][0] = std::clamp(p_[0][0], 1e2, 1e12);
  // The queue variance floor keeps the filter observable at Q = 0: without
  // it the max(0, .) process pins every sigma point to zero queue and the
  // measurement loses all gradient, leaving the filter blind to delay.
  p_[1][1] = std::clamp(p_[1][1], 1e5, 1e10);
  // Keep the covariance positive definite: bound the correlation.
  const double max_cross = 0.99 * std::sqrt(p_[0][0] * p_[1][1]);
  p_[0][1] = std::clamp(p_[0][1], -max_cross, max_cross);
  p_[1][0] = p_[0][1];
}

}  // namespace kwikr::rtc
