#pragma once

#include <array>

namespace kwikr::rtc {

/// Unscented Kalman filter over the leaky-bucket path model the paper
/// attributes to Skype (Section 6, citing US patent 8259570 and Wan & van
/// der Merwe's UKF formulation).
///
/// State: x = [BW, Q] — available path bandwidth (bytes/s) and bottleneck
/// queue backlog (bytes). Per received packet k, with inter-send spacing dt
/// and size s, the process model drains the leaky bucket:
///
///     Q(k)  = max(0, Q(k-1) + s - BW(k-1) * dt)
///     BW(k) = BW(k-1)                       (+ process noise)
///
/// and the observation is the queueing delay d(k) = Q(k)/BW(k) + e(k),
/// where d is the one-way delay after minimum tracking.
///
/// The filter augments the observation noise e as a third sigma-point
/// variable, exactly the structure Kwikr's Equation 3 attacks: the '+'
/// observation-noise sigma point is displaced by sqrt(alpha^2 L (sigma_e^2 +
/// beta*Tc^2)) while the '-' point keeps the nominal sigma_e, modelling
/// cross-traffic-corrupted delay observations as positively biased noise.
class LeakyBucketUkf {
 public:
  struct Config {
    double initial_bandwidth_bps = 500'000.0;
    double initial_bandwidth_stddev_bps = 250'000.0;
    double initial_queue_stddev_bytes = 2'000.0;
    /// Process noise per step.
    double bandwidth_process_stddev_bps = 8'000.0;
    double queue_process_stddev_bytes = 300.0;
    /// Observation (delay) noise, seconds.
    double observation_stddev_s = 0.003;
    /// UKF spread parameter (paper: alpha = 1e-3).
    double alpha = 1e-3;
    /// Kwikr noise-scaling factor (paper: beta = 4; 0 disables Kwikr).
    double beta = 4.0;
    /// Clamps keeping the filter physical.
    double min_bandwidth_bps = 24'000.0;
    double max_bandwidth_bps = 100'000'000.0;
  };

  LeakyBucketUkf();
  explicit LeakyBucketUkf(Config config);

  /// One predict+update step.
  /// @param delay_s observed queueing delay (min-tracked one-way delay), s.
  /// @param packet_bytes size of the received packet.
  /// @param inter_send_s spacing between this packet's send time and the
  ///        previous packet's send time, seconds.
  /// @param cross_traffic_delay_s Kwikr's Tc estimate (0 = no cross traffic
  ///        or Kwikr disabled); inflates the '+' observation-noise sigma
  ///        point per Equation 3.
  void Update(double delay_s, double packet_bytes, double inter_send_s,
              double cross_traffic_delay_s = 0.0);

  [[nodiscard]] double bandwidth_bps() const { return bw_ * 8.0; }
  [[nodiscard]] double bandwidth_bytes_per_s() const { return bw_; }
  [[nodiscard]] double queue_bytes() const { return q_; }
  [[nodiscard]] double bandwidth_variance() const { return p_[0][0]; }
  /// Innovation (residual) of the most recent Update: observed delay minus
  /// the predicted observation, seconds. The observability layer samples
  /// this to watch filter health (large sustained innovations mean the
  /// model is fighting the measurements).
  [[nodiscard]] double last_innovation_s() const { return last_innovation_s_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  using Vec2 = std::array<double, 2>;
  using Mat2 = std::array<std::array<double, 2>, 2>;

  void Clamp();

  Config config_;
  double bw_;  ///< bytes per second.
  double q_;   ///< bytes.
  Mat2 p_;     ///< state covariance.
  double last_innovation_s_ = 0.0;
};

}  // namespace kwikr::rtc
