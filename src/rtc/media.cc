#include "rtc/media.h"

#include <algorithm>
#include <utility>

namespace kwikr::rtc {

// The media timers hand PeriodicTimer `[this]` closures, stored in a
// sim::InlineTask: frame emission and feedback ticks never allocate. The
// assert pins the closure shape (one object pointer) to the inline buffer.
static_assert(sim::InlineTask::fits_inline<
              decltype([p = static_cast<MediaSender*>(nullptr)] {
                (void)p;
              })>);

MediaSender::MediaSender(sim::EventLoop& loop, net::PacketIdAllocator& ids,
                         Config config, SendFn send)
    : loop_(loop),
      ids_(ids),
      config_(config),
      send_(std::move(send)),
      timer_(loop, config.frame_interval, [this] { EmitFrame(); }),
      rate_bps_(config.start_rate_bps) {}

void MediaSender::Start() { timer_.Start(sim::Duration{0}); }

void MediaSender::Stop() { timer_.Stop(); }

void MediaSender::EmitFrame() {
  const double frame_s = sim::ToSeconds(config_.frame_interval);
  double budget =
      static_cast<double>(rate_bps_) / 8.0 * frame_s + carry_bytes_;
  // Emit at least one (possibly small) packet per frame so the receiver's
  // delay signal never starves, then fill the budget with full packets.
  do {
    const auto bytes = static_cast<std::int32_t>(std::clamp(
        budget, static_cast<double>(config_.min_packet_bytes),
        static_cast<double>(config_.max_packet_bytes)));
    net::Packet packet;
    packet.id = ids_.Next();
    packet.protocol = net::Protocol::kUdp;
    packet.src = config_.src;
    packet.dst = config_.dst;
    packet.tos = config_.tos;
    packet.flow = config_.flow;
    packet.size_bytes = bytes;
    packet.created_at = loop_.now();
    packet.udp.sequence = next_seq_++;
    packet.udp.sender_timestamp = loop_.now();
    bytes_sent_ += bytes;
    budget -= bytes;
    send_(std::move(packet));
  } while (budget >= config_.max_packet_bytes);
  carry_bytes_ = std::max(0.0, budget);
}

void MediaSender::OnFeedback(const net::Packet& packet, sim::Time arrival) {
  if (!packet.rtc_feedback.valid || packet.flow != config_.flow) return;
  const auto& fb = packet.rtc_feedback;
  if (fb.target_rate_bps > 0) rate_bps_ = fb.target_rate_bps;
  if (fb.echo_sender_ts > 0) {
    const sim::Duration rtt = arrival - fb.echo_sender_ts - fb.echo_hold;
    if (rtt >= 0) rtt_samples_.push_back(sim::ToSeconds(rtt));
  }
}

MediaReceiver::MediaReceiver(sim::EventLoop& loop, net::PacketIdAllocator& ids,
                             Config config, SendFn send_feedback)
    : loop_(loop),
      ids_(ids),
      config_(config),
      send_feedback_(std::move(send_feedback)),
      feedback_timer_(loop, config.feedback_interval,
                      [this] { SendFeedback(); }),
      estimator_(config.estimator),
      controller_(config.controller),
      gcc_(config.gcc) {}

void MediaReceiver::Start() { feedback_timer_.Start(); }

void MediaReceiver::Stop() { feedback_timer_.Stop(); }

void MediaReceiver::SetCrossTrafficProvider(
    BandwidthEstimator::CrossTrafficProvider p) {
  gcc_.SetCrossTrafficProvider(p);
  estimator_.SetCrossTrafficProvider(std::move(p));
}

void MediaReceiver::OnPathChange() {
  estimator_.OnPathChange();
  gcc_.OnPathChange();
  jitter_buffer_.OnPathChange();
}

std::int64_t MediaReceiver::target_rate_bps() const {
  return config_.adaptation == Adaptation::kDelayGradient
             ? gcc_.target_rate_bps()
             : controller_.target_rate_bps();
}

double MediaReceiver::loss_fraction() const {
  const std::uint64_t expected = received_ + lost_;
  if (expected == 0) return 0.0;
  return static_cast<double>(lost_) / static_cast<double>(expected);
}

void MediaReceiver::OnPacket(const net::Packet& packet, sim::Time arrival) {
  if (packet.protocol != net::Protocol::kUdp || packet.flow != config_.flow ||
      packet.rtc_feedback.valid) {
    return;
  }
  // Loss accounting via sequence gaps (late packets beyond the gap window
  // would be counted as lost, as a real-time receiver does).
  if (any_received_) {
    if (packet.udp.sequence > highest_seq_ + 1) {
      const std::uint64_t gap = packet.udp.sequence - highest_seq_ - 1;
      lost_ += gap;
      window_lost_ += gap;
    }
    highest_seq_ = std::max(highest_seq_, packet.udp.sequence);
  } else {
    highest_seq_ = packet.udp.sequence;
    any_received_ = true;
  }
  ++received_;
  ++window_received_;
  if (arrival - window_start_ >= sim::Millis(500)) {
    const std::uint64_t expected = window_received_ + window_lost_;
    window_loss_ = expected > 0 ? static_cast<double>(window_lost_) /
                                      static_cast<double>(expected)
                                : 0.0;
    window_start_ = arrival;
    window_received_ = 0;
    window_lost_ = 0;
  }
  bytes_ += packet.size_bytes;
  RollRateBuckets(arrival);
  bucket_bytes_ += packet.size_bytes;

  last_sender_ts_ = packet.udp.sender_timestamp;
  last_arrival_ = arrival;

  jitter_buffer_.OnPacket(packet.udp.sender_timestamp - config_.clock_offset,
                          arrival);
  if (config_.adaptation == Adaptation::kDelayGradient) {
    gcc_.OnPacket(packet.udp.sender_timestamp - config_.clock_offset,
                  arrival, packet.size_bytes);
  } else {
    estimator_.OnPacket(packet.udp.sender_timestamp - config_.clock_offset,
                        arrival, packet.size_bytes);
    controller_.Update(estimator_.bandwidth_bps(),
                       estimator_.self_queueing_delay_s(), window_loss_,
                       loop_.now());
  }
}

void MediaReceiver::RollRateBuckets(sim::Time arrival) {
  if (rate_series_.empty() && bucket_bytes_ == 0 && bucket_start_ == 0) {
    bucket_start_ = arrival - arrival % sim::kSecond;
  }
  while (arrival >= bucket_start_ + sim::kSecond) {
    rate_series_.push_back(static_cast<double>(bucket_bytes_) * 8.0 / 1000.0);
    bucket_bytes_ = 0;
    bucket_start_ += sim::kSecond;
  }
}

void MediaReceiver::SendFeedback() {
  net::Packet packet;
  packet.id = ids_.Next();
  packet.protocol = net::Protocol::kUdp;
  packet.src = config_.src;
  packet.dst = config_.dst;
  packet.flow = config_.flow;
  packet.size_bytes = config_.feedback_bytes;
  packet.created_at = loop_.now();
  packet.rtc_feedback.valid = true;
  packet.rtc_feedback.target_rate_bps = target_rate_bps();
  packet.rtc_feedback.echo_sender_ts = last_sender_ts_;
  packet.rtc_feedback.echo_hold =
      last_sender_ts_ > 0 ? loop_.now() - last_arrival_ : 0;
  packet.rtc_feedback.loss_fraction = loss_fraction();
  send_feedback_(std::move(packet));
}

}  // namespace kwikr::rtc
