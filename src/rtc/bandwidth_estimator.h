#pragma once

#include <functional>

#include "rtc/ukf.h"
#include "sim/time.h"

namespace kwikr::rtc {

/// Receiver-side bandwidth estimation: one-way-delay extraction with
/// minimum tracking (removing clock offset and propagation delay, paper
/// Section 6) feeding the leaky-bucket UKF.
///
/// The Kwikr integration point is `SetCrossTrafficProvider`: when installed
/// (by core::KwikrAdapter), every filter update reads the current smoothed
/// cross-traffic delay estimate Tc and applies the Equation-3 noise
/// modulation. Without a provider the estimator is the unmodified baseline.
class BandwidthEstimator {
 public:
  /// Returns the current cross-traffic delay estimate Tc in seconds.
  using CrossTrafficProvider = std::function<double()>;

  explicit BandwidthEstimator(LeakyBucketUkf::Config config = {});

  void SetCrossTrafficProvider(CrossTrafficProvider provider);

  /// Processes one received media packet.
  /// @param sender_timestamp stamp from the sender's clock (may include an
  ///        arbitrary offset; minimum tracking removes it).
  /// @param arrival receiver clock at delivery.
  /// @param bytes packet size.
  void OnPacket(sim::Time sender_timestamp, sim::Time arrival,
                std::int32_t bytes);

  /// Current path bandwidth estimate, bits per second.
  [[nodiscard]] double bandwidth_bps() const { return ukf_.bandwidth_bps(); }

  /// The filter's own estimate of *self-induced* queueing delay (Q/BW),
  /// seconds. This is the congestion signal the rate controller consumes:
  /// under Kwikr, cross-traffic-induced delay is absorbed by the noise model
  /// and does not appear here.
  [[nodiscard]] double self_queueing_delay_s() const;

  /// Last raw min-tracked one-way queueing delay observation, seconds.
  [[nodiscard]] double last_observed_delay_s() const { return last_delay_s_; }

  /// Innovation of the filter's most recent update, seconds (obs hook).
  [[nodiscard]] double last_innovation_s() const {
    return ukf_.last_innovation_s();
  }

  /// Forgets the path-learned one-way-delay baseline. Call on a handoff:
  /// the minimum encodes the *old* path's propagation + clock offset and
  /// would mis-baseline every delay observation on the new one.
  void OnPathChange();

  [[nodiscard]] std::int64_t updates() const { return updates_; }

 private:
  LeakyBucketUkf ukf_;
  CrossTrafficProvider cross_traffic_;
  bool has_min_ = false;
  sim::Duration min_owd_ = 0;
  bool has_prev_send_ = false;
  sim::Time prev_send_ts_ = 0;
  double last_delay_s_ = 0.0;
  std::int64_t updates_ = 0;
};

}  // namespace kwikr::rtc
