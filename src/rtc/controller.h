#pragma once

#include <cstdint>

#include "sim/time.h"

namespace kwikr::rtc {

/// Receiver-side target-rate controller layered on the bandwidth estimator.
///
/// Reproduces the qualitative behaviour the paper measures for real-time
/// streaming apps (Section 3): a sharp multiplicative backoff when the
/// estimator signals congestion, followed by deliberately slow recovery
/// (tens of seconds from floor to full rate). The congestion signal is the
/// estimator's *self* queueing delay, so under Kwikr cross-traffic-induced
/// delay — absorbed by the modified noise model — does not trigger the
/// overly conservative reaction, while self-congestion still does.
class RateController {
 public:
  struct Config {
    std::int64_t min_rate_bps = 160'000;
    std::int64_t max_rate_bps = 2'500'000;
    std::int64_t start_rate_bps = 500'000;
    /// Self-queueing delay above which we back off, seconds.
    double congest_threshold_s = 0.040;
    /// Delay below which we may ramp up, seconds.
    double clear_threshold_s = 0.020;
    /// Multiplicative backoff applied against the bandwidth estimate.
    double backoff_factor = 0.85;
    /// Minimum spacing between successive backoffs.
    sim::Duration backoff_interval = sim::Millis(500);
    /// Hold time after the last backoff before ramping up again.
    sim::Duration recovery_hold = sim::Seconds(4);
    /// Multiplicative ramp rate, fraction per second (e.g. 0.08 = +8%/s).
    double ramp_per_s = 0.08;
    /// Loss fraction above which a TCP-in-spirit multiplicative backoff is
    /// taken regardless of the delay attribution. This is what keeps Kwikr
    /// "safe": when cross-traffic congestion actually costs packets, the
    /// flow backs off in line with TCP instead of not at all (Section 1).
    /// Unlike the delay-triggered backoff, a loss backoff carries no
    /// recovery hold — like TCP, the flow resumes growing immediately.
    double loss_threshold = 0.05;
    double loss_backoff_factor = 0.85;
  };

  /// Profile constants for the three motivation apps of Figure 1. All share
  /// the conservative template; the non-Skype profiles recover more slowly,
  /// as measured in Figures 1(b) and 1(c).
  static Config SkypeProfile();
  static Config FaceTimeProfile();
  static Config HangoutsProfile();

  RateController();
  explicit RateController(Config config);

  /// Advances the controller; call regularly (e.g. per feedback interval).
  /// @param bandwidth_estimate_bps current estimator output.
  /// @param self_delay_s estimator's self-induced queueing delay.
  /// @param recent_loss_fraction packet loss over the recent window.
  /// @param now current time.
  /// @returns the new target rate, bps.
  std::int64_t Update(double bandwidth_estimate_bps, double self_delay_s,
                      double recent_loss_fraction, sim::Time now);
  std::int64_t Update(double bandwidth_estimate_bps, double self_delay_s,
                      sim::Time now) {
    return Update(bandwidth_estimate_bps, self_delay_s, 0.0, now);
  }

  [[nodiscard]] std::int64_t target_rate_bps() const { return target_; }
  [[nodiscard]] std::int64_t backoffs() const { return backoff_count_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  std::int64_t target_;
  sim::Time last_update_ = 0;
  sim::Time last_backoff_ = -(1LL << 60);       ///< delay-triggered.
  sim::Time last_loss_backoff_ = -(1LL << 60);  ///< loss-triggered.
  std::int64_t backoff_count_ = 0;
};

}  // namespace kwikr::rtc
