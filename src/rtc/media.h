#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "rtc/bandwidth_estimator.h"
#include "rtc/controller.h"
#include "rtc/gcc.h"
#include "rtc/jitter_buffer.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::rtc {

/// Path egress for media/feedback packets.
using SendFn = std::function<void(net::Packet)>;

/// Paced real-time media sender (the remote Skype peer). Emits packets every
/// `frame_interval` sized to the current target rate; the target follows the
/// receiver's feedback reports. Also measures RTT from feedback echoes, the
/// metric of Figures 1(d) and 8(c).
class MediaSender {
 public:
  struct Config {
    net::Address src = 0;
    net::Address dst = 0;
    net::FlowId flow = net::kNoFlow;
    std::uint8_t tos = net::kTosBestEffort;  ///< media arrives BE at the AP.
    sim::Duration frame_interval = sim::Millis(20);
    std::int32_t max_packet_bytes = 1200;
    std::int32_t min_packet_bytes = 120;
    std::int64_t start_rate_bps = 500'000;
  };

  MediaSender(sim::EventLoop& loop, net::PacketIdAllocator& ids, Config config,
              SendFn send);

  void Start();
  void Stop();

  /// Processes a feedback report from the receiver.
  void OnFeedback(const net::Packet& packet, sim::Time arrival);

  [[nodiscard]] std::int64_t current_rate_bps() const { return rate_bps_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return next_seq_; }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  /// RTT samples (seconds) measured from feedback echoes.
  [[nodiscard]] const std::vector<double>& rtt_samples_s() const {
    return rtt_samples_;
  }

 private:
  void EmitFrame();

  sim::EventLoop& loop_;
  net::PacketIdAllocator& ids_;
  Config config_;
  SendFn send_;
  sim::PeriodicTimer timer_;
  std::int64_t rate_bps_;
  std::uint64_t next_seq_ = 0;
  std::int64_t bytes_sent_ = 0;
  double carry_bytes_ = 0.0;
  std::vector<double> rtt_samples_;
};

/// Receiver half of the media flow: runs the bandwidth estimator and rate
/// controller, tracks loss and goodput, and reports the target rate back to
/// the sender on a fixed cadence.
class MediaReceiver {
 public:
  /// Which adaptation stack drives the reported target rate.
  enum class Adaptation {
    /// Skype-style: leaky-bucket UKF + conservative controller (default).
    kUkfConservative,
    /// GCC/WebRTC-style delay-gradient controller (Section 2 baseline).
    kDelayGradient,
  };

  struct Config {
    net::Address src = 0;  ///< this endpoint (feedback source).
    net::Address dst = 0;  ///< the media sender (feedback destination).
    net::FlowId flow = net::kNoFlow;
    std::int32_t feedback_bytes = 64;
    sim::Duration feedback_interval = sim::Millis(100);
    /// Clock offset added to the receiver's reading of sender timestamps —
    /// exercised by tests of minimum tracking.
    sim::Duration clock_offset = 0;
    Adaptation adaptation = Adaptation::kUkfConservative;
    LeakyBucketUkf::Config estimator;
    RateController::Config controller;
    GccController::Config gcc;
  };

  MediaReceiver(sim::EventLoop& loop, net::PacketIdAllocator& ids,
                Config config, SendFn send_feedback);

  void Start();
  void Stop();

  /// Feeds a received media packet (from the Wi-Fi station's receiver hook).
  void OnPacket(const net::Packet& packet, sim::Time arrival);

  /// Installs the Kwikr cross-traffic provider on the estimator.
  void SetCrossTrafficProvider(BandwidthEstimator::CrossTrafficProvider p);

  /// Resets path-learned state after a Wi-Fi handoff (wire to
  /// core::HandoffDetector::AddResetHook).
  void OnPathChange();

  [[nodiscard]] const BandwidthEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] const RateController& controller() const {
    return controller_;
  }
  [[nodiscard]] const GccController& gcc() const { return gcc_; }
  /// Playout-quality metric: the adaptive jitter buffer's verdicts.
  [[nodiscard]] const JitterBuffer& jitter_buffer() const {
    return jitter_buffer_;
  }

  /// The rate currently reported to the sender (whichever stack is active).
  [[nodiscard]] std::int64_t target_rate_bps() const;

  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] std::uint64_t packets_lost() const { return lost_; }
  [[nodiscard]] std::int64_t bytes_received() const { return bytes_; }
  /// Loss fraction over the whole call so far.
  [[nodiscard]] double loss_fraction() const;
  /// Loss fraction over the last completed 500 ms window (the controller's
  /// TCP-style backoff signal).
  [[nodiscard]] double recent_loss_fraction() const { return window_loss_; }

  /// Goodput time series: received kbps in consecutive 1 s buckets.
  [[nodiscard]] const std::vector<double>& rate_series_kbps() const {
    return rate_series_;
  }

 private:
  void SendFeedback();
  void RollRateBuckets(sim::Time arrival);

  sim::EventLoop& loop_;
  net::PacketIdAllocator& ids_;
  Config config_;
  SendFn send_feedback_;
  sim::PeriodicTimer feedback_timer_;
  BandwidthEstimator estimator_;
  RateController controller_;
  GccController gcc_;
  JitterBuffer jitter_buffer_;

  std::uint64_t received_ = 0;
  std::uint64_t lost_ = 0;
  // Rolling loss window.
  sim::Time window_start_ = 0;
  std::uint64_t window_received_ = 0;
  std::uint64_t window_lost_ = 0;
  double window_loss_ = 0.0;
  std::int64_t bytes_ = 0;
  std::uint64_t highest_seq_ = 0;
  bool any_received_ = false;

  // Echo state for RTT measurement.
  sim::Time last_sender_ts_ = 0;
  sim::Time last_arrival_ = 0;

  // 1-second goodput buckets.
  std::vector<double> rate_series_;
  sim::Time bucket_start_ = 0;
  std::int64_t bucket_bytes_ = 0;
};

}  // namespace kwikr::rtc
