#pragma once

#include <cstdint>

#include "sim/time.h"

namespace kwikr::rtc {

/// Receiver-side playout model. Real-time interactive streaming cannot hide
/// delay variation behind a multi-second buffer (paper Section 1: the VoIP
/// budget is ~300 ms end to end); instead a small adaptive jitter buffer
/// absorbs variation and anything beyond it plays late or not at all.
///
/// The buffer delay adapts toward a high percentile of the observed jitter
/// (one-sided quantile tracker): growing quickly on late packets, shrinking
/// slowly when the network calms. `late_fraction()` is the user-experience
/// metric: the share of packets that missed their playout deadline.
class JitterBuffer {
 public:
  struct Config {
    sim::Duration min_delay = sim::Millis(10);
    sim::Duration max_delay = sim::Millis(200);
    sim::Duration initial_delay = sim::Millis(40);
    /// Quantile-tracker steps: the buffer converges to roughly the
    /// grow/(grow+shrink) percentile of the jitter distribution (~95%).
    double grow_ms = 1.9;
    double shrink_ms = 0.1;
  };

  JitterBuffer() : JitterBuffer(Config{}) {}
  explicit JitterBuffer(Config config);

  /// Processes one media packet; returns true when it arrived in time to
  /// play (jitter within the current buffer delay).
  bool OnPacket(sim::Time sender_timestamp, sim::Time arrival);

  /// Forgets the path baseline (handoff).
  void OnPathChange();

  [[nodiscard]] double buffer_delay_ms() const { return delay_ms_; }
  [[nodiscard]] std::int64_t played() const { return played_; }
  [[nodiscard]] std::int64_t late() const { return late_; }
  [[nodiscard]] double late_fraction() const;

 private:
  Config config_;
  double delay_ms_;
  bool has_min_ = false;
  sim::Duration min_owd_ = 0;
  std::int64_t played_ = 0;
  std::int64_t late_ = 0;
};

}  // namespace kwikr::rtc
