#include "rtc/gcc.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace kwikr::rtc {

void TrendlineEstimator::OnSample(double arrival_ms, double delay_ms) {
  if (!has_smoothed_) {
    smoothed_ = delay_ms;
    has_smoothed_ = true;
  } else {
    smoothed_ = config_.smoothing * smoothed_ +
                (1.0 - config_.smoothing) * delay_ms;
  }
  window_.push_back(Point{arrival_ms, smoothed_});
  while (window_.size() > static_cast<std::size_t>(config_.window_size)) {
    window_.pop_front();
  }
  if (window_.size() < 3) {
    slope_ = 0.0;
    return;
  }
  // Least-squares slope of smoothed delay over time.
  double sum_t = 0.0;
  double sum_d = 0.0;
  for (const auto& p : window_) {
    sum_t += p.t_ms;
    sum_d += p.smoothed_delay_ms;
  }
  const double n = static_cast<double>(window_.size());
  const double mean_t = sum_t / n;
  const double mean_d = sum_d / n;
  double num = 0.0;
  double den = 0.0;
  for (const auto& p : window_) {
    num += (p.t_ms - mean_t) * (p.smoothed_delay_ms - mean_d);
    den += (p.t_ms - mean_t) * (p.t_ms - mean_t);
  }
  slope_ = den > 1e-9 ? num / den : 0.0;
}

GccController::GccController(Config config)
    : config_(config),
      trendline_(config.trendline),
      target_(config.start_rate_bps) {}

void GccController::SetCrossTrafficProvider(CrossTrafficProvider provider) {
  cross_traffic_ = std::move(provider);
}

void GccController::OnPathChange() {
  has_min_ = false;
  trendline_ = TrendlineEstimator(config_.trendline);
  overuse_since_ = -1;
  usage_ = BandwidthUsage::kNormal;
}

double GccController::trend_ms() const {
  // Projected delay growth over one window of typical packet spacing
  // (20 ms), the quantity compared against the overuse threshold.
  return trendline_.slope() * 20.0 *
         static_cast<double>(config_.trendline.window_size);
}

void GccController::OnPacket(sim::Time sender_timestamp, sim::Time arrival,
                             std::int32_t bytes) {
  const sim::Duration owd = arrival - sender_timestamp;
  if (!has_min_ || owd < min_owd_) {
    min_owd_ = owd;
    has_min_ = true;
  }
  double delay_ms = sim::ToMillis(owd - min_owd_);
  if (cross_traffic_) {
    // Section 6's direct modification: remove the cross-traffic share of
    // the delay before the gradient sees it.
    delay_ms = std::max(0.0, delay_ms - cross_traffic_() * 1000.0);
  }
  trendline_.OnSample(sim::ToMillis(arrival), delay_ms);

  // Receive-rate bookkeeping.
  if (rate_window_start_ == 0) rate_window_start_ = arrival;
  rate_window_bytes_ += bytes;
  if (arrival - rate_window_start_ >= sim::Millis(500)) {
    receive_rate_bps_ =
        static_cast<double>(rate_window_bytes_) * 8.0 /
        sim::ToSeconds(arrival - rate_window_start_);
    rate_window_start_ = arrival;
    rate_window_bytes_ = 0;
  }

  UpdateState(arrival);
}

void GccController::UpdateState(sim::Time now) {
  const double trend = trend_ms();
  if (trend > config_.overuse_threshold_ms) {
    if (overuse_since_ < 0) overuse_since_ = now;
    if (now - overuse_since_ >= config_.overuse_time) {
      usage_ = BandwidthUsage::kOverusing;
    }
  } else {
    overuse_since_ = -1;
    usage_ = trend < -config_.overuse_threshold_ms
                 ? BandwidthUsage::kUnderusing
                 : BandwidthUsage::kNormal;
  }

  const double dt =
      last_update_ == 0 ? 0.0 : sim::ToSeconds(now - last_update_);
  last_update_ = now;

  switch (usage_) {
    case BandwidthUsage::kOverusing:
      if (now - last_decrease_ >= config_.decrease_interval &&
          receive_rate_bps_ > 0.0) {
        target_ = static_cast<std::int64_t>(config_.decrease_factor *
                                            receive_rate_bps_);
        last_decrease_ = now;
        ++decreases_;
      }
      break;
    case BandwidthUsage::kNormal:
      if (now - last_decrease_ >= config_.decrease_interval) {
        const double growth = 1.0 + config_.increase_per_s * dt;
        target_ = static_cast<std::int64_t>(
            std::ceil(static_cast<double>(target_) * growth));
      }
      break;
    case BandwidthUsage::kUnderusing:
      // Hold: let the queues drain before probing again.
      break;
  }
  target_ = std::clamp(target_, config_.min_rate_bps, config_.max_rate_bps);
}

}  // namespace kwikr::rtc
