#include "rtc/controller.h"

#include <algorithm>
#include <cmath>

namespace kwikr::rtc {

RateController::Config RateController::SkypeProfile() { return Config{}; }

RateController::Config RateController::FaceTimeProfile() {
  Config config;
  config.recovery_hold = sim::Seconds(8);
  config.ramp_per_s = 0.05;
  return config;
}

RateController::Config RateController::HangoutsProfile() {
  Config config;
  config.recovery_hold = sim::Seconds(6);
  config.ramp_per_s = 0.04;
  config.backoff_factor = 0.80;
  return config;
}

RateController::RateController() : RateController(Config{}) {}

RateController::RateController(Config config)
    : config_(config), target_(config.start_rate_bps) {}

std::int64_t RateController::Update(double bandwidth_estimate_bps,
                                    double self_delay_s,
                                    double recent_loss_fraction,
                                    sim::Time now) {
  const double dt = last_update_ == 0
                        ? 0.0
                        : sim::ToSeconds(now - last_update_);
  last_update_ = now;

  if (recent_loss_fraction > config_.loss_threshold &&
      now - last_loss_backoff_ >= config_.backoff_interval) {
    // Loss means the congestion is costing packets, whatever its cause:
    // take a TCP-style multiplicative decrease (and, like TCP, resume
    // growing immediately afterwards — no recovery hold).
    target_ = static_cast<std::int64_t>(
        static_cast<double>(target_) * config_.loss_backoff_factor);
    last_loss_backoff_ = now;
    ++backoff_count_;
  } else if (self_delay_s > config_.congest_threshold_s) {
    if (now - last_backoff_ >= config_.backoff_interval) {
      const auto backoff_target = static_cast<std::int64_t>(
          config_.backoff_factor * bandwidth_estimate_bps);
      target_ = std::min(target_, backoff_target);
      last_backoff_ = now;
      ++backoff_count_;
    }
  } else if (self_delay_s < config_.clear_threshold_s &&
             now - last_backoff_ >= config_.recovery_hold &&
             now - last_loss_backoff_ >= config_.backoff_interval) {
    // Ramp toward (and past) the estimate: the estimator follows once the
    // extra traffic proves harmless.
    const double growth = 1.0 + config_.ramp_per_s * dt;
    const auto ramped = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(target_) * growth));
    target_ = std::max(target_, ramped);
  }
  // Never exceed what the estimator believes the path can carry by more
  // than the probing headroom.
  const auto ceiling = static_cast<std::int64_t>(
      std::max(bandwidth_estimate_bps * 1.05,
               static_cast<double>(config_.min_rate_bps)));
  target_ = std::clamp(target_, config_.min_rate_bps,
                       std::min(config_.max_rate_bps, ceiling));
  return target_;
}

}  // namespace kwikr::rtc
