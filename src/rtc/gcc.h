#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/time.h"

namespace kwikr::rtc {

/// Trendline estimator over one-way queueing-delay samples: least-squares
/// slope of exponentially smoothed delay against arrival time over a
/// sliding window. This is the core of the Google Congestion Control
/// (GCC/WebRTC) family the paper discusses in Section 2 — a delay-*gradient*
/// detector, in contrast to Skype's delay-*level* Kalman estimator.
class TrendlineEstimator {
 public:
  struct Config {
    int window_size = 20;
    double smoothing = 0.9;  ///< EWMA weight kept for the previous value.
  };

  TrendlineEstimator() : TrendlineEstimator(Config{}) {}
  explicit TrendlineEstimator(Config config) : config_(config) {}

  /// Adds one (arrival time, queueing delay) sample.
  void OnSample(double arrival_ms, double delay_ms);

  /// Current slope in ms of delay growth per ms of time; 0 until the
  /// window has at least three samples.
  [[nodiscard]] double slope() const { return slope_; }
  [[nodiscard]] int samples() const { return static_cast<int>(window_.size()); }

 private:
  struct Point {
    double t_ms;
    double smoothed_delay_ms;
  };

  Config config_;
  std::deque<Point> window_;
  double smoothed_ = 0.0;
  bool has_smoothed_ = false;
  double slope_ = 0.0;
};

/// Bandwidth usage verdict from the overuse detector.
enum class BandwidthUsage { kNormal, kOverusing, kUnderusing };

/// GCC-style rate controller: a trendline overuse detector drives an
/// increase/hold/decrease state machine over the measured receive rate.
///
/// Like the Skype estimator, it is a *symptom* reader: it cannot tell
/// self-congestion from cross traffic. `SetCrossTrafficProvider` applies
/// the paper's Section 6 "obvious modification" — subtract the Ping-Pair
/// cross-traffic delay Tc from the delay signal before the gradient is
/// computed — turning it into a Kwikr-informed controller.
class GccController {
 public:
  struct Config {
    std::int64_t min_rate_bps = 160'000;
    std::int64_t max_rate_bps = 2'500'000;
    std::int64_t start_rate_bps = 500'000;
    /// Overuse threshold on the projected delay trend (slope x window),
    /// milliseconds.
    double overuse_threshold_ms = 2.0;
    /// Overuse must persist this long before a decrease.
    sim::Duration overuse_time = sim::Millis(30);
    /// Multiplicative increase per second while normal.
    double increase_per_s = 0.08;
    /// Decrease factor applied to the measured receive rate.
    double decrease_factor = 0.85;
    /// Spacing between decreases.
    sim::Duration decrease_interval = sim::Millis(300);
    TrendlineEstimator::Config trendline;
  };

  using CrossTrafficProvider = std::function<double()>;  ///< Tc seconds.

  GccController() : GccController(Config{}) {}
  explicit GccController(Config config);

  /// Feeds one received media packet.
  void OnPacket(sim::Time sender_timestamp, sim::Time arrival,
                std::int32_t bytes);

  /// Installs the Kwikr hook (nullptr-safe; absent = plain GCC).
  void SetCrossTrafficProvider(CrossTrafficProvider provider);

  /// Forgets path-learned state (delay baseline, trend window) on handoff.
  void OnPathChange();

  [[nodiscard]] std::int64_t target_rate_bps() const { return target_; }
  [[nodiscard]] BandwidthUsage usage() const { return usage_; }
  [[nodiscard]] double trend_ms() const;
  [[nodiscard]] std::int64_t decreases() const { return decreases_; }
  /// Receive rate measured over the last window, bps.
  [[nodiscard]] double receive_rate_bps() const { return receive_rate_bps_; }

 private:
  void UpdateState(sim::Time now);

  Config config_;
  CrossTrafficProvider cross_traffic_;
  TrendlineEstimator trendline_;

  std::int64_t target_;
  BandwidthUsage usage_ = BandwidthUsage::kNormal;

  bool has_min_ = false;
  sim::Duration min_owd_ = 0;

  sim::Time overuse_since_ = -1;
  sim::Time last_decrease_ = -(1LL << 60);
  sim::Time last_update_ = 0;
  std::int64_t decreases_ = 0;

  // Receive-rate measurement (500 ms buckets).
  sim::Time rate_window_start_ = 0;
  std::int64_t rate_window_bytes_ = 0;
  double receive_rate_bps_ = 0.0;
};

}  // namespace kwikr::rtc
