#include "rtc/bandwidth_estimator.h"

#include <algorithm>
#include <utility>

namespace kwikr::rtc {

BandwidthEstimator::BandwidthEstimator(LeakyBucketUkf::Config config)
    : ukf_(config) {}

void BandwidthEstimator::SetCrossTrafficProvider(
    CrossTrafficProvider provider) {
  cross_traffic_ = std::move(provider);
}

void BandwidthEstimator::OnPacket(sim::Time sender_timestamp,
                                  sim::Time arrival, std::int32_t bytes) {
  const sim::Duration owd = arrival - sender_timestamp;
  if (!has_min_ || owd < min_owd_) {
    min_owd_ = owd;
    has_min_ = true;
  }
  const double delay_s = sim::ToSeconds(owd - min_owd_);
  last_delay_s_ = delay_s;

  double inter_send_s = 0.02;
  if (has_prev_send_) {
    inter_send_s = std::max(0.0, sim::ToSeconds(sender_timestamp -
                                                prev_send_ts_));
  }
  prev_send_ts_ = sender_timestamp;
  has_prev_send_ = true;

  const double tc = cross_traffic_ ? std::max(0.0, cross_traffic_()) : 0.0;
  ukf_.Update(delay_s, static_cast<double>(bytes), inter_send_s, tc);
  ++updates_;
}

void BandwidthEstimator::OnPathChange() {
  has_min_ = false;
  has_prev_send_ = false;
}

double BandwidthEstimator::self_queueing_delay_s() const {
  const double bw = ukf_.bandwidth_bytes_per_s();
  if (bw <= 0.0) return 0.0;
  return ukf_.queue_bytes() / bw;
}

}  // namespace kwikr::rtc
