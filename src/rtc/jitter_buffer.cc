#include "rtc/jitter_buffer.h"

#include <algorithm>

namespace kwikr::rtc {

JitterBuffer::JitterBuffer(Config config)
    : config_(config),
      delay_ms_(sim::ToMillis(config.initial_delay)) {}

bool JitterBuffer::OnPacket(sim::Time sender_timestamp, sim::Time arrival) {
  const sim::Duration owd = arrival - sender_timestamp;
  if (!has_min_ || owd < min_owd_) {
    min_owd_ = owd;
    has_min_ = true;
  }
  const double jitter_ms = sim::ToMillis(owd - min_owd_);
  const bool in_time = jitter_ms <= delay_ms_;
  if (in_time) {
    ++played_;
    delay_ms_ -= config_.shrink_ms;
  } else {
    ++late_;
    delay_ms_ += config_.grow_ms;
  }
  delay_ms_ = std::clamp(delay_ms_, sim::ToMillis(config_.min_delay),
                         sim::ToMillis(config_.max_delay));
  return in_time;
}

void JitterBuffer::OnPathChange() { has_min_ = false; }

double JitterBuffer::late_fraction() const {
  const std::int64_t total = played_ + late_;
  if (total == 0) return 0.0;
  return static_cast<double>(late_) / static_cast<double>(total);
}

}  // namespace kwikr::rtc
