#include "live/icmp_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/ip.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kwikr::live {

IcmpSocket::~IcmpSocket() { Close(); }

IcmpSocket::IcmpSocket(IcmpSocket&& other) noexcept
    : fd_(other.fd_), error_(std::move(other.error_)) {
  other.fd_ = -1;
}

IcmpSocket& IcmpSocket::operator=(IcmpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    error_ = std::move(other.error_);
    other.fd_ = -1;
  }
  return *this;
}

void IcmpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool IcmpSocket::Open() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_RAW, IPPROTO_ICMP);
  if (fd_ < 0) {
    error_ = std::string("socket(AF_INET, SOCK_RAW, IPPROTO_ICMP): ") +
             std::strerror(errno) +
             " (raw ICMP sockets require CAP_NET_RAW or root)";
    return false;
  }
  return true;
}

bool IcmpSocket::SendEcho(std::uint32_t dest, std::uint8_t tos,
                          std::uint16_t ident, std::uint16_t sequence,
                          std::size_t payload_bytes) {
  if (fd_ < 0) {
    error_ = "socket not open";
    return false;
  }
  const int tos_value = tos;
  if (::setsockopt(fd_, IPPROTO_IP, IP_TOS, &tos_value, sizeof(tos_value)) <
      0) {
    error_ = std::string("setsockopt(IP_TOS): ") + std::strerror(errno);
    return false;
  }

  net::IcmpEchoWire echo;
  echo.type = 8;  // echo request
  echo.ident = ident;
  echo.sequence = sequence;
  echo.payload.assign(payload_bytes, 0xA5);
  const std::vector<std::uint8_t> wire = echo.Serialize();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(dest);
  const ssize_t sent =
      ::sendto(fd_, wire.data(), wire.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (sent < 0) {
    error_ = std::string("sendto: ") + std::strerror(errno);
    return false;
  }
  return true;
}

std::optional<ReceivedEcho> IcmpSocket::Receive(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready <= 0) return std::nullopt;

  std::uint8_t buffer[2048];
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  const ssize_t n =
      ::recvfrom(fd_, buffer, sizeof(buffer), 0,
                 reinterpret_cast<sockaddr*>(&from), &from_len);
  const auto arrival = std::chrono::steady_clock::now();
  if (n <= 0) return std::nullopt;

  // Raw ICMP receive buffers include the IP header.
  const auto ip = net::Ipv4HeaderView::Parse(
      {buffer, static_cast<std::size_t>(n)});
  if (!ip) return std::nullopt;
  const auto icmp = net::IcmpEchoWire::Parse(
      {buffer + ip->ihl_bytes, static_cast<std::size_t>(n) - ip->ihl_bytes});
  if (!icmp || icmp->type != 0) return std::nullopt;  // echo replies only.

  ReceivedEcho received;
  received.echo = *icmp;
  received.tos = ip->tos;
  received.from = ip->src;
  received.arrival = arrival;
  return received;
}

std::uint32_t IcmpSocket::ParseAddress(const std::string& dotted) {
  in_addr addr{};
  if (::inet_pton(AF_INET, dotted.c_str(), &addr) != 1) return 0;
  return ntohl(addr.s_addr);
}

}  // namespace kwikr::live
