#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "live/icmp_socket.h"

namespace kwikr::live {

/// One live Ping-Pair measurement against a real gateway.
struct LiveSample {
  double tq_ms = 0.0;       ///< downlink delay estimate.
  bool valid = false;       ///< high reply arrived first, both received.
  double rtt_high_ms = 0.0;
  double rtt_normal_ms = 0.0;
};

/// Synchronous Ping-Pair runner over a raw ICMP socket — the live
/// counterpart of the simulator's PingPairProber, equivalent to the paper's
/// standalone Windows/Linux tool. One instance per gateway.
class LivePingPair {
 public:
  struct Config {
    std::uint16_t ident = 0x5051;
    std::size_t payload_bytes = 36;  ///< 64-byte IP datagram.
    std::chrono::milliseconds reply_timeout{500};
    std::chrono::milliseconds round_interval{500};
  };

  LivePingPair(IcmpSocket& socket, std::uint32_t gateway, Config config);

  /// Runs one round: sends the normal-priority ping then the high-priority
  /// ping back to back and waits for both replies.
  LiveSample RunOnce(std::uint16_t round);

  /// Runs `rounds` rounds with the configured spacing.
  std::vector<LiveSample> Run(int rounds);

  /// Runs the WMM check (Section 5.5): returns true when at least 3 of 5
  /// runs show the high-priority reply jumping a standing backlog, nullopt
  /// when too few runs completed to decide.
  std::optional<bool> DetectWmm();

 private:
  IcmpSocket& socket_;
  std::uint32_t gateway_;
  Config config_;
};

/// The paper's "standalone Kwikr module" (Section 7.1-7.2): continuous
/// Ping-Pair monitoring of a real gateway with EWMA smoothing and the 5 ms
/// congestion classification. Without packet capture the live module
/// measures Tq only (attributing Ta requires observing the flow of
/// interest's arrivals, which needs pcap or in-app integration).
class LiveKwikrMonitor {
 public:
  struct Config {
    LivePingPair::Config probe;
    double ewma_alpha = 0.25;
    double congestion_threshold_ms = 5.0;  ///< paper Section 8.1.
  };

  struct Report {
    double smoothed_tq_ms = 0.0;
    double last_tq_ms = 0.0;
    bool congested = false;
    bool valid = false;  ///< this step produced a usable measurement.
    int total_valid = 0;
    int total_rounds = 0;
  };

  LiveKwikrMonitor(IcmpSocket& socket, std::uint32_t gateway, Config config);

  /// One probing step (one ping-pair round + smoothing). Blocks for up to
  /// the probe's reply timeout.
  Report Step();

  [[nodiscard]] const Report& last_report() const { return report_; }

 private:
  LivePingPair prober_;
  Config config_;
  Report report_;
  double smoothed_ = 0.0;
  bool has_smoothed_ = false;
  std::uint16_t round_ = 0;
};

}  // namespace kwikr::live
