#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "net/wire.h"

namespace kwikr::live {

/// A received ICMP echo reply with its kernel-observed metadata.
struct ReceivedEcho {
  net::IcmpEchoWire echo;
  std::uint8_t tos = 0;
  std::uint32_t from = 0;  ///< source IPv4 address, host byte order.
  std::chrono::steady_clock::time_point arrival;
};

/// RAII wrapper around a Linux raw ICMP socket, as used by the paper's
/// standalone Ping-Pair tool (Section 7.2). Requires CAP_NET_RAW (or root);
/// construction fails gracefully otherwise.
///
/// The TOS byte is set per send via IP_TOS, which is how the probe marks the
/// normal- and high-priority pings.
class IcmpSocket {
 public:
  IcmpSocket() = default;
  ~IcmpSocket();
  IcmpSocket(const IcmpSocket&) = delete;
  IcmpSocket& operator=(const IcmpSocket&) = delete;
  IcmpSocket(IcmpSocket&& other) noexcept;
  IcmpSocket& operator=(IcmpSocket&& other) noexcept;

  /// Opens the raw socket. Returns false (with a message in `error()`) when
  /// the socket cannot be created — typically missing privileges.
  bool Open();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Sends an ICMP echo request. `dest` is an IPv4 address in host byte
  /// order; `payload_bytes` pads the message to the requested size.
  bool SendEcho(std::uint32_t dest, std::uint8_t tos, std::uint16_t ident,
                std::uint16_t sequence, std::size_t payload_bytes);

  /// Blocks up to `timeout` for one echo reply; nullopt on timeout/error.
  std::optional<ReceivedEcho> Receive(std::chrono::milliseconds timeout);

  /// Parses a dotted-quad IPv4 string to host byte order; 0 on failure.
  static std::uint32_t ParseAddress(const std::string& dotted);

 private:
  void Close();

  int fd_ = -1;
  std::string error_;
};

}  // namespace kwikr::live
