#include "live/live_ping_pair.h"

#include <thread>

#include "net/packet.h"

namespace kwikr::live {
namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

LivePingPair::LivePingPair(IcmpSocket& socket, std::uint32_t gateway,
                           Config config)
    : socket_(socket), gateway_(gateway), config_(config) {}

LiveSample LivePingPair::RunOnce(std::uint16_t round) {
  LiveSample sample;
  const std::uint16_t seq_normal = static_cast<std::uint16_t>(round * 2);
  const std::uint16_t seq_high = static_cast<std::uint16_t>(round * 2 + 1);

  // Normal-priority first, high-priority immediately after (Section 5.2).
  const auto send_normal = Clock::now();
  if (!socket_.SendEcho(gateway_, net::kTosBestEffort, config_.ident,
                        seq_normal, config_.payload_bytes)) {
    return sample;
  }
  const auto send_high = Clock::now();
  if (!socket_.SendEcho(gateway_, net::kTosVoice, config_.ident, seq_high,
                        config_.payload_bytes)) {
    return sample;
  }

  std::optional<Clock::time_point> arrival_normal;
  std::optional<Clock::time_point> arrival_high;
  const auto deadline = Clock::now() + config_.reply_timeout;
  while ((!arrival_normal || !arrival_high) && Clock::now() < deadline) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const auto received = socket_.Receive(remaining);
    if (!received) break;
    if (received->echo.ident != config_.ident) continue;
    if (received->echo.sequence == seq_normal && !arrival_normal) {
      arrival_normal = received->arrival;
    } else if (received->echo.sequence == seq_high && !arrival_high) {
      arrival_high = received->arrival;
    }
  }
  if (!arrival_normal || !arrival_high) return sample;

  sample.rtt_normal_ms = ToMs(*arrival_normal - send_normal);
  sample.rtt_high_ms = ToMs(*arrival_high - send_high);
  if (*arrival_high >= *arrival_normal) return sample;  // invalid order.
  sample.tq_ms = ToMs(*arrival_normal - *arrival_high);
  sample.valid = true;
  return sample;
}

std::vector<LiveSample> LivePingPair::Run(int rounds) {
  std::vector<LiveSample> samples;
  samples.reserve(rounds);
  for (int i = 0; i < rounds; ++i) {
    samples.push_back(RunOnce(static_cast<std::uint16_t>(i)));
    if (i + 1 < rounds) {
      std::this_thread::sleep_for(config_.round_interval);
    }
  }
  return samples;
}

std::optional<bool> LivePingPair::DetectWmm() {
  // Burst-and-pair protocol (see core::WmmDetector): a burst of large
  // best-effort pings builds a downlink backlog; a ping-pair probes whether
  // the high-priority reply can jump it.
  constexpr int kRuns = 5;
  constexpr int kNeeded = 3;
  constexpr int kBurst = 8;
  constexpr double kGapThresholdMs = 1.0;
  int completed = 0;
  int prioritized = 0;
  for (int run = 0; run < kRuns; ++run) {
    const auto base = static_cast<std::uint16_t>(0x7000 + run * (kBurst + 2));
    bool sent = true;
    for (int i = 0; i < kBurst && sent; ++i) {
      sent = socket_.SendEcho(gateway_, net::kTosBestEffort, config_.ident,
                              static_cast<std::uint16_t>(base + i), 1372);
    }
    if (!sent) continue;
    socket_.SendEcho(gateway_, net::kTosBestEffort, config_.ident,
                     static_cast<std::uint16_t>(base + kBurst),
                     config_.payload_bytes);
    socket_.SendEcho(gateway_, net::kTosVoice, config_.ident,
                     static_cast<std::uint16_t>(base + kBurst + 1),
                     config_.payload_bytes);

    std::optional<Clock::time_point> normal;
    std::optional<Clock::time_point> high;
    const auto deadline = Clock::now() + config_.reply_timeout;
    while ((!normal || !high) && Clock::now() < deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      const auto received = socket_.Receive(remaining);
      if (!received || received->echo.ident != config_.ident) continue;
      if (received->echo.sequence == base + kBurst) {
        normal = received->arrival;
      } else if (received->echo.sequence == base + kBurst + 1) {
        high = received->arrival;
      }
    }
    if (normal && high) {
      ++completed;
      if (*high < *normal && ToMs(*normal - *high) >= kGapThresholdMs) {
        ++prioritized;
      }
    }
    std::this_thread::sleep_for(config_.round_interval);
  }
  if (completed < kNeeded) return std::nullopt;
  return prioritized >= kNeeded;
}

LiveKwikrMonitor::LiveKwikrMonitor(IcmpSocket& socket, std::uint32_t gateway,
                                   Config config)
    : prober_(socket, gateway, config.probe), config_(config) {}

LiveKwikrMonitor::Report LiveKwikrMonitor::Step() {
  const LiveSample sample = prober_.RunOnce(round_++);
  ++report_.total_rounds;
  report_.valid = sample.valid;
  if (sample.valid) {
    ++report_.total_valid;
    report_.last_tq_ms = sample.tq_ms;
    if (!has_smoothed_) {
      smoothed_ = sample.tq_ms;
      has_smoothed_ = true;
    } else {
      smoothed_ += config_.ewma_alpha * (sample.tq_ms - smoothed_);
    }
    report_.smoothed_tq_ms = smoothed_;
    report_.congested = smoothed_ > config_.congestion_threshold_ms;
  }
  return report_;
}

}  // namespace kwikr::live
