#pragma once

#include <cstdint>
#include <span>

namespace kwikr::net {

/// RFC 1071 Internet checksum (ones'-complement sum of 16-bit words).
/// Used by the live raw-socket ICMP implementation and its tests.
std::uint16_t InternetChecksum(std::span<const std::uint8_t> data);

/// Verifies that data containing an embedded checksum sums to zero.
bool ChecksumIsValid(std::span<const std::uint8_t> data);

}  // namespace kwikr::net
