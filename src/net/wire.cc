#include "net/wire.h"

#include "net/checksum.h"

namespace kwikr::net {

std::vector<std::uint8_t> IcmpEchoWire::Serialize() const {
  std::vector<std::uint8_t> out(8 + payload.size());
  out[0] = type;
  out[1] = code;
  out[2] = 0;  // checksum placeholder
  out[3] = 0;
  out[4] = static_cast<std::uint8_t>(ident >> 8);
  out[5] = static_cast<std::uint8_t>(ident & 0xFF);
  out[6] = static_cast<std::uint8_t>(sequence >> 8);
  out[7] = static_cast<std::uint8_t>(sequence & 0xFF);
  std::copy(payload.begin(), payload.end(), out.begin() + 8);
  const std::uint16_t sum = InternetChecksum(out);
  out[2] = static_cast<std::uint8_t>(sum >> 8);
  out[3] = static_cast<std::uint8_t>(sum & 0xFF);
  return out;
}

std::optional<IcmpEchoWire> IcmpEchoWire::Parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  if (!ChecksumIsValid(data)) return std::nullopt;
  IcmpEchoWire msg;
  msg.type = data[0];
  msg.code = data[1];
  msg.ident = static_cast<std::uint16_t>(data[4] << 8 | data[5]);
  msg.sequence = static_cast<std::uint16_t>(data[6] << 8 | data[7]);
  msg.payload.assign(data.begin() + 8, data.end());
  return msg;
}

std::vector<std::uint8_t> Ipv4Header::Serialize() const {
  std::vector<std::uint8_t> out(20, 0);
  out[0] = 0x45;  // version 4, IHL 5.
  out[1] = tos;
  out[2] = static_cast<std::uint8_t>(total_length >> 8);
  out[3] = static_cast<std::uint8_t>(total_length & 0xFF);
  out[4] = static_cast<std::uint8_t>(identification >> 8);
  out[5] = static_cast<std::uint8_t>(identification & 0xFF);
  out[8] = ttl;
  out[9] = protocol;
  out[12] = static_cast<std::uint8_t>(src >> 24);
  out[13] = static_cast<std::uint8_t>(src >> 16);
  out[14] = static_cast<std::uint8_t>(src >> 8);
  out[15] = static_cast<std::uint8_t>(src);
  out[16] = static_cast<std::uint8_t>(dst >> 24);
  out[17] = static_cast<std::uint8_t>(dst >> 16);
  out[18] = static_cast<std::uint8_t>(dst >> 8);
  out[19] = static_cast<std::uint8_t>(dst);
  const std::uint16_t sum = InternetChecksum(out);
  out[10] = static_cast<std::uint8_t>(sum >> 8);
  out[11] = static_cast<std::uint8_t>(sum & 0xFF);
  return out;
}

std::vector<std::uint8_t> Ipv4Header::SerializeWithPayload(
    std::span<const std::uint8_t> payload) const {
  Ipv4Header header = *this;
  header.total_length = static_cast<std::uint16_t>(20 + payload.size());
  std::vector<std::uint8_t> out = header.Serialize();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Ipv4HeaderView> Ipv4HeaderView::Parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < 20) return std::nullopt;
  const std::uint8_t version = data[0] >> 4;
  if (version != 4) return std::nullopt;
  Ipv4HeaderView view;
  view.ihl_bytes = static_cast<std::uint8_t>((data[0] & 0x0F) * 4);
  if (view.ihl_bytes < 20 || view.ihl_bytes > data.size()) return std::nullopt;
  view.tos = data[1];
  view.ttl = data[8];
  view.protocol = data[9];
  view.src = static_cast<std::uint32_t>(data[12]) << 24 |
             static_cast<std::uint32_t>(data[13]) << 16 |
             static_cast<std::uint32_t>(data[14]) << 8 | data[15];
  view.dst = static_cast<std::uint32_t>(data[16]) << 24 |
             static_cast<std::uint32_t>(data[17]) << 16 |
             static_cast<std::uint32_t>(data[18]) << 8 | data[19];
  return view;
}

}  // namespace kwikr::net
