#include "net/wired_link.h"

#include <utility>

namespace kwikr::net {

WiredLink::WiredLink(sim::EventLoop& loop, Config config, Receiver receiver)
    : loop_(loop),
      config_(config),
      receiver_(receiver),
      queue_(config.queue_capacity_packets) {}

void WiredLink::Send(Packet packet) {
  if (!queue_.push_back(std::move(packet))) {
    ++dropped_;
    return;
  }
  if (!transmitting_) StartTransmission();
}

void WiredLink::SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

void WiredLink::StartTransmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const Packet& head = queue_.front();
  const sim::Duration tx = sim::TransmissionTime(
      static_cast<std::int64_t>(head.size_bytes) * 8, config_.rate_bps);
  loop_.ScheduleIn(tx, "net.wire_tx", [this] {
    // Fault injection: the wire may lose the packet or hold it beyond the
    // nominal propagation delay (jitter → later packets overtake).
    sim::Duration propagation = config_.propagation;
    if (fault_hook_) {
      const LinkFault fault = fault_hook_(queue_.front());
      if (fault.drop) {
        queue_.pop_front();
        ++faulted_;
        StartTransmission();
        return;
      }
      propagation += std::max<sim::Duration>(fault.extra_delay, 0);
    }
    ++delivered_;
    // Propagation happens in parallel with the next serialization. The
    // Packet moves straight from the ring head into the closure (one copy,
    // not two); it must stay within InlineTask's buffer so per-hop
    // delivery never allocates.
    auto deliver = [this, packet = std::move(queue_.front())]() mutable {
      receiver_(std::move(packet));
    };
    static_assert(sim::InlineTask::fits_inline<decltype(deliver)>);
    queue_.pop_front();
    loop_.ScheduleIn(propagation, "net.wire_prop", std::move(deliver));
    StartTransmission();
  });
}

}  // namespace kwikr::net
