#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace kwikr::net {

/// On-the-wire ICMP echo message (request or reply) as used by the live
/// raw-socket Ping-Pair tool. The payload carries a user cookie so replies
/// can be matched to requests even if the network reorders them.
struct IcmpEchoWire {
  std::uint8_t type = 8;  ///< 8 = echo request, 0 = echo reply.
  std::uint8_t code = 0;
  std::uint16_t ident = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;

  /// Serializes to ICMP bytes with a correct checksum.
  [[nodiscard]] std::vector<std::uint8_t> Serialize() const;

  /// Parses ICMP bytes; returns nullopt on short input or bad checksum.
  static std::optional<IcmpEchoWire> Parse(std::span<const std::uint8_t> data);
};

/// Full IPv4 header for the raw-IP (IP_HDRINCL) send path, as used by the
/// paper's standalone Windows tool which constructs entire probe datagrams
/// (Section 7.1). Serialization computes the header checksum; the TOS byte
/// carries the WMM priority marking.
struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  ///< header + payload bytes.
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 1;  ///< ICMP.
  std::uint32_t src = 0;      ///< host byte order.
  std::uint32_t dst = 0;      ///< host byte order.

  /// 20-byte header with a correct checksum.
  [[nodiscard]] std::vector<std::uint8_t> Serialize() const;

  /// Full datagram: header (with total_length filled in) + payload.
  [[nodiscard]] std::vector<std::uint8_t> SerializeWithPayload(
      std::span<const std::uint8_t> payload) const;
};

/// Minimal IPv4 header view for parsing raw-socket receive buffers, which on
/// Linux include the IP header for ICMP raw sockets.
struct Ipv4HeaderView {
  std::uint8_t ihl_bytes = 20;  ///< header length in bytes.
  std::uint8_t tos = 0;
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  std::uint32_t src = 0;  ///< host byte order.
  std::uint32_t dst = 0;  ///< host byte order.

  static std::optional<Ipv4HeaderView> Parse(
      std::span<const std::uint8_t> data);
};

}  // namespace kwikr::net
