#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::net {

/// Unidirectional wired link with a serialization rate, propagation delay and
/// a drop-tail FIFO queue. Models the paper's wired segment between the
/// remote peer / server and the Wi-Fi AP. Use two instances for full duplex.
class WiredLink {
 public:
  using Receiver = std::function<void(Packet)>;

  struct Config {
    std::int64_t rate_bps = 100'000'000;       ///< 100 Mbps default.
    sim::Duration propagation = sim::Millis(1);
    std::size_t queue_capacity_packets = 1000;
  };

  WiredLink(sim::EventLoop& loop, Config config, Receiver receiver);

  /// Enqueues a packet; drops (and counts) when the queue is full.
  void Send(Packet packet);

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void StartTransmission();

  sim::EventLoop& loop_;
  Config config_;
  Receiver receiver_;
  std::deque<Packet> queue_;
  bool transmitting_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace kwikr::net
