#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/frame_ring.h"
#include "sim/function_ref.h"
#include "sim/time.h"

namespace kwikr::net {

/// Unidirectional wired link with a serialization rate, propagation delay and
/// a drop-tail FIFO queue. Models the paper's wired segment between the
/// remote peer / server and the Wi-Fi AP. Use two instances for full duplex.
class WiredLink {
 public:
  /// Per-packet delivery callback. Non-owning (kwikr::FunctionRef): bind a
  /// member function or a named long-lived callable — see wifi::Channel's
  /// hook lifetime note.
  using Receiver = kwikr::FunctionRef<void(Packet&&)>;

  struct Config {
    std::int64_t rate_bps = 100'000'000;       ///< 100 Mbps default.
    sim::Duration propagation = sim::Millis(1);
    std::size_t queue_capacity_packets = 1000;
  };

  WiredLink(sim::EventLoop& loop, Config config, Receiver receiver);

  /// Enqueues a packet; drops (and counts) when the queue is full.
  void Send(Packet packet);

  /// Fault-injection verdict for one packet, consulted after serialization
  /// (see faults::FaultInjector). `drop` loses the packet on the wire;
  /// `extra_delay` adds propagation latency to this packet only, letting
  /// later packets overtake it (WAN reordering/jitter).
  struct LinkFault {
    bool drop = false;
    sim::Duration extra_delay = 0;
  };
  using FaultHook = std::function<LinkFault(const Packet& packet)>;
  void SetFaultHook(FaultHook hook);

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Packets the fault hook lost on the wire (excluded from `delivered`).
  [[nodiscard]] std::uint64_t faulted() const { return faulted_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void StartTransmission();

  sim::EventLoop& loop_;
  Config config_;
  Receiver receiver_;
  FaultHook fault_hook_;
  sim::FrameRing<Packet> queue_;
  bool transmitting_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t faulted_ = 0;
};

}  // namespace kwikr::net
