#include "net/packet.h"

#include <cstdio>

namespace kwikr::net {
namespace {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kIcmp:
      return "ICMP";
    case Protocol::kUdp:
      return "UDP";
    case Protocol::kTcp:
      return "TCP";
  }
  return "?";
}

}  // namespace

std::string Describe(const Packet& packet) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s #%llu %u->%u tos=0x%02x size=%d flow=%u",
                ProtocolName(packet.protocol),
                static_cast<unsigned long long>(packet.id), packet.src,
                packet.dst, packet.tos, packet.size_bytes, packet.flow);
  return buf;
}

}  // namespace kwikr::net
