#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "sim/time.h"

namespace kwikr::net {

/// IPv4 address, host byte order. The simulator only needs identity, not
/// real routing, so a plain integer suffices.
using Address = std::uint32_t;

/// Flow identifier used for congestion attribution (counting "sandwiched"
/// packets of the flow of interest, paper Section 5.3).
using FlowId = std::uint32_t;
inline constexpr FlowId kNoFlow = 0;

enum class Protocol : std::uint8_t { kIcmp, kUdp, kTcp };

/// TOS byte values from the paper (Section 5.2): the Ping-Pair probe marks
/// one ping 0x00 (best effort) and one 0xb8 (DSCP EF -> WMM Voice). The WMM
/// detection triplet (Section 5.5) additionally uses an intermediate
/// priority, which we map to the Video access category.
inline constexpr std::uint8_t kTosBestEffort = 0x00;
inline constexpr std::uint8_t kTosVoice = 0xb8;       // DSCP 46 (EF)
inline constexpr std::uint8_t kTosVideo = 0xa0;       // DSCP 40 (CS5)
inline constexpr std::uint8_t kTosBackground = 0x20;  // DSCP 8  (CS1)

enum class IcmpType : std::uint8_t { kEchoRequest = 8, kEchoReply = 0 };

struct IcmpInfo {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t ident = 0;
  std::uint16_t sequence = 0;
};

struct UdpInfo {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t sequence = 0;       ///< application sequence number.
  sim::Time sender_timestamp = 0;   ///< stamped at the application sender.
};

struct TcpInfo {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::int64_t seq = 0;   ///< first data byte carried (segments).
  std::int64_t ack = 0;   ///< cumulative ack (acks).
  bool is_ack = false;
};

/// Receiver-to-sender report of a real-time media flow (rides in a small UDP
/// packet): the receiver's target rate plus an echo for RTT measurement.
struct RtcFeedbackInfo {
  bool valid = false;
  std::int64_t target_rate_bps = 0;
  sim::Time echo_sender_ts = 0;   ///< sender timestamp being echoed.
  sim::Duration echo_hold = 0;    ///< time the echo sat at the receiver.
  double loss_fraction = 0.0;     ///< observed since the previous report.
};

/// MAC-layer metadata stamped by the Wi-Fi layer when a frame is delivered.
/// The paper's Linux tool reads the equivalent fields from radiotap headers
/// (802.11 sequence number, retry flag, MCS data rate).
struct MacInfo {
  std::uint16_t sequence = 0;     ///< 802.11 sequence number (mod 4096).
  std::uint8_t transmissions = 1; ///< link-layer attempts (1 = no retry).
  bool retry = false;             ///< 802.11 retry bit of the final attempt.
  std::int64_t data_rate_bps = 0; ///< PHY rate the frame was sent at.
  std::uint8_t access_category = 0;
};

/// One simulated IP datagram. A flat struct keeps the hot path allocation
/// free; protocol-specific fields are valid according to `protocol`.
struct Packet {
  std::uint64_t id = 0;
  Protocol protocol = Protocol::kUdp;
  Address src = 0;
  Address dst = 0;
  std::uint8_t tos = kTosBestEffort;
  std::int32_t size_bytes = 0;  ///< IP datagram size on the wire.
  FlowId flow = kNoFlow;
  sim::Time created_at = 0;

  IcmpInfo icmp;
  UdpInfo udp;
  TcpInfo tcp;
  RtcFeedbackInfo rtc_feedback;
  MacInfo mac;
};

// Packet rides the hot path by value: inside wifi::Frame (which must fit a
// sim::InlineTask delivery closure — see the guard next to wifi::Frame), as
// a sim::FrameRing cell, and inside per-hop wire closures. This budget is
// the current size; if a new header struct pushes past it, prefer a
// side-table keyed by Packet::id over growing every queued copy, or grow
// the budget and the wifi::Frame/InlineTask budgets together, deliberately.
static_assert(sizeof(Packet) <= 168,
              "net::Packet grew: every frame queue cell and every in-flight "
              "event closure pays this size — see the budget note above "
              "before raising it.");
static_assert(std::is_trivially_copyable_v<Packet>,
              "net::Packet must stay trivially copyable (POD header fields "
              "only): frame queues and event closures move it with "
              "memcpy-grade copies.");

/// Monotonic packet id source (per-simulation, passed around explicitly).
class PacketIdAllocator {
 public:
  std::uint64_t Next() { return ++last_; }

 private:
  std::uint64_t last_ = 0;
};

/// Human-readable one-line description, for traces and test failures.
std::string Describe(const Packet& packet);

}  // namespace kwikr::net
