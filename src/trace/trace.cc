#include "trace/trace.h"

#include <cinttypes>
#include <utility>

#include "obs/exporters.h"

namespace kwikr::trace {

void Recorder::Record(sim::Time at, std::string type,
                      std::vector<std::pair<std::string, double>> fields) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{at, std::move(type), std::move(fields)});
}

void Recorder::AttachProber(core::PingPairProber& prober) {
  prober.AddSampleCallback([this](const core::PingPairSample& s) {
    Record(s.completed_at, "ping_pair",
           {{"tq_ms", sim::ToMillis(s.tq)},
            {"ta_ms", sim::ToMillis(s.ta)},
            {"tc_ms", sim::ToMillis(s.tc)},
            {"sandwiched", static_cast<double>(s.sandwiched)},
            {"max_tx", static_cast<double>(s.max_reply_transmissions)}});
  });
}

void Recorder::AttachAdapter(core::KwikrAdapter& adapter) {
  adapter.AddHintCallback([this](const core::WifiHint& hint) {
    Record(hint.at, "congestion_hint",
           {{"congested", hint.congested ? 1.0 : 0.0},
            {"tq_ms", sim::ToMillis(hint.tq)},
            {"tc_ms", sim::ToMillis(hint.tc)},
            {"smoothed_tq_ms", hint.smoothed_tq_ms},
            {"smoothed_tc_ms", hint.smoothed_tc_ms}});
  });
}

void Recorder::AttachLinkQuality(core::LinkQualityDetector& detector) {
  detector.AddHintCallback([this](const core::LinkQualityHint& hint) {
    Record(hint.at, "link_quality",
           {{"degraded", hint.degraded ? 1.0 : 0.0},
            {"avg_rate_mbps", hint.avg_rate_bps / 1e6},
            {"retry_fraction", hint.retry_fraction}});
  });
}

void Recorder::SampleReceiver(sim::Time at,
                              const rtc::MediaReceiver& receiver) {
  Record(at, "receiver",
         {{"target_kbps",
           static_cast<double>(receiver.target_rate_bps()) / 1000.0},
          {"estimate_kbps", receiver.estimator().bandwidth_bps() / 1000.0},
          {"self_delay_ms",
           receiver.estimator().self_queueing_delay_s() * 1000.0},
          {"loss_pct", receiver.loss_fraction() * 100.0}});
}

std::string Recorder::ToJson(const Event& event) {
  char buffer[128];
  std::string json = "{\"t_s\":";
  std::snprintf(buffer, sizeof(buffer), "%.6f", sim::ToSeconds(event.at));
  json += buffer;
  json += ",\"type\":\"";
  // Types and field keys are caller-supplied strings: escape them so a
  // quote, backslash, or control character can't corrupt the output line.
  json += obs::JsonEscape(event.type);
  json += "\"";
  for (const auto& [key, value] : event.fields) {
    json += ",\"";
    json += obs::JsonEscape(key);
    json += "\":";
    std::snprintf(buffer, sizeof(buffer), "%g", value);
    json += buffer;
  }
  json += "}";
  return json;
}

bool Recorder::WriteJsonl(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const auto& event : events_) {
    const std::string line = ToJson(event);
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
  }
  // Make capped-buffer data loss visible in the artifact itself instead of
  // silently truncating the recording.
  if (dropped_ > 0) {
    std::fprintf(file, "{\"type\":\"trace_dropped\",\"count\":%zu}\n",
                 dropped_);
  }
  std::fclose(file);
  return true;
}

}  // namespace kwikr::trace
