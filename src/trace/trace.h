#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/kwikr.h"
#include "core/link_quality.h"
#include "core/ping_pair.h"
#include "rtc/media.h"
#include "sim/time.h"

namespace kwikr::trace {

/// One recorded event: a timestamp, a type tag, and key/value fields.
struct Event {
  sim::Time at = 0;
  std::string type;
  std::vector<std::pair<std::string, double>> fields;
};

/// In-memory event recorder with JSONL export. Components are attached via
/// their existing callback hooks, so tracing is zero-cost when unused and
/// needs no instrumentation inside the library.
///
///   trace::Recorder recorder;
///   recorder.AttachProber(prober);      // ping-pair samples
///   recorder.AttachAdapter(adapter);    // congestion hints
///   ... run ...
///   recorder.WriteJsonl("call_trace.jsonl");
class Recorder {
 public:
  explicit Recorder(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  /// Records a custom event.
  void Record(sim::Time at, std::string type,
              std::vector<std::pair<std::string, double>> fields);

  /// Subscribes to a Ping-Pair prober's samples ("ping_pair" events with
  /// tq/ta/tc in ms and the sandwiched count).
  void AttachProber(core::PingPairProber& prober);

  /// Subscribes to a Kwikr adapter's hints ("congestion_hint" events).
  void AttachAdapter(core::KwikrAdapter& adapter);

  /// Subscribes to a link-quality detector ("link_quality" events).
  void AttachLinkQuality(core::LinkQualityDetector& detector);

  /// Samples a media receiver's state ("receiver" events) — call this from
  /// a periodic timer at whatever cadence you need.
  void SampleReceiver(sim::Time at, const rtc::MediaReceiver& receiver);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Writes events as JSON Lines; returns false when the file can't be
  /// opened.
  bool WriteJsonl(const std::string& path) const;

  /// Serializes one event to a JSON object string (exposed for tests).
  static std::string ToJson(const Event& event);

 private:
  std::size_t max_events_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

}  // namespace kwikr::trace
