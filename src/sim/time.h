#pragma once

#include <cstdint>

namespace kwikr::sim {

/// Simulated time and durations, in integer nanoseconds since simulation
/// start. Integer ticks keep the event loop exactly deterministic and make
/// microsecond-scale 802.11 timing (9 us slots, 16 us SIFS) representable
/// without rounding.
using Time = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration Nanos(std::int64_t n) { return n; }
constexpr Duration Micros(std::int64_t us) { return us * kMicrosecond; }
constexpr Duration Millis(std::int64_t ms) { return ms * kMillisecond; }
constexpr Duration Seconds(std::int64_t s) { return s * kSecond; }

/// Converts a double value in seconds to ticks (rounded to nearest).
constexpr Duration FromSeconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToMicros(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Duration of `bits` transmitted at `bits_per_second` (rounded up: a partial
/// tick still occupies the channel).
constexpr Duration TransmissionTime(std::int64_t bits,
                                    std::int64_t bits_per_second) {
  if (bits_per_second <= 0) return 0;
  // ticks = bits * kSecond / rate, rounded up. Every real frame/rate fits
  // the 64-bit fast path (bits * 1e9 + rate - 1 <= INT64_MAX up to 9 Gbit
  // frames and 200 Gbit/s links); one hardware divide there replaces the
  // libgcc __int128 division, which costs ~4x more on the per-frame
  // airtime path. Both branches compute floor((bits*kSecond + rate-1) /
  // rate) exactly, so the result is bit-identical either way.
  if (static_cast<std::uint64_t>(bits) <= 9'000'000'000ull &&
      static_cast<std::uint64_t>(bits_per_second) <= 200'000'000'000ull) {
    const auto rate = static_cast<std::uint64_t>(bits_per_second);
    const std::uint64_t num =
        static_cast<std::uint64_t>(bits) * static_cast<std::uint64_t>(kSecond);
    return static_cast<Duration>((num + rate - 1) / rate);
  }
  const auto num = static_cast<__int128>(bits) * kSecond;
  return static_cast<Duration>((num + bits_per_second - 1) / bits_per_second);
}

}  // namespace kwikr::sim
