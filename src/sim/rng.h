#pragma once

#include <cstdint>

namespace kwikr::sim {

/// Deterministic pseudo-random generator (xoshiro256**). All stochastic
/// behaviour in the simulator draws from explicitly passed Rng instances so
/// that identical seeds reproduce identical traces — the common-random-number
/// pairing used by the A/B scenarios depends on this.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double Normal(double mean, double stddev);

  /// Derives an independent child generator (for per-entity streams),
  /// advancing this generator by one draw.
  Rng Fork();

  /// Derives the independent child generator for stream `stream` without
  /// advancing this generator (SplitMix64 seed derivation). The same parent
  /// state and stream index always yield the same child, which makes it the
  /// per-task seeding primitive for parallel sweeps: tasks seeded with
  /// `base.Fork(task_index)` produce identical results no matter how many
  /// workers execute them or in what order.
  [[nodiscard]] Rng Fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace kwikr::sim
