#include "sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace kwikr::sim {

void EventLoop::PopRoot() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

// `inline` backs the always_inline attribute on the declaration; every
// caller lives in this translation unit.
inline void EventLoop::Dispatch(std::uint32_t slot_index, Time at) {
  // Invoke IN the slot (slots are address-stable, so a callback scheduling
  // more events cannot move the closure under its own feet). Marking the
  // slot unoccupied first makes Cancel of the now-running id fail, as it
  // always has; the slot cannot be recycled until it is released below.
  Slot& slot = SlotAt(slot_index);
  const Slot* next = nullptr;
  if (!now_queue_.empty()) {
    next = &SlotAt(now_queue_.front());
  } else if (!heap_.empty()) {
    next = &SlotAt(EntrySlot(heap_.front()));
  }
  if (next != nullptr) {
    __builtin_prefetch(next);
    __builtin_prefetch(reinterpret_cast<const char*>(next) + 64);
    __builtin_prefetch(reinterpret_cast<const char*>(next) + 128);
  }
  assert(slot.occupied && !slot.cancelled);
  slot.occupied = false;
  --live_;
  now_ = at;
  ++executed_;
  if (probe_ == nullptr) {
    slot.fn.InvokeAndDispose();
  } else {
    const auto wall_begin = std::chrono::steady_clock::now();
    slot.fn.InvokeAndDispose();
    const double wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    probe_->OnExecuted(slot.type, now_, wall_us);
  }
  ReleaseSlot(slot_index);
}

void EventLoop::Compact() {
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    const std::uint32_t slot = EntrySlot(entry);
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  // Floyd heap construction: O(n) instead of n pushes.
  for (std::size_t i = kept / 4 + 1; i-- > 0;) {
    if (i < kept) SiftDown(i);
  }
  // Rotate the same-tick queue once, dropping tombstones; order preserved.
  for (std::size_t i = now_queue_.size(); i-- > 0;) {
    const std::uint32_t slot = now_queue_.front();
    now_queue_.pop_front();
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
    } else {
      now_queue_.push_back(std::uint32_t{slot});
    }
  }
  tombstones_ = 0;
}

bool EventLoop::Cancel(EventId id) {
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slot_count_) return false;
  const auto slot_index = static_cast<std::uint32_t>(slot_plus_one - 1);
  Slot& slot = SlotAt(slot_index);
  if (!slot.occupied || slot.cancelled ||
      slot.generation != static_cast<std::uint32_t>(id)) {
    return false;
  }
  slot.cancelled = true;
  slot.fn.Dispose();  // release captures now, not at reap time.
  ++tombstones_;
  --live_;
  // Reap tombstones in bulk once they are three quarters of the heap;
  // below the size floor, lazy top-pruning is cheaper than a sweep. (The
  // old 1/2 threshold swept ~20k times per fig10 run; each tombstone the
  // sweep saves would otherwise cost one pop+sift, so sweeping is only
  // worth it once garbage strongly dominates.)
  if (heap_.size() >= kCompactionMinEntries &&
      tombstones_ * 4 > heap_.size() * 3) {
    Compact();
  }
  return true;
}

bool EventLoop::PopAndRun() {
  while (true) {
    if (!now_queue_.empty()) {
      // Heap entries AT (or, tombstoned, before) the current tick were
      // scheduled before the clock reached it: they precede every
      // same-tick-queue entry.
      if (!heap_.empty() && EntryTime(heap_.front()) <= now_) {
        const std::uint32_t slot_index = EntrySlot(heap_.front());
        PopRoot();
        if (SlotAt(slot_index).cancelled) {
          ReleaseSlot(slot_index);
          --tombstones_;
          continue;
        }
        Dispatch(slot_index, now_);
        return true;
      }
      const std::uint32_t slot_index = now_queue_.front();
      now_queue_.pop_front();
      if (SlotAt(slot_index).cancelled) {
        ReleaseSlot(slot_index);
        --tombstones_;
        continue;
      }
      Dispatch(slot_index, now_);
      return true;
    }
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    PopRoot();
    const std::uint32_t slot_index = EntrySlot(top);
    if (SlotAt(slot_index).cancelled) {
      ReleaseSlot(slot_index);
      --tombstones_;
      continue;
    }
    Dispatch(slot_index, EntryTime(top));
    return true;
  }
}

void EventLoop::RenumberSequences() {
  // The 32-bit sequence counter wrapped (once per 2^32 - 1 schedules).
  // Sorting by the full key preserves the pending entries' relative FIFO
  // order exactly; reassigning dense sequence numbers then restores
  // headroom. A sorted array satisfies the heap property, so no rebuild is
  // needed. heap_.size() < 2^32 always (slot indices are 32-bit), so the
  // dense numbering cannot itself wrap.
  std::sort(heap_.begin(), heap_.end());
  std::uint32_t seq = 1;
  for (HeapEntry& entry : heap_) entry = WithSeq(entry, seq++);
  next_seq_ = seq;
}

void EventLoop::Run() {
  while (PopAndRun()) {
  }
}

void EventLoop::RunUntil(Time deadline) {
  // Cancelled heads are reaped before the deadline check, so a tombstone
  // can neither satisfy nor fail it — only the earliest LIVE event decides.
  // The heap top is read exactly once per event (the old PruneTop-then-
  // PopAndRun shape read and slot-checked it twice). Same-tick-queue
  // events are at now_ <= deadline by construction, so they never need a
  // deadline check; heap entries at the current tick still precede them
  // (smaller sequence numbers — see the now_queue_ ordering proof).
  while (true) {
    if (!now_queue_.empty()) {
      if (!heap_.empty() && EntryTime(heap_.front()) <= now_) {
        const std::uint32_t slot_index = EntrySlot(heap_.front());
        PopRoot();
        if (SlotAt(slot_index).cancelled) {
          ReleaseSlot(slot_index);
          --tombstones_;
          continue;
        }
        Dispatch(slot_index, now_);
        continue;
      }
      const std::uint32_t slot_index = now_queue_.front();
      now_queue_.pop_front();
      if (SlotAt(slot_index).cancelled) {
        ReleaseSlot(slot_index);
        --tombstones_;
        continue;
      }
      Dispatch(slot_index, now_);
      continue;
    }
    if (heap_.empty()) break;
    const HeapEntry top = heap_.front();
    const std::uint32_t slot_index = EntrySlot(top);
    if (SlotAt(slot_index).cancelled) {
      PopRoot();
      ReleaseSlot(slot_index);
      --tombstones_;
      continue;
    }
    if (EntryTime(top) > deadline) break;
    PopRoot();
    Dispatch(slot_index, EntryTime(top));
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::RunFor(Duration duration) { RunUntil(now_ + duration); }

bool EventLoop::Step() { return PopAndRun(); }

// -------------------------------------------------------- periodic timer ----

PeriodicTimer::PeriodicTimer(EventLoop& loop, Duration period, InlineTask fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(Duration initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.ScheduleIn(initial_delay, "timer", [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
  running_ = false;
}

void PeriodicTimer::Fire() {
  // Reschedule BEFORE invoking so the cadence is anchored to the tick and
  // the callback observes a consistent "next firing pending" state; see the
  // class comment for the Stop()/destruction-from-callback contract. The
  // callback runs last — if it destroys this timer, nothing here touches
  // `this` afterwards.
  pending_ = loop_.ScheduleIn(period_, "timer", [this] { Fire(); });
  fn_();
}

}  // namespace kwikr::sim
