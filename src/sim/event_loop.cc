#include "sim/event_loop.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>

namespace kwikr::sim {

bool EventLoop::FindNextL0(std::uint64_t* tick) const {
  // Circular scan of the 256-bit occupancy map starting just after the scan
  // position. Bucket index == tick & 255, and every occupied bucket's tick
  // is in (scanned_tick_, scanned_tick_ + 256] — 256 consecutive ticks in
  // 256 distinct buckets — so the circular distance from `start` recovers
  // the absolute tick unambiguously. (Inserts stop at scanned_tick_ + 255;
  // only an L1 cascade can park an entry at the full +256 distance, in its
  // window's last tick.)
  const std::uint32_t start = (scanned_tick_ + 1) & (kL0Buckets - 1);
  std::uint32_t word = start >> 6;
  for (std::uint32_t i = 0; i < 5; ++i, word = (word + 1) & 3) {
    std::uint64_t bits = l0_bits_[word];
    if (i == 0) bits &= ~std::uint64_t{0} << (start & 63);
    if (i == 4) {
      if ((start & 63) == 0) break;
      bits &= ~(~std::uint64_t{0} << (start & 63));
    }
    if (bits != 0) {
      const std::uint32_t pos = (word << 6) + std::countr_zero(bits);
      const std::uint32_t dist = (pos - start) & (kL0Buckets - 1);
      *tick = scanned_tick_ + 1 + dist;
      return true;
    }
  }
  return false;
}

bool EventLoop::FindNextL1(std::uint64_t* window) const {
  if (l1_bits_ == 0) return false;
  const std::uint64_t cur = scanned_tick_ >> (kL1Shift - kL0Shift);
  const std::uint32_t start = (cur + 1) & (kL1Buckets - 1);
  // Rotate so bit 0 means "window cur + 1"; countr_zero is the distance.
  const std::uint64_t rotated =
      (l1_bits_ >> start) | (start == 0 ? 0 : l1_bits_ << (64 - start));
  *window = cur + 1 + std::countr_zero(rotated);
  return true;
}

void EventLoop::DrainL0(std::uint64_t tick) {
  const std::uint32_t b = tick & (kL0Buckets - 1);
  std::vector<HeapEntry>& bucket = l0_[b];
  for (const HeapEntry& entry : bucket) {
    const std::uint32_t slot = EntrySlot(entry);
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
      --tombstones_;
    } else {
      drain_.push_back(entry);
    }
  }
  wheel_count_ -= bucket.size();
  bucket.clear();
  l0_bits_[b >> 6] &= ~(1ull << (b & 63));
  scanned_tick_ = tick;
  std::sort(drain_.begin(), drain_.end());
}

void EventLoop::CascadeL1(std::uint64_t window) {
  // The scan stops just short of this L1 window's first tick, which makes
  // the whole window — ticks [window << 8, window << 8 + 255] — exactly the
  // L0 ring's addressable range (scanned_tick_, scanned_tick_ + 256], so
  // every entry cascades into L0 (merging with any entries already parked
  // there). The window's LAST tick sits a full ring turn ahead of the scan
  // position's bucket; that is still unambiguous — the circular scan maps
  // that bucket to distance 255, i.e. tick scanned_tick_ + 256 — because
  // the 256 addressable ticks occupy 256 distinct buckets.
  scanned_tick_ = (window << (kL1Shift - kL0Shift)) - 1;
  const std::uint32_t b = window & (kL1Buckets - 1);
  std::vector<HeapEntry>& bucket = l1_[b];
  for (const HeapEntry& entry : bucket) {
    const std::uint32_t slot = EntrySlot(entry);
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
      --tombstones_;
      --wheel_count_;
      continue;
    }
    const auto tick = static_cast<std::uint64_t>(EntryTime(entry)) >> kL0Shift;
    assert(tick > scanned_tick_ && tick - scanned_tick_ <= kL0Buckets);
    const std::uint32_t lb = tick & (kL0Buckets - 1);
    l0_[lb].push_back(entry);
    l0_bits_[lb >> 6] |= 1ull << (lb & 63);
  }
  bucket.clear();
  l1_bits_ &= ~(1ull << b);
}

bool EventLoop::RefillDrain() {
  drain_.clear();
  drain_head_ = 0;
  while (wheel_count_ > 0) {
    // An L1 window must cascade before the scan passes its boundary — its
    // entries' ticks all lie inside the window — so an occupied L0 bucket
    // is only drained if it comes first.
    std::uint64_t t0 = 0;
    const bool has_l0 = FindNextL0(&t0);
    std::uint64_t w = 0;
    if (FindNextL1(&w)) {
      if (has_l0 && t0 < (w << (kL1Shift - kL0Shift))) {
        DrainL0(t0);
      } else {
        CascadeL1(w);
      }
    } else if (has_l0) {
      DrainL0(t0);
    } else {
      assert(false && "wheel_count_ > 0 with no occupied bucket");
      break;
    }
    if (!drain_.empty()) return true;
  }
  return false;
}

bool EventLoop::PeekTimer(HeapEntry* out, bool* from_drain) {
  if (drain_head_ == drain_.size()) {
    if (wheel_count_ > 0) {
      RefillDrain();
    } else if (!drain_.empty()) {
      drain_.clear();
      drain_head_ = 0;
    }
  }
  const bool has_drain = drain_head_ < drain_.size();
  if (has_drain &&
      (heap_.empty() || drain_[drain_head_] < heap_.front())) {
    *out = drain_[drain_head_];
    *from_drain = true;
    return true;
  }
  if (heap_.empty()) return false;
  *out = heap_.front();
  *from_drain = false;
  return true;
}

void EventLoop::PopRoot() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

// `inline` backs the always_inline attribute on the declaration; every
// caller lives in this translation unit.
inline void EventLoop::Dispatch(std::uint32_t slot_index, Time at) {
  // Invoke IN the slot (slots are address-stable, so a callback scheduling
  // more events cannot move the closure under its own feet). Marking the
  // slot unoccupied first makes Cancel of the now-running id fail, as it
  // always has; the slot cannot be recycled until it is released below.
  Slot& slot = SlotAt(slot_index);
  const Slot* next = nullptr;
  if (!now_queue_.empty()) {
    next = &SlotAt(now_queue_.front());
  } else if (drain_head_ < drain_.size()) {
    next = &SlotAt(EntrySlot(drain_[drain_head_]));
  } else if (!heap_.empty()) {
    next = &SlotAt(EntrySlot(heap_.front()));
  }
  if (next != nullptr) {
    __builtin_prefetch(next);
    __builtin_prefetch(reinterpret_cast<const char*>(next) + 64);
    __builtin_prefetch(reinterpret_cast<const char*>(next) + 128);
  }
  assert(slot.occupied && !slot.cancelled);
  assert(!rearm_pending_);
  slot.occupied = false;
  --live_;
  now_ = at;
  ++executed_;
  // Rearmable events (ScheduleRearmableAt) are invoked NON-destructively so
  // a RearmCurrentAt from inside the callback can re-enqueue the same slot
  // and closure; everything else takes the fused invoke+destroy. The flag
  // rides the slot cache line already loaded above, so the extra branch is
  // one predicted-not-taken test on the common path.
  const bool rearmable = slot.rearmable;
  if (probe_ == nullptr) {
    if (rearmable) {
      slot.fn();
    } else {
      slot.fn.InvokeAndDispose();
    }
  } else {
    const auto wall_begin = std::chrono::steady_clock::now();
    if (rearmable) {
      slot.fn();
    } else {
      slot.fn.InvokeAndDispose();
    }
    const double wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    probe_->OnExecuted(slot.type, now_, wall_us);
  }
  if (rearmable) {
    if (rearm_pending_) {
      // Reuse the slot in place: the generation is untouched (the original
      // EventId keeps cancelling the chain), the closure is not re-emplaced,
      // and no freelist churn happens — a burst firing costs one timer
      // insert plus the dispatch itself.
      rearm_pending_ = false;
      slot.occupied = true;
      ++live_;
      if (rearm_type_ != nullptr) slot.type = rearm_type_;
      if (rearm_at_ <= now_) {
        now_queue_.push_back(std::uint32_t{slot_index});
      } else {
        InsertTimer(rearm_at_, slot_index);
      }
      return;
    }
    slot.fn.Dispose();  // chain over: destroy separately (non-fused path).
  }
  ReleaseSlot(slot_index);
}

void EventLoop::Compact() {
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    const std::uint32_t slot = EntrySlot(entry);
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  // Floyd heap construction: O(n) instead of n pushes.
  for (std::size_t i = kept / 4 + 1; i-- > 0;) {
    if (i < kept) SiftDown(i);
  }
  // Wheel buckets: compact each in place (insertion order within a bucket
  // is irrelevant — the drain sort orders them) and refresh the occupancy
  // bits for buckets that empty out entirely.
  const auto sweep_bucket = [this](std::vector<HeapEntry>& bucket) {
    std::size_t out = 0;
    for (const HeapEntry& entry : bucket) {
      const std::uint32_t slot = EntrySlot(entry);
      if (SlotAt(slot).cancelled) {
        ReleaseSlot(slot);
        --wheel_count_;
      } else {
        bucket[out++] = entry;
      }
    }
    bucket.resize(out);
    return out;
  };
  for (std::uint32_t b = 0; b < kL0Buckets; ++b) {
    if (!l0_[b].empty() && sweep_bucket(l0_[b]) == 0) {
      l0_bits_[b >> 6] &= ~(1ull << (b & 63));
    }
  }
  for (std::uint32_t b = 0; b < kL1Buckets; ++b) {
    if (!l1_[b].empty() && sweep_bucket(l1_[b]) == 0) {
      l1_bits_ &= ~(1ull << b);
    }
  }
  // Drain run: keep the live suffix, order preserved, head rewound to 0.
  std::size_t drain_kept = 0;
  for (std::size_t i = drain_head_; i < drain_.size(); ++i) {
    const std::uint32_t slot = EntrySlot(drain_[i]);
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
    } else {
      drain_[drain_kept++] = drain_[i];
    }
  }
  drain_.resize(drain_kept);
  drain_head_ = 0;
  // Rotate the same-tick queue once, dropping tombstones; order preserved.
  for (std::size_t i = now_queue_.size(); i-- > 0;) {
    const std::uint32_t slot = now_queue_.front();
    now_queue_.pop_front();
    if (SlotAt(slot).cancelled) {
      ReleaseSlot(slot);
    } else {
      now_queue_.push_back(std::uint32_t{slot});
    }
  }
  tombstones_ = 0;
}

bool EventLoop::Cancel(EventId id) {
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slot_count_) return false;
  const auto slot_index = static_cast<std::uint32_t>(slot_plus_one - 1);
  Slot& slot = SlotAt(slot_index);
  if (!slot.occupied || slot.cancelled ||
      slot.generation != static_cast<std::uint32_t>(id)) {
    return false;
  }
  slot.cancelled = true;
  slot.fn.Dispose();  // release captures now, not at reap time.
  ++tombstones_;
  --live_;
  // Reap tombstones in bulk once they are three quarters of the pending
  // timer population; below the size floor, lazy reaping at the heap top /
  // bucket drain is cheaper than a sweep. (The old 1/2 threshold swept ~20k
  // times per fig10 run; each tombstone the sweep saves would otherwise
  // cost one pop+sift, so sweeping is only worth it once garbage strongly
  // dominates.)
  const std::size_t timer_entries = TimerEntries();
  if (timer_entries >= kCompactionMinEntries &&
      tombstones_ * 4 > timer_entries * 3) {
    Compact();
  }
  return true;
}

bool EventLoop::PopAndRun() {
  while (true) {
    if (!now_queue_.empty()) {
      // Timer entries AT (or, tombstoned, before) the current tick were
      // scheduled before the clock reached it: they precede every
      // same-tick-queue entry.
      HeapEntry top;
      bool from_drain = false;
      if (PeekTimer(&top, &from_drain) && EntryTime(top) <= now_) {
        const std::uint32_t slot_index = EntrySlot(top);
        PopTimer(from_drain);
        if (SlotAt(slot_index).cancelled) {
          ReleaseSlot(slot_index);
          --tombstones_;
          continue;
        }
        Dispatch(slot_index, now_);
        return true;
      }
      const std::uint32_t slot_index = now_queue_.front();
      now_queue_.pop_front();
      if (SlotAt(slot_index).cancelled) {
        ReleaseSlot(slot_index);
        --tombstones_;
        continue;
      }
      Dispatch(slot_index, now_);
      return true;
    }
    HeapEntry top;
    bool from_drain = false;
    if (!PeekTimer(&top, &from_drain)) return false;
    const std::uint32_t slot_index = EntrySlot(top);
    PopTimer(from_drain);
    if (SlotAt(slot_index).cancelled) {
      ReleaseSlot(slot_index);
      --tombstones_;
      continue;
    }
    Dispatch(slot_index, EntryTime(top));
    return true;
  }
}

void EventLoop::RenumberSequences() {
  // The 32-bit sequence counter wrapped (once per 2^32 - 1 schedules).
  // Every pending timer entry — heap, wheel buckets, drain run — is
  // gathered into the heap vector, sorted by full key (which preserves the
  // relative FIFO order exactly), and renumbered densely. A sorted array
  // satisfies the heap property, so the population restarts heap-resident
  // and the wheel refills naturally from future schedules; at once per
  // 2^32 - 1 schedules the rebuild cost is irrelevant. The pending count is
  // < 2^32 always (slot indices are 32-bit), so the dense numbering cannot
  // itself wrap.
  for (auto& bucket : l0_) {
    heap_.insert(heap_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  for (auto& bucket : l1_) {
    heap_.insert(heap_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  heap_.insert(heap_.end(), drain_.begin() + drain_head_, drain_.end());
  drain_.clear();
  drain_head_ = 0;
  for (std::uint64_t& word : l0_bits_) word = 0;
  l1_bits_ = 0;
  wheel_count_ = 0;
  std::sort(heap_.begin(), heap_.end());
  std::uint32_t seq = 1;
  for (HeapEntry& entry : heap_) entry = WithSeq(entry, seq++);
  next_seq_ = seq;
}

void EventLoop::Run() {
  while (PopAndRun()) {
  }
}

void EventLoop::RunUntil(Time deadline) {
  // Cancelled heads are reaped before the deadline check, so a tombstone
  // can neither satisfy nor fail it — only the earliest LIVE event decides.
  // Same-tick-queue events are at now_ <= deadline by construction, so they
  // never need a deadline check; timer entries at the current tick still
  // precede them (smaller sequence numbers — see the now_queue_ ordering
  // proof). The wheel may drain/cascade past the deadline while peeking —
  // harmless: drained entries stay pending in the sorted run.
  while (true) {
    if (!now_queue_.empty()) {
      HeapEntry top;
      bool from_drain = false;
      if (PeekTimer(&top, &from_drain) && EntryTime(top) <= now_) {
        const std::uint32_t slot_index = EntrySlot(top);
        PopTimer(from_drain);
        if (SlotAt(slot_index).cancelled) {
          ReleaseSlot(slot_index);
          --tombstones_;
          continue;
        }
        Dispatch(slot_index, now_);
        continue;
      }
      const std::uint32_t slot_index = now_queue_.front();
      now_queue_.pop_front();
      if (SlotAt(slot_index).cancelled) {
        ReleaseSlot(slot_index);
        --tombstones_;
        continue;
      }
      Dispatch(slot_index, now_);
      continue;
    }
    HeapEntry top;
    bool from_drain = false;
    if (!PeekTimer(&top, &from_drain)) break;
    const std::uint32_t slot_index = EntrySlot(top);
    if (SlotAt(slot_index).cancelled) {
      PopTimer(from_drain);
      ReleaseSlot(slot_index);
      --tombstones_;
      continue;
    }
    if (EntryTime(top) > deadline) break;
    PopTimer(from_drain);
    Dispatch(slot_index, EntryTime(top));
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::RunFor(Duration duration) { RunUntil(now_ + duration); }

bool EventLoop::Step() { return PopAndRun(); }

// -------------------------------------------------------- periodic timer ----

PeriodicTimer::PeriodicTimer(EventLoop& loop, Duration period, InlineTask fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(Duration initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.ScheduleIn(initial_delay, "timer", [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
  running_ = false;
}

void PeriodicTimer::Fire() {
  // Reschedule BEFORE invoking so the cadence is anchored to the tick and
  // the callback observes a consistent "next firing pending" state; see the
  // class comment for the Stop()/destruction-from-callback contract. The
  // callback runs last — if it destroys this timer, nothing here touches
  // `this` afterwards.
  pending_ = loop_.ScheduleIn(period_, "timer", [this] { Fire(); });
  fn_();
}

}  // namespace kwikr::sim
