#include "sim/event_loop.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace kwikr::sim {

EventId EventLoop::ScheduleAt(Time at, const char* type,
                              std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), id, type, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId EventLoop::ScheduleIn(Duration delay, const char* type,
                              std::function<void()> fn) {
  return ScheduleAt(now_ + std::max<Duration>(delay, 0), type,
                    std::move(fn));
}

bool EventLoop::Cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  live_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool EventLoop::PopAndRun() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(event.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(event.id);
    now_ = event.at;
    ++executed_;
    if (probe_ == nullptr) {
      event.fn();
    } else {
      const auto wall_begin = std::chrono::steady_clock::now();
      event.fn();
      const double wall_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - wall_begin)
              .count();
      probe_->OnExecuted(event.type, now_, wall_us);
    }
    return true;
  }
  return false;
}

void EventLoop::Run() {
  while (PopAndRun()) {
  }
}

void EventLoop::RunUntil(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (!PopAndRun()) break;
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::RunFor(Duration duration) { RunUntil(now_ + duration); }

bool EventLoop::Step() { return PopAndRun(); }

PeriodicTimer::PeriodicTimer(EventLoop& loop, Duration period,
                             std::function<void()> fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(Duration initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.ScheduleIn(initial_delay, "timer", [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
  running_ = false;
}

void PeriodicTimer::Fire() {
  pending_ = loop_.ScheduleIn(period_, "timer", [this] { Fire(); });
  fn_();
}

}  // namespace kwikr::sim
