#include "sim/event_loop.h"

#include <cassert>
#include <chrono>

namespace kwikr::sim {

void EventLoop::PruneTop() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_.front().slot;
    if (!SlotAt(slot).cancelled) return;
    ReleaseSlot(slot);
    --tombstones_;
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }
}

void EventLoop::Compact() {
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (SlotAt(entry.slot).cancelled) {
      ReleaseSlot(entry.slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  tombstones_ = 0;
  // Floyd heap construction: O(n) instead of n pushes.
  for (std::size_t i = kept / 4 + 1; i-- > 0;) {
    if (i < kept) SiftDown(i);
  }
}

bool EventLoop::Cancel(EventId id) {
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slot_count_) return false;
  const auto slot_index = static_cast<std::uint32_t>(slot_plus_one - 1);
  Slot& slot = SlotAt(slot_index);
  if (!slot.occupied || slot.cancelled ||
      slot.generation != static_cast<std::uint32_t>(id)) {
    return false;
  }
  slot.cancelled = true;
  slot.fn = InlineTask();  // release captures now, not at reap time.
  ++tombstones_;
  --live_;
  // Reap tombstones in bulk once they dominate the heap; below the size
  // floor, lazy top-pruning is cheaper than a sweep.
  if (heap_.size() >= kCompactionMinEntries && tombstones_ * 2 > heap_.size()) {
    Compact();
  }
  return true;
}

bool EventLoop::PopAndRun() {
  std::uint32_t slot_index;
  Time at;
  while (true) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    if (SlotAt(top.slot).cancelled) {
      ReleaseSlot(top.slot);
      --tombstones_;
      continue;
    }
    slot_index = top.slot;
    at = KeyTime(top.key);
    break;
  }

  // Invoke IN the slot (slots are address-stable, so a callback scheduling
  // more events cannot move the closure under its own feet). Marking the
  // slot unoccupied first makes Cancel of the now-running id fail, as it
  // always has; the slot cannot be recycled until it is released below.
  Slot& slot = SlotAt(slot_index);
  if (!heap_.empty()) {
    const Slot* next = &SlotAt(heap_.front().slot);
    __builtin_prefetch(next);
    __builtin_prefetch(reinterpret_cast<const char*>(next) + 64);
    __builtin_prefetch(reinterpret_cast<const char*>(next) + 128);
  }
  assert(slot.occupied && !slot.cancelled);
  slot.occupied = false;
  --live_;
  now_ = at;
  ++executed_;
  if (probe_ == nullptr) {
    slot.fn();
  } else {
    const auto wall_begin = std::chrono::steady_clock::now();
    slot.fn();
    const double wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    probe_->OnExecuted(slot.type, now_, wall_us);
  }
  ReleaseSlot(slot_index);
  return true;
}

void EventLoop::Run() {
  while (PopAndRun()) {
  }
}

void EventLoop::RunUntil(Time deadline) {
  while (true) {
    // Prune first so a cancelled head can neither satisfy nor fail the
    // deadline check — only the earliest LIVE event decides.
    PruneTop();
    if (heap_.empty() || KeyTime(heap_.front().key) > deadline) break;
    PopAndRun();
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::RunFor(Duration duration) { RunUntil(now_ + duration); }

bool EventLoop::Step() { return PopAndRun(); }

// -------------------------------------------------------- periodic timer ----

PeriodicTimer::PeriodicTimer(EventLoop& loop, Duration period, InlineTask fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(Duration initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.ScheduleIn(initial_delay, "timer", [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
  running_ = false;
}

void PeriodicTimer::Fire() {
  // Reschedule BEFORE invoking so the cadence is anchored to the tick and
  // the callback observes a consistent "next firing pending" state; see the
  // class comment for the Stop()/destruction-from-callback contract. The
  // callback runs last — if it destroys this timer, nothing here touches
  // `this` afterwards.
  pending_ = loop_.ScheduleIn(period_, "timer", [this] { Fire(); });
  fn_();
}

}  // namespace kwikr::sim
