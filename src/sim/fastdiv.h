#pragma once

#include <cstdint>

namespace kwikr::sim {

/// Exact division by a small runtime-constant divisor via one multiply and
/// one shift — no hardware divide. Built for the EDCA freeze sweep, where the
/// same divisor (the PHY slot duration) divides millions of small deltas per
/// second and the ~25-cycle unpipelined `div` was the single largest hidden
/// cost of the arbitration path.
///
/// Correctness: with magic = ceil(2^40 / d) we have magic * d = 2^40 + e,
/// 0 <= e < d, so for n >= 0
///     floor(n * magic / 2^40) = floor((n + n*e/2^40) / d)
/// and the error term n*e/2^40 < n*d/2^40 stays below 1 whenever
/// n < 2^24 and d <= 2^16 — in that window the result equals floor(n/d)
/// for EVERY n and d, not just on average. Outside the window (huge divisor
/// or huge dividend) Divide() falls back to the hardware divide, so the
/// class is exact unconditionally; the fast window just has to cover the
/// hot callers (EDCA deltas are < cw_max * slot ~ 9.2e6 with default
/// timing, comfortably inside 2^24).
class FastDiv {
 public:
  static constexpr std::int64_t kMaxFastDividend = std::int64_t{1} << 24;
  static constexpr std::int64_t kMaxFastDivisor = std::int64_t{1} << 16;

  FastDiv() = default;
  explicit FastDiv(std::int64_t divisor) : divisor_(divisor) {
    if (divisor_ >= 1 && divisor_ <= kMaxFastDivisor) {
      const std::uint64_t d = static_cast<std::uint64_t>(divisor_);
      magic_ = ((std::uint64_t{1} << 40) + d - 1) / d;  // setup-time div only
    }
  }

  [[nodiscard]] std::int64_t divisor() const { return divisor_; }

  /// The precomputed multiplier (0 when the divisor has no fast path). The
  /// wifi EDCA SIMD freeze kernel replays the same multiply-shift in vector
  /// lanes; its gate requires magic() != 0 — and, on the SSE2 32x32->64
  /// multiply, magic() < 2^32 (see wifi/edca_simd.h).
  [[nodiscard]] std::uint64_t magic() const { return magic_; }
  /// The shift paired with magic(): result = (n * magic()) >> kMagicShift,
  /// exact for 0 <= n < kMaxFastDividend.
  static constexpr int kMagicShift = 40;

  /// floor(n / divisor) for n >= 0.
  [[nodiscard]] std::int64_t Divide(std::int64_t n) const {
    if (magic_ != 0 && n < kMaxFastDividend) {
      return static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(n) * magic_) >> 40);
    }
    return n / divisor_;
  }

 private:
  std::uint64_t magic_ = 0;  ///< 0 = no fast path; always fall back.
  std::int64_t divisor_ = 1;
};

}  // namespace kwikr::sim
