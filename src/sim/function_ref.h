#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace kwikr {

/// A lightweight non-owning callable reference: two words (a context pointer
/// and a thunk), invocation is one null check plus one indirect call, and
/// neither construction nor invocation ever allocates. This is the hook type
/// for the per-frame fast path (wifi::Channel, net::WiredLink), where a
/// std::function would cost a heap allocation on Set and a double indirection
/// plus vtable-ish dispatch on every frame.
///
/// Ownership contract — the whole point of the type:
///  * Plain functions and captureless lambdas are stored as function
///    pointers. They carry no state, so binding from a temporary is safe and
///    allowed (`SetDropHandler([](const Frame&) { ... })` keeps working).
///  * Stateful callables (capturing lambdas, std::function members,
///    functors) are referenced, not copied. They must be bound from an
///    lvalue that outlives the ref; binding from a temporary is a compile
///    error with a message saying to name the callable first.
///  * `Member<&T::Method>(obj)` statically binds a member function: the
///    thunk dispatches directly to the method, with no intermediate lambda
///    object whose lifetime could be mismanaged. Prefer this form for
///    long-lived hooks (AccessPoint/Station delivery, fault injector hooks).
///
/// FunctionRef is trivially copyable; copying copies the reference, never
/// the callee. `ref = nullptr` clears it; `if (ref)` is the null fast path.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() noexcept = default;
  constexpr FunctionRef(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Plain function pointer (also reached by captureless lambdas through
  /// their implicit conversion): stateless, so temporaries are fine.
  FunctionRef(R (*fn)(Args...)) noexcept {  // NOLINT(runtime/explicit)
    if (fn == nullptr) return;
    context_.fn = fn;
    thunk_ = [](Context ctx, Args... args) -> R {
      return ctx.fn(std::forward<Args>(args)...);
    };
  }

  /// Generic callable. Captureless lambdas and function names decay to a
  /// stateless function pointer (temporaries fine). Stateful callables are
  /// referenced, lvalues only — the static_assert below turns the classic
  /// dangling-temporary bug into a compile error instead of a
  /// use-after-free on the next frame.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, std::remove_reference_t<F>&, Args...>)
  FunctionRef(F&& f) noexcept {  // NOLINT(runtime/explicit)
    if constexpr (std::is_convertible_v<std::remove_reference_t<F>,
                                        R (*)(Args...)>) {
      R (*fn)(Args...) = f;
      if (fn == nullptr) return;
      context_.fn = fn;
      thunk_ = [](Context ctx, Args... args) -> R {
        return ctx.fn(std::forward<Args>(args)...);
      };
    } else {
      static_assert(
          std::is_lvalue_reference_v<F>,
          "kwikr::FunctionRef does not own its callable: a stateful callable "
          "(capturing lambda, std::function, functor) must be bound from an "
          "lvalue that outlives the ref. Name it first (local, member, or "
          "owned hook struct), or bind a method with "
          "FunctionRef::Member<&T::Method>(obj).");
      context_.obj =
          const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      thunk_ = [](Context ctx, Args... args) -> R {
        return std::invoke(*static_cast<std::remove_reference_t<F>*>(ctx.obj),
                           std::forward<Args>(args)...);
      };
    }
  }

  /// Static member-function dispatch: the method is baked into the thunk at
  /// compile time, so the only runtime state is the object pointer.
  template <auto Method, typename T>
  [[nodiscard]] static FunctionRef Member(T* obj) noexcept {
    static_assert(std::is_invocable_r_v<R, decltype(Method), T*, Args...>,
                  "Member<&T::Method>: the method is not callable with this "
                  "FunctionRef's signature.");
    FunctionRef ref;
    ref.context_.obj = const_cast<std::remove_const_t<T>*>(obj);
    ref.thunk_ = [](Context ctx, Args... args) -> R {
      return std::invoke(Method, static_cast<T*>(ctx.obj),
                         std::forward<Args>(args)...);
    };
    return ref;
  }

  FunctionRef& operator=(std::nullptr_t) noexcept {
    thunk_ = nullptr;
    context_ = Context{};
    return *this;
  }

  R operator()(Args... args) const {
    return thunk_(context_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return thunk_ != nullptr;
  }

  friend bool operator==(const FunctionRef& ref, std::nullptr_t) noexcept {
    return ref.thunk_ == nullptr;
  }

 private:
  // Function pointers may not round-trip through void* portably, so the
  // context is a union of the two storage shapes.
  union Context {
    void* obj;
    R (*fn)(Args...);
    constexpr Context() noexcept : obj(nullptr) {}
  };
  using Thunk = R (*)(Context, Args...);

  Context context_{};
  Thunk thunk_ = nullptr;
};

}  // namespace kwikr
