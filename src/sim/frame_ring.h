#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <limits>
#include <memory>
#include <new>
#include <utility>

namespace kwikr::sim {

/// Bounded FIFO over a power-of-two ring: push/pop are index arithmetic
/// (mask, no modulo, no branchy segment logic), so the steady state of the
/// frame path performs zero heap traffic — unlike std::deque, which
/// allocates and frees map segments as the queue breathes.
///
/// Capacity model: `capacity` is the logical bound (drop-tail semantics live
/// in the caller via the push_back() return value — a full ring refuses the
/// element). The backing store starts empty and grows geometrically to the
/// next power of two as the high-water mark rises, then never shrinks; a
/// queue that reaches depth N allocates O(log N) times total, ever. This
/// deliberately does NOT reserve `capacity` upfront: contender queues
/// default to a 512-frame bound but sit near-empty in most scenarios, and
/// the simulator's small resident set is a feature (see BENCH_fig10.json
/// peak_rss_kb).
///
/// T may be move-only; elements live in raw aligned storage and are
/// constructed/destroyed individually, so no default constructor is needed.
template <typename T>
class FrameRing {
 public:
  FrameRing() noexcept = default;
  explicit FrameRing(std::size_t capacity) noexcept : capacity_(capacity) {}

  FrameRing(FrameRing&& other) noexcept
      : slots_(std::exchange(other.slots_, nullptr)),
        mask_(std::exchange(other.mask_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)),
        capacity_(other.capacity_) {}

  FrameRing& operator=(FrameRing&& other) noexcept {
    if (this != &other) {
      Release();
      slots_ = std::exchange(other.slots_, nullptr);
      mask_ = std::exchange(other.mask_, 0);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
      capacity_ = other.capacity_;
    }
    return *this;
  }

  FrameRing(const FrameRing&) = delete;
  FrameRing& operator=(const FrameRing&) = delete;

  ~FrameRing() { Release(); }

  /// Appends by move — the element is constructed directly in its ring cell
  /// from `value`, with no intermediate materialization. Returns false — and
  /// leaves the ring untouched — when the ring is at capacity (the caller
  /// counts the drop).
  bool push_back(T&& value) {
    if (size_ >= capacity_) return false;
    if (size_ == SlotCount()) Grow();
    ::new (static_cast<void*>(slots_ + ((head_ + size_) & mask_)))
        T(std::move(value));
    ++size_;
    return true;
  }

  /// Copying overload for lvalue callers (tests, replay tooling).
  bool push_back(const T& value) { return push_back(T(value)); }

  void pop_front() {
    assert(size_ > 0);
    slots_[head_].~T();
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return slots_[head_];
  }

  /// i-th element from the front (0 = front). For tests and introspection.
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ >= capacity_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Slots currently allocated (the high-water power of two).
  [[nodiscard]] std::size_t allocated() const noexcept { return SlotCount(); }

  void clear() noexcept {
    while (size_ > 0) pop_front();
  }

 private:
  static constexpr std::size_t kInitialSlots = 8;

  [[nodiscard]] std::size_t SlotCount() const noexcept {
    return slots_ == nullptr ? 0 : mask_ + 1;
  }

  void Grow() {
    const std::size_t old_slots = SlotCount();
    std::size_t new_slots = old_slots == 0 ? kInitialSlots : old_slots * 2;
    // Never allocate past the bound's power-of-two ceiling. (bit_ceil of an
    // effectively-unbounded capacity would overflow; skip the clamp there.)
    if (capacity_ <= std::numeric_limits<std::size_t>::max() / 2) {
      new_slots = std::min(new_slots, std::bit_ceil(capacity_));
    }
    assert(new_slots > old_slots);
    T* fresh = static_cast<T*>(::operator new(
        new_slots * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      T& old = slots_[(head_ + i) & mask_];
      ::new (static_cast<void*>(fresh + i)) T(std::move(old));
      old.~T();
    }
    if (slots_ != nullptr) {
      ::operator delete(static_cast<void*>(slots_),
                        std::align_val_t{alignof(T)});
    }
    slots_ = fresh;
    mask_ = new_slots - 1;
    head_ = 0;
  }

  void Release() noexcept {
    clear();
    if (slots_ != nullptr) {
      ::operator delete(static_cast<void*>(slots_),
                        std::align_val_t{alignof(T)});
      slots_ = nullptr;
      mask_ = 0;
      head_ = 0;
    }
  }

  T* slots_ = nullptr;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;  ///< always < SlotCount() (pre-masked).
  std::size_t size_ = 0;
  std::size_t capacity_ = std::numeric_limits<std::size_t>::max();
};

}  // namespace kwikr::sim
