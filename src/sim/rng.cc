#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace kwikr::sim {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full range
  if ((range & (range - 1)) == 0) {
    // Power-of-two range (every EDCA backoff draw: cw is 2^k - 1). Same
    // rejection window and same accepted value as the general path below —
    // for a power of two, ~0 % range == range - 1 so the general limit is
    // exactly 2^64 - range, and v % range == v & (range - 1) — but with both
    // ~25-cycle hardware divisions replaced by a negate and a mask. The
    // rejection loop must stay (the window [2^64 - range, 2^64) is nonempty)
    // or the draw SEQUENCE could diverge from the general path and break
    // golden-corpus byte-identity.
    const std::uint64_t limit = 0 - range;
    std::uint64_t v = Next();
    while (v >= limit) v = Next();
    return lo + static_cast<std::int64_t>(v & (range - 1));
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % range;
  std::uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) *
      std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

Rng Rng::Fork() { return Rng{Next()}; }

Rng Rng::Fork(std::uint64_t stream) const {
  // SplitMix64 over (state, stream): consecutive stream indices land on
  // decorrelated seeds, and the parent is read, not advanced.
  std::uint64_t state =
      s_[0] ^ Rotl(s_[3], 17) ^ (stream * 0x9E3779B97F4A7C15ULL);
  return Rng{SplitMix64(state)};
}

}  // namespace kwikr::sim
