#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/frame_ring.h"
#include "sim/inline_task.h"
#include "sim/time.h"

namespace kwikr::sim {

/// Handle to a scheduled event, usable for cancellation. Encodes the event's
/// scheduler slot and a per-slot generation counter; 0 is never a valid id.
using EventId = std::uint64_t;

/// Type tag given to events scheduled through the untyped overloads.
inline constexpr const char kDefaultEventType[] = "event";

/// Observer of event execution (the observability hook). Attach with
/// EventLoop::SetProbe; with no probe attached the loop's dispatch path
/// performs a single null check and no clock reads — zero-cost.
class EventLoopProbe {
 public:
  virtual ~EventLoopProbe() = default;

  /// Called after each event ran: the event's static type tag, the
  /// simulated time it ran at, and its wall-clock execution time in
  /// microseconds.
  virtual void OnExecuted(const char* type, Time at, double wall_us) = 0;
};

/// Single-threaded discrete-event loop.
///
/// Events at the same tick run in scheduling (FIFO) order, which keeps
/// back-to-back operations like the Ping-Pair's two sends well-defined.
///
/// The dispatch path is allocation- and hash-free:
///  - Callables are built directly inside InlineTask slots (Schedule* is a
///    template, so the closure is constructed in place — one copy from the
///    call site, none on dispatch) and invoked in place: the slot table is
///    chunked so slots never move, even when a callback schedules more
///    events mid-run.
///  - Ordering is a hand-rolled 4-ary min-heap of small POD entries
///    (time, sequence, slot); the callables never ride through sifts.
///  - Cancellation is O(1) without hashing: EventId encodes (slot,
///    generation), and Cancel flips the slot's tombstone bit and releases
///    the captured state immediately. Tombstoned heap entries are reaped
///    lazily at the heap top, or in one O(n) compaction sweep when they
///    outnumber live events.
class EventLoop {
 private:
  template <typename F>
  using EnableIfCallable =
      std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>;

 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleAt(Time at, F&& fn) {
    return ScheduleAt(at, kDefaultEventType, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` (clamped to non-negative).
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleIn(Duration delay, F&& fn) {
    return ScheduleIn(delay, kDefaultEventType, std::forward<F>(fn));
  }

  /// Typed variants: `type` must be a string with static storage duration
  /// (a literal); it tags the event for the EventLoopProbe.
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleAt(Time at, const char* type, F&& fn) {
    const std::uint32_t slot_index = AcquireSlot();
    Slot& slot = SlotAt(slot_index);
    slot.fn.Emplace(std::forward<F>(fn));
    slot.type = type;
    if (at <= now_) {
      // Same-tick fast lane: an event for the CURRENT tick never rides the
      // heap. It would be the heap's worst case twice over — minimal time
      // with maximal sequence sifts all the way up on push, and pops pay a
      // full sift-down — when a plain FIFO already yields the exact
      // dispatch order (see the now_queue_ comment for the proof sketch).
      // Frame deliveries, the bulk of the wifi fast path, all land here.
      now_queue_.push_back(std::uint32_t{slot_index});
    } else {
      if (next_seq_ == kMaxSeq) RenumberSequences();
      heap_.push_back(MakeEntry(at, next_seq_++, slot_index));
      SiftUp(heap_.size() - 1);
    }
    ++live_;
    return MakeId(slot_index, slot.generation);
  }

  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleIn(Duration delay, const char* type, F&& fn) {
    return ScheduleAt(now_ + std::max<Duration>(delay, 0), type,
                      std::forward<F>(fn));
  }

  /// Attaches (or with nullptr detaches) the execution probe.
  void SetProbe(EventLoopProbe* probe) { probe_ = probe; }
  [[nodiscard]] EventLoopProbe* probe() const { return probe_; }

  /// Cancels a pending event; returns false if it already ran / was
  /// cancelled / never existed. O(1): flips the slot's tombstone bit and
  /// releases the callable immediately (captured resources are freed at
  /// cancel time, not when the tombstone is reaped).
  bool Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  /// Cancelled events never count against the deadline check: the next LIVE
  /// event decides whether the loop keeps going.
  void RunUntil(Time deadline);

  /// Runs for `duration` past the current time.
  void RunFor(Duration duration);

  /// Executes at most one pending event; returns false if queue is empty.
  bool Step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events executed (for micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Cancelled-but-unreaped entries, heap and same-tick queue combined
  /// (introspection for tests).
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }

 private:
  friend struct EventLoopTestPeer;

  // Heap ordering key: (time, schedule sequence) — FIFO within a tick —
  // with the slot index packed into the same 16 bytes. Scheduled times are
  // clamped to now() >= 0, so `at` is non-negative and (time, seq, slot)
  // packs into one 128-bit unsigned integer that orders lexicographically
  // with a SINGLE compare (the naive two-field compare costs two
  // data-dependent, unpredictable branches per heap comparison). The slot
  // index riding in the low 32 bits never influences the order — the
  // sequence field is already unique among pending entries — but it shrinks
  // HeapEntry from 32 bytes (key + slot + alignment padding) to 16, which
  // halves the cache traffic of every sift: a 4-ary node's children span
  // one cache line instead of two.
  //
  // The sequence field is 32 bits wide; when it wraps (once per 2^32 - 1
  // schedules) RenumberSequences() reassigns dense sequence numbers to the
  // pending entries in FIFO order, preserving the total order exactly.
#if defined(__SIZEOF_INT128__)
  struct HeapEntry {
    unsigned __int128 key;  // (time << 64) | (seq << 32) | slot.
    friend constexpr bool operator<(const HeapEntry& a, const HeapEntry& b) {
      return a.key < b.key;
    }
    friend constexpr bool operator>=(const HeapEntry& a, const HeapEntry& b) {
      return a.key >= b.key;
    }
  };
  static constexpr HeapEntry MakeEntry(Time at, std::uint32_t seq,
                                       std::uint32_t slot) {
    return HeapEntry{
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(at))
         << 64) |
        (static_cast<std::uint64_t>(seq) << 32) | slot};
  }
  static constexpr Time EntryTime(const HeapEntry& e) {
    return static_cast<Time>(static_cast<std::uint64_t>(e.key >> 64));
  }
  static constexpr std::uint32_t EntrySlot(const HeapEntry& e) {
    return static_cast<std::uint32_t>(e.key);
  }
  static constexpr HeapEntry WithSeq(const HeapEntry& e, std::uint32_t seq) {
    constexpr auto kSeqMask = static_cast<unsigned __int128>(0xFFFFFFFFull)
                              << 32;
    return HeapEntry{(e.key & ~kSeqMask) |
                     (static_cast<std::uint64_t>(seq) << 32)};
  }
#else
  struct HeapEntry {
    std::uint64_t at;
    std::uint32_t seq;
    std::uint32_t slot;
    friend constexpr bool operator<(const HeapEntry& a, const HeapEntry& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    }
    friend constexpr bool operator>=(const HeapEntry& a, const HeapEntry& b) {
      return !(a < b);
    }
  };
  static constexpr HeapEntry MakeEntry(Time at, std::uint32_t seq,
                                       std::uint32_t slot) {
    return HeapEntry{static_cast<std::uint64_t>(at), seq, slot};
  }
  static constexpr Time EntryTime(const HeapEntry& e) {
    return static_cast<Time>(e.at);
  }
  static constexpr std::uint32_t EntrySlot(const HeapEntry& e) {
    return e.slot;
  }
  static constexpr HeapEntry WithSeq(const HeapEntry& e, std::uint32_t seq) {
    return HeapEntry{e.at, seq, e.slot};
  }
#endif
  static_assert(sizeof(HeapEntry) == 16,
                "HeapEntry must stay 16 bytes: sift cost is dominated by "
                "cache traffic, and a 4-ary node's children must fit one "
                "cache line.");

  /// Slot table cell: owns the callable of one pending event. Slots are
  /// recycled through a free list; `generation` increments on every release
  /// so stale EventIds can never cancel the slot's next tenant.
  struct Slot {
    InlineTask fn;
    const char* type = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    bool occupied = false;
    bool cancelled = false;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  /// Slots live in fixed 256-cell chunks so their addresses are stable:
  /// PopAndRun invokes the callable IN the slot, and a callback that
  /// schedules (growing the table) must not move the closure under its own
  /// feet.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  /// Compaction sweeps only once the heap is mostly garbage AND big enough
  /// that lazy top-reaping alone could retain a lot of memory.
  static constexpr std::size_t kCompactionMinEntries = 64;

  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    // +1 keeps 0 (the conventional "no event" sentinel) unused.
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  [[nodiscard]] Slot& SlotAt(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t AcquireSlot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t index = free_head_;
      Slot& slot = SlotAt(index);
      free_head_ = slot.next_free;
      slot.next_free = kNilSlot;
      slot.occupied = true;
      slot.cancelled = false;
      return index;
    }
    if ((slot_count_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    const std::uint32_t index = slot_count_++;
    SlotAt(index).occupied = true;
    return index;
  }

  void ReleaseSlot(std::uint32_t index) {
    Slot& slot = SlotAt(index);
    // The callable is already gone on every release path: PopAndRun fuses
    // invoke+destroy, and Cancel disposes at cancel time.
    slot.occupied = false;
    slot.cancelled = false;
    ++slot.generation;  // invalidates every EventId minted for this tenancy.
    slot.next_free = free_head_;
    free_head_ = index;
  }

  void SiftUp(std::size_t index) {
    const HeapEntry entry = heap_[index];
    while (index > 0) {
      const std::size_t parent = (index - 1) / 4;
      if (entry >= heap_[parent]) break;
      heap_[index] = heap_[parent];
      index = parent;
    }
    heap_[index] = entry;
  }

  void SiftDown(std::size_t index) {
    const std::size_t size = heap_.size();
    const HeapEntry entry = heap_[index];
    while (true) {
      const std::size_t first_child = index * 4 + 1;
      std::size_t best;
      if (first_child + 4 <= size) {
        // Full node: pick the min child with a branchless tournament. Which
        // child wins is data-dependent and essentially random, so the
        // compiler's conditional moves beat a compare-and-branch scan.
        const std::size_t b01 = heap_[first_child + 1] < heap_[first_child]
                                    ? first_child + 1
                                    : first_child;
        const std::size_t b23 = heap_[first_child + 3] < heap_[first_child + 2]
                                    ? first_child + 3
                                    : first_child + 2;
        best = heap_[b23] < heap_[b01] ? b23 : b01;
      } else {
        if (first_child >= size) break;
        best = first_child;
        for (std::size_t c = first_child + 1; c < size; ++c) {
          if (heap_[c] < heap_[best]) best = c;
        }
      }
      if (heap_[best] >= entry) break;
      heap_[index] = heap_[best];
      index = best;
    }
    heap_[index] = entry;
  }

  bool PopAndRun();
  /// Removes the heap root: back entry to the front, then one sift down.
  /// Precondition: the heap is non-empty.
  void PopRoot();
  /// Runs the already-popped live event in slot `slot_index` at time `at`:
  /// advances the clock, invokes the callable in place (fused
  /// invoke+destroy), fires the probe, releases the slot. Force-inlined
  /// into the dispatch loops (all callers live in event_loop.cc): the
  /// out-of-line call was measurable at ~19M dispatches per fig10 run.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  void Dispatch(std::uint32_t slot_index, Time at);
  /// Removes every tombstoned entry and rebuilds the heap in O(n).
  void Compact();
  /// Reassigns dense sequence numbers to the pending entries (FIFO order
  /// preserved exactly) when the 32-bit sequence counter wraps.
  void RenumberSequences();

  static constexpr std::uint32_t kMaxSeq = 0xFFFFFFFFu;

  Time now_ = 0;
  std::uint32_t next_seq_ = 1;
  EventLoopProbe* probe_ = nullptr;
  std::uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  /// Same-tick fast lane: slots of events scheduled AT the current tick,
  /// in scheduling order. Dispatch order stays exactly the (time, seq)
  /// total order because (a) every heap entry whose time equals now_ was
  /// pushed before the clock reached now_ — pushes at the current tick go
  /// here instead — so it carries a smaller sequence than every queue
  /// member and must run first, and (b) the queue itself preserves
  /// scheduling order. The queue is always fully drained before the clock
  /// can advance (its events are at now_, never later than any other
  /// pending event).
  FrameRing<std::uint32_t> now_queue_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
};

/// Repeating timer built on EventLoop. Fires first after `period` (or a
/// custom initial delay) and then every `period` until stopped or destroyed.
///
/// Callback contract: by the time `fn` runs, the NEXT firing is already
/// scheduled (rescheduling happens first so the cadence stays anchored even
/// if `fn` inspects the loop). Calling Stop() — directly or via the
/// destructor — from inside `fn` cancels that already-pending firing, so a
/// callback may halt or destroy its own timer. If the timer's owner is
/// destroyed WITHOUT destroying/stopping the timer, the pending firing's
/// `this` capture dangles — the timer must not outlive its callback's
/// captures.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop& loop, Duration period, InlineTask fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(Duration initial_delay);
  void Start() { Start(period_); }
  void Stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  Duration period_;
  InlineTask fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace kwikr::sim
