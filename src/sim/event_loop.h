#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace kwikr::sim {

/// Handle to a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Type tag given to events scheduled through the untyped overloads.
inline constexpr const char kDefaultEventType[] = "event";

/// Observer of event execution (the observability hook). Attach with
/// EventLoop::SetProbe; with no probe attached the loop's dispatch path
/// performs a single null check and no clock reads — zero-cost.
class EventLoopProbe {
 public:
  virtual ~EventLoopProbe() = default;

  /// Called after each event ran: the event's static type tag, the
  /// simulated time it ran at, and its wall-clock execution time in
  /// microseconds.
  virtual void OnExecuted(const char* type, Time at, double wall_us) = 0;
};

/// Single-threaded discrete-event loop.
///
/// Events at the same tick run in scheduling (FIFO) order, which keeps
/// back-to-back operations like the Ping-Pair's two sends well-defined.
class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  EventId ScheduleAt(Time at, std::function<void()> fn) {
    return ScheduleAt(at, kDefaultEventType, std::move(fn));
  }

  /// Schedules `fn` after `delay` (clamped to non-negative).
  EventId ScheduleIn(Duration delay, std::function<void()> fn) {
    return ScheduleIn(delay, kDefaultEventType, std::move(fn));
  }

  /// Typed variants: `type` must be a string with static storage duration
  /// (a literal); it tags the event for the EventLoopProbe.
  EventId ScheduleAt(Time at, const char* type, std::function<void()> fn);
  EventId ScheduleIn(Duration delay, const char* type,
                     std::function<void()> fn);

  /// Attaches (or with nullptr detaches) the execution probe.
  void SetProbe(EventLoopProbe* probe) { probe_ = probe; }
  [[nodiscard]] EventLoopProbe* probe() const { return probe_; }

  /// Cancels a pending event; returns false if it already ran / was
  /// cancelled / never existed.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  void RunUntil(Time deadline);

  /// Runs for `duration` past the current time.
  void RunFor(Duration duration);

  /// Executes at most one pending event; returns false if queue is empty.
  bool Step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

  /// Total events executed (for micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    EventId id;
    const char* type;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  bool PopAndRun();

  Time now_ = 0;
  EventId next_id_ = 1;
  EventLoopProbe* probe_ = nullptr;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;
};

/// Repeating timer built on EventLoop. Fires first after `period` (or a
/// custom initial delay) and then every `period` until stopped or destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop& loop, Duration period, std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(Duration initial_delay);
  void Start() { Start(period_); }
  void Stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  Duration period_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace kwikr::sim
