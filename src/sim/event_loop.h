#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/frame_ring.h"
#include "sim/inline_task.h"
#include "sim/time.h"

namespace kwikr::sim {

/// Handle to a scheduled event, usable for cancellation. Encodes the event's
/// scheduler slot and a per-slot generation counter; 0 is never a valid id.
using EventId = std::uint64_t;

/// Type tag given to events scheduled through the untyped overloads.
inline constexpr const char kDefaultEventType[] = "event";

/// Pending-timer store selection (see EventLoop). kWheel is the production
/// configuration: a two-level hierarchical timer wheel absorbs the dense
/// short-horizon timers (frame airtimes, SIFS gaps, RTO guards) in O(1) and
/// the 4-ary heap only carries the far-future overflow. kHeapOnly routes
/// every timer through the heap — the pre-wheel behavior, kept selectable so
/// the randomized differential test in tests/sim_test.cc can prove the two
/// configurations dispatch identical (time, seq) sequences.
enum class SchedulerMode { kWheel, kHeapOnly };

/// Observer of event execution (the observability hook). Attach with
/// EventLoop::SetProbe; with no probe attached the loop's dispatch path
/// performs a single null check and no clock reads — zero-cost.
class EventLoopProbe {
 public:
  virtual ~EventLoopProbe() = default;

  /// Called after each event ran: the event's static type tag, the
  /// simulated time it ran at, and its wall-clock execution time in
  /// microseconds.
  virtual void OnExecuted(const char* type, Time at, double wall_us) = 0;
};

/// Single-threaded discrete-event loop.
///
/// Events at the same tick run in scheduling (FIFO) order, which keeps
/// back-to-back operations like the Ping-Pair's two sends well-defined.
///
/// The dispatch path is allocation- and hash-free:
///  - Callables are built directly inside InlineTask slots (Schedule* is a
///    template, so the closure is constructed in place — one copy from the
///    call site, none on dispatch) and invoked in place: the slot table is
///    chunked so slots never move, even when a callback schedules more
///    events mid-run.
///  - Ordering is a two-level hierarchical timer wheel for the near future
///    (L0: 256 buckets of 8.192 us, spanning 2.10 ms; L1: 64 buckets of
///    2.097 ms, horizon 134.2 ms) backed by a hand-rolled 4-ary min-heap of
///    small POD entries (time, sequence, slot) for the far-future overflow.
///    Wheel inserts are O(1) bucket pushes; a bucket is sorted only when
///    the clock reaches it (into the drain run), so dense timer populations
///    never pay per-event log-depth sifts. Sparse populations (fewer than
///    kWheelMinPopulation pending timers) skip the wheel entirely and use
///    the heap, whose shallow sifts win there. The dispatch order is the
///    exact (time, seq) total order either way — see DESIGN.md §14 and the
///    SchedulerMode differential test.
///  - Cancellation is O(1) without hashing: EventId encodes (slot,
///    generation), and Cancel flips the slot's tombstone bit and releases
///    the captured state immediately. Tombstoned entries are reaped lazily
///    at the heap top / bucket drain, or in one O(n) compaction sweep when
///    they outnumber live events.
class EventLoop {
 private:
  template <typename F>
  using EnableIfCallable =
      std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>;

 public:
  EventLoop() = default;
  /// Selects the pending-timer store; kHeapOnly exists for the wheel-vs-heap
  /// differential tests. The mode is fixed for the loop's lifetime.
  explicit EventLoop(SchedulerMode mode) : mode_(mode) {}
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleAt(Time at, F&& fn) {
    return ScheduleAt(at, kDefaultEventType, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` (clamped to non-negative).
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleIn(Duration delay, F&& fn) {
    return ScheduleIn(delay, kDefaultEventType, std::forward<F>(fn));
  }

  /// Typed variants: `type` must be a string with static storage duration
  /// (a literal); it tags the event for the EventLoopProbe.
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleAt(Time at, const char* type, F&& fn) {
    const std::uint32_t slot_index = AcquireSlot();
    Slot& slot = SlotAt(slot_index);
    slot.fn.Emplace(std::forward<F>(fn));
    slot.type = type;
    if (at <= now_) {
      // Same-tick fast lane: an event for the CURRENT tick never rides the
      // heap. It would be the heap's worst case twice over — minimal time
      // with maximal sequence sifts all the way up on push, and pops pay a
      // full sift-down — when a plain FIFO already yields the exact
      // dispatch order (see the now_queue_ comment for the proof sketch).
      // Frame deliveries, the bulk of the wifi fast path, all land here.
      now_queue_.push_back(std::uint32_t{slot_index});
    } else {
      InsertTimer(at, slot_index);
    }
    ++live_;
    return MakeId(slot_index, slot.generation);
  }

  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleIn(Duration delay, const char* type, F&& fn) {
    return ScheduleAt(now_ + std::max<Duration>(delay, 0), type,
                      std::forward<F>(fn));
  }

  /// Schedules a *rearmable* event: from inside its own callback, the event
  /// may call RearmCurrentAt() to fire again, reusing its slot and callable —
  /// the closure is neither destroyed nor reconstructed between firings, and
  /// no slot churn (acquire/release, generation bump) happens per firing.
  /// Built for long burst chains (the wifi TXOP path fires the same
  /// continuation closure once per frame of a burst). The returned EventId
  /// stays valid across rearms: Cancel(id) cancels whichever firing is
  /// currently pending. A rearmable event that returns without rearming is
  /// released exactly like a normal event.
  ///
  /// Cost note: a rearmable firing invokes the callable non-destructively and
  /// pays a separate destroy when the chain ends, instead of the fused
  /// invoke+destroy — one extra indirect call per *chain*, amortized across
  /// its firings.
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleRearmableAt(Time at, const char* type, F&& fn) {
    const EventId id = ScheduleAt(at, type, std::forward<F>(fn));
    SlotAt(static_cast<std::uint32_t>((id >> 32) - 1)).rearmable = true;
    return id;
  }

  /// Re-arms the currently-executing rearmable event to fire again at `at`
  /// (clamped to now(); a same-tick rearm joins the same-tick FIFO lane like
  /// a fresh ScheduleAt). Must only be called from inside the callback of an
  /// event scheduled with ScheduleRearmableAt, at most once per firing.
  /// `type`, when non-null, retags the event for the probe from the next
  /// firing on (e.g. "wifi.tx_done" chains retag to "wifi.txop_burst").
  void RearmCurrentAt(Time at, const char* type = nullptr) {
    rearm_pending_ = true;
    rearm_at_ = at;
    rearm_type_ = type;
  }

  /// Records `count` logical event executions that were batched into the
  /// current dispatch instead of being scheduled individually (the wifi
  /// burst-delivery path invokes owner hooks inline). Keeps executed() — an
  /// observable that the golden corpus commits to — stable across the
  /// batching optimization. Callers fire the probe themselves when one is
  /// attached (see probe()).
  void CountInlineDispatches(std::uint64_t count) { executed_ += count; }

  /// Attaches (or with nullptr detaches) the execution probe.
  void SetProbe(EventLoopProbe* probe) { probe_ = probe; }
  [[nodiscard]] EventLoopProbe* probe() const { return probe_; }

  /// Cancels a pending event; returns false if it already ran / was
  /// cancelled / never existed. O(1): flips the slot's tombstone bit and
  /// releases the callable immediately (captured resources are freed at
  /// cancel time, not when the tombstone is reaped).
  bool Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  /// Cancelled events never count against the deadline check: the next LIVE
  /// event decides whether the loop keeps going.
  void RunUntil(Time deadline);

  /// Runs for `duration` past the current time.
  void RunFor(Duration duration);

  /// Executes at most one pending event; returns false if queue is empty.
  bool Step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events executed (for micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Cancelled-but-unreaped entries, heap and same-tick queue combined
  /// (introspection for tests).
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }

 private:
  friend struct EventLoopTestPeer;

  // Heap ordering key: (time, schedule sequence) — FIFO within a tick —
  // with the slot index packed into the same 16 bytes. Scheduled times are
  // clamped to now() >= 0, so `at` is non-negative and (time, seq, slot)
  // packs into one 128-bit unsigned integer that orders lexicographically
  // with a SINGLE compare (the naive two-field compare costs two
  // data-dependent, unpredictable branches per heap comparison). The slot
  // index riding in the low 32 bits never influences the order — the
  // sequence field is already unique among pending entries — but it shrinks
  // HeapEntry from 32 bytes (key + slot + alignment padding) to 16, which
  // halves the cache traffic of every sift: a 4-ary node's children span
  // one cache line instead of two.
  //
  // The sequence field is 32 bits wide; when it wraps (once per 2^32 - 1
  // schedules) RenumberSequences() reassigns dense sequence numbers to the
  // pending entries in FIFO order, preserving the total order exactly.
#if defined(__SIZEOF_INT128__)
  struct HeapEntry {
    unsigned __int128 key;  // (time << 64) | (seq << 32) | slot.
    friend constexpr bool operator<(const HeapEntry& a, const HeapEntry& b) {
      return a.key < b.key;
    }
    friend constexpr bool operator>=(const HeapEntry& a, const HeapEntry& b) {
      return a.key >= b.key;
    }
  };
  static constexpr HeapEntry MakeEntry(Time at, std::uint32_t seq,
                                       std::uint32_t slot) {
    return HeapEntry{
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(at))
         << 64) |
        (static_cast<std::uint64_t>(seq) << 32) | slot};
  }
  static constexpr Time EntryTime(const HeapEntry& e) {
    return static_cast<Time>(static_cast<std::uint64_t>(e.key >> 64));
  }
  static constexpr std::uint32_t EntrySlot(const HeapEntry& e) {
    return static_cast<std::uint32_t>(e.key);
  }
  static constexpr HeapEntry WithSeq(const HeapEntry& e, std::uint32_t seq) {
    constexpr auto kSeqMask = static_cast<unsigned __int128>(0xFFFFFFFFull)
                              << 32;
    return HeapEntry{(e.key & ~kSeqMask) |
                     (static_cast<std::uint64_t>(seq) << 32)};
  }
#else
  struct HeapEntry {
    std::uint64_t at;
    std::uint32_t seq;
    std::uint32_t slot;
    friend constexpr bool operator<(const HeapEntry& a, const HeapEntry& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    }
    friend constexpr bool operator>=(const HeapEntry& a, const HeapEntry& b) {
      return !(a < b);
    }
  };
  static constexpr HeapEntry MakeEntry(Time at, std::uint32_t seq,
                                       std::uint32_t slot) {
    return HeapEntry{static_cast<std::uint64_t>(at), seq, slot};
  }
  static constexpr Time EntryTime(const HeapEntry& e) {
    return static_cast<Time>(e.at);
  }
  static constexpr std::uint32_t EntrySlot(const HeapEntry& e) {
    return e.slot;
  }
  static constexpr HeapEntry WithSeq(const HeapEntry& e, std::uint32_t seq) {
    return HeapEntry{e.at, seq, e.slot};
  }
#endif
  static_assert(sizeof(HeapEntry) == 16,
                "HeapEntry must stay 16 bytes: sift cost is dominated by "
                "cache traffic, and a 4-ary node's children must fit one "
                "cache line.");

  /// Slot table cell: owns the callable of one pending event. Slots are
  /// recycled through a free list; `generation` increments on every release
  /// so stale EventIds can never cancel the slot's next tenant.
  struct Slot {
    InlineTask fn;
    const char* type = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    bool occupied = false;
    bool cancelled = false;
    /// Set by ScheduleRearmableAt: Dispatch invokes non-destructively and
    /// honours RearmCurrentAt from inside the callback.
    bool rearmable = false;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  /// Slots live in fixed 256-cell chunks so their addresses are stable:
  /// PopAndRun invokes the callable IN the slot, and a callback that
  /// schedules (growing the table) must not move the closure under its own
  /// feet.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  /// Compaction sweeps only once the heap is mostly garbage AND big enough
  /// that lazy top-reaping alone could retain a lot of memory.
  static constexpr std::size_t kCompactionMinEntries = 64;
  /// Below this many pending timers the wheel loses: with 1-4 entries the
  /// 4-ary heap's one-level sifts cost a few ns while every wheel pop pays
  /// a drain refill (bitmap scan + bucket drain + sort). InsertTimer routes
  /// sparse-regime timers to the heap; the split is invisible to dispatch
  /// order because PeekTimer always takes min(drain head, heap top) by the
  /// full (time, seq) key.
  static constexpr std::size_t kWheelMinPopulation = 64;

  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    // +1 keeps 0 (the conventional "no event" sentinel) unused.
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  [[nodiscard]] Slot& SlotAt(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t AcquireSlot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t index = free_head_;
      Slot& slot = SlotAt(index);
      free_head_ = slot.next_free;
      slot.next_free = kNilSlot;
      slot.occupied = true;
      slot.cancelled = false;
      return index;
    }
    if ((slot_count_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    const std::uint32_t index = slot_count_++;
    SlotAt(index).occupied = true;
    return index;
  }

  void ReleaseSlot(std::uint32_t index) {
    Slot& slot = SlotAt(index);
    // The callable is already gone on every release path: PopAndRun fuses
    // invoke+destroy, and Cancel disposes at cancel time.
    slot.occupied = false;
    slot.cancelled = false;
    slot.rearmable = false;
    ++slot.generation;  // invalidates every EventId minted for this tenancy.
    slot.next_free = free_head_;
    free_head_ = index;
  }

  void SiftUp(std::size_t index) {
    const HeapEntry entry = heap_[index];
    while (index > 0) {
      const std::size_t parent = (index - 1) / 4;
      if (entry >= heap_[parent]) break;
      heap_[index] = heap_[parent];
      index = parent;
    }
    heap_[index] = entry;
  }

  void SiftDown(std::size_t index) {
    const std::size_t size = heap_.size();
    const HeapEntry entry = heap_[index];
    while (true) {
      const std::size_t first_child = index * 4 + 1;
      std::size_t best;
      if (first_child + 4 <= size) {
        // Full node: pick the min child with a branchless tournament. Which
        // child wins is data-dependent and essentially random, so the
        // compiler's conditional moves beat a compare-and-branch scan.
        const std::size_t b01 = heap_[first_child + 1] < heap_[first_child]
                                    ? first_child + 1
                                    : first_child;
        const std::size_t b23 = heap_[first_child + 3] < heap_[first_child + 2]
                                    ? first_child + 3
                                    : first_child + 2;
        best = heap_[b23] < heap_[b01] ? b23 : b01;
      } else {
        if (first_child >= size) break;
        best = first_child;
        for (std::size_t c = first_child + 1; c < size; ++c) {
          if (heap_[c] < heap_[best]) best = c;
        }
      }
      if (heap_[best] >= entry) break;
      heap_[index] = heap_[best];
      index = best;
    }
    heap_[index] = entry;
  }

  // ------------------------------------------------ hierarchical wheel ----
  // Level geometry: an L0 bucket spans 2^13 ns (8.192 us) and the 256-bucket
  // ring covers the next 2.10 ms; an L1 bucket spans 2^21 ns (2.097 ms) —
  // exactly 256 L0 ticks — and its 64-bucket ring pushes the wheel horizon
  // to 134.2 ms. Anything farther out overflows to the heap (and events
  // scheduled while beyond the horizon simply stay there: the dispatch path
  // always takes min(drain head, heap top), so the split is invisible).
  //
  // `scanned_tick_` is the wheel's scan position in L0 ticks: every L0
  // bucket entry has tick in (scanned_tick_, scanned_tick_ + 255], every L1
  // entry's window is in (scanned_tick_ >> 8, (scanned_tick_ >> 8) + 63],
  // and everything at or before the scan position lives in `drain_` — a
  // sorted run popped front to back (the bucket sort happens HERE, once the
  // clock actually needs the bucket, which is what makes inserts O(1)).
  // Late arrivals for an already-scanned tick are sorted-inserted into the
  // remaining drain run; keys are unique, so the (time, seq) order is the
  // exact heap order.
  static constexpr int kL0Shift = 13;
  static constexpr std::uint32_t kL0Buckets = 256;
  static constexpr int kL1Shift = 21;
  static constexpr std::uint32_t kL1Buckets = 64;
  static_assert(kL1Shift - kL0Shift == 8,
                "an L1 bucket must span exactly kL0Buckets L0 ticks — the "
                "cascade routes straight into the L0 ring");

  /// Routes one pending timer entry (at > now_) to the drain run, a wheel
  /// bucket, or the overflow heap. Hot: inlined into the ScheduleAt
  /// template.
  void InsertTimer(Time at, std::uint32_t slot_index) {
    if (next_seq_ == kMaxSeq) RenumberSequences();
    const HeapEntry entry = MakeEntry(at, next_seq_++, slot_index);
    if (mode_ == SchedulerMode::kHeapOnly ||
        TimerEntries() < kWheelMinPopulation) {
      // Sparse regime (or heap-only mode): see kWheelMinPopulation. The
      // regimes mix freely — entries already in the wheel stay there and
      // drain in order regardless of where new inserts land.
      heap_.push_back(entry);
      SiftUp(heap_.size() - 1);
      return;
    }
    // With the wheel fully idle the scan position can be resynced to the
    // clock for free (there is no bucket whose window mapping could break).
    // Forward resync keeps heap-driven quiet periods from pushing
    // near-future timers into the overflow heap. The BACKWARD resync
    // matters just as much: reap-walking a tail of cancelled far-future
    // guards (the RTO pattern at quiesce) parks the scan position way
    // ahead of the clock, and without the pull-back every timer of the
    // next activity phase would classify as a late arrival and
    // sorted-insert into one ever-growing drain run — O(run) memmove per
    // insert until the clock catches up with the parked scan.
    if (wheel_count_ == 0 && drain_head_ == drain_.size()) {
      scanned_tick_ = static_cast<std::uint64_t>(now_) >> kL0Shift;
    }
    const auto tick = static_cast<std::uint64_t>(at) >> kL0Shift;
    if (tick <= scanned_tick_) {
      // Already-scanned tick: join the sorted drain run. Every popped key
      // has time <= now_ < at, so the insert position is at or after
      // drain_head_ and the popped prefix is undisturbed.
      const auto it = std::upper_bound(drain_.begin() + drain_head_,
                                       drain_.end(), entry);
      drain_.insert(it, entry);
    } else if (tick - scanned_tick_ <= kL0Buckets - 1) {
      const std::uint32_t b = tick & (kL0Buckets - 1);
      l0_[b].push_back(entry);
      l0_bits_[b >> 6] |= 1ull << (b & 63);
      ++wheel_count_;
    } else if ((tick >> (kL1Shift - kL0Shift)) -
                   (scanned_tick_ >> (kL1Shift - kL0Shift)) <=
               kL1Buckets - 1) {
      const std::uint32_t b =
          (tick >> (kL1Shift - kL0Shift)) & (kL1Buckets - 1);
      l1_[b].push_back(entry);
      l1_bits_ |= 1ull << b;
      ++wheel_count_;
    } else {
      heap_.push_back(entry);
      SiftUp(heap_.size() - 1);
    }
  }

  /// Refills the drain run from the wheel: advances the scan to the next
  /// occupied L0 bucket (cascading L1 windows as the scan crosses their
  /// boundaries) and sorts it. Returns false once the wheel is empty.
  bool RefillDrain();
  /// Drains L0 bucket `tick` into drain_ (reaping tombstones) and sorts.
  void DrainL0(std::uint64_t tick);
  /// Cascades L1 window `window` into the L0 ring / drain run.
  void CascadeL1(std::uint64_t window);
  /// Next occupied L0 tick after scanned_tick_ (circular bitmap scan).
  [[nodiscard]] bool FindNextL0(std::uint64_t* tick) const;
  /// Next occupied L1 window after scanned_tick_'s window.
  [[nodiscard]] bool FindNextL1(std::uint64_t* window) const;
  /// Minimal pending timer entry across drain run + overflow heap (refilling
  /// the drain from the wheel as needed) without removing it. The entry may
  /// be tombstoned — callers reap after PopTimer, as with the old heap top.
  bool PeekTimer(HeapEntry* out, bool* from_drain);
  void PopTimer(bool from_drain) {
    if (from_drain) {
      ++drain_head_;
    } else {
      PopRoot();
    }
  }
  /// Pending timer entries outside now_queue_ (compaction heuristics).
  [[nodiscard]] std::size_t TimerEntries() const {
    return heap_.size() + wheel_count_ + (drain_.size() - drain_head_);
  }

  bool PopAndRun();
  /// Removes the heap root: back entry to the front, then one sift down.
  /// Precondition: the heap is non-empty.
  void PopRoot();
  /// Runs the already-popped live event in slot `slot_index` at time `at`:
  /// advances the clock, invokes the callable in place (fused
  /// invoke+destroy), fires the probe, releases the slot. Force-inlined
  /// into the dispatch loops (all callers live in event_loop.cc): the
  /// out-of-line call was measurable at ~19M dispatches per fig10 run.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  void Dispatch(std::uint32_t slot_index, Time at);
  /// Removes every tombstoned entry and rebuilds the heap in O(n).
  void Compact();
  /// Reassigns dense sequence numbers to the pending entries (FIFO order
  /// preserved exactly) when the 32-bit sequence counter wraps.
  void RenumberSequences();

  static constexpr std::uint32_t kMaxSeq = 0xFFFFFFFFu;

  Time now_ = 0;
  std::uint32_t next_seq_ = 1;
  SchedulerMode mode_ = SchedulerMode::kWheel;
  EventLoopProbe* probe_ = nullptr;
  std::uint64_t executed_ = 0;
  /// Far-future overflow (and, in kHeapOnly mode, every pending timer).
  std::vector<HeapEntry> heap_;
  // Wheel state — see the geometry comment above. Bucket vectors grow to
  // their high-water mark and are then reused forever (clear() keeps
  // capacity), so the steady state stays allocation-free.
  std::vector<HeapEntry> l0_[kL0Buckets];
  std::vector<HeapEntry> l1_[kL1Buckets];
  std::uint64_t l0_bits_[kL0Buckets / 64] = {};
  std::uint64_t l1_bits_ = 0;
  /// Sorted run of the entries at/before the scan position; popped
  /// [drain_head_, size) front to back.
  std::vector<HeapEntry> drain_;
  std::size_t drain_head_ = 0;
  std::uint64_t scanned_tick_ = 0;
  /// Entries (live + tombstoned) currently in l0_/l1_ buckets.
  std::size_t wheel_count_ = 0;
  /// Same-tick fast lane: slots of events scheduled AT the current tick,
  /// in scheduling order. Dispatch order stays exactly the (time, seq)
  /// total order because (a) every heap entry whose time equals now_ was
  /// pushed before the clock reached now_ — pushes at the current tick go
  /// here instead — so it carries a smaller sequence than every queue
  /// member and must run first, and (b) the queue itself preserves
  /// scheduling order. The queue is always fully drained before the clock
  /// can advance (its events are at now_, never later than any other
  /// pending event).
  FrameRing<std::uint32_t> now_queue_;
  /// RearmCurrentAt latch, consumed by Dispatch after a rearmable callback
  /// returns. Dispatch is not re-entrant (single-threaded loop, callbacks
  /// never run the loop recursively), so one latch suffices.
  bool rearm_pending_ = false;
  Time rearm_at_ = 0;
  const char* rearm_type_ = nullptr;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
};

/// Repeating timer built on EventLoop. Fires first after `period` (or a
/// custom initial delay) and then every `period` until stopped or destroyed.
///
/// Callback contract: by the time `fn` runs, the NEXT firing is already
/// scheduled (rescheduling happens first so the cadence stays anchored even
/// if `fn` inspects the loop). Calling Stop() — directly or via the
/// destructor — from inside `fn` cancels that already-pending firing, so a
/// callback may halt or destroy its own timer. If the timer's owner is
/// destroyed WITHOUT destroying/stopping the timer, the pending firing's
/// `this` capture dangles — the timer must not outlive its callback's
/// captures.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop& loop, Duration period, InlineTask fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(Duration initial_delay);
  void Start() { Start(period_); }
  void Stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  Duration period_;
  InlineTask fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace kwikr::sim
