#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_task.h"
#include "sim/time.h"

namespace kwikr::sim {

/// Handle to a scheduled event, usable for cancellation. Encodes the event's
/// scheduler slot and a per-slot generation counter; 0 is never a valid id.
using EventId = std::uint64_t;

/// Type tag given to events scheduled through the untyped overloads.
inline constexpr const char kDefaultEventType[] = "event";

/// Observer of event execution (the observability hook). Attach with
/// EventLoop::SetProbe; with no probe attached the loop's dispatch path
/// performs a single null check and no clock reads — zero-cost.
class EventLoopProbe {
 public:
  virtual ~EventLoopProbe() = default;

  /// Called after each event ran: the event's static type tag, the
  /// simulated time it ran at, and its wall-clock execution time in
  /// microseconds.
  virtual void OnExecuted(const char* type, Time at, double wall_us) = 0;
};

/// Single-threaded discrete-event loop.
///
/// Events at the same tick run in scheduling (FIFO) order, which keeps
/// back-to-back operations like the Ping-Pair's two sends well-defined.
///
/// The dispatch path is allocation- and hash-free:
///  - Callables are built directly inside InlineTask slots (Schedule* is a
///    template, so the closure is constructed in place — one copy from the
///    call site, none on dispatch) and invoked in place: the slot table is
///    chunked so slots never move, even when a callback schedules more
///    events mid-run.
///  - Ordering is a hand-rolled 4-ary min-heap of small POD entries
///    (time, sequence, slot); the callables never ride through sifts.
///  - Cancellation is O(1) without hashing: EventId encodes (slot,
///    generation), and Cancel flips the slot's tombstone bit and releases
///    the captured state immediately. Tombstoned heap entries are reaped
///    lazily at the heap top, or in one O(n) compaction sweep when they
///    outnumber live events.
class EventLoop {
 private:
  template <typename F>
  using EnableIfCallable =
      std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>;

 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleAt(Time at, F&& fn) {
    return ScheduleAt(at, kDefaultEventType, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` (clamped to non-negative).
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleIn(Duration delay, F&& fn) {
    return ScheduleIn(delay, kDefaultEventType, std::forward<F>(fn));
  }

  /// Typed variants: `type` must be a string with static storage duration
  /// (a literal); it tags the event for the EventLoopProbe.
  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleAt(Time at, const char* type, F&& fn) {
    const std::uint32_t slot_index = AcquireSlot();
    Slot& slot = SlotAt(slot_index);
    slot.fn.Emplace(std::forward<F>(fn));
    slot.type = type;
    heap_.push_back(HeapEntry{MakeKey(std::max(at, now_), next_seq_++),
                              slot_index});
    SiftUp(heap_.size() - 1);
    ++live_;
    return MakeId(slot_index, slot.generation);
  }

  template <typename F, typename = EnableIfCallable<F>>
  EventId ScheduleIn(Duration delay, const char* type, F&& fn) {
    return ScheduleAt(now_ + std::max<Duration>(delay, 0), type,
                      std::forward<F>(fn));
  }

  /// Attaches (or with nullptr detaches) the execution probe.
  void SetProbe(EventLoopProbe* probe) { probe_ = probe; }
  [[nodiscard]] EventLoopProbe* probe() const { return probe_; }

  /// Cancels a pending event; returns false if it already ran / was
  /// cancelled / never existed. O(1): flips the slot's tombstone bit and
  /// releases the callable immediately (captured resources are freed at
  /// cancel time, not when the tombstone is reaped).
  bool Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  /// Cancelled events never count against the deadline check: the next LIVE
  /// event decides whether the loop keeps going.
  void RunUntil(Time deadline);

  /// Runs for `duration` past the current time.
  void RunFor(Duration duration);

  /// Executes at most one pending event; returns false if queue is empty.
  bool Step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events executed (for micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Cancelled-but-unreaped heap entries (introspection for tests).
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }

 private:
  friend struct EventLoopTestPeer;

  // Heap ordering key: (time, schedule sequence) — FIFO within a tick.
  // Scheduled times are clamped to now() >= 0, so `at` is non-negative and
  // the pair packs into one 128-bit unsigned integer that orders
  // lexicographically with a SINGLE compare. The naive two-field compare
  // (`at != b.at ? at < b.at : seq < b.seq`) costs two data-dependent
  // branches per heap comparison, and sift paths are exactly the code where
  // those branches are unpredictable — packing the key measurably ~halves
  // dispatch cost.
#if defined(__SIZEOF_INT128__)
  using HeapKey = unsigned __int128;
  static constexpr HeapKey MakeKey(Time at, std::uint64_t seq) {
    return (static_cast<HeapKey>(static_cast<std::uint64_t>(at)) << 64) | seq;
  }
  static constexpr Time KeyTime(HeapKey key) {
    return static_cast<Time>(static_cast<std::uint64_t>(key >> 64));
  }
#else
  struct HeapKey {
    std::uint64_t at;
    std::uint64_t seq;
    friend constexpr bool operator<(const HeapKey& a, const HeapKey& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    }
    friend constexpr bool operator>=(const HeapKey& a, const HeapKey& b) {
      return !(a < b);
    }
  };
  static constexpr HeapKey MakeKey(Time at, std::uint64_t seq) {
    return HeapKey{static_cast<std::uint64_t>(at), seq};
  }
  static constexpr Time KeyTime(HeapKey key) {
    return static_cast<Time>(key.at);
  }
#endif

  struct HeapEntry {
    HeapKey key;
    std::uint32_t slot;
  };

  /// Slot table cell: owns the callable of one pending event. Slots are
  /// recycled through a free list; `generation` increments on every release
  /// so stale EventIds can never cancel the slot's next tenant.
  struct Slot {
    InlineTask fn;
    const char* type = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    bool occupied = false;
    bool cancelled = false;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  /// Slots live in fixed 256-cell chunks so their addresses are stable:
  /// PopAndRun invokes the callable IN the slot, and a callback that
  /// schedules (growing the table) must not move the closure under its own
  /// feet.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  /// Compaction sweeps only once the heap is mostly garbage AND big enough
  /// that lazy top-reaping alone could retain a lot of memory.
  static constexpr std::size_t kCompactionMinEntries = 64;

  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    // +1 keeps 0 (the conventional "no event" sentinel) unused.
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  [[nodiscard]] Slot& SlotAt(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t AcquireSlot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t index = free_head_;
      Slot& slot = SlotAt(index);
      free_head_ = slot.next_free;
      slot.next_free = kNilSlot;
      slot.occupied = true;
      slot.cancelled = false;
      return index;
    }
    if ((slot_count_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    const std::uint32_t index = slot_count_++;
    SlotAt(index).occupied = true;
    return index;
  }

  void ReleaseSlot(std::uint32_t index) {
    Slot& slot = SlotAt(index);
    slot.fn = InlineTask();
    slot.type = nullptr;
    slot.occupied = false;
    slot.cancelled = false;
    ++slot.generation;  // invalidates every EventId minted for this tenancy.
    slot.next_free = free_head_;
    free_head_ = index;
  }

  void SiftUp(std::size_t index) {
    const HeapEntry entry = heap_[index];
    while (index > 0) {
      const std::size_t parent = (index - 1) / 4;
      if (entry.key >= heap_[parent].key) break;
      heap_[index] = heap_[parent];
      index = parent;
    }
    heap_[index] = entry;
  }

  void SiftDown(std::size_t index) {
    const std::size_t size = heap_.size();
    const HeapEntry entry = heap_[index];
    while (true) {
      const std::size_t first_child = index * 4 + 1;
      std::size_t best;
      if (first_child + 4 <= size) {
        // Full node: pick the min child with a branchless tournament. Which
        // child wins is data-dependent and essentially random, so the
        // compiler's conditional moves beat a compare-and-branch scan.
        const std::size_t b01 =
            heap_[first_child + 1].key < heap_[first_child].key
                ? first_child + 1
                : first_child;
        const std::size_t b23 =
            heap_[first_child + 3].key < heap_[first_child + 2].key
                ? first_child + 3
                : first_child + 2;
        best = heap_[b23].key < heap_[b01].key ? b23 : b01;
      } else {
        if (first_child >= size) break;
        best = first_child;
        for (std::size_t c = first_child + 1; c < size; ++c) {
          if (heap_[c].key < heap_[best].key) best = c;
        }
      }
      if (heap_[best].key >= entry.key) break;
      heap_[index] = heap_[best];
      index = best;
    }
    heap_[index] = entry;
  }

  bool PopAndRun();
  /// Pops tombstoned entries off the heap top until a live event (or
  /// nothing) is exposed.
  void PruneTop();
  /// Removes every tombstoned entry and rebuilds the heap in O(n).
  void Compact();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventLoopProbe* probe_ = nullptr;
  std::uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
};

/// Repeating timer built on EventLoop. Fires first after `period` (or a
/// custom initial delay) and then every `period` until stopped or destroyed.
///
/// Callback contract: by the time `fn` runs, the NEXT firing is already
/// scheduled (rescheduling happens first so the cadence stays anchored even
/// if `fn` inspects the loop). Calling Stop() — directly or via the
/// destructor — from inside `fn` cancels that already-pending firing, so a
/// callback may halt or destroy its own timer. If the timer's owner is
/// destroyed WITHOUT destroying/stopping the timer, the pending firing's
/// `this` capture dangles — the timer must not outlive its callback's
/// captures.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop& loop, Duration period, InlineTask fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(Duration initial_delay);
  void Start() { Start(period_); }
  void Stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  Duration period_;
  InlineTask fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace kwikr::sim
