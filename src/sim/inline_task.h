#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace kwikr::sim {

/// Move-only type-erased `void()` callable with inline storage sized for the
/// simulator's event closures.
///
/// Every packet hop in the simulation is an EventLoop event, and the largest
/// in-tree closures capture a wifi::Frame (net::Packet + MAC metadata, 184
/// bytes) by value. `std::function`'s small-buffer optimisation (16-32 bytes
/// on mainstream ABIs) heap-allocates every one of those, which made the
/// allocator the hottest function in event dispatch. InlineTask's buffer is
/// sized so that all in-tree event lambdas — including Frame/Packet-capturing
/// ones — are stored inline; the hot path never touches the heap. Oversized
/// captures still work via a heap fallback (one pointer in the buffer), so
/// the type stays a drop-in replacement; call sites that must stay
/// allocation-free static_assert `fits_inline<F>` next to the lambda.
///
/// Invoking is non-destructive (PeriodicTimer re-invokes the same task every
/// period). Tasks are move-only; moving relocates the inline object with its
/// own move constructor, which `fits_inline` therefore requires to be
/// noexcept (throwing-move types silently take the heap path instead).
class InlineTask {
 public:
  /// Inline buffer size. The floor is the biggest in-tree event closure:
  /// wifi::Channel's "wifi.deliver" lambda capturing [this, dest,
  /// frame = std::move(frame)] = 8 + 4 (+4 pad) + 184 = 200 bytes.
  static constexpr std::size_t kInlineCapacity = 208;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when callables of type F are stored in the inline buffer (no heap
  /// allocation on construction, move, or destruction).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineCapacity && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  InlineTask() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                        // std::function at every Schedule* call site.
    Construct(std::forward<F>(fn));
  }

  /// Destroys the current callable (if any) and constructs `fn` in place —
  /// the zero-extra-copy path EventLoop uses to build an event's closure
  /// directly inside its scheduler slot.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                        std::is_invocable_r_v<void, D&>>>
  void Emplace(F&& fn) {
    Reset();
    Construct(std::forward<F>(fn));
  }

  void Emplace(InlineTask&& other) noexcept { *this = std::move(other); }

  InlineTask(InlineTask&& other) noexcept { MoveFrom(other); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  /// Invokes the callable and destroys it in one fused indirect call,
  /// leaving the task empty. This is EventLoop's dispatch path: every event
  /// runs exactly once and is released immediately after, so separate
  /// invoke and destroy dispatches (two indirect calls per event) would be
  /// pure overhead. Precondition: a callable is held.
  void InvokeAndDispose() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  /// Destroys the held callable (if any); the task becomes empty.
  void Dispose() noexcept { Reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the held callable lives in the inline buffer (introspection
  /// for tests and the zero-allocation microbenchmark).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && !ops_->heap;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Invokes then destroys in one dispatch (EventLoop's fast path).
    void (*invoke_destroy)(void* storage);
    /// Move-constructs dst from src and destroys src's object.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* s) {
        D* d = std::launder(reinterpret_cast<D*>(s));
        (*d)();
        d->~D();
      },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* s) {
        D* d = *reinterpret_cast<D**>(s);
        (*d)();
        delete d;
      },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      true,
  };

  template <typename F, typename D = std::decay_t<F>>
  void Construct(F&& fn) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  void MoveFrom(InlineTask& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace kwikr::sim
