#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace kwikr::core {

/// One flow-of-interest packet observed by the client between the two ping
/// responses ("sandwiched", paper Section 5.3).
struct SandwichedPacket {
  std::int32_t size_bytes = 0;
  std::int64_t mac_rate_bps = 0;  ///< MAC data rate the frame used.
};

/// Configuration of the self-congestion attribution formula
/// Ta = n_a * (s_a / R + t).
struct AttributionConfig {
  /// Channel access delay `t` per packet. The Android implementation uses a
  /// fixed 0.125 ms (paper Section 7.3); the Linux implementation measures
  /// it with the channel-access estimator and passes it per call.
  sim::Duration fixed_channel_access = sim::Micros(125);
  /// Fallback MAC rate when a packet carries none.
  std::int64_t fallback_rate_bps = 65'000'000;
};

/// Computes Ta — the flow of interest's own contribution to the Wi-Fi
/// downlink delay — by charging each sandwiched packet its transmission time
/// plus the channel access delay.
sim::Duration SelfDelay(const std::vector<SandwichedPacket>& sandwiched,
                        const AttributionConfig& config);

/// Same, with a measured channel access delay overriding the fixed value.
sim::Duration SelfDelay(const std::vector<SandwichedPacket>& sandwiched,
                        const AttributionConfig& config,
                        sim::Duration measured_channel_access);

/// Cross-traffic delay Tc = max(0, Tq - Ta).
sim::Duration CrossDelay(sim::Duration tq, sim::Duration ta);

}  // namespace kwikr::core
