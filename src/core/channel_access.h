#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/probe_transport.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/time.h"
#include "wifi/edca.h"

namespace kwikr::core {

/// Channel-access-delay estimator (paper Sections 5.4 and 8.2).
///
/// Sends pairs of same-priority pings back to back. When the two replies
/// leave the AP consecutively — verified by consecutive 802.11 sequence
/// numbers and clear retry bits — the reply arrival gap minus the second
/// reply's transmission time is the AP's channel access delay for that
/// priority: AIFS + backoff + any interleaved co-channel transmissions.
class ChannelAccessEstimator {
 public:
  struct Config {
    sim::Duration interval = sim::Millis(50);
    std::int32_t ping_size_bytes = 64;
    std::uint8_t tos = net::kTosBestEffort;  ///< probe priority.
    sim::Duration timeout = sim::Millis(200);
    std::uint16_t ident = 0xCA0D;
    /// Require consecutive 802.11 sequence numbers on the replies.
    bool require_consecutive_sequence = true;
    /// Discard measurements where either reply was retransmitted.
    bool require_no_retry = true;
  };

  ChannelAccessEstimator(sim::EventLoop& loop, ProbeTransport& transport,
                         Config config, wifi::PhyParams phy);

  ChannelAccessEstimator(const ChannelAccessEstimator&) = delete;
  ChannelAccessEstimator& operator=(const ChannelAccessEstimator&) = delete;

  void Start();
  void Stop();
  void ProbeOnce();

  void OnReply(const net::Packet& packet, sim::Time arrival);

  /// Accepted channel-access-delay estimates (simulation ticks).
  [[nodiscard]] const std::vector<sim::Duration>& estimates() const {
    return estimates_;
  }
  /// Mean estimate (ticks); 0 when no estimate was accepted yet.
  [[nodiscard]] sim::Duration MeanEstimate() const;
  [[nodiscard]] std::uint64_t probes_sent() const { return next_probe_; }
  [[nodiscard]] std::uint64_t rejected_sequence() const {
    return rejected_sequence_;
  }
  [[nodiscard]] std::uint64_t rejected_retry() const {
    return rejected_retry_;
  }

 private:
  struct Probe {
    sim::Time arrival[2] = {0, 0};
    bool received[2] = {false, false};
    std::uint16_t mac_sequence[2] = {0, 0};
    bool retry[2] = {false, false};
    std::int64_t rate_bps[2] = {0, 0};
  };

  void StartProbe();
  void Complete(std::uint64_t probe_id, const Probe& probe);

  sim::EventLoop& loop_;
  ProbeTransport& transport_;
  Config config_;
  wifi::PhyParams phy_;
  sim::PeriodicTimer timer_;

  std::uint64_t next_probe_ = 0;
  std::unordered_map<std::uint64_t, Probe> probes_;
  std::vector<sim::Duration> estimates_;
  std::uint64_t rejected_sequence_ = 0;
  std::uint64_t rejected_retry_ = 0;
};

}  // namespace kwikr::core
