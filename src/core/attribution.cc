#include "core/attribution.h"

#include <algorithm>

namespace kwikr::core {

sim::Duration SelfDelay(const std::vector<SandwichedPacket>& sandwiched,
                        const AttributionConfig& config,
                        sim::Duration measured_channel_access) {
  sim::Duration total = 0;
  for (const auto& p : sandwiched) {
    const std::int64_t rate =
        p.mac_rate_bps > 0 ? p.mac_rate_bps : config.fallback_rate_bps;
    total += sim::TransmissionTime(static_cast<std::int64_t>(p.size_bytes) * 8,
                                   rate) +
             measured_channel_access;
  }
  return total;
}

sim::Duration SelfDelay(const std::vector<SandwichedPacket>& sandwiched,
                        const AttributionConfig& config) {
  return SelfDelay(sandwiched, config, config.fixed_channel_access);
}

sim::Duration CrossDelay(sim::Duration tq, sim::Duration ta) {
  return std::max<sim::Duration>(0, tq - ta);
}

}  // namespace kwikr::core
