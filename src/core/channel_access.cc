#include "core/channel_access.h"

#include <algorithm>

namespace kwikr::core {

ChannelAccessEstimator::ChannelAccessEstimator(sim::EventLoop& loop,
                                               ProbeTransport& transport,
                                               Config config,
                                               wifi::PhyParams phy)
    : loop_(loop),
      transport_(transport),
      config_(config),
      phy_(phy),
      timer_(loop, config.interval, [this] { StartProbe(); }) {}

void ChannelAccessEstimator::Start() { timer_.Start(sim::Duration{0}); }

void ChannelAccessEstimator::Stop() { timer_.Stop(); }

void ChannelAccessEstimator::ProbeOnce() { StartProbe(); }

void ChannelAccessEstimator::StartProbe() {
  const std::uint64_t id = next_probe_++;
  probes_[id] = Probe{};
  // Two same-priority pings, back to back.
  transport_.SendEcho(config_.tos, config_.ident,
                      static_cast<std::uint16_t>(id * 2),
                      config_.ping_size_bytes);
  transport_.SendEcho(config_.tos, config_.ident,
                      static_cast<std::uint16_t>(id * 2 + 1),
                      config_.ping_size_bytes);
  auto expire = [this, id] { probes_.erase(id); };
  static_assert(sim::InlineTask::fits_inline<decltype(expire)>);
  loop_.ScheduleIn(config_.timeout, std::move(expire));
}

void ChannelAccessEstimator::OnReply(const net::Packet& packet,
                                     sim::Time arrival) {
  if (packet.protocol != net::Protocol::kIcmp ||
      packet.icmp.type != net::IcmpType::kEchoReply ||
      packet.icmp.ident != config_.ident) {
    return;
  }
  const std::uint64_t probe_id = packet.icmp.sequence / 2;
  const int slot = packet.icmp.sequence & 1;
  // Resolve the uint16 wrap against outstanding probes.
  auto it = probes_.find(probe_id);
  for (std::uint64_t base = probe_id + 0x8000;
       it == probes_.end() && base < next_probe_; base += 0x8000) {
    it = probes_.find(base);
  }
  if (it == probes_.end()) return;
  Probe& probe = it->second;
  if (probe.received[slot]) return;
  probe.received[slot] = true;
  probe.arrival[slot] = arrival;
  probe.mac_sequence[slot] = packet.mac.sequence;
  probe.retry[slot] = packet.mac.retry;
  probe.rate_bps[slot] = packet.mac.data_rate_bps;
  if (probe.received[0] && probe.received[1]) {
    Complete(it->first, probe);
    probes_.erase(it);
  }
}

void ChannelAccessEstimator::Complete(std::uint64_t /*probe_id*/,
                                      const Probe& probe) {
  // The second reply (by arrival) is the one whose access delay we measure.
  const int second = probe.arrival[1] >= probe.arrival[0] ? 1 : 0;
  const int first = 1 - second;

  if (config_.require_no_retry && (probe.retry[0] || probe.retry[1])) {
    ++rejected_retry_;
    return;
  }
  if (config_.require_consecutive_sequence) {
    const auto expected = static_cast<std::uint16_t>(
        (probe.mac_sequence[first] + 1) & 0x0FFF);
    if (probe.mac_sequence[second] != expected) {
      ++rejected_sequence_;
      return;
    }
  }

  const sim::Duration gap = probe.arrival[second] - probe.arrival[first];
  const std::int64_t rate = probe.rate_bps[second] > 0
                                ? probe.rate_bps[second]
                                : 1'000'000;
  // Transmission time of the second reply: preamble + payload+MAC overhead
  // at the frame's data rate (+ SIFS + ACK, which also occupy the medium).
  const sim::Duration tx_time =
      phy_.FrameAirtime(config_.ping_size_bytes, rate);
  const sim::Duration estimate = std::max<sim::Duration>(0, gap - tx_time);
  estimates_.push_back(estimate);
}

sim::Duration ChannelAccessEstimator::MeanEstimate() const {
  if (estimates_.empty()) return 0;
  sim::Duration sum = 0;
  for (const auto e : estimates_) sum += e;
  return sum / static_cast<sim::Duration>(estimates_.size());
}

}  // namespace kwikr::core
