#include "core/classifier.h"

namespace kwikr::core {

CongestionClassifier CongestionClassifier::Train(
    const std::vector<stats::LabelledSample>& data, std::size_t folds,
    double* cv_accuracy) {
  const stats::CrossValidationResult cv = stats::CrossValidateStump(data,
                                                                    folds);
  if (cv_accuracy != nullptr) *cv_accuracy = cv.mean_accuracy;
  return CongestionClassifier(cv.final_stump.threshold());
}

}  // namespace kwikr::core
