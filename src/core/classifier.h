#pragma once

#include <vector>

#include "core/ping_pair.h"
#include "sim/time.h"
#include "stats/stump.h"

namespace kwikr::core {

/// Binary Wi-Fi congestion classifier over Ping-Pair delay estimates.
///
/// The paper trains a decision tree with 10-fold cross-validation against
/// instrumented-AP ground truth and lands on a 5 ms threshold for both bands
/// (Section 8.1 / Table 1). The same 5 ms is the default here; `Train`
/// reproduces the training procedure on labelled samples.
class CongestionClassifier {
 public:
  static constexpr double kDefaultThresholdMs = 5.0;

  CongestionClassifier() : threshold_ms_(kDefaultThresholdMs) {}
  explicit CongestionClassifier(double threshold_ms)
      : threshold_ms_(threshold_ms) {}

  /// True = persistent congestion.
  [[nodiscard]] bool Classify(const PingPairSample& sample) const {
    return sim::ToMillis(sample.tq) > threshold_ms_;
  }
  [[nodiscard]] bool ClassifyMillis(double tq_ms) const {
    return tq_ms > threshold_ms_;
  }

  [[nodiscard]] double threshold_ms() const { return threshold_ms_; }

  /// Trains the threshold on labelled delay estimates via k-fold
  /// cross-validated decision-stump fitting. Returns the CV accuracy.
  static CongestionClassifier Train(
      const std::vector<stats::LabelledSample>& data, std::size_t folds,
      double* cv_accuracy = nullptr);

 private:
  double threshold_ms_;
};

}  // namespace kwikr::core
