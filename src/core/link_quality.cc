#include "core/link_quality.h"

#include <utility>

namespace kwikr::core {

LinkQualityDetector::LinkQualityDetector(Config config)
    : config_(config),
      rate_(config.ewma_alpha),
      retries_(config.ewma_alpha) {}

void LinkQualityDetector::AddHintCallback(HintCallback callback) {
  callbacks_.push_back(std::move(callback));
}

void LinkQualityDetector::OnPacket(const net::Packet& packet,
                                   sim::Time arrival) {
  if (packet.mac.data_rate_bps <= 0) return;  // no MAC metadata.
  ++samples_;
  rate_.Update(static_cast<double>(packet.mac.data_rate_bps));
  retries_.Update(packet.mac.retry ? 1.0 : 0.0);
  if (samples_ < config_.min_samples) return;

  bool now_degraded;
  if (!degraded_) {
    now_degraded = retries_.value() > config_.retry_threshold ||
                   rate_.value() < static_cast<double>(config_.low_rate_bps);
  } else {
    // Recovery needs clear margin below/above the thresholds.
    const double retry_exit =
        config_.retry_threshold * (1.0 - config_.hysteresis);
    const double rate_exit =
        static_cast<double>(config_.low_rate_bps) * (1.0 + config_.hysteresis);
    now_degraded =
        !(retries_.value() < retry_exit && rate_.value() > rate_exit);
  }
  if (now_degraded != degraded_) {
    degraded_ = now_degraded;
    LinkQualityHint hint;
    hint.at = arrival;
    hint.avg_rate_bps = rate_.value();
    hint.retry_fraction = retries_.value();
    hint.degraded = degraded_;
    for (const auto& cb : callbacks_) cb(hint);
  }
}

}  // namespace kwikr::core
