#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/probe_transport.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::core {

/// Outcome of the WMM-prioritization check (paper Section 5.5).
struct WmmResult {
  bool wmm_enabled = false;
  int prioritized_runs = 0;  ///< runs showing the queue-jump signature.
  int completed_runs = 0;    ///< runs where both probe replies arrived.
  int total_runs = 0;
};

/// Detects whether the AP honours WMM prioritization.
///
/// The paper's probe is a triplet: a large high-priority ping followed by a
/// small normal- and a small intermediate-priority ping, judged by response
/// reordering. Under a faithful EDCA model that construction is fragile: the
/// large high-priority transmission blocks the client's *own* best-effort
/// uplink access, so the two small requests themselves race and a FIFO AP
/// produces false reversals (see DESIGN.md). This implementation keeps the
/// paper's mechanism — force the small replies to coexist in the AP's
/// downlink queue behind large replies, and observe whether priority lets
/// one jump ahead — but realizes it robustly:
///
///   1. A burst of `large_ping_count` large *best-effort* pings builds a
///      standing best-effort downlink backlog (the burst's uplink stays
///      FIFO because all requests share the client's BE queue).
///   2. As soon as the first large reply returns (backlog confirmed), a
///      standard ping-pair is sent (small normal + small high priority).
///   3. With WMM the high-priority reply jumps the backlog and precedes the
///      normal reply by at least `prioritization_gap`; a FIFO AP returns
///      both from the queue tail, back to back.
///
/// WMM is declared when at least `needed` of `runs` show the gap.
///
/// Like the paper's detector, this needs a standing downlink queue to
/// observe the jump. Ambient downlink traffic (the normal case in the
/// paper's office/home/coffee-shop networks) provides it; the burst deepens
/// it. On a completely idle AP no queue exists, the gap never appears, and
/// the detector conservatively reports "no WMM" — the safe fallback in
/// which Kwikr under-estimates cross-traffic delay (paper Section 7.3).
class WmmDetector {
 public:
  struct Config {
    int runs = 5;
    int needed = 3;
    /// Optional self-generated backlog burst before the probe pair. 0 (the
    /// default) sends the pair immediately and relies on ambient downlink
    /// traffic for the standing queue; a non-zero burst only helps when the
    /// client uplink is otherwise busy (see implementation note).
    int large_ping_count = 0;
    std::int32_t large_ping_bytes = 1400;
    std::int32_t small_ping_bytes = 64;
    /// Prioritization criterion, rate-independent: the (normal - high)
    /// reply gap must be at least `prioritization_ratio` times the
    /// high-priority ping's own RTT. On a WMM AP the high reply jumps the
    /// queue (tiny RTT, large gap); on a FIFO AP the high reply waits out
    /// the same queue (large RTT, small gap), so the ratio collapses.
    double prioritization_ratio = 1.0;
    /// Absolute floor on the gap, rejecting microsecond-scale noise.
    sim::Duration prioritization_gap = sim::Micros(500);
    sim::Duration run_interval = sim::Millis(200);
    sim::Duration run_timeout = sim::Millis(150);
    std::uint16_t ident = 0x574D;  ///< "WM"
  };

  using DoneCallback = std::function<void(const WmmResult&)>;

  WmmDetector(sim::EventLoop& loop, ProbeTransport& transport, Config config);

  WmmDetector(const WmmDetector&) = delete;
  WmmDetector& operator=(const WmmDetector&) = delete;

  /// Runs the full check; `done` fires after the last run.
  void Run(DoneCallback done);

  /// Feed ICMP replies from the client's receive path.
  void OnReply(const net::Packet& packet, sim::Time arrival);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const std::optional<WmmResult>& result() const {
    return result_;
  }

 private:
  void StartRun();
  void SendPair();
  void FinishRun();

  sim::EventLoop& loop_;
  ProbeTransport& transport_;
  Config config_;
  DoneCallback done_;

  bool running_ = false;
  int run_index_ = 0;
  int prioritized_ = 0;
  int completed_ = 0;
  std::optional<WmmResult> result_;

  // Per-run state.
  bool pair_sent_ = false;
  sim::Time pair_sent_at_ = 0;
  bool normal_received_ = false;
  bool high_received_ = false;
  sim::Time normal_arrival_ = 0;
  sim::Time high_arrival_ = 0;
  sim::EventId timeout_event_ = 0;
};

}  // namespace kwikr::core
