#include "core/ping_pair.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace kwikr::core {
namespace {

// Sequence numbers encode (round, pair, priority):
//   seq = round * 4 + pair * 2 + (high ? 1 : 0)   (mod 2^16)
std::uint16_t MakeSequence(std::uint64_t round, int pair, bool high) {
  return static_cast<std::uint16_t>((round * 4 + pair * 2 + (high ? 1 : 0)) &
                                    0xFFFF);
}

constexpr sim::Duration kFlowLogWindow = sim::Seconds(3);

}  // namespace

PingPairProber::PingPairProber(sim::EventLoop& loop, ProbeTransport& transport,
                               Config config, net::FlowId flow_of_interest)
    : loop_(loop),
      transport_(transport),
      config_(config),
      flow_(flow_of_interest),
      timer_(loop, config.interval, [this] { StartRound(); }) {}

void PingPairProber::Start() { timer_.Start(sim::Duration{0}); }

void PingPairProber::Stop() { timer_.Stop(); }

void PingPairProber::ProbeOnce() { StartRound(); }

void PingPairProber::AddSampleCallback(SampleCallback callback) {
  callbacks_.push_back(std::move(callback));
}

void PingPairProber::SetChannelAccessProvider(ChannelAccessProvider provider) {
  channel_access_ = std::move(provider);
}

void PingPairProber::SetClock(ClockModel clock) { clock_ = std::move(clock); }

void PingPairProber::StartRound() {
  const std::uint64_t id = next_round_++;
  Round& round = rounds_[id];
  round.id = id;
  round.dual = config_.dual;
  ++stats_.rounds;

  SendPair(round, 0);
  if (config_.dual) SendPair(round, 1);

  auto expire = [this, id] {
    auto it = rounds_.find(id);
    if (it == rounds_.end()) return;
    ++stats_.timeouts;
    if (recorder_ != nullptr) {
      recorder_->Record(loop_.now(), obs::FlightEventKind::kProbeDiscard, 0,
                        id, "timeout");
    }
    rounds_.erase(it);
  };
  static_assert(sim::InlineTask::fits_inline<decltype(expire)>);
  round.timeout_event =
      loop_.ScheduleIn(config_.timeout, "probe.timeout", std::move(expire));
}

void PingPairProber::SendPair(Round& round, int pair) {
  // Normal-priority ping goes first so that both replies are enqueued at the
  // AP's downlink concurrently (Section 5.2).
  const sim::Time now = LocalClock(loop_.now());
  round.ping[pair][0].sent_at = now;
  transport_.SendEcho(net::kTosBestEffort, config_.ident,
                      MakeSequence(round.id, pair, false),
                      config_.ping_size_bytes);
  round.ping[pair][1].sent_at = now;
  transport_.SendEcho(net::kTosVoice, config_.ident,
                      MakeSequence(round.id, pair, true),
                      config_.ping_size_bytes);
}

void PingPairProber::OnReply(const net::Packet& packet, sim::Time arrival) {
  if (packet.protocol != net::Protocol::kIcmp ||
      packet.icmp.type != net::IcmpType::kEchoReply ||
      packet.icmp.ident != config_.ident) {
    return;
  }
  const std::uint16_t seq = packet.icmp.sequence;
  const std::uint64_t round_id = seq / 4;
  const int pair = (seq >> 1) & 1;
  const int prio = seq & 1;

  // Find the round; sequence numbers wrap every 16384 rounds, so also try
  // matching higher multiples (only the live round can be pending).
  auto it = rounds_.find(round_id);
  for (std::uint64_t base = round_id + 0x4000; it == rounds_.end() &&
                                               base < next_round_;
       base += 0x4000) {
    it = rounds_.find(base);
  }
  if (it == rounds_.end()) return;

  PingState& state = it->second.ping[pair][prio];
  if (state.received) return;  // duplicate.
  state.received = true;
  state.arrival = LocalClock(arrival);
  state.transmissions = packet.mac.transmissions;
  MaybeComplete(it->first);
}

void PingPairProber::OnFlowPacket(const net::Packet& packet,
                                  sim::Time arrival) {
  if (packet.flow != flow_) return;
  flow_log_.push_back(FlowObservation{arrival, packet.size_bytes,
                                      packet.mac.data_rate_bps});
  TrimFlowLog();
}

void PingPairProber::TrimFlowLog() {
  const sim::Time horizon = loop_.now() - kFlowLogWindow;
  while (!flow_log_.empty() && flow_log_.front().arrival < horizon) {
    flow_log_.pop_front();
  }
}

std::optional<sim::Duration> PingPairProber::PairEstimate(const Round& round,
                                                          int pair) const {
  const PingState& normal = round.ping[pair][0];
  const PingState& high = round.ping[pair][1];
  if (!normal.received || !high.received) return std::nullopt;
  // Valid only when the high-priority reply arrived first (Section 5.2).
  if (high.arrival >= normal.arrival) return std::nullopt;
  if (config_.mode == MeasurementMode::kArrivalTimes) {
    return normal.arrival - high.arrival;
  }
  // Ping-time (RTT difference) mode.
  return (normal.arrival - normal.sent_at) - (high.arrival - high.sent_at);
}

void PingPairProber::MaybeComplete(std::uint64_t round_id) {
  auto it = rounds_.find(round_id);
  if (it == rounds_.end()) return;
  Round& round = it->second;
  const int pairs = round.dual ? 2 : 1;
  for (int p = 0; p < pairs; ++p) {
    for (int q = 0; q < 2; ++q) {
      if (!round.ping[p][q].received) return;  // still waiting.
    }
  }

  // All replies in: resolve the round now.
  loop_.Cancel(round.timeout_event);

  const auto est0 = PairEstimate(round, 0);
  if (!round.dual) {
    if (!est0) {
      ++stats_.wrong_order;
      if (recorder_ != nullptr) {
        recorder_->Record(loop_.now(), obs::FlightEventKind::kProbeDiscard, 0,
                          round.id, "wrong_order");
      }
    } else {
      EmitSample(round, *est0, round.ping[0][1].arrival,
                 round.ping[0][0].arrival);
    }
    rounds_.erase(it);
    return;
  }

  const auto est1 = PairEstimate(round, 1);
  if (!est0 || !est1) {
    ++stats_.wrong_order;
    if (recorder_ != nullptr) {
      recorder_->Record(loop_.now(), obs::FlightEventKind::kProbeDiscard, 0,
                        round.id, "wrong_order");
    }
    rounds_.erase(it);
    return;
  }
  // Retransmission screens (Section 5.6): the two high-priority replies and
  // the two normal-priority replies must arrive close together...
  const sim::Duration high_gap =
      std::abs(round.ping[1][1].arrival - round.ping[0][1].arrival);
  const sim::Duration normal_gap =
      std::abs(round.ping[1][0].arrival - round.ping[0][0].arrival);
  if (high_gap > config_.dual_gap_threshold ||
      normal_gap > config_.dual_gap_threshold) {
    ++stats_.dual_gap;
    if (recorder_ != nullptr) {
      recorder_->Record(loop_.now(), obs::FlightEventKind::kProbeDiscard, 0,
                        round.id, "dual_gap");
    }
    rounds_.erase(it);
    return;
  }
  // ...and the two pair estimates must agree within the threshold.
  if (std::abs(*est0 - *est1) > config_.dual_divergence_threshold) {
    ++stats_.dual_divergence;
    if (recorder_ != nullptr) {
      recorder_->Record(loop_.now(), obs::FlightEventKind::kProbeDiscard, 0,
                        round.id, "dual_divergence");
    }
    rounds_.erase(it);
    return;
  }

  const sim::Duration tq = (*est0 + *est1) / 2;
  EmitSample(round, tq, round.ping[0][1].arrival, round.ping[0][0].arrival);
  rounds_.erase(it);
}

void PingPairProber::EmitSample(const Round& round, sim::Duration tq,
                                sim::Time window_begin, sim::Time window_end) {
  PingPairSample sample;
  sample.completed_at = loop_.now();
  sample.tq = tq;

  std::vector<SandwichedPacket> sandwiched;
  for (const auto& obs : flow_log_) {
    if (obs.arrival > window_begin && obs.arrival < window_end) {
      sandwiched.push_back(SandwichedPacket{obs.size_bytes, obs.mac_rate_bps});
    }
  }
  sample.sandwiched = static_cast<int>(sandwiched.size());
  const sim::Duration access = channel_access_
                                   ? channel_access_()
                                   : config_.attribution.fixed_channel_access;
  sample.ta = SelfDelay(sandwiched, config_.attribution, access);
  sample.tc = CrossDelay(sample.tq, sample.ta);

  int max_tx = 1;
  const int pairs = round.dual ? 2 : 1;
  for (int p = 0; p < pairs; ++p) {
    for (int q = 0; q < 2; ++q) {
      max_tx = std::max(max_tx, round.ping[p][q].transmissions);
    }
  }
  sample.max_reply_transmissions = max_tx;

  ++stats_.valid;
  if (samples_.size() < config_.max_samples) samples_.push_back(sample);
  for (const auto& cb : callbacks_) cb(sample);
}

}  // namespace kwikr::core
