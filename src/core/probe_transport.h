#pragma once

#include <cstdint>

namespace kwikr::core {

/// How a probing component sends ICMP echo requests toward the default
/// gateway (the Wi-Fi AP). The simulator binds this to a wifi::Station; the
/// live tool binds it to a raw socket. Replies flow back through the owner,
/// which forwards them to the probing component's OnReply.
class ProbeTransport {
 public:
  virtual ~ProbeTransport() = default;

  /// Sends one ICMP Echo Request with the given TOS byte, identifier,
  /// sequence number and total IP datagram size.
  virtual void SendEcho(std::uint8_t tos, std::uint16_t ident,
                        std::uint16_t sequence, std::int32_t size_bytes) = 0;
};

}  // namespace kwikr::core
