#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace kwikr::core {

/// A handoff hint — the third hint family of the paper's Figure 2
/// architecture. Emitted when the client's default gateway (its associated
/// AP) changes.
struct HandoffHint {
  sim::Time at = 0;
  net::Address old_gateway = 0;
  net::Address new_gateway = 0;
};

/// Tracks the client's gateway and turns changes into handoff hints.
///
/// Beyond informing applications, a handoff invalidates every piece of
/// path-learned state: the one-way-delay minimum (clock-offset baseline),
/// the Ping-Pair EWMA, and the congestion verdict all describe the *old*
/// AP. Consumers register reset callbacks here; the simulator wires
/// `wifi::Station::AddRoamCallback` into OnGatewayChange.
class HandoffDetector {
 public:
  using HintCallback = std::function<void(const HandoffHint&)>;
  /// Invoked on every handoff, before the hint callbacks: reset
  /// path-learned state (estimator minima, probe EWMAs, ...).
  using ResetHook = std::function<void()>;

  /// @param now returns the current time (bound to the event loop).
  explicit HandoffDetector(std::function<sim::Time()> now)
      : now_(std::move(now)) {}

  /// Seeds the initial gateway without emitting a hint.
  void SetInitialGateway(net::Address gateway) { gateway_ = gateway; }

  /// Reports the currently observed gateway; a change emits a hint.
  void OnGatewayChange(net::Address new_gateway);

  void AddHintCallback(HintCallback callback) {
    hint_callbacks_.push_back(std::move(callback));
  }
  void AddResetHook(ResetHook hook) {
    reset_hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] net::Address gateway() const { return gateway_; }
  [[nodiscard]] std::int64_t handoffs() const { return handoffs_; }

 private:
  std::function<sim::Time()> now_;
  net::Address gateway_ = 0;
  std::int64_t handoffs_ = 0;
  std::vector<HintCallback> hint_callbacks_;
  std::vector<ResetHook> reset_hooks_;
};

}  // namespace kwikr::core
