#include "core/handoff.h"

namespace kwikr::core {

void HandoffDetector::OnGatewayChange(net::Address new_gateway) {
  if (new_gateway == gateway_) return;
  HandoffHint hint;
  hint.at = now_ ? now_() : 0;
  hint.old_gateway = gateway_;
  hint.new_gateway = new_gateway;
  gateway_ = new_gateway;
  ++handoffs_;
  for (const auto& reset : reset_hooks_) reset();
  for (const auto& cb : hint_callbacks_) cb(hint);
}

}  // namespace kwikr::core
