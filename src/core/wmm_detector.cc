#include "core/wmm_detector.h"

#include <utility>

namespace kwikr::core {
namespace {

// Per-run sequence layout: [0, large_ping_count) are the burst pings,
// large_ping_count is the small normal ping, large_ping_count + 1 the small
// high-priority ping. Runs are offset by (large_ping_count + 2).
constexpr int kSlotsPerRunExtra = 2;

}  // namespace

WmmDetector::WmmDetector(sim::EventLoop& loop, ProbeTransport& transport,
                         Config config)
    : loop_(loop), transport_(transport), config_(config) {}

void WmmDetector::Run(DoneCallback done) {
  done_ = std::move(done);
  running_ = true;
  run_index_ = 0;
  prioritized_ = 0;
  completed_ = 0;
  result_.reset();
  StartRun();
}

void WmmDetector::StartRun() {
  pair_sent_ = false;
  normal_received_ = false;
  high_received_ = false;
  const int slots = config_.large_ping_count + kSlotsPerRunExtra;
  const auto seq_base = static_cast<std::uint16_t>(run_index_ * slots);
  // Optional burst: large best-effort pings deepening the BE downlink
  // backlog. Off by default — on an otherwise idle uplink the burst's own
  // requests queue ahead of the normal-priority probe at the client and
  // fake the gap (see header comment); ambient traffic is the reliable
  // queue source.
  for (int i = 0; i < config_.large_ping_count; ++i) {
    transport_.SendEcho(net::kTosBestEffort, config_.ident,
                        static_cast<std::uint16_t>(seq_base + i),
                        config_.large_ping_bytes);
  }
  if (config_.large_ping_count == 0) SendPair();
  auto expire = [this] {
    timeout_event_ = 0;
    FinishRun();
  };
  static_assert(sim::InlineTask::fits_inline<decltype(expire)>);
  timeout_event_ = loop_.ScheduleIn(config_.run_timeout, std::move(expire));
}

void WmmDetector::SendPair() {
  pair_sent_ = true;
  pair_sent_at_ = loop_.now();
  const int slots = config_.large_ping_count + kSlotsPerRunExtra;
  const auto seq_base = static_cast<std::uint16_t>(run_index_ * slots);
  transport_.SendEcho(
      net::kTosBestEffort, config_.ident,
      static_cast<std::uint16_t>(seq_base + config_.large_ping_count),
      config_.small_ping_bytes);
  transport_.SendEcho(
      net::kTosVoice, config_.ident,
      static_cast<std::uint16_t>(seq_base + config_.large_ping_count + 1),
      config_.small_ping_bytes);
}

void WmmDetector::OnReply(const net::Packet& packet, sim::Time arrival) {
  if (!running_ || packet.protocol != net::Protocol::kIcmp ||
      packet.icmp.type != net::IcmpType::kEchoReply ||
      packet.icmp.ident != config_.ident) {
    return;
  }
  const int slots = config_.large_ping_count + kSlotsPerRunExtra;
  const int run = packet.icmp.sequence / slots;
  const int position = packet.icmp.sequence % slots;
  if (run != run_index_) return;  // stale reply from a timed-out run.

  if (position < config_.large_ping_count) {
    // A burst reply: the backlog is standing; launch the probe pair once.
    if (!pair_sent_) SendPair();
    return;
  }
  if (position == config_.large_ping_count) {
    if (!normal_received_) {
      normal_received_ = true;
      normal_arrival_ = arrival;
    }
  } else {
    if (!high_received_) {
      high_received_ = true;
      high_arrival_ = arrival;
    }
  }
  if (normal_received_ && high_received_) {
    if (timeout_event_ != 0) {
      loop_.Cancel(timeout_event_);
      timeout_event_ = 0;
    }
    FinishRun();
  }
}

void WmmDetector::FinishRun() {
  if (normal_received_ && high_received_) {
    ++completed_;
    const sim::Duration gap = normal_arrival_ - high_arrival_;
    const sim::Duration high_rtt = high_arrival_ - pair_sent_at_;
    if (gap >= config_.prioritization_gap &&
        static_cast<double>(gap) >=
            config_.prioritization_ratio * static_cast<double>(high_rtt)) {
      ++prioritized_;
    }
  }
  ++run_index_;
  if (run_index_ < config_.runs) {
    loop_.ScheduleIn(config_.run_interval, [this] { StartRun(); });
    return;
  }
  running_ = false;
  WmmResult result;
  result.prioritized_runs = prioritized_;
  result.completed_runs = completed_;
  result.total_runs = config_.runs;
  result.wmm_enabled = prioritized_ >= config_.needed;
  result_ = result;
  if (done_) done_(result);
}

}  // namespace kwikr::core
