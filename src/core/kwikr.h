#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/classifier.h"
#include "core/ping_pair.h"
#include "sim/event_loop.h"
#include "sim/time.h"
#include "stats/ewma.h"

namespace kwikr::core {

/// An actionable Wi-Fi hint, as produced by the Kwikr detectors for
/// applications (paper Figure 2). Only congestion hints are generated here;
/// the struct leaves room for the other hint families the paper mentions
/// (link quality fluctuation, handoffs).
struct WifiHint {
  enum class Type { kCongestion };
  Type type = Type::kCongestion;
  sim::Time at = 0;
  bool congested = false;       ///< classifier verdict on this sample.
  sim::Duration tq = 0;         ///< downlink delay estimate.
  sim::Duration ta = 0;         ///< self-induced share.
  sim::Duration tc = 0;         ///< cross-traffic share.
  double smoothed_tq_ms = 0.0;  ///< EWMA of Tq.
  double smoothed_tc_ms = 0.0;  ///< EWMA of Tc.
};

/// Bridges Ping-Pair measurements to the bandwidth estimator and to hint
/// consumers: smooths Tq/Tc with an EWMA (the "smoothened" series of
/// Figure 4), classifies congestion, and exposes the cross-traffic delay
/// provider that drives the Equation-3 noise modulation.
class KwikrAdapter {
 public:
  struct Config {
    double ewma_alpha = 0.25;
    /// Tc is reported as 0 when no fresh sample arrived within this window
    /// (probing stopped or all measurements filtered out).
    sim::Duration stale_after = sim::Seconds(3);
    CongestionClassifier classifier;
  };

  using HintCallback = std::function<void(const WifiHint&)>;

  KwikrAdapter(sim::EventLoop& loop, Config config);
  explicit KwikrAdapter(sim::EventLoop& loop);

  /// Subscribes this adapter to a prober's samples.
  void AttachTo(PingPairProber& prober);

  /// Processes one Ping-Pair sample (called by the prober subscription).
  void OnSample(const PingPairSample& sample);

  /// Registers a hint consumer.
  void AddHintCallback(HintCallback callback);

  /// Smoothed cross-traffic delay in seconds; the provider handed to
  /// rtc::BandwidthEstimator::SetCrossTrafficProvider.
  [[nodiscard]] double SmoothedTcSeconds() const;
  [[nodiscard]] double SmoothedTqMillis() const;
  [[nodiscard]] bool CurrentlyCongested() const { return congested_; }
  [[nodiscard]] std::uint64_t samples_seen() const { return samples_seen_; }

  /// Convenience: a callable bound to SmoothedTcSeconds().
  [[nodiscard]] std::function<double()> CrossTrafficProvider();

  /// Forgets the smoothed measurements (path change / handoff: the EWMAs
  /// describe the old AP's queue).
  void Reset();

 private:
  sim::EventLoop& loop_;
  Config config_;
  stats::Ewma tq_ewma_;
  stats::Ewma tc_ewma_;
  bool congested_ = false;
  sim::Time last_sample_at_ = -(1LL << 60);
  std::uint64_t samples_seen_ = 0;
  std::vector<HintCallback> callbacks_;
};

}  // namespace kwikr::core
