#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/attribution.h"
#include "core/probe_transport.h"
#include "net/packet.h"
#include "obs/flight_recorder.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::core {

/// How the Wi-Fi downlink delay is extracted from a pair (paper Section 7.3).
enum class MeasurementMode {
  /// Difference of reply *arrival times* — the raw-socket implementation.
  kArrivalTimes,
  /// Difference of the two *ping times* (RTTs) — the Android ping-utility
  /// implementation, which cannot observe arrival times directly.
  kPingTimes,
};

/// One completed Ping-Pair measurement.
struct PingPairSample {
  sim::Time completed_at = 0;
  sim::Duration tq = 0;       ///< Wi-Fi downlink delay estimate.
  int sandwiched = 0;         ///< n_a: flow-of-interest packets in between.
  sim::Duration ta = 0;       ///< self-induced delay estimate.
  sim::Duration tc = 0;       ///< cross-traffic delay, max(0, tq - ta).
  /// Worst link-layer transmission count seen on any reply in the round
  /// (1 = no retries). Diagnostic for the Figure 4 experiment.
  int max_reply_transmissions = 1;
};

/// Why a probe round produced no sample.
struct PingPairStats {
  std::uint64_t rounds = 0;
  std::uint64_t valid = 0;
  std::uint64_t timeouts = 0;          ///< a reply never arrived.
  std::uint64_t wrong_order = 0;       ///< normal reply beat the high reply.
  std::uint64_t dual_divergence = 0;   ///< dual pairs disagreed > threshold.
  std::uint64_t dual_gap = 0;          ///< same-priority replies far apart.
};

/// The Ping-Pair prober (paper Sections 5.2-5.3, 5.6).
///
/// Every `interval` it sends a normal-priority (TOS 0x00) ping immediately
/// followed by a high-priority (TOS 0xb8) ping to the AP. The high-priority
/// *reply* jumps the AP's downlink queue, so the reply spacing measures the
/// downlink delay Tq. Packets of the flow of interest arriving in between
/// give the self-congestion share: Ta = n_a (s_a/R + t), Tc = Tq - Ta.
///
/// With `dual = true` two pairs are sent back to back and a measurement is
/// kept only when both pairs agree within `dual_divergence_threshold` and
/// same-priority replies arrive close together — the dual-Ping-Pair
/// retransmission filter of Section 5.6.
class PingPairProber {
 public:
  struct Config {
    sim::Duration interval = sim::Millis(500);  ///< 2 probes/s, as deployed.
    std::int32_t ping_size_bytes = 64;
    sim::Duration timeout = sim::Millis(500);
    MeasurementMode mode = MeasurementMode::kArrivalTimes;
    bool dual = false;
    sim::Duration dual_divergence_threshold = sim::Millis(5);
    sim::Duration dual_gap_threshold = sim::Millis(5);
    std::uint16_t ident = 0x5050;  ///< ICMP identifier of this prober.
    AttributionConfig attribution;
    /// Keep at most this many samples in memory (older ones are forgotten).
    std::size_t max_samples = 1 << 20;
  };

  using SampleCallback = std::function<void(const PingPairSample&)>;
  /// Optional measured channel-access delay source (Linux-style attribution;
  /// when absent the fixed value from AttributionConfig is used).
  using ChannelAccessProvider = std::function<sim::Duration()>;
  /// Optional client-clock model: maps true sim time to the timestamp the
  /// client's (possibly skewed) clock would record. Applied to both send
  /// and arrival timestamps, as a real skewed clock would be — so arrival-
  /// and ping-time differences stretch by the skew factor but stay
  /// internally consistent (see faults::FaultInjector).
  using ClockModel = std::function<sim::Time(sim::Time)>;

  PingPairProber(sim::EventLoop& loop, ProbeTransport& transport,
                 Config config, net::FlowId flow_of_interest);

  PingPairProber(const PingPairProber&) = delete;
  PingPairProber& operator=(const PingPairProber&) = delete;

  /// Starts periodic probing.
  void Start();
  void Stop();
  /// Fires a single probe round immediately (also usable while stopped).
  void ProbeOnce();

  /// Feed every ICMP packet the client receives.
  void OnReply(const net::Packet& packet, sim::Time arrival);
  /// Feed every flow-of-interest packet the client receives.
  void OnFlowPacket(const net::Packet& packet, sim::Time arrival);

  void AddSampleCallback(SampleCallback callback);
  void SetChannelAccessProvider(ChannelAccessProvider provider);
  /// Installs the client-clock model (default: identity — true sim time).
  void SetClock(ClockModel clock);
  /// Attaches a flight recorder: every discarded round (timeout, wrong
  /// order, dual gap, dual divergence) records a kProbeDiscard event whose
  /// detail names the Section 5.6 filter that fired. Null detaches.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  [[nodiscard]] const std::vector<PingPairSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] const PingPairStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct PingState {
    sim::Time sent_at = 0;
    bool received = false;
    sim::Time arrival = 0;
    int transmissions = 1;
  };
  struct Round {
    std::uint64_t id = 0;
    bool dual = false;
    // Pings indexed [pair][0=normal, 1=high].
    PingState ping[2][2];
    sim::EventId timeout_event = 0;
  };
  struct FlowObservation {
    sim::Time arrival = 0;
    std::int32_t size_bytes = 0;
    std::int64_t mac_rate_bps = 0;
  };

  void StartRound();
  void SendPair(Round& round, int pair);
  void MaybeComplete(std::uint64_t round_id);
  std::optional<sim::Duration> PairEstimate(const Round& round,
                                            int pair) const;
  void EmitSample(const Round& round, sim::Duration tq,
                  sim::Time window_begin, sim::Time window_end);
  void TrimFlowLog();

  [[nodiscard]] sim::Time LocalClock(sim::Time t) const {
    return clock_ ? clock_(t) : t;
  }

  sim::EventLoop& loop_;
  ProbeTransport& transport_;
  Config config_;
  net::FlowId flow_;
  sim::PeriodicTimer timer_;
  ChannelAccessProvider channel_access_;
  ClockModel clock_;

  std::uint64_t next_round_ = 0;
  std::unordered_map<std::uint64_t, Round> rounds_;
  std::deque<FlowObservation> flow_log_;
  std::vector<PingPairSample> samples_;
  std::vector<SampleCallback> callbacks_;
  PingPairStats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace kwikr::core
