#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"
#include "stats/ewma.h"

namespace kwikr::core {

/// A link-quality hint, the second hint family of the paper's Kwikr
/// architecture (Figure 2: "the Wi-Fi-specific hints also pertain to link
/// quality fluctuation, handoffs, etc.").
struct LinkQualityHint {
  sim::Time at = 0;
  double avg_rate_bps = 0.0;     ///< smoothed MAC data rate of received frames.
  double retry_fraction = 0.0;   ///< smoothed fraction of retransmitted frames.
  bool degraded = false;         ///< verdict at this sample.
};

/// Watches the MAC metadata of received frames (data rate and retry flag —
/// the radiotap fields the paper's Linux tool reads) and flags link-quality
/// degradation: a falling MCS rate or a rising retransmission fraction, the
/// symptoms of the Figure 4 "walking away from the AP" episode.
///
/// Unlike the congestion detector this needs no probing at all — any
/// received traffic feeds it.
class LinkQualityDetector {
 public:
  struct Config {
    double ewma_alpha = 0.1;
    /// Degraded when the smoothed retry fraction exceeds this...
    double retry_threshold = 0.25;
    /// ...or the smoothed rate falls below this.
    std::int64_t low_rate_bps = 13'000'000;
    /// Samples needed before verdicts are issued.
    int min_samples = 20;
    /// Hysteresis: recovery requires the signals to clear the thresholds by
    /// this relative margin, preventing hint flapping at the boundary.
    double hysteresis = 0.4;
  };

  using HintCallback = std::function<void(const LinkQualityHint&)>;

  LinkQualityDetector() : LinkQualityDetector(Config{}) {}
  explicit LinkQualityDetector(Config config);

  /// Feeds one received packet (MAC metadata must be populated).
  void OnPacket(const net::Packet& packet, sim::Time arrival);

  /// Registers a consumer; called whenever the degraded verdict *changes*.
  void AddHintCallback(HintCallback callback);

  [[nodiscard]] double smoothed_rate_bps() const { return rate_.value(); }
  [[nodiscard]] double smoothed_retry_fraction() const {
    return retries_.value();
  }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] std::int64_t samples() const { return samples_; }

 private:
  Config config_;
  stats::Ewma rate_;
  stats::Ewma retries_;
  bool degraded_ = false;
  std::int64_t samples_ = 0;
  std::vector<HintCallback> callbacks_;
};

}  // namespace kwikr::core
