#include "core/kwikr.h"

#include <utility>

namespace kwikr::core {

KwikrAdapter::KwikrAdapter(sim::EventLoop& loop, Config config)
    : loop_(loop),
      config_(config),
      tq_ewma_(config.ewma_alpha),
      tc_ewma_(config.ewma_alpha) {}

KwikrAdapter::KwikrAdapter(sim::EventLoop& loop)
    : KwikrAdapter(loop, Config{}) {}

void KwikrAdapter::AttachTo(PingPairProber& prober) {
  prober.AddSampleCallback(
      [this](const PingPairSample& sample) { OnSample(sample); });
}

void KwikrAdapter::OnSample(const PingPairSample& sample) {
  ++samples_seen_;
  last_sample_at_ = sample.completed_at;
  tq_ewma_.Update(sim::ToMillis(sample.tq));
  tc_ewma_.Update(sim::ToMillis(sample.tc));
  congested_ = config_.classifier.Classify(sample);

  WifiHint hint;
  hint.at = sample.completed_at;
  hint.congested = congested_;
  hint.tq = sample.tq;
  hint.ta = sample.ta;
  hint.tc = sample.tc;
  hint.smoothed_tq_ms = tq_ewma_.value();
  hint.smoothed_tc_ms = tc_ewma_.value();
  for (const auto& cb : callbacks_) cb(hint);
}

void KwikrAdapter::AddHintCallback(HintCallback callback) {
  callbacks_.push_back(std::move(callback));
}

double KwikrAdapter::SmoothedTcSeconds() const {
  if (loop_.now() - last_sample_at_ > config_.stale_after) return 0.0;
  return tc_ewma_.value() / 1000.0;
}

double KwikrAdapter::SmoothedTqMillis() const { return tq_ewma_.value(); }

std::function<double()> KwikrAdapter::CrossTrafficProvider() {
  return [this] { return SmoothedTcSeconds(); };
}

void KwikrAdapter::Reset() {
  tq_ewma_.Reset();
  tc_ewma_.Reset();
  congested_ = false;
  last_sample_at_ = -(1LL << 60);
}

}  // namespace kwikr::core
