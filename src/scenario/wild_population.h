#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/fleet_metrics.h"
#include "fleet/fleet_runner.h"
#include "scenario/call_experiment.h"

namespace kwikr::scenario {

/// Monte-Carlo stand-in for the paper's production A/B deployment
/// (Section 8.4): a heterogeneous population of Wi-Fi environments, each
/// hosting one paired pair of calls (baseline and Kwikr) under common random
/// numbers. Reproduces Figure 10 (wild downlink-delay distribution) and
/// Table 3 (bandwidth gains bucketed by cross-traffic-induced delay).
struct WildConfig {
  int calls = 200;              ///< population size (paper: 119,789).
  std::uint64_t base_seed = 42;
  sim::Duration call_duration = sim::Seconds(60);  ///< paper mean: 967 s.
  /// Probability an AP supports WMM (paper's measured prevalence: 77%).
  double wmm_probability = 0.77;
  /// Worker threads for the population sweep (fleet runner): 1 = serial on
  /// the calling thread, 0 = one per hardware thread. Every environment is
  /// seeded from `base_seed` and its own index, so results are bit-identical
  /// for any value of `jobs`.
  int jobs = 1;

  /// Intra-scenario BSS-group sharding: run each environment's two arms
  /// (baseline / Kwikr) — independent co-channel BSS-group replicas under
  /// common random numbers that never exchange a frame — as separate fleet
  /// tasks instead of back-to-back in one task. Doubles the task
  /// granularity, so a small population (down to a single paired call)
  /// still fills every worker and the per-environment straggler tail
  /// halves. Results are bit-identical to the unsharded path for any
  /// `jobs`: both arm tasks replay the same environment draw from
  /// `base_seed` + index, each arm's simulation is deterministic in its
  /// config alone, and the arms pair-merge by index at the join point
  /// (fleet::MergeShardStreams orders any event streams by (t, shard)).
  /// The only observable difference is FleetMetrics' "task_wall_ms"
  /// summary counting 2N arm tasks instead of N environments — wall-clock
  /// timing is nondeterministic and outside the determinism contract.
  bool shard_arms = false;

  /// Fault matrix: environment `i` runs under `fault_matrix[i % size]`
  /// (empty = no faults anywhere). This is how a population sweep shards a
  /// set of impairment profiles across its environments; because the
  /// assignment depends only on the index, the determinism guarantee above
  /// is unchanged.
  std::vector<faults::FaultSpec> fault_matrix;

  /// Sim-time timeline telemetry on the Kwikr arm of every environment
  /// (the arm that runs the probing in production). Each call's series are
  /// stamped with `"call":<index>`, so concatenating per-call timelines in
  /// index order yields a population timeline that is byte-identical for
  /// any `jobs`. Off by default — enabling it adds periodic timer events,
  /// which changes the Kwikr arm's event count (never its media results).
  bool timeline = false;
  sim::Duration timeline_interval = sim::Millis(10);
  /// Per-call series point budget (rows before the sampler decimates). A
  /// population run holds every call's serialized timeline in memory until
  /// the final index-ordered concatenation, so the budget is deliberately
  /// smaller than a single-scenario run's default — 150 calls at the
  /// single-scenario 2048 kept ~24 MB of JSONL resident and quadrupled the
  /// bench's peak RSS. Decimation is deterministic in tick counts, so this
  /// only trades resolution, never the any-`jobs` byte-identity.
  std::size_t timeline_series_capacity = 512;

  /// Optional observability sinks. Each environment accumulates simulated
  /// counters/histograms into its own worker-local registry which is merged
  /// once when the task completes — since every merge rule is associative
  /// and commutative, the aggregate in `metrics` is bit-identical for any
  /// `jobs`. Wall-clock per-task timing is inherently nondeterministic and
  /// therefore goes to `fleet_metrics` as the "task_wall_ms" summary, never
  /// into the registry.
  obs::MetricsRegistry* metrics = nullptr;
  fleet::FleetMetrics* fleet_metrics = nullptr;
};

/// Outcome of one environment (paired calls).
struct WildCallResult {
  // Per-call 95th-percentile Ping-Pair delay decomposition, milliseconds
  // (measured on the Kwikr arm, which runs the probing in production).
  double p95_tq_ms = 0.0;
  double p95_ta_ms = 0.0;  ///< delay due to the call itself ("Skype").
  double p95_tc_ms = 0.0;  ///< delay due to cross-traffic.
  int probe_samples = 0;

  double baseline_rate_kbps = 0.0;
  double kwikr_rate_kbps = 0.0;
  double baseline_loss_pct = 0.0;
  double kwikr_loss_pct = 0.0;
  double baseline_rtt_p50_ms = 0.0;
  double kwikr_rtt_p50_ms = 0.0;

  bool wmm_enabled = false;
  int cross_stations = 0;
  /// Events dispatched across both arms' loops (scheduler-throughput
  /// accounting for the bench harness).
  std::uint64_t events_executed = 0;
  /// Kwikr-arm timeline JSONL (empty unless WildConfig::timeline); every
  /// line carries this environment's `"call":<index>` stamp.
  std::string timeline_jsonl;
};

struct WildResults {
  std::vector<WildCallResult> calls;
  /// Environments that threw instead of completing (their `calls` slots are
  /// default-constructed). Deterministic like the results themselves.
  std::vector<fleet::TaskFailure> failures;
};

/// Runs the population; deterministic in `config.base_seed` alone —
/// `config.jobs` changes wall-clock time, never the results.
WildResults RunWildPopulation(const WildConfig& config);

/// Streaming variant for the shard runner: runs the contiguous population
/// slice [begin, end) and hands each environment's result to `sink` in
/// ascending global-index order, never holding more than the slice in RAM.
/// Seeds fork from `config.base_seed` at the *global* index (and the fault
/// matrix likewise keys on the global index), so any partition of [0,
/// calls) into ranges reproduces RunWildPopulation's per-call results
/// bit-identically. `config.calls` is ignored; `config.jobs` still
/// parallelizes within the slice. Throws std::runtime_error if any
/// environment in the slice fails — a spilled range must be all-or-nothing
/// so checkpoints never record a hole.
void RunWildRange(
    const WildConfig& config, std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t index, WildCallResult&& result)>&
        sink);

/// Canonical spill-line codec for one environment's result:
/// `{"call":<index>,...}\n` with %.17g doubles, so a decode → encode
/// round-trip is byte-identical and merged spill files compare with cmp(1).
/// `timeline_jsonl` is deliberately excluded — timeline bytes travel in
/// their own spill stream.
std::string EncodeWildCallLine(std::uint64_t index,
                               const WildCallResult& result);
/// Strict parse of one line (with or without the trailing '\n'); false on
/// any deviation from the canonical form.
bool DecodeWildCallLine(std::string_view line, std::uint64_t* index,
                        WildCallResult* result);

/// One row of Table 3: calls whose p95 cross-traffic delay is at least
/// `threshold_ms`, with the average/median bandwidth gain and significance.
struct AbBucketRow {
  double threshold_ms = 0.0;
  double percent_calls_covered = 0.0;
  double avg_gain_percent = 0.0;
  double avg_gain_p_value = 1.0;     ///< one-sided Welch t-test.
  double median_gain_percent = 0.0;
  double median_gain_p_value = 1.0;  ///< one-sided Mann-Whitney U.
  int calls_in_bucket = 0;
};

AbBucketRow ComputeAbBucket(const WildResults& results, double threshold_ms);

}  // namespace kwikr::scenario
