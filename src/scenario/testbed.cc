#include "scenario/testbed.h"

#include <utility>

namespace kwikr::scenario {

StationProbeTransport::StationProbeTransport(sim::EventLoop& loop,
                                             net::PacketIdAllocator& ids,
                                             wifi::Station& station,
                                             net::Address gateway)
    : loop_(loop), ids_(ids), station_(station), gateway_(gateway) {}

void StationProbeTransport::SendEcho(std::uint8_t tos, std::uint16_t ident,
                                     std::uint16_t sequence,
                                     std::int32_t size_bytes) {
  net::Packet packet;
  packet.id = ids_.Next();
  packet.protocol = net::Protocol::kIcmp;
  packet.src = station_.address();
  // Probe the *current* default gateway — it changes across handoffs.
  packet.dst = station_.gateway();
  packet.tos = tos;
  packet.size_bytes = size_bytes;
  packet.created_at = loop_.now();
  packet.icmp.type = net::IcmpType::kEchoRequest;
  packet.icmp.ident = ident;
  packet.icmp.sequence = sequence;
  station_.Send(std::move(packet));
}

Bss::Bss(sim::EventLoop& loop, wifi::Channel& channel,
         net::PacketIdAllocator& ids, Config config)
    : loop_(loop), channel_(channel), ids_(ids) {
  ap_ = std::make_unique<wifi::AccessPoint>(channel, config.ap);

  net::WiredLink::Config link;
  link.rate_bps = config.wan_rate_bps;
  link.propagation = config.wan_delay;
  downlink_ = std::make_unique<net::WiredLink>(
      loop, link,
      net::WiredLink::Receiver::Member<&Bss::DeliverDownlink>(this));
  uplink_ = std::make_unique<net::WiredLink>(
      loop, link,
      net::WiredLink::Receiver::Member<&Bss::DeliverUplink>(this));
  ap_->SetWanForwarder(
      [this](net::Packet packet) { uplink_->Send(std::move(packet)); });
}

wifi::Station& Bss::AddStation(net::Address address, std::int64_t rate_bps,
                               double frame_error_prob) {
  wifi::Station::Config config;
  config.address = address;
  config.rate_bps = rate_bps;
  config.frame_error_prob = frame_error_prob;
  stations_.push_back(
      std::make_unique<wifi::Station>(channel_, *ap_, config));
  return *stations_.back();
}

void Bss::RegisterWanEndpoint(
    net::Address address, std::function<void(net::Packet, sim::Time)> handler) {
  endpoints_[address] = std::move(handler);
}

void Bss::SendFromWan(net::Packet packet) {
  if (throttle_) {
    throttle_->Send(std::move(packet));
  } else {
    downlink_->Send(std::move(packet));
  }
}

transport::TokenBucket& Bss::InstallThrottle(
    transport::TokenBucket::Config cfg) {
  throttle_ = std::make_unique<transport::TokenBucket>(
      loop_, cfg,
      [this](net::Packet packet) { downlink_->Send(std::move(packet)); });
  return *throttle_;
}

void Bss::DeliverDownlink(net::Packet&& packet) {
  ap_->DeliverFromWan(std::move(packet));
}

void Bss::DeliverUplink(net::Packet&& packet) {
  const auto it = endpoints_.find(packet.dst);
  if (it == endpoints_.end()) return;
  it->second(std::move(packet), loop_.now());
}

Testbed::Testbed(Config config) : rng_(config.seed) {
  channel_ =
      std::make_unique<wifi::Channel>(loop_, rng_.Fork(), config.phy);
}

Bss& Testbed::AddBss(Bss::Config config) {
  if (config.ap.address == kApBaseAddress && !bss_.empty()) {
    config.ap.address = next_ap_;
  }
  next_ap_ = std::max(next_ap_, config.ap.address) + 1;
  bss_.push_back(
      std::make_unique<Bss>(loop_, *channel_, ids_, config));
  return *bss_.back();
}

std::vector<CrossFlow*> Testbed::AddTcpBulkFlows(
    Bss& bss, wifi::Station& station, int count, bool managed,
    transport::TcpRenoSender::Config sender_config) {
  std::vector<CrossFlow*> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto flow = std::make_unique<CrossFlow>();
    flow->flow = NextFlowId();
    const net::Address server = NextServerAddress();

    flow->sender = std::make_unique<transport::TcpRenoSender>(
        loop_, flow->flow, server, station.address(), ids_,
        [&bss](net::Packet packet) { bss.SendFromWan(std::move(packet)); },
        sender_config);
    flow->receiver = std::make_unique<transport::TcpRenoReceiver>(
        flow->flow, station.address(), server, ids_,
        [&station](net::Packet packet) { station.Send(std::move(packet)); });

    transport::TcpRenoReceiver* receiver = flow->receiver.get();
    station.AddReceiver(
        [receiver](const net::Packet& packet, sim::Time arrival) {
          receiver->OnSegment(packet, arrival);
        });
    transport::TcpRenoSender* sender = flow->sender.get();
    bss.RegisterWanEndpoint(
        server, [sender](net::Packet packet, sim::Time /*arrival*/) {
          sender->OnAck(packet);
        });

    out.push_back(flow.get());
    if (managed) {
      cross_flows_.push_back(std::move(flow));
    } else {
      unmanaged_flows_.push_back(std::move(flow));
    }
  }
  return out;
}

void Testbed::StartCrossTraffic() {
  for (auto& flow : cross_flows_) flow->sender->Start();
}

void Testbed::StopCrossTraffic() {
  for (auto& flow : cross_flows_) flow->sender->Stop();
}

void Testbed::ScheduleCrossTraffic(sim::Time start, sim::Time stop) {
  auto begin = [this] { StartCrossTraffic(); };
  static_assert(sim::InlineTask::fits_inline<decltype(begin)>);
  if (start > 0) {
    loop_.ScheduleAt(start, std::move(begin));
  }
  if (stop > 0) {
    loop_.ScheduleAt(stop, [this] { StopCrossTraffic(); });
  }
}

std::int64_t Testbed::CrossTrafficBytesReceived() const {
  std::int64_t total = 0;
  for (const auto& flow : cross_flows_) {
    total += flow->receiver->bytes_received();
  }
  for (const auto& flow : unmanaged_flows_) {
    total += flow->receiver->bytes_received();
  }
  return total;
}

void Testbed::InstallDistanceErrorModel() {
  channel_->SetFrameErrorModel(
      wifi::FrameErrorModel::Member<&Testbed::DistanceErrorProb>(this));
}

double Testbed::DistanceErrorProb(wifi::OwnerId tx, wifi::OwnerId rx,
                                  const wifi::Frame& frame) const {
  for (const auto& bss : bss_) {
    for (const auto& station : bss->stations()) {
      if (station->owner() == rx || station->owner() == tx) {
        if (station->distance_m() <= 0.0) return 0.0;
        return wifi::ErrorProbForRate(station->band(), station->distance_m(),
                                      frame.phy_rate_bps);
      }
    }
  }
  return 0.0;
}

void Testbed::InstallStationErrorModel() {
  channel_->SetFrameErrorModel(
      wifi::FrameErrorModel::Member<&Testbed::StationErrorProb>(this));
}

double Testbed::StationErrorProb(wifi::OwnerId tx, wifi::OwnerId rx,
                                 const wifi::Frame& /*frame*/) const {
  for (const auto& bss : bss_) {
    for (const auto& station : bss->stations()) {
      if (station->owner() == rx || station->owner() == tx) {
        return station->frame_error_prob();
      }
    }
  }
  return 0.0;
}

}  // namespace kwikr::scenario
