#include "scenario/wild_population.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "fleet/scenario_shards.h"
#include "sim/rng.h"
#include "stats/percentile.h"
#include "stats/welch.h"
#include "wifi/rate_table.h"

namespace kwikr::scenario {
namespace {

/// Draws one random Wi-Fi environment. The marginals are chosen so that most
/// calls see little or no cross traffic while a tail sees heavy congestion —
/// the shape Figure 10 reports from production.
ExperimentConfig DrawEnvironment(sim::Rng& rng, const WildConfig& wild,
                                 std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.duration = wild.call_duration;
  config.band = rng.Bernoulli(0.5) ? wifi::Band::k2_4GHz : wifi::Band::k5GHz;
  config.wmm_enabled = rng.Bernoulli(wild.wmm_probability);

  const auto rates = wifi::McsRates(config.band);
  const auto mcs = static_cast<std::size_t>(
      rng.UniformInt(2, static_cast<std::int64_t>(rates.size()) - 1));
  config.client_rate_bps = rates[mcs];

  // ~40% of calls see no cross traffic at all.
  if (rng.Bernoulli(0.4)) {
    config.cross_stations = 0;
  } else {
    config.cross_stations = static_cast<int>(rng.UniformInt(1, 3));
    config.flows_per_station = static_cast<int>(rng.UniformInt(1, 12));
    // A congestion episode covering a random chunk of the call. The paper's
    // production calls average 967 s with episodes being a small fraction;
    // shorter simulated calls use a modest fraction for the same reason.
    const double len_frac = rng.Uniform(0.15, 0.5);
    const double start_frac = rng.Uniform(0.05, 0.9 - len_frac * 0.9);
    config.congestion_start = static_cast<sim::Time>(
        start_frac * static_cast<double>(wild.call_duration));
    config.congestion_end = static_cast<sim::Time>(
        (start_frac + len_frac) * static_cast<double>(wild.call_duration));
  }
  config.calls = {CallConfig{}};
  return config;
}

double SamplePercentileMs(const std::vector<core::PingPairSample>& samples,
                          double p, sim::Duration core::PingPairSample::*field) {
  std::vector<double> ms;
  ms.reserve(samples.size());
  for (const auto& s : samples) ms.push_back(sim::ToMillis(s.*field));
  return stats::Percentile(ms, p);
}

/// Replays environment `index`'s draw: every arm task forks the population
/// RNG at the same index and consumes the same draws, so the baseline and
/// Kwikr shards of one environment reconstruct an identical experiment
/// without sharing any state.
ExperimentConfig DrawPairedExperiment(const WildConfig& config,
                                      std::size_t index, sim::Rng call_rng) {
  const std::uint64_t call_seed = call_rng.Next();
  ExperimentConfig experiment = DrawEnvironment(call_rng, config, call_seed);
  if (!config.fault_matrix.empty()) {
    experiment.faults = config.fault_matrix[index % config.fault_matrix.size()];
  }
  return experiment;
}

/// One arm of the paired A/B — an independent co-channel BSS-group replica.
/// The environment (seed, topology, congestion schedule) is common random
/// numbers; only the adaptation arm differs.
ExperimentMetrics RunArm(ExperimentConfig experiment, const WildConfig& config,
                         std::size_t index, bool kwikr,
                         obs::MetricsRegistry* metrics) {
  experiment.metrics = metrics;  // worker-local; merged by the caller.
  experiment.calls[0].kwikr = kwikr;
  if (kwikr && config.timeline) {
    // Telemetry rides on the Kwikr arm only (the arm that probes in
    // production); the baseline arm's event schedule stays untouched.
    experiment.timeline.enabled = true;
    experiment.timeline.interval = config.timeline_interval;
    experiment.timeline.series_capacity = config.timeline_series_capacity;
    experiment.timeline.call_index = static_cast<std::int64_t>(index);
  }
  return RunCallExperiment(experiment);
}

/// Join point of the two arm shards: pure pairwise combination of the arm
/// metrics, so it yields the same bytes whether the arms ran back-to-back
/// in one task or as separate shards on different workers. Event streams
/// merge through the deterministic (t, shard) rule.
WildCallResult MergeArms(const ExperimentConfig& experiment,
                         const ExperimentMetrics& baseline,
                         const ExperimentMetrics& kwikr) {
  WildCallResult r;
  const CallMetrics& b = baseline.calls[0];
  const CallMetrics& k = kwikr.calls[0];
  r.p95_tq_ms = SamplePercentileMs(k.probe_samples, 95.0,
                                   &core::PingPairSample::tq);
  r.p95_ta_ms = SamplePercentileMs(k.probe_samples, 95.0,
                                   &core::PingPairSample::ta);
  r.p95_tc_ms = SamplePercentileMs(k.probe_samples, 95.0,
                                   &core::PingPairSample::tc);
  r.probe_samples = static_cast<int>(k.probe_samples.size());
  r.baseline_rate_kbps = b.mean_rate_kbps;
  r.kwikr_rate_kbps = k.mean_rate_kbps;
  r.baseline_loss_pct = b.loss_pct;
  r.kwikr_loss_pct = k.loss_pct;
  r.baseline_rtt_p50_ms = stats::Percentile(b.rtt_ms, 50.0);
  r.kwikr_rtt_p50_ms = stats::Percentile(k.rtt_ms, 50.0);
  r.wmm_enabled = experiment.wmm_enabled;
  r.cross_stations = experiment.cross_stations;
  r.events_executed = baseline.events_executed + kwikr.events_executed;
  r.timeline_jsonl =
      fleet::MergeShardStreams({baseline.timeline_jsonl, kwikr.timeline_jsonl});
  return r;
}

/// One environment end to end (both arms in one task). All randomness flows
/// from `call_rng` — a per-index fork of the population RNG — so
/// environments are independent tasks the fleet runner can execute on any
/// worker in any order.
WildCallResult RunOneEnvironment(const WildConfig& config, std::size_t index,
                                 sim::Rng call_rng,
                                 obs::MetricsRegistry* metrics) {
  const ExperimentConfig experiment =
      DrawPairedExperiment(config, index, std::move(call_rng));
  const ExperimentMetrics baseline =
      RunArm(experiment, config, index, /*kwikr=*/false, metrics);
  const ExperimentMetrics kwikr =
      RunArm(experiment, config, index, /*kwikr=*/true, metrics);
  return MergeArms(experiment, baseline, kwikr);
}

}  // namespace

namespace {

/// Runs `fn(local_registry)` with the merge-once-per-task observability
/// pattern: a worker-local registry merged into the stage when the task
/// completes, plus the wall-clock "task_wall_ms" summary.
template <typename Fn>
auto RunObservedTask(bool observed, fleet::FleetMetrics* stage, Fn&& fn) {
  if (!observed) return fn(static_cast<obs::MetricsRegistry*>(nullptr));
  const auto wall_begin = std::chrono::steady_clock::now();
  obs::MetricsRegistry local;
  auto result = fn(&local);
  stage->MergeRegistry(local);
  stats::RunningSummary wall;
  wall.Add(std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - wall_begin)
               .count());
  stage->MergeSummary("task_wall_ms", wall);
  return result;
}

}  // namespace

WildResults RunWildPopulation(const WildConfig& config) {
  const sim::Rng base_rng(config.base_seed);
  const bool observed =
      config.metrics != nullptr || config.fleet_metrics != nullptr;
  // Stage registry for the merge-once-per-task pattern; the caller's
  // FleetMetrics doubles as the stage when provided.
  fleet::FleetMetrics local_stage;
  fleet::FleetMetrics* stage =
      config.fleet_metrics != nullptr ? config.fleet_metrics : &local_stage;
  const auto calls = static_cast<std::size_t>(std::max(config.calls, 0));

  WildResults results;
  if (!config.shard_arms) {
    auto report =
        fleet::RunFleet(calls, config.jobs, [&](std::size_t index) {
          return RunObservedTask(observed, stage,
                                 [&](obs::MetricsRegistry* local) {
                                   return RunOneEnvironment(
                                       config, index, base_rng.Fork(index),
                                       local);
                                 });
        });
    results.calls = std::move(report.results);
    results.failures = std::move(report.failures);
  } else {
    // BSS-group sharded path: shard 2i is environment i's baseline arm,
    // shard 2i+1 its Kwikr arm. Each shard replays the identical
    // environment draw from base_seed + index (common random numbers), so
    // the pair-merge below reproduces the unsharded bytes exactly.
    struct ArmOutcome {
      ExperimentConfig experiment;
      ExperimentMetrics metrics;
    };
    auto report = fleet::RunScenarioShards(
        2 * calls, config.jobs, [&](std::size_t shard) {
          const std::size_t index = shard >> 1;
          const bool kwikr = (shard & 1) != 0;
          return RunObservedTask(
              observed, stage, [&](obs::MetricsRegistry* local) {
                ArmOutcome out;
                out.experiment =
                    DrawPairedExperiment(config, index, base_rng.Fork(index));
                out.metrics =
                    RunArm(out.experiment, config, index, kwikr, local);
                return out;
              });
        });
    results.calls.resize(calls);
    for (std::size_t i = 0; i < calls; ++i) {
      const ArmOutcome& baseline = report.results[2 * i];
      const ArmOutcome& kwikr = report.results[2 * i + 1];
      // A failed arm's slot is default-constructed (no calls entry); the
      // environment's result then stays default too, matching the
      // unsharded failure contract.
      if (baseline.metrics.calls.empty() || kwikr.metrics.calls.empty()) {
        continue;
      }
      results.calls[i] =
          MergeArms(baseline.experiment, baseline.metrics, kwikr.metrics);
    }
    // Map arm-shard failures back onto environment indices (sorted order is
    // preserved: shard index order is environment-major).
    for (const fleet::TaskFailure& f : report.failures) {
      results.failures.push_back(fleet::TaskFailure{
          f.index >> 1,
          ((f.index & 1) != 0 ? "kwikr arm: " : "baseline arm: ") + f.error});
    }
  }
  if (config.metrics != nullptr) config.metrics->Merge(stage->registry());
  return results;
}

void RunWildRange(
    const WildConfig& config, std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t index, WildCallResult&& result)>&
        sink) {
  if (end <= begin) return;
  const sim::Rng base_rng(config.base_seed);
  const bool observed =
      config.metrics != nullptr || config.fleet_metrics != nullptr;
  fleet::FleetMetrics local_stage;
  fleet::FleetMetrics* stage =
      config.fleet_metrics != nullptr ? config.fleet_metrics : &local_stage;

  // The slice runs through the same fleet runner as the full population —
  // only the index base differs, and every per-environment input (seed
  // fork, fault-matrix row) keys on the *global* index.
  auto report = fleet::RunFleet(
      static_cast<std::size_t>(end - begin), config.jobs,
      [&](std::size_t local) {
        const auto index = static_cast<std::size_t>(begin + local);
        return RunObservedTask(observed, stage,
                               [&](obs::MetricsRegistry* local_registry) {
                                 return RunOneEnvironment(
                                     config, index, base_rng.Fork(index),
                                     local_registry);
                               });
      });
  if (!report.ok()) {
    const fleet::TaskFailure& first = report.failures.front();
    throw std::runtime_error(
        "wild call " + std::to_string(begin + first.index) + ": " +
        first.error);
  }
  if (config.metrics != nullptr) config.metrics->Merge(stage->registry());
  for (std::size_t local = 0; local < report.results.size(); ++local) {
    sink(begin + local, std::move(report.results[local]));
  }
}

namespace {

void AppendDoubleField(std::string* out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), ",\"%s\":%.17g", key, value);
  *out += buffer;
}

/// Strict sequential field parsers (same pattern as the checkpoint
/// manifest's): machine-written lines have a fixed key order, so any
/// deviation is corruption, not style.
bool ParseKey(std::string_view line, std::size_t* pos, std::string_view key) {
  std::string expect = ",\"";
  expect += key;
  expect += "\":";
  if (line.substr(*pos, expect.size()) != expect) return false;
  *pos += expect.size();
  return true;
}

bool ParseU64(std::string_view line, std::size_t* pos, std::uint64_t* out) {
  const std::size_t start = *pos;
  std::uint64_t value = 0;
  while (*pos < line.size() && line[*pos] >= '0' && line[*pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[*pos] - '0');
    ++*pos;
  }
  if (*pos == start) return false;
  *out = value;
  return true;
}

bool ParseDoubleField(std::string_view line, std::size_t* pos,
                      std::string_view key, double* out) {
  if (!ParseKey(line, pos, key)) return false;
  // The numeric token ends at the next ',' or '}' — both are impossible
  // inside a %.17g rendering.
  const std::size_t stop = line.find_first_of(",}", *pos);
  if (stop == std::string_view::npos || stop == *pos) return false;
  const std::string token(line.substr(*pos, stop - *pos));
  char* parse_end = nullptr;
  *out = std::strtod(token.c_str(), &parse_end);
  if (parse_end != token.c_str() + token.size()) return false;
  *pos = stop;
  return true;
}

bool ParseIntField(std::string_view line, std::size_t* pos,
                   std::string_view key, std::uint64_t* out) {
  return ParseKey(line, pos, key) && ParseU64(line, pos, out);
}

}  // namespace

std::string EncodeWildCallLine(std::uint64_t index,
                               const WildCallResult& result) {
  std::string out = "{\"call\":" + std::to_string(index);
  AppendDoubleField(&out, "p95_tq_ms", result.p95_tq_ms);
  AppendDoubleField(&out, "p95_ta_ms", result.p95_ta_ms);
  AppendDoubleField(&out, "p95_tc_ms", result.p95_tc_ms);
  out += ",\"probe_samples\":" + std::to_string(result.probe_samples);
  AppendDoubleField(&out, "baseline_rate_kbps", result.baseline_rate_kbps);
  AppendDoubleField(&out, "kwikr_rate_kbps", result.kwikr_rate_kbps);
  AppendDoubleField(&out, "baseline_loss_pct", result.baseline_loss_pct);
  AppendDoubleField(&out, "kwikr_loss_pct", result.kwikr_loss_pct);
  AppendDoubleField(&out, "baseline_rtt_p50_ms", result.baseline_rtt_p50_ms);
  AppendDoubleField(&out, "kwikr_rtt_p50_ms", result.kwikr_rtt_p50_ms);
  out += ",\"wmm\":";
  out += result.wmm_enabled ? '1' : '0';
  out += ",\"cross_stations\":" + std::to_string(result.cross_stations);
  out += ",\"events\":" + std::to_string(result.events_executed);
  out += "}\n";
  return out;
}

bool DecodeWildCallLine(std::string_view line, std::uint64_t* index,
                        WildCallResult* result) {
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  constexpr std::string_view kPrefix = "{\"call\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  std::size_t pos = kPrefix.size();
  if (!ParseU64(line, &pos, index)) return false;

  WildCallResult r;
  std::uint64_t probe_samples = 0;
  std::uint64_t wmm = 0;
  std::uint64_t cross_stations = 0;
  if (!ParseDoubleField(line, &pos, "p95_tq_ms", &r.p95_tq_ms) ||
      !ParseDoubleField(line, &pos, "p95_ta_ms", &r.p95_ta_ms) ||
      !ParseDoubleField(line, &pos, "p95_tc_ms", &r.p95_tc_ms) ||
      !ParseIntField(line, &pos, "probe_samples", &probe_samples) ||
      !ParseDoubleField(line, &pos, "baseline_rate_kbps",
                        &r.baseline_rate_kbps) ||
      !ParseDoubleField(line, &pos, "kwikr_rate_kbps", &r.kwikr_rate_kbps) ||
      !ParseDoubleField(line, &pos, "baseline_loss_pct",
                        &r.baseline_loss_pct) ||
      !ParseDoubleField(line, &pos, "kwikr_loss_pct", &r.kwikr_loss_pct) ||
      !ParseDoubleField(line, &pos, "baseline_rtt_p50_ms",
                        &r.baseline_rtt_p50_ms) ||
      !ParseDoubleField(line, &pos, "kwikr_rtt_p50_ms", &r.kwikr_rtt_p50_ms) ||
      !ParseIntField(line, &pos, "wmm", &wmm) || wmm > 1 ||
      !ParseIntField(line, &pos, "cross_stations", &cross_stations) ||
      !ParseIntField(line, &pos, "events", &r.events_executed)) {
    return false;
  }
  if (line.substr(pos) != "}") return false;
  r.probe_samples = static_cast<int>(probe_samples);
  r.wmm_enabled = wmm == 1;
  r.cross_stations = static_cast<int>(cross_stations);
  *result = std::move(r);
  return true;
}

AbBucketRow ComputeAbBucket(const WildResults& results, double threshold_ms) {
  AbBucketRow row;
  row.threshold_ms = threshold_ms;
  std::vector<double> baseline;
  std::vector<double> kwikr;
  for (const auto& call : results.calls) {
    if (call.p95_tc_ms >= threshold_ms) {
      baseline.push_back(call.baseline_rate_kbps);
      kwikr.push_back(call.kwikr_rate_kbps);
    }
  }
  row.calls_in_bucket = static_cast<int>(baseline.size());
  if (results.calls.empty() || baseline.empty()) return row;
  row.percent_calls_covered = 100.0 * static_cast<double>(baseline.size()) /
                              static_cast<double>(results.calls.size());

  const stats::TestResult welch = stats::WelchTTestGreater(kwikr, baseline);
  if (welch.mean_b > 0.0) {
    row.avg_gain_percent = 100.0 * (welch.mean_a - welch.mean_b) /
                           welch.mean_b;
  }
  row.avg_gain_p_value = welch.p_value;

  const double median_b = stats::Percentile(baseline, 50.0);
  const double median_k = stats::Percentile(kwikr, 50.0);
  if (median_b > 0.0) {
    row.median_gain_percent = 100.0 * (median_k - median_b) / median_b;
  }
  row.median_gain_p_value = stats::MannWhitneyUGreater(kwikr, baseline).p_value;
  return row;
}

}  // namespace kwikr::scenario
