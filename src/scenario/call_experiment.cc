#include "scenario/call_experiment.h"

#include <algorithm>
#include <numeric>

#include "stats/summary.h"

namespace kwikr::scenario {
namespace {

/// Everything that makes up one live call inside the experiment.
struct LiveCall {
  wifi::Station* station = nullptr;
  net::Address server = 0;
  net::FlowId flow = net::kNoFlow;
  std::unique_ptr<rtc::MediaSender> sender;
  std::unique_ptr<rtc::MediaReceiver> receiver;
  std::unique_ptr<StationProbeTransport> probe_transport;
  std::unique_ptr<core::PingPairProber> prober;
  std::unique_ptr<core::KwikrAdapter> adapter;
};

double MeanOfRange(const std::vector<double>& series, std::size_t begin,
                   std::size_t end) {
  begin = std::min(begin, series.size());
  end = std::min(end, series.size());
  if (begin >= end) return 0.0;
  const double sum = std::accumulate(series.begin() + begin,
                                     series.begin() + end, 0.0);
  return sum / static_cast<double>(end - begin);
}

}  // namespace

ExperimentMetrics RunCallExperiment(const ExperimentConfig& config) {
  Testbed::Config tb_config;
  tb_config.seed = config.seed;
  Testbed testbed(tb_config);

  Bss::Config bss_config;
  bss_config.ap.address = kApBaseAddress;
  bss_config.ap.band = config.band;
  bss_config.ap.wmm_enabled = config.wmm_enabled;
  bss_config.ap.queue_capacity[Index(wifi::AccessCategory::kBestEffort)] =
      config.be_queue_capacity;
  Bss& bss = testbed.AddBss(bss_config);

  // --- Calls ---------------------------------------------------------------
  std::vector<LiveCall> calls(config.calls.size());
  for (std::size_t i = 0; i < config.calls.size(); ++i) {
    const CallConfig& cc = config.calls[i];
    LiveCall& call = calls[i];
    call.flow = testbed.NextFlowId();
    call.server = testbed.NextServerAddress();
    call.station = &bss.AddStation(testbed.NextStationAddress(),
                                   config.client_rate_bps);

    rtc::MediaSender::Config sender_config;
    sender_config.src = call.server;
    sender_config.dst = call.station->address();
    sender_config.flow = call.flow;
    sender_config.start_rate_bps = cc.start_rate_bps;
    call.sender = std::make_unique<rtc::MediaSender>(
        testbed.loop(), testbed.ids(), sender_config,
        [&bss](net::Packet packet) { bss.SendFromWan(std::move(packet)); });

    rtc::MediaReceiver::Config receiver_config;
    receiver_config.src = call.station->address();
    receiver_config.dst = call.server;
    receiver_config.flow = call.flow;
    receiver_config.controller = cc.controller;
    receiver_config.controller.start_rate_bps = cc.start_rate_bps;
    receiver_config.estimator.beta = cc.beta;
    receiver_config.adaptation = cc.adaptation;
    receiver_config.gcc.start_rate_bps = cc.start_rate_bps;
    wifi::Station* station = call.station;
    call.receiver = std::make_unique<rtc::MediaReceiver>(
        testbed.loop(), testbed.ids(), receiver_config,
        [station](net::Packet packet) { station->Send(std::move(packet)); });

    call.probe_transport = std::make_unique<StationProbeTransport>(
        testbed.loop(), testbed.ids(), *call.station, bss.ap().address());
    core::PingPairProber::Config probe_config;
    probe_config.interval = config.probe_interval;
    probe_config.dual = config.dual_ping_pair;
    probe_config.mode = config.measurement_mode;
    probe_config.ident = static_cast<std::uint16_t>(0x5050 + i);
    call.prober = std::make_unique<core::PingPairProber>(
        testbed.loop(), *call.probe_transport, probe_config, call.flow);
    call.adapter = std::make_unique<core::KwikrAdapter>(testbed.loop());
    call.adapter->AttachTo(*call.prober);
    if (cc.kwikr) {
      call.receiver->SetCrossTrafficProvider(
          call.adapter->CrossTrafficProvider());
    }

    // Client receive path: media -> receiver + prober flow log; ICMP ->
    // prober replies.
    rtc::MediaReceiver* receiver = call.receiver.get();
    core::PingPairProber* prober = call.prober.get();
    call.station->AddReceiver(
        [receiver, prober](const net::Packet& packet, sim::Time arrival) {
          if (packet.protocol == net::Protocol::kIcmp) {
            prober->OnReply(packet, arrival);
            return;
          }
          prober->OnFlowPacket(packet, arrival);
          receiver->OnPacket(packet, arrival);
        });

    // Wired side: feedback reports reach the media sender.
    rtc::MediaSender* sender = call.sender.get();
    bss.RegisterWanEndpoint(
        call.server, [sender](net::Packet packet, sim::Time arrival) {
          sender->OnFeedback(packet, arrival);
        });
  }

  // --- Cross traffic -------------------------------------------------------
  for (int s = 0; s < config.cross_stations; ++s) {
    wifi::Station& station = bss.AddStation(testbed.NextStationAddress(),
                                            config.client_rate_bps);
    testbed.AddTcpBulkFlows(bss, station, config.flows_per_station);
  }
  if (config.cross_stations > 0) {
    testbed.ScheduleCrossTraffic(config.congestion_start,
                                 config.congestion_end);
  }

  // --- Foreground TCP flow (Figure 1) --------------------------------------
  std::vector<double> tcp_rate_series;
  std::unique_ptr<sim::PeriodicTimer> tcp_sampler;
  transport::TcpRenoReceiver* fg_receiver = nullptr;
  std::int64_t fg_last_bytes = 0;
  if (config.foreground_tcp) {
    wifi::Station& station = bss.AddStation(testbed.NextStationAddress(),
                                            config.client_rate_bps);
    // A single real-world download is receive-window limited; this keeps
    // the foreground flow from bloating the AP queue on its own.
    transport::TcpRenoSender::Config fg;
    fg.max_in_flight = 96;
    auto flows =
        testbed.AddTcpBulkFlows(bss, station, 1, /*managed=*/false, fg);
    flows.front()->sender->Start();
    fg_receiver = flows.front()->receiver.get();
    tcp_sampler = std::make_unique<sim::PeriodicTimer>(
        testbed.loop(), sim::Seconds(1), [&tcp_rate_series, fg_receiver,
                                          &fg_last_bytes] {
          const std::int64_t bytes = fg_receiver->bytes_received();
          tcp_rate_series.push_back(
              static_cast<double>(bytes - fg_last_bytes) * 8.0 / 1000.0);
          fg_last_bytes = bytes;
        });
    tcp_sampler->Start();
  }

  // --- Throttle (Figure 9) -------------------------------------------------
  if (config.throttle_bps > 0) {
    transport::TokenBucket::Config tb;
    tb.rate_bps = 0;  // unshaped until throttle_start.
    transport::TokenBucket& throttle = bss.InstallThrottle(tb);
    const std::int64_t rate = config.throttle_bps;
    testbed.loop().ScheduleAt(config.throttle_start,
                              [&throttle, rate] { throttle.SetRate(rate); });
    if (config.throttle_end > config.throttle_start) {
      testbed.loop().ScheduleAt(config.throttle_end,
                                [&throttle] { throttle.SetRate(0); });
    }
  }

  // --- Queue ground truth --------------------------------------------------
  std::vector<std::size_t> queue_samples;
  std::unique_ptr<sim::PeriodicTimer> queue_sampler;
  if (config.sample_queue) {
    queue_sampler = std::make_unique<sim::PeriodicTimer>(
        testbed.loop(), config.queue_sample_interval, [&queue_samples, &bss] {
          queue_samples.push_back(bss.ap().DownlinkQueueLength(
              wifi::AccessCategory::kBestEffort));
        });
    queue_sampler->Start();
  }

  // --- Run -----------------------------------------------------------------
  for (auto& call : calls) {
    call.sender->Start();
    call.receiver->Start();
    call.prober->Start();
  }
  testbed.loop().RunUntil(config.duration);
  for (auto& call : calls) {
    call.sender->Stop();
    call.receiver->Stop();
    call.prober->Stop();
  }

  // --- Collect -------------------------------------------------------------
  ExperimentMetrics metrics;
  metrics.channel_busy_fraction = testbed.channel().BusyFraction();
  metrics.cross_traffic_bytes = testbed.CrossTrafficBytesReceived();
  metrics.tcp_rate_series_kbps = std::move(tcp_rate_series);
  metrics.queue_samples = std::move(queue_samples);
  for (auto& call : calls) {
    CallMetrics m;
    m.rate_series_kbps = call.receiver->rate_series_kbps();
    m.mean_rate_kbps = MeanOfRange(m.rate_series_kbps, 0,
                                   m.rate_series_kbps.size());
    if (config.congestion_end > config.congestion_start) {
      m.mean_rate_congested_kbps = MeanOfRange(
          m.rate_series_kbps,
          static_cast<std::size_t>(config.congestion_start / sim::kSecond),
          static_cast<std::size_t>(config.congestion_end / sim::kSecond));
    }
    m.rtt_ms.reserve(call.sender->rtt_samples_s().size());
    for (double rtt_s : call.sender->rtt_samples_s()) {
      m.rtt_ms.push_back(rtt_s * 1000.0);
    }
    m.loss_pct = call.receiver->loss_fraction() * 100.0;
    m.late_frame_pct = call.receiver->jitter_buffer().late_fraction() * 100.0;
    m.probe_samples = call.prober->samples();
    m.probe_stats = call.prober->stats();
    metrics.calls.push_back(std::move(m));
  }
  return metrics;
}

}  // namespace kwikr::scenario
