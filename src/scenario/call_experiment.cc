#include "scenario/call_experiment.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "faults/injector.h"
#include "stats/summary.h"

namespace kwikr::scenario {
namespace {

/// Everything that makes up one live call inside the experiment.
struct LiveCall {
  wifi::Station* station = nullptr;
  net::Address server = 0;
  net::FlowId flow = net::kNoFlow;
  std::unique_ptr<rtc::MediaSender> sender;
  std::unique_ptr<rtc::MediaReceiver> receiver;
  std::unique_ptr<StationProbeTransport> probe_transport;
  std::unique_ptr<core::PingPairProber> prober;
  std::unique_ptr<core::KwikrAdapter> adapter;
};

double MeanOfRange(const std::vector<double>& series, std::size_t begin,
                   std::size_t end) {
  begin = std::min(begin, series.size());
  end = std::min(end, series.size());
  if (begin >= end) return 0.0;
  const double sum = std::accumulate(series.begin() + begin,
                                     series.begin() + end, 0.0);
  return sum / static_cast<double>(end - begin);
}

/// The experiment-wide labels plus the per-call arm tag.
obs::Labels WithArm(const obs::Labels& base, bool kwikr) {
  obs::Labels labels = base;
  labels.emplace_back("arm", kwikr ? "kwikr" : "baseline");
  return labels;
}

/// Rng stream id for the fault injector, disjoint from every per-entity
/// Fork() the testbed performs on the same seed.
constexpr std::uint64_t kFaultRngStream = 0xFA17;

/// Rng stream id for queue-discipline randomness (the FQ-CoDel hash
/// perturbation). Disjoint from kFaultRngStream and the testbed's
/// per-entity forks for the same reason.
constexpr std::uint64_t kQdiscRngStream = 0x0D15C;

}  // namespace

ExperimentMetrics RunCallExperiment(const ExperimentConfig& config) {
  Testbed::Config tb_config;
  tb_config.seed = config.seed;
  Testbed testbed(tb_config);

  obs::MetricsRegistry* metrics = config.metrics;
  obs::Tracer inert_tracer;  // stands in when the caller passed none.
  obs::Tracer& tracer =
      config.tracer != nullptr ? *config.tracer : inert_tracer;
  tracer.BindLoop(&testbed.loop());

  std::unique_ptr<obs::EventLoopMetricsProbe> loop_probe;
  if (config.profile_loop && metrics != nullptr) {
    loop_probe = std::make_unique<obs::EventLoopMetricsProbe>(*metrics);
    testbed.loop().SetProbe(loop_probe.get());
  }

  Bss::Config bss_config;
  bss_config.ap.address = kApBaseAddress;
  bss_config.ap.band = config.band;
  bss_config.ap.wmm_enabled =
      config.wmm_enabled &&
      config.faults.wmm.mode != faults::FaultSpec::WmmMode::kOff;
  bss_config.ap.queue_capacity[Index(wifi::AccessCategory::kBestEffort)] =
      config.be_queue_capacity;
  bss_config.ap.qdisc = config.qdisc;
  // RNG discipline: FQ hashing perturbs from a dedicated fork of the run
  // seed, never from the caller (wall clocks there would break fleet
  // bit-identity across --jobs).
  bss_config.ap.qdisc.hash_seed =
      sim::Rng(config.seed).Fork(kQdiscRngStream).Next();
  Bss& bss = testbed.AddBss(bss_config);

  // --- Fault injection -----------------------------------------------------
  // Environment-level hooks go in before any traffic exists; the per-call
  // hooks (churn, clock skew) attach as the calls are built below.
  std::unique_ptr<faults::FaultInjector> injector;
  if (config.faults.any()) {
    injector = std::make_unique<faults::FaultInjector>(
        testbed.loop(), config.faults,
        sim::Rng(config.seed).Fork(kFaultRngStream), metrics,
        config.metric_labels);
    injector->AttachChannel(testbed.channel());
    injector->AttachAccessPoint(bss.ap());
    injector->AttachWan(bss.downlink());
  }

  // --- Calls ---------------------------------------------------------------
  std::vector<LiveCall> calls(config.calls.size());
  for (std::size_t i = 0; i < config.calls.size(); ++i) {
    const CallConfig& cc = config.calls[i];
    LiveCall& call = calls[i];
    call.flow = testbed.NextFlowId();
    call.server = testbed.NextServerAddress();
    call.station = &bss.AddStation(testbed.NextStationAddress(),
                                   config.client_rate_bps);

    rtc::MediaSender::Config sender_config;
    sender_config.src = call.server;
    sender_config.dst = call.station->address();
    sender_config.flow = call.flow;
    sender_config.start_rate_bps = cc.start_rate_bps;
    call.sender = std::make_unique<rtc::MediaSender>(
        testbed.loop(), testbed.ids(), sender_config,
        [&bss](net::Packet packet) { bss.SendFromWan(std::move(packet)); });

    rtc::MediaReceiver::Config receiver_config;
    receiver_config.src = call.station->address();
    receiver_config.dst = call.server;
    receiver_config.flow = call.flow;
    receiver_config.controller = cc.controller;
    receiver_config.controller.start_rate_bps = cc.start_rate_bps;
    receiver_config.estimator.beta = cc.beta;
    receiver_config.adaptation = cc.adaptation;
    receiver_config.gcc.start_rate_bps = cc.start_rate_bps;
    wifi::Station* station = call.station;
    call.receiver = std::make_unique<rtc::MediaReceiver>(
        testbed.loop(), testbed.ids(), receiver_config,
        [station](net::Packet packet) { station->Send(std::move(packet)); });

    call.probe_transport = std::make_unique<StationProbeTransport>(
        testbed.loop(), testbed.ids(), *call.station, bss.ap().address());
    core::PingPairProber::Config probe_config;
    probe_config.interval = config.probe_interval;
    probe_config.dual = config.dual_ping_pair;
    probe_config.mode = config.measurement_mode;
    probe_config.ident = static_cast<std::uint16_t>(0x5050 + i);
    call.prober = std::make_unique<core::PingPairProber>(
        testbed.loop(), *call.probe_transport, probe_config, call.flow);
    call.adapter = std::make_unique<core::KwikrAdapter>(testbed.loop());
    call.adapter->AttachTo(*call.prober);
    if (injector != nullptr) {
      injector->AttachStationChurn(*call.station);
      injector->AttachProber(*call.prober);
    }
    if (cc.kwikr) {
      call.receiver->SetCrossTrafficProvider(
          call.adapter->CrossTrafficProvider());
    }

    // Observability: per-arm probe-sample and hint instrumentation. All
    // metric values derive from simulated quantities, keeping the registry
    // deterministic; the tracer adds sim-time instants in the "probe" and
    // "hint" categories.
    obs::HistogramCell* tq_hist = nullptr;
    obs::HistogramCell* tc_hist = nullptr;
    obs::HistogramCell* innovation_hist = nullptr;
    obs::Counter* hint_congested = nullptr;
    obs::Counter* hint_clear = nullptr;
    if (metrics != nullptr) {
      const obs::Labels arm = WithArm(config.metric_labels, cc.kwikr);
      tq_hist = &metrics->GetHistogram("probe_tq_ms", arm, {0.0, 500.0, 250});
      tc_hist = &metrics->GetHistogram("probe_tc_ms", arm, {0.0, 500.0, 250});
      innovation_hist = &metrics->GetHistogram("rtc_innovation_ms", arm,
                                               {-250.0, 250.0, 250});
      obs::Labels congested = arm;
      congested.emplace_back("congested", "true");
      obs::Labels clear = arm;
      clear.emplace_back("congested", "false");
      hint_congested = &metrics->GetCounter("kwikr_hints_total", congested);
      hint_clear = &metrics->GetCounter("kwikr_hints_total", clear);
    }
    obs::Tracer* tracer_ptr = &tracer;
    call.prober->AddSampleCallback(
        [tq_hist, tc_hist, tracer_ptr](const core::PingPairSample& s) {
          if (tq_hist != nullptr) {
            tq_hist->Observe(sim::ToMillis(s.tq));
            tc_hist->Observe(sim::ToMillis(s.tc));
          }
          if (tracer_ptr->enabled()) {
            tracer_ptr->InstantAt(
                "ping_pair_sample", "probe", s.completed_at,
                {{"tq_ms", sim::ToMillis(s.tq)},
                 {"ta_ms", sim::ToMillis(s.ta)},
                 {"tc_ms", sim::ToMillis(s.tc)},
                 {"sandwiched", static_cast<double>(s.sandwiched)},
                 {"max_reply_tx",
                  static_cast<double>(s.max_reply_transmissions)}});
          }
        });
    call.adapter->AddHintCallback(
        [hint_congested, hint_clear, tracer_ptr](const core::WifiHint& hint) {
          if (hint_congested != nullptr) {
            (hint.congested ? hint_congested : hint_clear)->Add();
          }
          if (tracer_ptr->enabled()) {
            tracer_ptr->InstantAt(
                hint.congested ? "hint_congested" : "hint_clear", "hint",
                hint.at,
                {{"smoothed_tq_ms", hint.smoothed_tq_ms},
                 {"smoothed_tc_ms", hint.smoothed_tc_ms}});
          }
        });

    // Client receive path: media -> receiver + prober flow log; ICMP ->
    // prober replies. With a registry attached, count media packets and
    // MAC-level retried frames (packet.mac.retry is the capture-interface
    // bit the paper's Linux tool reads).
    rtc::MediaReceiver* receiver = call.receiver.get();
    core::PingPairProber* prober = call.prober.get();
    obs::Counter* rx_packets = nullptr;
    obs::Counter* rx_retry_frames = nullptr;
    if (metrics != nullptr) {
      const obs::Labels arm = WithArm(config.metric_labels, cc.kwikr);
      rx_packets = &metrics->GetCounter("media_rx_packets_total", arm);
      rx_retry_frames =
          &metrics->GetCounter("media_rx_retry_frames_total", arm);
    }
    call.station->AddReceiver(
        [receiver, prober, rx_packets, rx_retry_frames, innovation_hist](
            const net::Packet& packet, sim::Time arrival) {
          if (packet.protocol == net::Protocol::kIcmp) {
            prober->OnReply(packet, arrival);
            return;
          }
          if (rx_packets != nullptr) {
            rx_packets->Add();
            if (packet.mac.retry) rx_retry_frames->Add();
          }
          prober->OnFlowPacket(packet, arrival);
          receiver->OnPacket(packet, arrival);
          if (innovation_hist != nullptr) {
            innovation_hist->Observe(
                receiver->estimator().last_innovation_s() * 1000.0);
          }
        });

    // Wired side: feedback reports reach the media sender.
    rtc::MediaSender* sender = call.sender.get();
    bss.RegisterWanEndpoint(
        call.server, [sender](net::Packet packet, sim::Time arrival) {
          sender->OnFeedback(packet, arrival);
        });
  }

  // --- Cross traffic -------------------------------------------------------
  transport::TcpSender::Config cross_tcp;
  cross_tcp.cc = config.cross_cc;
  for (int s = 0; s < config.cross_stations; ++s) {
    wifi::Station& station = bss.AddStation(testbed.NextStationAddress(),
                                            config.client_rate_bps);
    testbed.AddTcpBulkFlows(bss, station, config.flows_per_station,
                            /*managed=*/true, cross_tcp);
  }
  if (config.cross_stations > 0) {
    testbed.ScheduleCrossTraffic(config.congestion_start,
                                 config.congestion_end);
  }

  // --- Foreground TCP flow (Figure 1) --------------------------------------
  std::vector<double> tcp_rate_series;
  std::unique_ptr<sim::PeriodicTimer> tcp_sampler;
  transport::TcpRenoReceiver* fg_receiver = nullptr;
  std::int64_t fg_last_bytes = 0;
  if (config.foreground_tcp) {
    wifi::Station& station = bss.AddStation(testbed.NextStationAddress(),
                                            config.client_rate_bps);
    // A single real-world download is receive-window limited; this keeps
    // the foreground flow from bloating the AP queue on its own.
    transport::TcpRenoSender::Config fg;
    fg.max_in_flight = 96;
    fg.cc = config.cross_cc;
    auto flows =
        testbed.AddTcpBulkFlows(bss, station, 1, /*managed=*/false, fg);
    flows.front()->sender->Start();
    fg_receiver = flows.front()->receiver.get();
    tcp_sampler = std::make_unique<sim::PeriodicTimer>(
        testbed.loop(), sim::Seconds(1), [&tcp_rate_series, fg_receiver,
                                          &fg_last_bytes] {
          const std::int64_t bytes = fg_receiver->bytes_received();
          tcp_rate_series.push_back(
              static_cast<double>(bytes - fg_last_bytes) * 8.0 / 1000.0);
          fg_last_bytes = bytes;
        });
    tcp_sampler->Start();
  }

  // --- Throttle (Figure 9) -------------------------------------------------
  if (config.throttle_bps > 0) {
    transport::TokenBucket::Config tb;
    tb.rate_bps = 0;  // unshaped until throttle_start.
    transport::TokenBucket& throttle = bss.InstallThrottle(tb);
    const std::int64_t rate = config.throttle_bps;
    auto engage = [&throttle, rate] { throttle.SetRate(rate); };
    static_assert(sim::InlineTask::fits_inline<decltype(engage)>);
    testbed.loop().ScheduleAt(config.throttle_start, std::move(engage));
    if (config.throttle_end > config.throttle_start) {
      testbed.loop().ScheduleAt(config.throttle_end,
                                [&throttle] { throttle.SetRate(0); });
    }
  }

  // --- Queue ground truth --------------------------------------------------
  std::vector<std::size_t> queue_samples;
  std::unique_ptr<sim::PeriodicTimer> queue_sampler;
  if (config.sample_queue) {
    obs::HistogramCell* queue_hist =
        metrics != nullptr
            ? &metrics->GetHistogram("ap_be_queue_depth", config.metric_labels,
                                     {0.0, 300.0, 300})
            : nullptr;
    queue_sampler = std::make_unique<sim::PeriodicTimer>(
        testbed.loop(), config.queue_sample_interval,
        [&queue_samples, &bss, queue_hist] {
          const std::size_t depth = bss.ap().DownlinkQueueLength(
              wifi::AccessCategory::kBestEffort);
          queue_samples.push_back(depth);
          if (queue_hist != nullptr) {
            queue_hist->Observe(static_cast<double>(depth));
          }
        });
    queue_sampler->Start();
  }

  // --- Trace sampler -------------------------------------------------------
  // Periodic counter tracks for the Chrome trace viewer: per-AC AP queue
  // depth, channel state, the first call's rate-control state, and TCP
  // flight size. Only scheduled when a sink is attached, so traced and
  // untraced runs of the same config share an event schedule prefix only —
  // never compare their registries.
  std::unique_ptr<sim::PeriodicTimer> trace_sampler;
  if (tracer.enabled()) {
    std::uint64_t last_collisions = 0;
    trace_sampler = std::make_unique<sim::PeriodicTimer>(
        testbed.loop(), config.trace_sample_interval,
        [&tracer, &testbed, &bss, &calls, last_collisions]() mutable {
          wifi::AccessPoint& ap = bss.ap();
          tracer.Counter(
              "ap_queue_depth", "queue",
              {{"BK", static_cast<double>(ap.DownlinkQueueLength(
                          wifi::AccessCategory::kBackground))},
               {"BE", static_cast<double>(ap.DownlinkQueueLength(
                          wifi::AccessCategory::kBestEffort))},
               {"VI", static_cast<double>(ap.DownlinkQueueLength(
                          wifi::AccessCategory::kVideo))},
               {"VO", static_cast<double>(ap.DownlinkQueueLength(
                          wifi::AccessCategory::kVoice))}});
          const std::uint64_t collisions = testbed.channel().collisions();
          tracer.Counter(
              "channel", "wifi",
              {{"busy_pct", testbed.channel().BusyFraction() * 100.0},
               {"collisions_delta",
                static_cast<double>(collisions - last_collisions)}});
          last_collisions = collisions;
          if (!calls.empty()) {
            const LiveCall& call = calls.front();
            tracer.Counter(
                "rate_control", "rtc",
                {{"target_kbps",
                  static_cast<double>(call.receiver->target_rate_bps()) /
                      1000.0},
                 {"innovation_ms",
                  call.receiver->estimator().last_innovation_s() * 1000.0}});
          }
          const auto& flows = testbed.cross_flows();
          if (!flows.empty()) {
            std::uint64_t in_flight = 0;
            double max_cwnd = 0.0;
            for (const auto& flow : flows) {
              in_flight += flow->sender->in_flight();
              max_cwnd = std::max(max_cwnd,
                                  static_cast<double>(flow->sender->cwnd()));
            }
            tracer.Counter("tcp_cross", "tcp",
                           {{"in_flight", static_cast<double>(in_flight)},
                            {"max_cwnd", max_cwnd}});
          }
        });
    trace_sampler->Start();
  }

  // --- Timeline telemetry --------------------------------------------------
  // Deterministic sim-time series + flight recorder + anomaly triggers (see
  // TimelineOptions). Probe registration order is fixed, so the serialized
  // timeline is canonical; with the feature off nothing here runs and the
  // event schedule is untouched.
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::SeriesSampler> sampler;
  std::unique_ptr<obs::PostmortemMonitor> monitor;
  struct ProbeLatch {
    double tq_ms = 0.0;
    double ta_ms = 0.0;
    double tc_ms = 0.0;
  };
  ProbeLatch probe_latch;
  if (config.timeline.enabled) {
    if (config.timeline.flight_recorder) {
      recorder =
          std::make_unique<obs::FlightRecorder>(config.timeline.recorder_capacity);
      bss.ap().SetFlightRecorder(recorder.get());
      for (auto& call : calls) call.prober->SetFlightRecorder(recorder.get());
      for (const auto* flows :
           {&testbed.cross_flows(), &testbed.unmanaged_flows()}) {
        for (const auto& flow : *flows) {
          flow->sender->SetFlightRecorder(recorder.get());
        }
      }
      if (injector != nullptr) injector->SetFlightRecorder(recorder.get());
    }

    obs::SeriesSampler::Config sampler_config;
    sampler_config.interval = config.timeline.interval;
    sampler_config.capacity = config.timeline.series_capacity;
    sampler =
        std::make_unique<obs::SeriesSampler>(testbed.loop(), sampler_config);

    wifi::AccessPoint& ap = bss.ap();
    for (int ac = 0; ac < wifi::kNumAccessCategories; ++ac) {
      const auto category = static_cast<wifi::AccessCategory>(ac);
      sampler->AddProbe(std::string("ap_queue_") + wifi::Name(category),
                        [&ap, category] {
                          return static_cast<double>(
                              ap.DownlinkQueueLength(category));
                        });
    }
    const wifi::QueueDiscipline& be_qdisc =
        ap.DownlinkQdisc(wifi::AccessCategory::kBestEffort);
    sampler->AddProbe("qdisc_be_backlog", [&be_qdisc] {
      return static_cast<double>(be_qdisc.backlog());
    });
    sampler->AddProbe("qdisc_be_sojourn_ms",
                      [&be_qdisc] { return be_qdisc.last_sojourn_ms(); });
    sampler->AddProbe("channel_busy_pct", [&testbed] {
      return testbed.channel().BusyFraction() * 100.0;
    });
    sampler->AddProbe("tcp_in_flight", [&testbed] {
      double in_flight = 0.0;
      for (const auto* flows :
           {&testbed.cross_flows(), &testbed.unmanaged_flows()}) {
        for (const auto& flow : *flows) {
          in_flight += static_cast<double>(flow->sender->in_flight());
        }
      }
      return in_flight;
    });
    sampler->AddProbe("tcp_max_cwnd", [&testbed] {
      double max_cwnd = 0.0;
      for (const auto* flows :
           {&testbed.cross_flows(), &testbed.unmanaged_flows()}) {
        for (const auto& flow : *flows) {
          max_cwnd = std::max(max_cwnd, flow->sender->cwnd());
        }
      }
      return max_cwnd;
    });
    sampler->AddProbe("tcp_pacing_kbps", [&testbed] {
      double pacing = 0.0;
      for (const auto* flows :
           {&testbed.cross_flows(), &testbed.unmanaged_flows()}) {
        for (const auto& flow : *flows) {
          pacing += static_cast<double>(
                        flow->sender->congestion_control().pacing_rate_bps()) /
                    1000.0;
        }
      }
      return pacing;
    });
    if (!calls.empty()) {
      rtc::MediaReceiver* receiver0 = calls.front().receiver.get();
      sampler->AddProbe("rate_target_kbps", [receiver0] {
        return static_cast<double>(receiver0->target_rate_bps()) / 1000.0;
      });
      sampler->AddProbe("rate_estimate_kbps", [receiver0] {
        return receiver0->estimator().bandwidth_bps() / 1000.0;
      });
      sampler->AddProbe("rate_innovation_ms", [receiver0] {
        return receiver0->estimator().last_innovation_s() * 1000.0;
      });
      // Ping-pair samples are sparse (2/s); the series carries the latest
      // value, latched by the sample callback below.
      ProbeLatch* latch = &probe_latch;
      sampler->AddProbe("probe_tq_ms", [latch] { return latch->tq_ms; });
      sampler->AddProbe("probe_ta_ms", [latch] { return latch->ta_ms; });
      sampler->AddProbe("probe_tc_ms", [latch] { return latch->tc_ms; });
    }
    if (injector != nullptr && injector->gilbert_elliott() != nullptr) {
      const faults::FaultInjector* inj = injector.get();
      sampler->AddProbe("ge_bad", [inj] {
        return inj->gilbert_elliott()->bad() ? 1.0 : 0.0;
      });
    }

    const bool any_trigger = config.timeline.anomaly_tq_p95_ms > 0.0 ||
                             config.timeline.anomaly_retransmit_storm > 0 ||
                             config.timeline.anomaly_divergence > 0.0;
    if (any_trigger) {
      obs::PostmortemMonitor::Config monitor_config;
      monitor_config.tq_p95_ms = config.timeline.anomaly_tq_p95_ms;
      monitor_config.retransmit_storm =
          config.timeline.anomaly_retransmit_storm;
      monitor_config.divergence_factor = config.timeline.anomaly_divergence;
      monitor = std::make_unique<obs::PostmortemMonitor>(
          testbed.loop(), *sampler, recorder.get(), monitor_config,
          config.timeline.postmortem_path);
      if (!calls.empty() && config.timeline.anomaly_divergence > 0.0) {
        rtc::MediaReceiver* receiver0 = calls.front().receiver.get();
        obs::PostmortemMonitor* monitor_ptr = monitor.get();
        sampler->SetRowHook([receiver0, monitor_ptr] {
          monitor_ptr->OnRateSample(
              receiver0->estimator().bandwidth_bps() / 1000.0,
              static_cast<double>(receiver0->target_rate_bps()) / 1000.0);
        });
      }
    }
    if (!calls.empty()) {
      ProbeLatch* latch = &probe_latch;
      obs::PostmortemMonitor* monitor_ptr = monitor.get();
      calls.front().prober->AddSampleCallback(
          [latch, monitor_ptr](const core::PingPairSample& s) {
            latch->tq_ms = sim::ToMillis(s.tq);
            latch->ta_ms = sim::ToMillis(s.ta);
            latch->tc_ms = sim::ToMillis(s.tc);
            if (monitor_ptr != nullptr) monitor_ptr->OnTqSample(latch->tq_ms);
          });
    }
    sampler->Start();
  }

  // --- Run -----------------------------------------------------------------
  if (injector != nullptr) injector->Arm();
  for (auto& call : calls) {
    call.sender->Start();
    call.receiver->Start();
    call.prober->Start();
  }
  {
    obs::ScopedSpan run_span(tracer, "call_experiment", "experiment");
    run_span.AddArg("duration_s", sim::ToSeconds(config.duration));
    run_span.AddArg("calls", static_cast<double>(calls.size()));
    testbed.loop().RunUntil(config.duration);
  }
  for (auto& call : calls) {
    call.sender->Stop();
    call.receiver->Stop();
    call.prober->Stop();
  }
  if (loop_probe != nullptr) testbed.loop().SetProbe(nullptr);

  // --- Collect -------------------------------------------------------------
  ExperimentMetrics result;
  result.events_executed = testbed.loop().executed();
  if (sampler != nullptr) {
    sampler->Stop();
    result.timeline_jsonl = sampler->ToJsonl(config.timeline.call_index);
    // Second exporter: replay the retained series as Chrome-trace counter
    // tracks into whatever sink the tracer feeds.
    if (tracer.enabled()) sampler->EmitCounters(*tracer.sink());
    if (monitor != nullptr && monitor->triggered()) {
      result.postmortem = monitor->dump();
      result.postmortem_reason = monitor->reason();
    }
  }
  result.channel_busy_fraction = testbed.channel().BusyFraction();
  result.cross_traffic_bytes = testbed.CrossTrafficBytesReceived();
  result.tcp_rate_series_kbps = std::move(tcp_rate_series);
  result.queue_samples = std::move(queue_samples);

  // Environment-wide deterministic scrape: EDCA contention, per-AC AP queue
  // outcomes, and TCP cross-traffic health.
  if (metrics != nullptr) {
    const obs::Labels& env = config.metric_labels;
    metrics->GetCounter("experiments_total", env).Add();
    metrics->GetCounter("wifi_collisions_total", env)
        .Add(testbed.channel().collisions());
    metrics->GetCounter("wifi_txop_continuations_total", env)
        .Add(testbed.channel().txop_continuations());
    metrics->GetGauge("wifi_busy_fraction_max", env)
        .Max(testbed.channel().BusyFraction());
    for (int ac = 0; ac < wifi::kNumAccessCategories; ++ac) {
      const auto category = static_cast<wifi::AccessCategory>(ac);
      obs::Labels labels = env;
      labels.emplace_back("ac", wifi::Name(category));
      metrics->GetCounter("ap_queue_drops_total", labels)
          .Add(bss.ap().DownlinkQueueDrops(category));
      metrics->GetCounter("ap_retry_drops_total", labels)
          .Add(bss.ap().DownlinkRetryDrops(category));
      metrics->GetCounter("ap_delivered_total", labels)
          .Add(bss.ap().DownlinkDelivered(category));
      // Queue-discipline outcomes: AQM (sojourn) drops, buffer overflows,
      // and the sojourn-time sketch. All deterministic end-of-run scrapes.
      const wifi::QueueDiscipline& qdisc = bss.ap().DownlinkQdisc(category);
      metrics->GetCounter("qdisc_aqm_drops_total", labels)
          .Add(qdisc.aqm_drops());
      metrics->GetCounter("qdisc_overflow_drops_total", labels)
          .Add(qdisc.overflow_drops());
      metrics->GetCounter("qdisc_forwarded_total", labels)
          .Add(qdisc.forwarded());
      metrics
          ->GetHistogram("qdisc_sojourn_ms", labels,
                         {qdisc.sojourn_ms().config().lo,
                          qdisc.sojourn_ms().config().hi,
                          qdisc.sojourn_ms().config().bins})
          .Merge(qdisc.sojourn_ms());
    }
    // Wired-side packets for stations unknown to this AP (satellite of the
    // roaming faults): previously only a C++ accessor, now a real series.
    metrics->GetCounter("ap_unroutable_drops_total", env)
        .Add(bss.ap().unroutable_drops());
    std::uint64_t retransmissions = 0;
    std::uint64_t tcp_timeouts = 0;
    std::uint64_t segments_acked = 0;
    for (const auto* flows :
         {&testbed.cross_flows(), &testbed.unmanaged_flows()}) {
      for (const auto& flow : *flows) {
        retransmissions += flow->sender->retransmissions();
        tcp_timeouts += flow->sender->timeouts();
        segments_acked += flow->sender->segments_acked();
      }
    }
    metrics->GetCounter("tcp_retransmissions_total", env).Add(retransmissions);
    metrics->GetCounter("tcp_timeouts_total", env).Add(tcp_timeouts);
    metrics->GetCounter("tcp_segments_acked_total", env).Add(segments_acked);
    metrics->GetCounter("cross_traffic_bytes_total", env)
        .Add(static_cast<std::uint64_t>(result.cross_traffic_bytes));
  }

  for (std::size_t i = 0; i < calls.size(); ++i) {
    auto& call = calls[i];
    const CallConfig& cc = config.calls[i];
    CallMetrics m;
    m.rate_series_kbps = call.receiver->rate_series_kbps();
    m.mean_rate_kbps = MeanOfRange(m.rate_series_kbps, 0,
                                   m.rate_series_kbps.size());
    if (config.congestion_end > config.congestion_start) {
      m.mean_rate_congested_kbps = MeanOfRange(
          m.rate_series_kbps,
          static_cast<std::size_t>(config.congestion_start / sim::kSecond),
          static_cast<std::size_t>(config.congestion_end / sim::kSecond));
    }
    m.rtt_ms.reserve(call.sender->rtt_samples_s().size());
    for (double rtt_s : call.sender->rtt_samples_s()) {
      m.rtt_ms.push_back(rtt_s * 1000.0);
    }
    m.loss_pct = call.receiver->loss_fraction() * 100.0;
    m.late_frame_pct = call.receiver->jitter_buffer().late_fraction() * 100.0;
    m.probe_samples = call.prober->samples();
    m.probe_stats = call.prober->stats();

    // Per-arm deterministic scrape: probing outcomes (including every
    // discard reason), estimator activity, and call quality sketches.
    if (metrics != nullptr) {
      const obs::Labels arm = WithArm(config.metric_labels, cc.kwikr);
      metrics->GetCounter("calls_total", arm).Add();
      metrics->GetCounter("probe_rounds_total", arm).Add(m.probe_stats.rounds);
      metrics->GetCounter("probe_valid_total", arm).Add(m.probe_stats.valid);
      const std::pair<const char*, std::uint64_t> discards[] = {
          {"timeout", m.probe_stats.timeouts},
          {"wrong_order", m.probe_stats.wrong_order},
          {"dual_divergence", m.probe_stats.dual_divergence},
          {"dual_gap", m.probe_stats.dual_gap},
      };
      for (const auto& [reason, count] : discards) {
        obs::Labels labels = arm;
        labels.emplace_back("reason", reason);
        metrics->GetCounter("probe_discards_total", labels).Add(count);
      }
      metrics->GetCounter("rtc_estimator_updates_total", arm)
          .Add(static_cast<std::uint64_t>(call.receiver->estimator().updates()));
      metrics->GetHistogram("call_mean_rate_kbps", arm, {0.0, 3000.0, 300})
          .Observe(m.mean_rate_kbps);
      metrics->GetHistogram("call_loss_pct", arm, {0.0, 100.0, 200})
          .Observe(m.loss_pct);
      metrics->GetHistogram("call_late_frame_pct", arm, {0.0, 100.0, 200})
          .Observe(m.late_frame_pct);
    }
    result.calls.push_back(std::move(m));
  }
  return result;
}

}  // namespace kwikr::scenario
