#pragma once

#include <string>
#include <string_view>

#include "core/ping_pair.h"
#include "core/wmm_detector.h"
#include "faults/injector.h"
#include "scenario/call_experiment.h"

namespace kwikr::scenario {

/// A self-contained, file-parseable scenario: one call experiment plus a
/// fault plan, optionally followed by a WMM-detection pass on the same
/// impaired AP. This is the unit of the golden corpus under tests/golden/ —
/// each `.scenario` file parses into one of these, runs deterministically,
/// and summarises into canonical JSON that is byte-compared against the
/// committed expectation.
///
/// File format: key=value lines, `#` comments. Experiment keys:
///
///   name=bursty_loss          # scenario id echoed into the summary
///   seed=7
///   duration_ms=30000
///   band=2.4                  # 2.4 | 5
///   wmm=1                     # AP advertises/honours WMM
///   client_rate_bps=26000000
///   be_queue_capacity=150
///   cross_stations=1
///   flows_per_station=8
///   congestion_start_ms=5000
///   congestion_end_ms=20000
///   probe_interval_ms=500
///   dual=0                    # dual ping-pair (Section 5.6 filters)
///   kwikr=0                   # adaptation arm of the call
///   wmm_detection=0           # also run the Section-5.5 detector
///
/// Bottleneck keys (the CC×qdisc grid). Naming any of them switches the
/// summary's "bottleneck" JSON section on; scenarios that omit them produce
/// the pre-existing summary bytes:
///
///   cc=reno                   # reno | cubic | westwood | bbr
///   qdisc=droptail            # droptail | codel | fq_codel
///   codel_target_ms=5
///   codel_interval_ms=100
///   fq_flows=64
///
/// Timeline keys (sim-time telemetry; all off by default so pre-timeline
/// scenarios keep their exact event schedule and summary bytes). The
/// anomaly thresholds only take effect with `timeline=1`:
///
///   timeline=1                # enable the series sampler + flight recorder
///   timeline_interval_ms=10
///   anomaly_tq_p95_ms=40      # postmortem when windowed Tq p95 exceeds
///   anomaly_retransmit_storm=50  # ... or this many retransmits in 1 s
///   anomaly_divergence=4      # ... or estimate/target ratio exceeds this
///
/// Fault keys are the faults::ParseFaultSpec keys with a `fault.` prefix
/// (repeatable `fault.schedule=` included):
///
///   fault.ge.enable=1
///   fault.ge.loss_bad=0.6
///   fault.schedule=10000 ge off
struct FaultScenario {
  std::string name = "unnamed";
  ExperimentConfig experiment;
  bool wmm_detection = false;
  /// True when the scenario named any cc=/qdisc= key; gates the summary's
  /// "bottleneck" section so the pre-grid corpus stays byte-identical.
  bool bottleneck_explicit = false;
};

/// Parses scenario text. Returns false with a one-line description of the
/// first offending line in `*error` on malformed input.
bool ParseFaultScenario(std::string_view text, FaultScenario* out,
                        std::string* error);

/// Everything the golden corpus asserts on, as plain data. All fields are
/// deterministic in the scenario alone (integer event counts, sim-time
/// percentiles, exact fault/discard counters).
struct FaultScenarioSummary {
  std::string name;

  // The call.
  double mean_rate_kbps = 0.0;
  double loss_pct = 0.0;
  double late_frame_pct = 0.0;

  // Ping-Pair delay decomposition percentiles, milliseconds.
  double tq_p50_ms = 0.0, tq_p95_ms = 0.0, tq_p99_ms = 0.0;
  double ta_p50_ms = 0.0, ta_p95_ms = 0.0, ta_p99_ms = 0.0;
  double tc_p50_ms = 0.0, tc_p95_ms = 0.0, tc_p99_ms = 0.0;

  // Probe accounting, including every discard reason (Section 5.6).
  core::PingPairStats probe;

  // What the injector did (exact counts).
  faults::FaultCounters fault_counters;

  // CC×qdisc bottleneck telemetry (meaningful only when the scenario named
  // a cc=/qdisc= key; the JSON section is omitted otherwise).
  bool bottleneck = false;
  std::string cc;     ///< congestion-control schedule name.
  std::string qdisc;  ///< queue-discipline schedule name.
  std::uint64_t qdisc_aqm_drops = 0;       ///< summed over ACs.
  std::uint64_t qdisc_overflow_drops = 0;  ///< summed over ACs.
  std::uint64_t ap_queue_drops = 0;        ///< summed over ACs.
  std::uint64_t tcp_retransmissions = 0;
  /// Sojourn time through the Best-Effort discipline, milliseconds.
  double sojourn_be_p50_ms = 0.0;
  double sojourn_be_p95_ms = 0.0;
  double sojourn_be_p99_ms = 0.0;

  // Environment.
  double channel_busy_pct = 0.0;
  std::uint64_t events_executed = 0;

  // WMM detection pass (only when the scenario asked for it).
  bool wmm_ran = false;
  core::WmmResult wmm;
};

/// Runs the scenario to completion. Deterministic in the scenario content.
FaultScenarioSummary RunFaultScenario(const FaultScenario& scenario);

/// Side artifacts of a scenario run that the summary doesn't carry: the
/// full metrics registry (for --metrics-out exports) and the timeline /
/// postmortem JSONL (for --timeline-out). Non-copyable (it owns a
/// registry); deterministic in the scenario content like the summary.
struct FaultScenarioArtifacts {
  obs::MetricsRegistry registry;
  std::string timeline_jsonl;        ///< empty unless timeline=1.
  std::string postmortem;            ///< empty unless a trigger fired.
  std::string postmortem_reason;
};

/// As above, additionally filling `*artifacts` (must be non-null).
FaultScenarioSummary RunFaultScenario(const FaultScenario& scenario,
                                      FaultScenarioArtifacts* artifacts);

/// Canonical JSON: fixed key order, fixed precision (%.3f for millisecond
/// and percentage values), newline-terminated — byte-stable across reruns,
/// worker counts and (toolchain-default IEEE arithmetic) compilers, which
/// is what lets the golden test compare bytes instead of parsing.
std::string ToCanonicalJson(const FaultScenarioSummary& summary);

}  // namespace kwikr::scenario
