#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/probe_transport.h"
#include "net/packet.h"
#include "net/wired_link.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "transport/tcp_reno.h"
#include "transport/token_bucket.h"
#include "wifi/access_point.h"
#include "wifi/channel.h"
#include "wifi/station.h"

namespace kwikr::scenario {

/// Address plan used by all scenarios.
inline constexpr net::Address kApBaseAddress = 1;       // APs: 1, 2, ...
inline constexpr net::Address kStationBaseAddress = 100;
inline constexpr net::Address kServerBaseAddress = 1000;

/// core::ProbeTransport implementation over a wifi::Station: builds ICMP
/// echo requests addressed to the BSS gateway and sends them uplink.
class StationProbeTransport : public core::ProbeTransport {
 public:
  StationProbeTransport(sim::EventLoop& loop, net::PacketIdAllocator& ids,
                        wifi::Station& station, net::Address gateway);

  void SendEcho(std::uint8_t tos, std::uint16_t ident, std::uint16_t sequence,
                std::int32_t size_bytes) override;

 private:
  sim::EventLoop& loop_;
  net::PacketIdAllocator& ids_;
  wifi::Station& station_;
  net::Address gateway_;
};

/// A bidirectional TCP bulk cross-flow: sender on the wired side, receiver
/// on a Wi-Fi station.
struct CrossFlow {
  net::FlowId flow = net::kNoFlow;
  std::unique_ptr<transport::TcpRenoSender> sender;
  std::unique_ptr<transport::TcpRenoReceiver> receiver;
};

/// One BSS attached to the shared channel, with its own wired backhaul.
/// Owns the AP, its stations, and the WAN links; dispatches uplink packets
/// to registered wired-side endpoints.
class Bss {
 public:
  struct Config {
    wifi::AccessPoint::Config ap;
    std::int64_t wan_rate_bps = 1'000'000'000;  ///< keep Wi-Fi the bottleneck.
    sim::Duration wan_delay = sim::Millis(15);  ///< one-way wired delay.
  };

  Bss(sim::EventLoop& loop, wifi::Channel& channel,
      net::PacketIdAllocator& ids, Config config);

  /// Adds a station to this BSS.
  wifi::Station& AddStation(net::Address address, std::int64_t rate_bps,
                            double frame_error_prob = 0.0);

  /// Registers a wired-side endpoint: packets forwarded uplink whose
  /// destination matches are handed to `handler` after the WAN delay.
  void RegisterWanEndpoint(net::Address address,
                           std::function<void(net::Packet, sim::Time)> handler);

  /// Injects a packet from the wired side toward the AP downlink (through
  /// the WAN link and, if configured, the token-bucket throttle).
  void SendFromWan(net::Packet packet);

  /// Installs a token-bucket throttle on the wired downlink (Figure 9).
  /// Returns a reference for runtime SetRate calls.
  transport::TokenBucket& InstallThrottle(transport::TokenBucket::Config cfg);

  [[nodiscard]] wifi::AccessPoint& ap() { return *ap_; }
  /// The wired WAN→AP link (fault-injection and observability hook point).
  [[nodiscard]] net::WiredLink& downlink() { return *downlink_; }
  [[nodiscard]] const std::vector<std::unique_ptr<wifi::Station>>& stations()
      const {
    return stations_;
  }
  [[nodiscard]] wifi::Station& station(std::size_t i) { return *stations_[i]; }

 private:
  void DeliverDownlink(net::Packet&& packet);
  void DeliverUplink(net::Packet&& packet);

  sim::EventLoop& loop_;
  wifi::Channel& channel_;
  net::PacketIdAllocator& ids_;
  std::unique_ptr<wifi::AccessPoint> ap_;
  std::vector<std::unique_ptr<wifi::Station>> stations_;
  std::unique_ptr<net::WiredLink> downlink_;  // wired -> AP
  std::unique_ptr<net::WiredLink> uplink_;    // AP -> wired
  std::unique_ptr<transport::TokenBucket> throttle_;
  std::unordered_map<net::Address,
                     std::function<void(net::Packet, sim::Time)>>
      endpoints_;
};

/// The simulated testbed: one event loop, one shared 802.11 channel, and any
/// number of BSSs on it. Provides the cross-traffic and flow-id helpers all
/// experiments use.
class Testbed {
 public:
  struct Config {
    std::uint64_t seed = 1;
    wifi::PhyParams phy;
  };

  explicit Testbed(Config config);
  Testbed() : Testbed(Config{}) {}

  /// Creates a BSS; the first AP gets address 1, the second 2, ...
  Bss& AddBss(Bss::Config config);

  /// Starts `count` TCP bulk flows from fresh wired servers down to
  /// `station` (which must belong to `bss`). Flows are created stopped.
  /// With `managed = true` (the default) the flows are driven by
  /// Start/StopCrossTraffic and ScheduleCrossTraffic; pass false for flows
  /// with their own lifecycle (e.g. an always-on foreground flow).
  std::vector<CrossFlow*> AddTcpBulkFlows(
      Bss& bss, wifi::Station& station, int count, bool managed = true,
      transport::TcpRenoSender::Config sender_config = {});

  /// Starts/stops every *managed* TCP flow created by AddTcpBulkFlows.
  void StartCrossTraffic();
  void StopCrossTraffic();
  /// Schedules cross-traffic on/off at absolute times (0 = skip).
  void ScheduleCrossTraffic(sim::Time start, sim::Time stop);

  /// Sum of cross-flow goodput, bytes.
  [[nodiscard]] std::int64_t CrossTrafficBytesReceived() const;

  /// Observability accessors: the managed cross flows (AddTcpBulkFlows with
  /// managed = true) and the self-driven ones (foreground TCP).
  [[nodiscard]] const std::vector<std::unique_ptr<CrossFlow>>& cross_flows()
      const {
    return cross_flows_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<CrossFlow>>&
  unmanaged_flows() const {
    return unmanaged_flows_;
  }

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] wifi::Channel& channel() { return *channel_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] net::PacketIdAllocator& ids() { return ids_; }
  [[nodiscard]] net::FlowId NextFlowId() { return next_flow_++; }
  [[nodiscard]] net::Address NextServerAddress() { return next_server_++; }
  [[nodiscard]] net::Address NextStationAddress() { return next_station_++; }

  /// Installs the standard frame-error model: each frame's error probability
  /// is the station endpoint's `frame_error_prob` (mobility experiments
  /// adjust it via Station::SetLinkQuality).
  void InstallStationErrorModel();

  /// Installs the rate-dependent error model: each frame's error probability
  /// follows wifi::ErrorProbForRate(band, station distance, frame rate) —
  /// the surface ARF rate adaptation explores. Stations with distance 0 are
  /// clean.
  void InstallDistanceErrorModel();

 private:
  double StationErrorProb(wifi::OwnerId tx, wifi::OwnerId rx,
                          const wifi::Frame& frame) const;
  double DistanceErrorProb(wifi::OwnerId tx, wifi::OwnerId rx,
                           const wifi::Frame& frame) const;

  sim::EventLoop loop_;
  sim::Rng rng_;
  net::PacketIdAllocator ids_;
  std::unique_ptr<wifi::Channel> channel_;
  std::vector<std::unique_ptr<Bss>> bss_;
  std::vector<std::unique_ptr<CrossFlow>> cross_flows_;
  std::vector<std::unique_ptr<CrossFlow>> unmanaged_flows_;
  net::FlowId next_flow_ = 1;
  net::Address next_server_ = kServerBaseAddress;
  net::Address next_station_ = kStationBaseAddress;
  net::Address next_ap_ = kApBaseAddress;
};

}  // namespace kwikr::scenario
