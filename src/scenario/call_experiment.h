#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/kwikr.h"
#include "core/ping_pair.h"
#include "faults/fault_spec.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "rtc/controller.h"
#include "rtc/media.h"
#include "scenario/testbed.h"
#include "sim/time.h"
#include "transport/congestion_control.h"
#include "wifi/queue_discipline.h"
#include "wifi/rate_table.h"

namespace kwikr::scenario {

/// Parameters of one simulated AV call on a single-AP testbed, with optional
/// TCP cross-traffic, an optional always-on foreground TCP flow (Figure 1),
/// and an optional mid-call token-bucket throttle (Figure 9).
struct CallConfig {
  bool kwikr = false;  ///< enable Ping-Pair-informed adaptation.
  rtc::RateController::Config controller;  ///< profile (Skype default).
  std::int64_t start_rate_bps = 500'000;
  /// Kwikr noise-scaling factor (Equation 3); only meaningful with kwikr on.
  double beta = 4.0;
  /// Adaptation stack: Skype-style UKF (default) or GCC-style
  /// delay-gradient. With `kwikr` set, the UKF stack applies the Equation-3
  /// modulation and the GCC stack subtracts Tc from the delay signal.
  rtc::MediaReceiver::Adaptation adaptation =
      rtc::MediaReceiver::Adaptation::kUkfConservative;
};

struct ExperimentConfig {
  std::uint64_t seed = 1;
  sim::Duration duration = sim::Seconds(180);

  // Wi-Fi environment.
  wifi::Band band = wifi::Band::k2_4GHz;
  bool wmm_enabled = true;
  std::int64_t client_rate_bps = 26'000'000;  ///< client MCS rate.
  /// AP Best-Effort downlink queue depth (frames) — the bufferbloat knob.
  std::size_t be_queue_capacity = 150;

  // Cross traffic (0 stations = none).
  int cross_stations = 2;
  int flows_per_station = 20;
  sim::Time congestion_start = sim::Seconds(60);
  sim::Time congestion_end = sim::Seconds(120);
  /// Congestion control run by the cross-traffic (and foreground) TCP
  /// senders — the CC axis of the CC×qdisc grid.
  transport::CcAlgorithm cross_cc = transport::CcAlgorithm::kReno;

  /// AP downlink queue discipline — the AQM axis of the grid. The
  /// hash_seed field is overwritten here: the experiment derives it from
  /// `seed` through a dedicated sim::Rng::Fork stream so FQ-CoDel
  /// bucketing is deterministic and fleet-shard-stable.
  wifi::QdiscConfig qdisc;

  // Always-on foreground TCP flow on its own station (Figure 1).
  bool foreground_tcp = false;

  // Token-bucket throttle on the wired downlink (Figure 9). 0 = none.
  std::int64_t throttle_bps = 0;
  sim::Time throttle_start = 0;
  sim::Time throttle_end = 0;

  // Probing.
  sim::Duration probe_interval = sim::Millis(500);
  bool dual_ping_pair = false;
  core::MeasurementMode measurement_mode =
      core::MeasurementMode::kArrivalTimes;

  // Ground-truth sampling of the AP Best-Effort downlink queue.
  bool sample_queue = false;
  sim::Duration queue_sample_interval = sim::Millis(10);

  // Fault plan (default: inert). When any fault is configured a
  // faults::FaultInjector is built from `seed` (dedicated rng stream) and
  // attached to the channel, the AP, the wired downlink, every call
  // station and every prober; `wmm.mode=off` additionally forces
  // `wmm_enabled=false` on the AP. Fault counters land in `metrics` as
  // `fault_*` series. Deterministic like everything else in the config.
  faults::FaultSpec faults;

  // Observability (all optional; absent = zero overhead on the hot paths).
  //
  // `metrics` receives only deterministic series (counters of simulated
  // events, sim-time histograms, gauges of sim-derived values), so a merged
  // registry is bit-identical across worker counts. `tracer` events and the
  // `profile_loop` wall-time histograms are wall-clock-tainted and must stay
  // out of registries that are compared across runs.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;  ///< bound to this experiment's loop.
  sim::Duration trace_sample_interval = sim::Millis(100);
  /// Extra labels stamped on every series (e.g. {{"env", "3"}}).
  obs::Labels metric_labels = {};
  /// Attach an obs::EventLoopMetricsProbe (per-event-type counts + wall-us
  /// histograms) to the loop. Requires `metrics`; nondeterministic.
  bool profile_loop = false;

  /// Sim-time timeline telemetry: a SeriesSampler over the experiment's
  /// probe surfaces (per-AC AP queue, qdisc sojourn, channel busy, TCP
  /// flight/cwnd/pacing, rate-control state, ping-pair Tq/Ta/Tc, GE fault
  /// state), an optional FlightRecorder on every drop/retransmit/discard
  /// path, and optional anomaly triggers that freeze + dump both as a
  /// postmortem. Everything sampled is sim-derived, so the serialized
  /// timeline is bit-identical across reruns and fleet worker counts.
  /// Disabled by default: no timer events, no recorder attach — the run's
  /// event schedule is exactly the pre-timeline one.
  struct TimelineOptions {
    bool enabled = false;
    sim::Duration interval = sim::Millis(10);
    std::size_t series_capacity = 2048;     ///< rows before decimation.
    bool flight_recorder = true;            ///< attach the event ring.
    std::size_t recorder_capacity = 512;    ///< events retained.
    // Anomaly triggers (each 0 = disabled; see obs::PostmortemMonitor).
    double anomaly_tq_p95_ms = 0.0;
    std::uint64_t anomaly_retransmit_storm = 0;
    double anomaly_divergence = 0.0;
    /// Where a triggered postmortem is written (empty = in-memory only,
    /// returned via ExperimentMetrics::postmortem).
    std::string postmortem_path;
    /// Stamped as `"call":N` on every timeline line when >= 0 — the
    /// population layer sets it so concatenated per-call timelines stay
    /// attributable.
    std::int64_t call_index = -1;
  };
  TimelineOptions timeline;

  // The calls sharing this environment (usually one; two for Table 2).
  std::vector<CallConfig> calls = {CallConfig{}};
};

/// Per-call outcome.
struct CallMetrics {
  std::vector<double> rate_series_kbps;  ///< received kbps per second.
  double mean_rate_kbps = 0.0;           ///< over the whole call.
  double mean_rate_congested_kbps = 0.0; ///< within the congestion window.
  std::vector<double> rtt_ms;            ///< sender-side RTT samples.
  double loss_pct = 0.0;
  /// Share of packets that missed their playout deadline (jitter buffer).
  double late_frame_pct = 0.0;
  std::vector<core::PingPairSample> probe_samples;
  core::PingPairStats probe_stats;
};

/// Whole-experiment outcome.
struct ExperimentMetrics {
  std::vector<CallMetrics> calls;
  std::vector<double> tcp_rate_series_kbps;  ///< foreground TCP, per second.
  std::vector<std::size_t> queue_samples;    ///< BE queue depth series.
  double channel_busy_fraction = 0.0;
  std::int64_t cross_traffic_bytes = 0;
  /// Discrete events the experiment's loop dispatched — the denominator for
  /// scheduler-throughput accounting in the bench harness. Deterministic in
  /// the seed like every other field.
  std::uint64_t events_executed = 0;
  /// Canonical timeline JSONL (one "series" line per probe); empty unless
  /// `timeline.enabled`. Deterministic in the seed.
  std::string timeline_jsonl;
  /// Postmortem dump + trigger reason; empty unless an anomaly fired.
  std::string postmortem;
  std::string postmortem_reason;
};

/// Builds the testbed, runs the experiment to completion and returns the
/// metrics. Deterministic in `config.seed`.
ExperimentMetrics RunCallExperiment(const ExperimentConfig& config);

}  // namespace kwikr::scenario
