#include "scenario/fault_scenario.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "stats/percentile.h"
#include "wifi/rate_table.h"

namespace kwikr::scenario {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view value, double* out) {
  const std::string buf(value);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && !buf.empty();
}

bool ParseInt64(std::string_view value, std::int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), *out);
  return ec == std::errc() && ptr == value.data() + value.size();
}

bool ParseBool(std::string_view value, bool* out) {
  if (value == "1" || value == "true" || value == "on") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "false" || value == "off") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseMillis(std::string_view value, sim::Duration* out) {
  std::int64_t ms = 0;
  if (!ParseInt64(value, &ms) || ms < 0) return false;
  *out = sim::Millis(ms);
  return true;
}

/// Percentile of one PingPairSample field, milliseconds.
double FieldPercentile(const std::vector<core::PingPairSample>& samples,
                       sim::Duration core::PingPairSample::*field, double p) {
  std::vector<double> ms;
  ms.reserve(samples.size());
  for (const auto& s : samples) ms.push_back(sim::ToMillis(s.*field));
  return stats::Percentile(ms, p);
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

/// Runs the Section-5.5 WMM detector on an AP impaired by the same fault
/// plan: ambient TCP downlink traffic builds the standing queue, the fault
/// injector applies the spec's channel/AP behaviour, then the detector
/// delivers its verdict.
core::WmmResult RunWmmDetection(const ExperimentConfig& config) {
  Testbed testbed(Testbed::Config{config.seed, wifi::PhyParams{}});
  Bss::Config bc;
  bc.ap.band = config.band;
  bc.ap.wmm_enabled =
      config.wmm_enabled &&
      config.faults.wmm.mode != faults::FaultSpec::WmmMode::kOff;
  bc.ap.queue_capacity[Index(wifi::AccessCategory::kBestEffort)] =
      config.be_queue_capacity;
  Bss& bss = testbed.AddBss(bc);

  faults::FaultInjector injector(testbed.loop(), config.faults,
                                 sim::Rng(config.seed).Fork(0xFA17));
  injector.AttachChannel(testbed.channel());
  injector.AttachAccessPoint(bss.ap());
  injector.AttachWan(bss.downlink());
  injector.Arm();

  wifi::Station& client =
      bss.AddStation(testbed.NextStationAddress(), config.client_rate_bps);
  wifi::Station& sink =
      bss.AddStation(testbed.NextStationAddress(), config.client_rate_bps);
  testbed.AddTcpBulkFlows(bss, sink, 6);
  testbed.StartCrossTraffic();

  StationProbeTransport transport(testbed.loop(), testbed.ids(), client,
                                  bss.ap().address());
  core::WmmDetector detector(testbed.loop(), transport,
                             core::WmmDetector::Config{});
  client.AddReceiver([&detector](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) detector.OnReply(p, at);
  });
  core::WmmResult result;
  testbed.loop().RunUntil(sim::Seconds(8));  // let the queue form.
  detector.Run([&result](const core::WmmResult& r) { result = r; });
  testbed.loop().RunUntil(sim::Seconds(14));
  return result;
}

}  // namespace

bool ParseFaultScenario(std::string_view text, FaultScenario* out,
                        std::string* error) {
  *out = FaultScenario{};
  std::string fault_lines;
  int line_no = 0;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    ++line_no;

    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      *error = "line " + std::to_string(line_no) + ": expected key=value";
      return false;
    }
    const std::string_view key = Trim(line.substr(0, eq));
    const std::string_view value = Trim(line.substr(eq + 1));

    // Fault keys pass through to the faults parser with the prefix removed
    // (accumulated so repeatable keys like fault.schedule survive).
    constexpr std::string_view kFaultPrefix = "fault.";
    if (key.substr(0, kFaultPrefix.size()) == kFaultPrefix) {
      fault_lines.append(key.substr(kFaultPrefix.size()));
      fault_lines.push_back('=');
      fault_lines.append(value);
      fault_lines.push_back('\n');
      continue;
    }

    ExperimentConfig& e = out->experiment;
    bool ok = true;
    std::int64_t i64 = 0;
    if (key == "name") {
      out->name = std::string(value);
    } else if (key == "seed") {
      ok = ParseInt64(value, &i64) && i64 >= 0;
      e.seed = static_cast<std::uint64_t>(i64);
    } else if (key == "duration_ms") {
      ok = ParseMillis(value, &e.duration);
    } else if (key == "band") {
      if (value == "2.4") {
        e.band = wifi::Band::k2_4GHz;
      } else if (value == "5") {
        e.band = wifi::Band::k5GHz;
      } else {
        ok = false;
      }
    } else if (key == "wmm") {
      ok = ParseBool(value, &e.wmm_enabled);
    } else if (key == "client_rate_bps") {
      ok = ParseInt64(value, &e.client_rate_bps) && e.client_rate_bps > 0;
    } else if (key == "be_queue_capacity") {
      ok = ParseInt64(value, &i64) && i64 > 0;
      e.be_queue_capacity = static_cast<std::size_t>(i64);
    } else if (key == "cross_stations") {
      ok = ParseInt64(value, &i64) && i64 >= 0;
      e.cross_stations = static_cast<int>(i64);
    } else if (key == "flows_per_station") {
      ok = ParseInt64(value, &i64) && i64 >= 0;
      e.flows_per_station = static_cast<int>(i64);
    } else if (key == "congestion_start_ms") {
      ok = ParseMillis(value, &e.congestion_start);
    } else if (key == "congestion_end_ms") {
      ok = ParseMillis(value, &e.congestion_end);
    } else if (key == "probe_interval_ms") {
      ok = ParseMillis(value, &e.probe_interval);
    } else if (key == "dual") {
      ok = ParseBool(value, &e.dual_ping_pair);
    } else if (key == "kwikr") {
      ok = ParseBool(value, &e.calls.at(0).kwikr);
    } else if (key == "wmm_detection") {
      ok = ParseBool(value, &out->wmm_detection);
    } else if (key == "cc") {
      ok = transport::ParseCcAlgorithm(value, &e.cross_cc);
      out->bottleneck_explicit = true;
    } else if (key == "qdisc") {
      ok = wifi::ParseQdiscKind(value, &e.qdisc.kind);
      out->bottleneck_explicit = true;
    } else if (key == "codel_target_ms") {
      ok = ParseMillis(value, &e.qdisc.target);
      out->bottleneck_explicit = true;
    } else if (key == "codel_interval_ms") {
      ok = ParseMillis(value, &e.qdisc.interval);
      out->bottleneck_explicit = true;
    } else if (key == "fq_flows") {
      ok = ParseInt64(value, &i64) && i64 > 0;
      e.qdisc.flows = static_cast<std::uint32_t>(i64);
      out->bottleneck_explicit = true;
    } else if (key == "timeline") {
      // Timeline keys deliberately leave bottleneck_explicit alone: the
      // summary bytes of a scenario must not change when telemetry is
      // bolted on (the event count does, which is why timeline scenarios
      // get their own golden cells).
      ok = ParseBool(value, &e.timeline.enabled);
    } else if (key == "timeline_interval_ms") {
      ok = ParseMillis(value, &e.timeline.interval) &&
           e.timeline.interval > 0;
    } else if (key == "anomaly_tq_p95_ms") {
      ok = ParseDouble(value, &e.timeline.anomaly_tq_p95_ms) &&
           e.timeline.anomaly_tq_p95_ms >= 0.0;
    } else if (key == "anomaly_retransmit_storm") {
      ok = ParseInt64(value, &i64) && i64 >= 0;
      e.timeline.anomaly_retransmit_storm = static_cast<std::uint64_t>(i64);
    } else if (key == "anomaly_divergence") {
      ok = ParseDouble(value, &e.timeline.anomaly_divergence) &&
           e.timeline.anomaly_divergence >= 0.0;
    } else {
      *error = "line " + std::to_string(line_no) + ": unknown key '" +
               std::string(key) + "'";
      return false;
    }
    if (!ok) {
      *error = "line " + std::to_string(line_no) + ": bad value for '" +
               std::string(key) + "'";
      return false;
    }
  }

  if (!fault_lines.empty()) {
    std::string fault_error;
    if (!faults::ParseFaultSpec(fault_lines, &out->experiment.faults,
                                &fault_error)) {
      *error = "fault spec: " + fault_error;
      return false;
    }
  }
  return true;
}

FaultScenarioSummary RunFaultScenario(const FaultScenario& scenario) {
  FaultScenarioArtifacts artifacts;
  return RunFaultScenario(scenario, &artifacts);
}

FaultScenarioSummary RunFaultScenario(const FaultScenario& scenario,
                                      FaultScenarioArtifacts* artifacts) {
  ExperimentConfig config = scenario.experiment;
  obs::MetricsRegistry& registry = artifacts->registry;
  config.metrics = &registry;  // the fault counters surface through here.
  const ExperimentMetrics metrics = RunCallExperiment(config);
  artifacts->timeline_jsonl = metrics.timeline_jsonl;
  artifacts->postmortem = metrics.postmortem;
  artifacts->postmortem_reason = metrics.postmortem_reason;

  FaultScenarioSummary s;
  s.name = scenario.name;
  const CallMetrics& call = metrics.calls.at(0);
  s.mean_rate_kbps = call.mean_rate_kbps;
  s.loss_pct = call.loss_pct;
  s.late_frame_pct = call.late_frame_pct;
  s.tq_p50_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::tq, 50.0);
  s.tq_p95_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::tq, 95.0);
  s.tq_p99_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::tq, 99.0);
  s.ta_p50_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::ta, 50.0);
  s.ta_p95_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::ta, 95.0);
  s.ta_p99_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::ta, 99.0);
  s.tc_p50_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::tc, 50.0);
  s.tc_p95_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::tc, 95.0);
  s.tc_p99_ms = FieldPercentile(call.probe_samples,
                                &core::PingPairSample::tc, 99.0);
  s.probe = call.probe_stats;

  faults::FaultCounters& fc = s.fault_counters;
  auto count = [&registry](const char* which) {
    return registry
        .GetCounter(std::string("fault_") + which + "_total")
        .value();
  };
  fc.ge_losses = count("ge_losses");
  fc.ge_bursts = count("ge_bursts");
  fc.reordered = count("reordered");
  fc.duplicated = count("duplicated");
  fc.dropped = count("dropped");
  fc.wan_losses = count("wan_losses");
  fc.wan_jitters = count("wan_jitters");
  fc.wmm_downgrades = count("wmm_downgrades");
  fc.churn_switches = count("churn_switches");
  fc.schedule_toggles = count("schedule_toggles");

  if (scenario.bottleneck_explicit) {
    s.bottleneck = true;
    s.cc = transport::Name(config.cross_cc);
    s.qdisc = wifi::Name(config.qdisc.kind);
    for (int ac = 0; ac < wifi::kNumAccessCategories; ++ac) {
      const obs::Labels labels = {
          {"ac", wifi::Name(static_cast<wifi::AccessCategory>(ac))}};
      s.qdisc_aqm_drops +=
          registry.GetCounter("qdisc_aqm_drops_total", labels).value();
      s.qdisc_overflow_drops +=
          registry.GetCounter("qdisc_overflow_drops_total", labels).value();
      s.ap_queue_drops +=
          registry.GetCounter("ap_queue_drops_total", labels).value();
    }
    s.tcp_retransmissions =
        registry.GetCounter("tcp_retransmissions_total").value();
    const stats::Histogram sojourn =
        registry
            .GetHistogram("qdisc_sojourn_ms", {{"ac", "BE"}},
                          {0.0, 1000.0, 256})
            .Snapshot();
    s.sojourn_be_p50_ms = sojourn.Percentile(50.0);
    s.sojourn_be_p95_ms = sojourn.Percentile(95.0);
    s.sojourn_be_p99_ms = sojourn.Percentile(99.0);
  }

  s.channel_busy_pct = metrics.channel_busy_fraction * 100.0;
  s.events_executed = metrics.events_executed;

  if (scenario.wmm_detection) {
    s.wmm_ran = true;
    s.wmm = RunWmmDetection(scenario.experiment);
  }
  return s;
}

std::string ToCanonicalJson(const FaultScenarioSummary& s) {
  std::string out;
  out.reserve(1024);
  out += "{\n";
  AppendF(&out, "  \"scenario\": \"%s\",\n", s.name.c_str());
  out += "  \"call\": {\n";
  AppendF(&out, "    \"mean_rate_kbps\": %.3f,\n", s.mean_rate_kbps);
  AppendF(&out, "    \"loss_pct\": %.3f,\n", s.loss_pct);
  AppendF(&out, "    \"late_frame_pct\": %.3f\n", s.late_frame_pct);
  out += "  },\n";
  out += "  \"probe\": {\n";
  AppendF(&out, "    \"rounds\": %llu,\n",
          static_cast<unsigned long long>(s.probe.rounds));
  AppendF(&out, "    \"valid\": %llu,\n",
          static_cast<unsigned long long>(s.probe.valid));
  AppendF(&out, "    \"discard_timeout\": %llu,\n",
          static_cast<unsigned long long>(s.probe.timeouts));
  AppendF(&out, "    \"discard_wrong_order\": %llu,\n",
          static_cast<unsigned long long>(s.probe.wrong_order));
  AppendF(&out, "    \"discard_dual_divergence\": %llu,\n",
          static_cast<unsigned long long>(s.probe.dual_divergence));
  AppendF(&out, "    \"discard_dual_gap\": %llu\n",
          static_cast<unsigned long long>(s.probe.dual_gap));
  out += "  },\n";
  AppendF(&out,
          "  \"tq_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
          s.tq_p50_ms, s.tq_p95_ms, s.tq_p99_ms);
  AppendF(&out,
          "  \"ta_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
          s.ta_p50_ms, s.ta_p95_ms, s.ta_p99_ms);
  AppendF(&out,
          "  \"tc_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
          s.tc_p50_ms, s.tc_p95_ms, s.tc_p99_ms);
  out += "  \"faults\": {\n";
  const std::pair<const char*, std::uint64_t> counters[] = {
      {"ge_losses", s.fault_counters.ge_losses},
      {"ge_bursts", s.fault_counters.ge_bursts},
      {"reordered", s.fault_counters.reordered},
      {"duplicated", s.fault_counters.duplicated},
      {"dropped", s.fault_counters.dropped},
      {"wan_losses", s.fault_counters.wan_losses},
      {"wan_jitters", s.fault_counters.wan_jitters},
      {"wmm_downgrades", s.fault_counters.wmm_downgrades},
      {"churn_switches", s.fault_counters.churn_switches},
      {"schedule_toggles", s.fault_counters.schedule_toggles},
  };
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    AppendF(&out, "    \"%s\": %llu%s\n", counters[i].first,
            static_cast<unsigned long long>(counters[i].second),
            i + 1 < std::size(counters) ? "," : "");
  }
  out += "  },\n";
  // Emitted only for scenarios that named a cc=/qdisc= key: every summary
  // byte of the pre-grid corpus is unchanged.
  if (s.bottleneck) {
    out += "  \"bottleneck\": {\n";
    AppendF(&out, "    \"cc\": \"%s\",\n", s.cc.c_str());
    AppendF(&out, "    \"qdisc\": \"%s\",\n", s.qdisc.c_str());
    AppendF(&out, "    \"aqm_drops\": %llu,\n",
            static_cast<unsigned long long>(s.qdisc_aqm_drops));
    AppendF(&out, "    \"overflow_drops\": %llu,\n",
            static_cast<unsigned long long>(s.qdisc_overflow_drops));
    AppendF(&out, "    \"queue_drops\": %llu,\n",
            static_cast<unsigned long long>(s.ap_queue_drops));
    AppendF(&out, "    \"tcp_retransmissions\": %llu,\n",
            static_cast<unsigned long long>(s.tcp_retransmissions));
    AppendF(&out,
            "    \"sojourn_be_ms\": "
            "{\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}\n",
            s.sojourn_be_p50_ms, s.sojourn_be_p95_ms, s.sojourn_be_p99_ms);
    out += "  },\n";
  }
  AppendF(&out, "  \"channel_busy_pct\": %.3f,\n", s.channel_busy_pct);
  AppendF(&out, "  \"events_executed\": %llu,\n",
          static_cast<unsigned long long>(s.events_executed));
  if (s.wmm_ran) {
    AppendF(&out,
            "  \"wmm\": {\"detected\": %s, \"prioritized_runs\": %d, "
            "\"completed_runs\": %d, \"total_runs\": %d}\n",
            s.wmm.wmm_enabled ? "true" : "false", s.wmm.prioritized_runs,
            s.wmm.completed_runs, s.wmm.total_runs);
  } else {
    out += "  \"wmm\": null\n";
  }
  out += "}\n";
  return out;
}

}  // namespace kwikr::scenario
