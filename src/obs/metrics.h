#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace kwikr::obs {

/// Label set identifying one series of an instrument, e.g.
/// {{"ac", "BE"}, {"arm", "kwikr"}}. Registries normalize labels by sorting
/// on key, so insertion order never matters.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic integer counter. Add is lock-free; merging two counters adds
/// their values, so shard-and-merge aggregation is exact and order-free.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument. The merge operation is max — the only combining
/// rule that is associative *and* commutative for a point-in-time value, so
/// merged snapshots stay worker-count-invariant. Use counters or histograms
/// for anything where max is not the right aggregate.
///
/// A never-written gauge is *unset* (internally a -inf sentinel): it reads
/// as 0.0, but merging treats it as the max identity, so negative values
/// survive shard-and-merge exactly (Max(-5) on a fresh gauge yields -5, not
/// a spurious default 0).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` when larger (the merge rule). On an unset
  /// gauge this adopts `v` unconditionally.
  void Max(double v);
  [[nodiscard]] double value() const {
    const double v = value_.load(std::memory_order_relaxed);
    return v == kUnset ? 0.0 : v;
  }
  /// False until the first Set/Max.
  [[nodiscard]] bool has_value() const {
    return value_.load(std::memory_order_relaxed) != kUnset;
  }

 private:
  static constexpr double kUnset = -std::numeric_limits<double>::infinity();
  std::atomic<double> value_{kUnset};
};

/// Histogram instrument: a mutex-guarded stats::Histogram sketch. Merging
/// adds bin counts, which is exact, so a merged cell equals the cell of the
/// concatenated samples for any sharding.
class HistogramCell {
 public:
  explicit HistogramCell(stats::Histogram::Config config)
      : histogram_(config) {}

  void Observe(double sample);
  void Merge(const stats::Histogram& other);
  [[nodiscard]] stats::Histogram Snapshot() const;

 private:
  mutable std::mutex mutex_;
  stats::Histogram histogram_;
};

/// Thread-safe registry of labeled instruments.
///
/// Get* returns a stable reference: hold it across a hot loop instead of
/// re-resolving the (name, labels) key per event. The intended fleet pattern
/// mirrors fleet::FleetMetrics — each worker records into its own registry
/// and merges once when its task finishes. Every merge rule (counter add,
/// histogram bin add, gauge max) is associative and commutative, so the
/// merged registry — and its serialized Prometheus text — is bit-identical
/// for any worker count and completion order, provided the per-task values
/// themselves are task-deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name, Labels labels = {});
  Gauge& GetGauge(std::string_view name, Labels labels = {});
  /// `config` applies when the cell is created; later calls with the same
  /// (name, labels) return the existing cell regardless of config.
  HistogramCell& GetHistogram(std::string_view name, Labels labels = {},
                              stats::Histogram::Config config = {});

  /// Merges every instrument of `other` into this registry (creating
  /// missing ones). Safe against concurrent Get/record on both sides.
  void Merge(const MetricsRegistry& other);

  /// One serialized instrument, in deterministic (name, labels) order.
  struct Row {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    /// False for a gauge series that exists but was never Set/Max'd — the
    /// unset sentinel must survive serialization, or a cross-process merge
    /// would turn it into a spurious 0.0 that swallows negative maxima.
    bool gauge_set = true;
    stats::Histogram histogram;  ///< only meaningful for kHistogram.
  };

  /// Deterministically ordered snapshot of every instrument.
  [[nodiscard]] std::vector<Row> Snapshot() const;

  /// Number of registered series (all kinds).
  [[nodiscard]] std::size_t size() const;

 private:
  using SeriesKey = std::pair<std::string, Labels>;

  static Labels Normalize(Labels labels);

  mutable std::mutex mutex_;
  // node-based maps: values never move, so returned references are stable.
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<HistogramCell>> histograms_;
};

}  // namespace kwikr::obs
