#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace kwikr::obs {

/// Lossless registry serialization for cross-process merge.
///
/// PrometheusText / MetricsJsonl are human/export formats: they round
/// doubles and flatten histogram sketches into quantile summaries, so a
/// registry cannot be reconstructed from them. The shard runner needs the
/// opposite — a worker process serializes its chunk-local registry into its
/// spill file and the parent rebuilds and merges it exactly, so the merged
/// export is byte-identical to what an in-process merge of the same
/// registries would have produced.
///
/// Format: canonical JSONL, one instrument per line in Snapshot order
/// (sorted by (name, labels)). Doubles use %.17g, which round-trips every
/// finite double exactly through strtod, and a gauge's unset sentinel is
/// preserved via "set":false. Histograms carry their full state (binning,
/// count, exact min/max, sparse non-zero bins), so merging a parsed
/// histogram is the same bin-add the in-process merge performs.
std::string SerializeRegistry(const MetricsRegistry& registry);

/// Parses one SerializeRegistry line and merges the instrument into `into`
/// under the registry merge rules (counter add, gauge max, histogram
/// bin-add). Returns false — with `*error` set, `into` untouched by the bad
/// line — on any malformed input; a spill line that fails here must be
/// treated as corruption, never skipped.
bool MergeSerializedRegistryLine(std::string_view line, MetricsRegistry* into,
                                 std::string* error);

/// MergeSerializedRegistryLine over every '\n'-separated line (empty lines
/// rejected — canonical output never contains them).
bool MergeSerializedRegistry(std::string_view jsonl, MetricsRegistry* into,
                             std::string* error);

}  // namespace kwikr::obs
