#include "obs/flight_recorder.h"

#include <cstdio>

#include "obs/exporters.h"

namespace kwikr::obs {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* Name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kFrameDrop:
      return "frame_drop";
    case FlightEventKind::kRetryDrop:
      return "retry_drop";
    case FlightEventKind::kUnroutableDrop:
      return "unroutable_drop";
    case FlightEventKind::kQdiscAqmDrop:
      return "qdisc_aqm_drop";
    case FlightEventKind::kQdiscOverflowDrop:
      return "qdisc_overflow_drop";
    case FlightEventKind::kTcpRetransmit:
      return "tcp_retransmit";
    case FlightEventKind::kTcpTimeout:
      return "tcp_timeout";
    case FlightEventKind::kProbeDiscard:
      return "probe_discard";
    case FlightEventKind::kFaultTransition:
      return "fault_transition";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(RoundUpPow2(capacity)), mask_(ring_.size() - 1) {}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  const std::uint64_t retained =
      head_ < ring_.size() ? head_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = head_ - retained; i < head_; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

std::string FlightRecorder::ToJsonl() const {
  std::string out;
  char buf[192];
  for (const FlightEvent& e : Snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"flight\",\"t_ms\":%.3f,\"kind\":\"%s\","
                  "\"tag\":%u,\"value\":%llu",
                  sim::ToMillis(e.at), Name(e.kind),
                  static_cast<unsigned>(e.tag),
                  static_cast<unsigned long long>(e.value));
    out += buf;
    if (e.detail != nullptr) {
      out += ",\"detail\":\"";
      out += JsonEscape(e.detail);
      out += '"';
    }
    out += "}\n";
  }
  return out;
}

}  // namespace kwikr::obs
