#include "obs/span.h"

namespace kwikr::obs {

void EventLoopMetricsProbe::OnExecuted(const char* type, sim::Time /*at*/,
                                       double wall_us) {
  auto it = by_type_.find(std::string_view(type));
  if (it == by_type_.end()) {
    Cells cells;
    cells.count = &registry_->GetCounter("sim_events_total", {{"type", type}});
    stats::Histogram::Config wall_config;
    wall_config.lo = 0.0;
    wall_config.hi = 1000.0;  // microseconds; handlers are short.
    wall_config.bins = 128;
    cells.wall = &registry_->GetHistogram("sim_event_wall_us",
                                          {{"type", type}}, wall_config);
    it = by_type_.emplace(std::string(type), cells).first;
  }
  it->second.count->Add();
  it->second.wall->Observe(wall_us);
  ++total_;
}

}  // namespace kwikr::obs
