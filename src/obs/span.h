#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::obs {

/// Numeric arguments attached to a trace event. Keys must be string
/// literals (or otherwise outlive the emitting call) — sinks copy what they
/// keep.
using SpanArgs = std::vector<std::pair<const char*, double>>;

/// Receiver of trace events. Implementations: ChromeTraceWriter
/// (obs/exporters.h) for chrome://tracing / Perfetto, or anything custom.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A completed span: `begin`/`duration` are simulated time, `wall_us` is
  /// the wall-clock execution time (0 when not measured).
  virtual void OnSpan(const char* name, const char* category, sim::Time begin,
                      sim::Duration duration, double wall_us,
                      const SpanArgs& args) = 0;

  /// A point event at simulated time `at`.
  virtual void OnInstant(const char* name, const char* category, sim::Time at,
                         const SpanArgs& args) = 0;

  /// A counter sample (a set of named values at one instant) — rendered as
  /// a stacked time series by the Chrome trace viewer.
  virtual void OnCounter(const char* name, const char* category, sim::Time at,
                         const SpanArgs& values) = 0;
};

/// Front-end for span/instant/counter emission, carrying the simulated
/// clock. Zero-cost when no sink is attached: every emit path is a single
/// branch on `enabled()` and performs no clock reads or allocations.
/// Callers building non-trivial SpanArgs should guard with `enabled()`
/// themselves to keep the argument construction off the disabled path.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const sim::EventLoop* loop) : loop_(loop) {}

  /// Binds the simulated clock used by ScopedSpan and emission helpers.
  void BindLoop(const sim::EventLoop* loop) { loop_ = loop; }
  /// Attaches a sink (nullptr detaches and disables all emission).
  void SetSink(TraceSink* sink) { sink_ = sink; }

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  /// The attached sink (null when disabled) — lets batch exporters like
  /// SeriesSampler::EmitCounters replay into whatever the tracer feeds.
  [[nodiscard]] TraceSink* sink() const { return sink_; }
  [[nodiscard]] sim::Time now() const {
    return loop_ != nullptr ? loop_->now() : 0;
  }

  void Span(const char* name, const char* category, sim::Time begin,
            sim::Duration duration, double wall_us = 0.0,
            const SpanArgs& args = {}) {
    if (sink_ != nullptr) {
      sink_->OnSpan(name, category, begin, duration, wall_us, args);
    }
  }
  void Instant(const char* name, const char* category,
               const SpanArgs& args = {}) {
    if (sink_ != nullptr) sink_->OnInstant(name, category, now(), args);
  }
  void InstantAt(const char* name, const char* category, sim::Time at,
                 const SpanArgs& args = {}) {
    if (sink_ != nullptr) sink_->OnInstant(name, category, at, args);
  }
  void Counter(const char* name, const char* category,
               const SpanArgs& values) {
    if (sink_ != nullptr) sink_->OnCounter(name, category, now(), values);
  }

 private:
  const sim::EventLoop* loop_ = nullptr;
  TraceSink* sink_ = nullptr;
};

/// RAII span: records sim-time and wall-clock at construction and emits a
/// completed span on destruction. When the tracer is disabled at
/// construction, the object is inert — no clock reads, no allocations.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, const char* category)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        category_(category) {
    if (tracer_ != nullptr) {
      begin_ = tracer_->now();
      wall_begin_ = std::chrono::steady_clock::now();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    const double wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - wall_begin_)
            .count();
    tracer_->Span(name_, category_, begin_, tracer_->now() - begin_, wall_us,
                  args_);
  }

  /// No-op when the span is inert.
  void AddArg(const char* key, double value) {
    if (tracer_ != nullptr) args_.emplace_back(key, value);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  sim::Time begin_ = 0;
  std::chrono::steady_clock::time_point wall_begin_;
  SpanArgs args_;
};

/// sim::EventLoopProbe that feeds a MetricsRegistry: per-event-type
/// execution counters (`sim_events_total{type=...}`) and wall-time
/// histograms (`sim_event_wall_us{type=...}`). Attach with
/// `loop.SetProbe(&probe)`; with no probe attached the loop's hot path is a
/// single null check. Wall times are inherently nondeterministic — keep
/// this probe out of registries that must be bit-identical across runs.
///
/// Not thread-safe by itself (an EventLoop is single-threaded); use one
/// probe per loop.
class EventLoopMetricsProbe : public sim::EventLoopProbe {
 public:
  explicit EventLoopMetricsProbe(MetricsRegistry& registry)
      : registry_(&registry) {}

  void OnExecuted(const char* type, sim::Time at, double wall_us) override;

  /// Total events observed (== loop.executed() delta while attached).
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  struct Cells {
    Counter* count = nullptr;
    HistogramCell* wall = nullptr;
  };

  MetricsRegistry* registry_;
  std::map<std::string, Cells, std::less<>> by_type_;
  std::uint64_t total_ = 0;
};

}  // namespace kwikr::obs
