#include "obs/metrics.h"

#include <algorithm>

namespace kwikr::obs {

void Gauge::Max(double v) {
  double current = value_.load(std::memory_order_relaxed);
  while (v > current && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void HistogramCell::Observe(double sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Add(sample);
}

void HistogramCell::Merge(const stats::Histogram& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Merge(other);
}

stats::Histogram HistogramCell::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_;
}

Labels MetricsRegistry::Normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, Labels labels) {
  SeriesKey key{std::string(name), Normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, Labels labels) {
  SeriesKey key{std::string(name), Normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramCell& MetricsRegistry::GetHistogram(std::string_view name,
                                             Labels labels,
                                             stats::Histogram::Config config) {
  SeriesKey key{std::string(name), Normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<HistogramCell>(config);
  return *slot;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  // Snapshot the source outside our own lock (the two registries have
  // independent mutexes; copying under the source lock, then writing under
  // ours, avoids holding both at once).
  struct GaugeCopy {
    SeriesKey key;
    bool set = false;
    double value = 0.0;
  };
  std::vector<std::pair<SeriesKey, std::uint64_t>> counters;
  std::vector<GaugeCopy> gauges;
  std::vector<std::pair<SeriesKey, stats::Histogram>> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [key, counter] : other.counters_) {
      counters.emplace_back(key, counter->value());
    }
    for (const auto& [key, gauge] : other.gauges_) {
      gauges.push_back(GaugeCopy{key, gauge->has_value(), gauge->value()});
    }
    for (const auto& [key, cell] : other.histograms_) {
      histograms.emplace_back(key, cell->Snapshot());
    }
  }
  for (auto& [key, value] : counters) {
    GetCounter(key.first, key.second).Add(value);
  }
  for (auto& copy : gauges) {
    // Create the cell even when the source is unset (so series presence is
    // worker-count-invariant), but only an actually-set value participates
    // in the max — otherwise a default 0 would swallow negative maxima.
    Gauge& cell = GetGauge(copy.key.first, copy.key.second);
    if (copy.set) cell.Max(copy.value);
  }
  for (auto& [key, histogram] : histograms) {
    GetHistogram(key.first, key.second, histogram.config())
        .Merge(histogram);
  }
}

std::vector<MetricsRegistry::Row> MetricsRegistry::Snapshot() const {
  std::vector<Row> rows;
  std::lock_guard<std::mutex> lock(mutex_);
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, counter] : counters_) {
    Row row;
    row.name = key.first;
    row.labels = key.second;
    row.kind = Row::Kind::kCounter;
    row.counter_value = counter->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [key, gauge] : gauges_) {
    Row row;
    row.name = key.first;
    row.labels = key.second;
    row.kind = Row::Kind::kGauge;
    row.gauge_value = gauge->value();
    row.gauge_set = gauge->has_value();
    rows.push_back(std::move(row));
  }
  for (const auto& [key, cell] : histograms_) {
    Row row;
    row.name = key.first;
    row.labels = key.second;
    row.kind = Row::Kind::kHistogram;
    row.histogram = cell->Snapshot();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return rows;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace kwikr::obs
