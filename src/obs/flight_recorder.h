#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace kwikr::obs {

/// What happened, for the bounded "recent history" ring a postmortem dumps.
/// Keep this enum stable and append-only — kind names are serialized into
/// postmortem files the fleet tooling diffs.
enum class FlightEventKind : std::uint8_t {
  kFrameDrop,         ///< AP downlink tail drop (contender ring full).
  kRetryDrop,         ///< MAC gave up after the retry limit.
  kUnroutableDrop,    ///< wired-side packet for a station this AP lacks.
  kQdiscAqmDrop,      ///< CoDel control law dropped from a standing queue.
  kQdiscOverflowDrop, ///< queue-discipline buffer full.
  kTcpRetransmit,     ///< fast or partial-ACK retransmission.
  kTcpTimeout,        ///< RTO fired.
  kProbeDiscard,      ///< ping-pair round discarded (Section 5.6 filters).
  kFaultTransition,   ///< injector event (GE burst, schedule toggle, ...).
};

/// Stable serialization name of a kind ("frame_drop", "tcp_retransmit", ...).
const char* Name(FlightEventKind kind);

/// One recorded event. POD on purpose: recording is a struct store into a
/// preallocated ring cell, never an allocation. `detail` must point at
/// static-storage text (the hook sites pass string literals or interned
/// fault names) or be null.
struct FlightEvent {
  sim::Time at = 0;
  FlightEventKind kind = FlightEventKind::kFrameDrop;
  std::uint8_t tag = 0;       ///< kind-specific small id (e.g. AC index).
  std::uint64_t value = 0;    ///< kind-specific payload (flow id, count, ...).
  const char* detail = nullptr;
};

/// Per-worker bounded ring of recent structured events — the "flight
/// recorder" an anomaly trigger freezes and dumps. One recorder serves one
/// event loop (single writer, no locks); the fleet pattern is one recorder
/// per worker task, exactly like worker-local metrics registries.
///
/// Cost model: components hold a `FlightRecorder*` that is null by default,
/// so a detached hook site is a single null check — 0 allocations, no time
/// read, nothing. An attached Record() is a struct store into the
/// preallocated ring (0 allocations per event; the obs test proves it with
/// the operator-new counter, and micro_channel's alloc gate keeps the frame
/// path honest).
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(std::size_t capacity = 512);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(sim::Time at, FlightEventKind kind, std::uint8_t tag = 0,
              std::uint64_t value = 0, const char* detail = nullptr) {
    if (frozen_) return;
    FlightEvent& cell = ring_[head_ & mask_];
    cell.at = at;
    cell.kind = kind;
    cell.tag = tag;
    cell.value = value;
    cell.detail = detail;
    ++head_;
    if (listener_) listener_(cell);
  }

  /// Stops accepting events (one-way). A postmortem freezes the recorder
  /// first so the dump captures the window *around* the trigger, not the
  /// churn that follows it.
  void Freeze() { frozen_ = true; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Total events offered while unfrozen (>= capacity means the ring
  /// wrapped and older events were overwritten).
  [[nodiscard]] std::uint64_t recorded() const { return head_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// The retained window, oldest first.
  [[nodiscard]] std::vector<FlightEvent> Snapshot() const;

  /// Canonical JSONL, one `{"type":"flight",...}` object per retained
  /// event, oldest first. Deterministic: every field is sim-derived.
  [[nodiscard]] std::string ToJsonl() const;

  /// Observer invoked synchronously on every recorded event (after the ring
  /// store). Used by PostmortemMonitor's storm detector; must not allocate
  /// per call if the attached path is to stay cheap. Set once, before
  /// recording starts.
  void SetListener(std::function<void(const FlightEvent&)> listener) {
    listener_ = std::move(listener);
  }

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
  bool frozen_ = false;
  std::function<void(const FlightEvent&)> listener_;
};

}  // namespace kwikr::obs
