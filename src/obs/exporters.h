#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace kwikr::obs {

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters (\uXXXX for the unprintables).
std::string JsonEscape(std::string_view text);

/// Serializes a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters and gauges map directly; histogram cells are
/// emitted as summaries (quantile series plus `_sum`/`_count`, the sum
/// approximated from bin midpoints). Output is deterministically ordered,
/// so two registries with equal contents serialize byte-identically.
std::string PrometheusText(const MetricsRegistry& registry);

/// Writes PrometheusText to `path`; returns false (and reports the reason
/// on stderr) when the file can't be opened.
bool WritePrometheus(const MetricsRegistry& registry, const std::string& path);

/// Serializes a registry snapshot as JSON Lines — one
/// {"metric":...,"labels":{...},...} object per series — unifying metrics
/// dumps with the trace::Recorder JSONL convention.
std::string MetricsJsonl(const MetricsRegistry& registry);
bool WriteMetricsJsonl(const MetricsRegistry& registry,
                       const std::string& path);

/// TraceSink producing Chrome trace_event JSON, loadable in
/// chrome://tracing or Perfetto. Simulated time maps to the trace `ts`
/// microsecond axis; wall-clock span durations are preserved under
/// `args.wall_us`.
class ChromeTraceWriter : public TraceSink {
 public:
  void OnSpan(const char* name, const char* category, sim::Time begin,
              sim::Duration duration, double wall_us,
              const SpanArgs& args) override;
  void OnInstant(const char* name, const char* category, sim::Time at,
                 const SpanArgs& args) override;
  void OnCounter(const char* name, const char* category, sim::Time at,
                 const SpanArgs& values) override;

  [[nodiscard]] std::size_t events() const { return events_.size(); }

  /// The complete trace as one JSON object {"traceEvents":[...]}.
  [[nodiscard]] std::string ToJson() const;

  /// Writes ToJson to `path`; returns false (stderr-reported) on failure.
  bool WriteJson(const std::string& path) const;

 private:
  struct TraceEvent {
    char phase = 'X';  ///< 'X' complete, 'i' instant, 'C' counter.
    std::string name;
    std::string category;
    double ts_us = 0.0;
    double dur_us = 0.0;   ///< complete events only.
    double wall_us = -1.0; ///< < 0 = not measured.
    std::vector<std::pair<std::string, double>> args;
  };

  void Append(TraceEvent event);

  std::vector<TraceEvent> events_;
};

}  // namespace kwikr::obs
