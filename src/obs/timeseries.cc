#include "obs/timeseries.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <utility>

namespace kwikr::obs {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

/// p-th percentile by nearest-rank over a small scratch copy — the monitor
/// windows are tens of samples, so a sort per sample is in the noise.
double WindowPercentile(const std::deque<double>& window, double p) {
  std::vector<double> scratch(window.begin(), window.end());
  std::sort(scratch.begin(), scratch.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(scratch.size() - 1) + 0.5);
  return scratch[std::min(rank, scratch.size() - 1)];
}

}  // namespace

SeriesSampler::SeriesSampler(sim::EventLoop& loop, Config config)
    : loop_(loop),
      config_{config.interval, RoundUpPow2(config.capacity)},
      timer_(loop, config.interval, [this] { Tick(); }) {}

void SeriesSampler::AddProbe(std::string name, std::function<double()> probe) {
  Probe p;
  p.name = std::move(name);
  p.fn = std::move(probe);
  p.values.reserve(config_.capacity);
  probes_.push_back(std::move(p));
}

void SeriesSampler::Start() {
  if (started_) return;
  started_ = true;
  // First row at t=0 so sample i of a series sits at exactly i * stride.
  timer_.Start(/*initial_delay=*/0);
}

void SeriesSampler::Stop() {
  started_ = false;
  timer_.Stop();
}

void SeriesSampler::Tick() {
  const std::uint64_t tick = tick_++;
  if ((tick & (factor_ - 1)) != 0) return;  // decimated-away tick.
  for (Probe& probe : probes_) probe.values.push_back(probe.fn());
  ++rows_;
  if (rows_ == config_.capacity) Decimate();
  if (row_hook_) row_hook_();
}

void SeriesSampler::Decimate() {
  // Keep even indices: sample j was taken at tick j*factor, so the kept set
  // lands on multiples of the doubled factor and the next recorded tick
  // (capacity*factor, a power-of-two multiple) continues the even spacing.
  for (Probe& probe : probes_) {
    for (std::size_t j = 0; 2 * j < probe.values.size(); ++j) {
      probe.values[j] = probe.values[2 * j];
    }
    probe.values.resize((probe.values.size() + 1) / 2);
  }
  rows_ = (rows_ + 1) / 2;
  factor_ <<= 1;
  ++decimations_;
}

std::vector<SeriesSampler::Series> SeriesSampler::Snapshot() const {
  std::vector<Series> out;
  out.reserve(probes_.size());
  for (const Probe& probe : probes_) {
    out.push_back(Series{probe.name, probe.values});
  }
  return out;
}

std::string SeriesSampler::ToJsonl(std::int64_t call_index) const {
  std::string out;
  const double interval_ms = sim::ToMillis(config_.interval);
  const double stride_ms = sim::ToMillis(stride());
  for (const Probe& probe : probes_) {
    out += "{\"type\":\"series\"";
    if (call_index >= 0) {
      AppendF(&out, ",\"call\":%lld", static_cast<long long>(call_index));
    }
    AppendF(&out,
            ",\"name\":\"%s\",\"interval_ms\":%.3f,\"stride_ms\":%.3f,"
            "\"n\":%zu,\"decimations\":%d,\"values\":[",
            probe.name.c_str(), interval_ms, stride_ms, probe.values.size(),
            decimations_);
    for (std::size_t i = 0; i < probe.values.size(); ++i) {
      AppendF(&out, i == 0 ? "%.3f" : ",%.3f", probe.values[i]);
    }
    out += "]}\n";
  }
  return out;
}

void SeriesSampler::EmitCounters(TraceSink& sink,
                                 const char* category) const {
  const sim::Duration step = stride();
  for (const Probe& probe : probes_) {
    for (std::size_t i = 0; i < probe.values.size(); ++i) {
      sink.OnCounter(probe.name.c_str(), category,
                     static_cast<sim::Time>(i) * step,
                     {{"value", probe.values[i]}});
    }
  }
}

PostmortemMonitor::PostmortemMonitor(sim::EventLoop& loop,
                                     SeriesSampler& sampler,
                                     FlightRecorder* recorder, Config config,
                                     std::string dump_path)
    : loop_(loop),
      sampler_(sampler),
      recorder_(recorder),
      config_(config),
      dump_path_(std::move(dump_path)) {
  if (recorder_ != nullptr && config_.retransmit_storm > 0) {
    recorder_->SetListener(
        [this](const FlightEvent& event) { OnFlightEvent(event); });
  }
}

void PostmortemMonitor::OnTqSample(double tq_ms) {
  if (triggered_ || config_.tq_p95_ms <= 0.0) return;
  tq_window_.push_back(tq_ms);
  while (tq_window_.size() > config_.tq_window) tq_window_.pop_front();
  if (tq_window_.size() < config_.tq_min_samples) return;
  const double p95 = WindowPercentile(tq_window_, 95.0);
  if (p95 > config_.tq_p95_ms) Trigger("tq_p95", p95, config_.tq_p95_ms);
}

void PostmortemMonitor::OnRateSample(double estimate_kbps,
                                     double target_kbps) {
  if (triggered_ || config_.divergence_factor <= 0.0) return;
  const double lo = std::min(estimate_kbps, target_kbps);
  const double hi = std::max(estimate_kbps, target_kbps);
  if (hi < config_.divergence_floor_kbps || lo <= 0.0) return;
  const double ratio = hi / lo;
  if (ratio > config_.divergence_factor) {
    Trigger("estimator_divergence", ratio, config_.divergence_factor);
  }
}

void PostmortemMonitor::OnFlightEvent(const FlightEvent& event) {
  if (triggered_ || event.kind != FlightEventKind::kTcpRetransmit) return;
  retransmits_.push_back(event.at);
  const sim::Time horizon = event.at - config_.storm_window;
  while (!retransmits_.empty() && retransmits_.front() < horizon) {
    retransmits_.pop_front();
  }
  if (retransmits_.size() >= config_.retransmit_storm) {
    Trigger("retransmit_storm", static_cast<double>(retransmits_.size()),
            static_cast<double>(config_.retransmit_storm));
  }
}

void PostmortemMonitor::Trigger(const char* reason, double value,
                                double threshold) {
  triggered_ = true;
  reason_ = reason;
  if (recorder_ != nullptr) recorder_->Freeze();
  AppendF(&dump_,
          "{\"type\":\"postmortem\",\"reason\":\"%s\",\"t_ms\":%.3f,"
          "\"value\":%.3f,\"threshold\":%.3f}\n",
          reason, sim::ToMillis(loop_.now()), value, threshold);
  if (recorder_ != nullptr) dump_ += recorder_->ToJsonl();
  dump_ += sampler_.ToJsonl();
  if (!dump_path_.empty()) {
    std::ofstream out(dump_path_, std::ios::binary | std::ios::trunc);
    if (out) {
      out << dump_;
    } else {
      std::fprintf(stderr, "postmortem: cannot write %s\n",
                   dump_path_.c_str());
    }
  }
}

}  // namespace kwikr::obs
