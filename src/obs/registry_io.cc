#include "obs/registry_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/exporters.h"

namespace kwikr::obs {
namespace {

/// %.17g round-trips every finite double exactly (shortest form does not —
/// %.10g in the exporters is for humans, this codec is for machines).
std::string LosslessDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendLabels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += JsonEscape(key);
    out += "\":\"";
    out += JsonEscape(value);
    out.push_back('"');
  }
  out.push_back('}');
}

/// Minimal strict scanner over one canonical line. The writer above is the
/// only producer, so grammar is fixed — but every primitive still validates
/// so corruption surfaces as a parse error, never as silent garbage.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool Literal(std::string_view expected) {
    if (text_.substr(pos_, expected.size()) != expected) return false;
    pos_ += expected.size();
    return true;
  }

  bool String(std::string* out) {
    out->clear();
    if (!Literal("\"")) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      c = text_[pos_++];
      switch (c) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // JsonEscape only emits \u00XX (control bytes); reject the rest
          // rather than mis-decode multi-byte code points.
          if (value > 0xFF) return false;
          out->push_back(static_cast<char>(value));
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool UInt64(std::uint64_t* out) {
    const std::size_t start = pos_;
    std::uint64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = value;
    return true;
  }

  bool Int64(std::int64_t* out) {
    const bool negative = Literal("-");
    std::uint64_t magnitude = 0;
    if (!UInt64(&magnitude)) return false;
    *out = negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
    return true;
  }

  bool Double(double* out) {
    // strtod needs a terminated buffer; numbers are short.
    char buffer[64];
    std::size_t n = 0;
    while (pos_ + n < text_.size() && n + 1 < sizeof(buffer)) {
      const char c = text_[pos_ + n];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                           c == '.' || c == 'e' || c == 'E' || c == 'i' ||
                           c == 'n' || c == 'f' || c == 'a';
      if (!numeric) break;
      buffer[n++] = c;
    }
    buffer[n] = '\0';
    char* end = nullptr;
    *out = std::strtod(buffer, &end);
    if (end == buffer) return false;
    pos_ += static_cast<std::size_t>(end - buffer);
    return true;
  }

  bool Bool(bool* out) {
    if (Literal("true")) {
      *out = true;
      return true;
    }
    if (Literal("false")) {
      *out = false;
      return true;
    }
    return false;
  }

  bool LabelsObject(Labels* out) {
    out->clear();
    if (!Literal("{")) return false;
    if (Literal("}")) return true;
    for (;;) {
      std::string key;
      std::string value;
      if (!String(&key) || !Literal(":") || !String(&value)) return false;
      out->emplace_back(std::move(key), std::move(value));
      if (Literal("}")) return true;
      if (!Literal(",")) return false;
    }
  }

  [[nodiscard]] bool AtEnd() const { return pos_ == text_.size(); }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool Fail(std::string* error, std::string_view what) {
  if (error != nullptr) *error = std::string(what);
  return false;
}

}  // namespace

std::string SerializeRegistry(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricsRegistry::Row& row : registry.Snapshot()) {
    switch (row.kind) {
      case MetricsRegistry::Row::Kind::kCounter: {
        out += "{\"kind\":\"counter\",\"name\":\"";
        out += JsonEscape(row.name);
        out += "\",";
        AppendLabels(out, row.labels);
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64, row.counter_value);
        out += ",\"value\":";
        out += buffer;
        out += "}\n";
        break;
      }
      case MetricsRegistry::Row::Kind::kGauge: {
        out += "{\"kind\":\"gauge\",\"name\":\"";
        out += JsonEscape(row.name);
        out += "\",";
        AppendLabels(out, row.labels);
        out += ",\"set\":";
        out += row.gauge_set ? "true" : "false";
        out += ",\"value\":";
        out += LosslessDouble(row.gauge_value);
        out += "}\n";
        break;
      }
      case MetricsRegistry::Row::Kind::kHistogram: {
        const stats::Histogram& histogram = row.histogram;
        const auto& config = histogram.config();
        out += "{\"kind\":\"histogram\",\"name\":\"";
        out += JsonEscape(row.name);
        out += "\",";
        AppendLabels(out, row.labels);
        out += ",\"lo\":";
        out += LosslessDouble(config.lo);
        out += ",\"hi\":";
        out += LosslessDouble(config.hi);
        char buffer[96];
        std::snprintf(buffer, sizeof(buffer),
                      ",\"bins\":%zu,\"count\":%" PRId64, config.bins,
                      histogram.count());
        out += buffer;
        out += ",\"min\":";
        out += LosslessDouble(histogram.min());
        out += ",\"max\":";
        out += LosslessDouble(histogram.max());
        out += ",\"counts\":[";
        bool first = true;
        const auto& counts = histogram.counts();
        for (std::size_t bin = 0; bin < counts.size(); ++bin) {
          if (counts[bin] == 0) continue;
          if (!first) out.push_back(',');
          first = false;
          std::snprintf(buffer, sizeof(buffer), "[%zu,%" PRId64 "]", bin,
                        counts[bin]);
          out += buffer;
        }
        out += "]}\n";
        break;
      }
    }
  }
  return out;
}

bool MergeSerializedRegistryLine(std::string_view line, MetricsRegistry* into,
                                 std::string* error) {
  Scanner scan(line);
  std::string kind;
  std::string name;
  Labels labels;
  if (!scan.Literal("{\"kind\":") || !scan.String(&kind) ||
      !scan.Literal(",\"name\":") || !scan.String(&name) ||
      !scan.Literal(",\"labels\":")) {
    return Fail(error, "registry line: malformed header");
  }
  if (!scan.LabelsObject(&labels)) {
    return Fail(error, "registry line: malformed labels");
  }

  if (kind == "counter") {
    std::uint64_t value = 0;
    if (!scan.Literal(",\"value\":") || !scan.UInt64(&value) ||
        !scan.Literal("}") || !scan.AtEnd()) {
      return Fail(error, "registry line: malformed counter");
    }
    into->GetCounter(name, std::move(labels)).Add(value);
    return true;
  }
  if (kind == "gauge") {
    bool set = false;
    double value = 0.0;
    if (!scan.Literal(",\"set\":") || !scan.Bool(&set) ||
        !scan.Literal(",\"value\":") || !scan.Double(&value) ||
        !scan.Literal("}") || !scan.AtEnd()) {
      return Fail(error, "registry line: malformed gauge");
    }
    // Create the series even when unset (presence must survive the merge),
    // but only a set value participates in the max — the same rule as
    // MetricsRegistry::Merge.
    Gauge& gauge = into->GetGauge(name, std::move(labels));
    if (set) gauge.Max(value);
    return true;
  }
  if (kind == "histogram") {
    stats::Histogram::Config config;
    std::uint64_t bins = 0;
    std::int64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    if (!scan.Literal(",\"lo\":") || !scan.Double(&config.lo) ||
        !scan.Literal(",\"hi\":") || !scan.Double(&config.hi) ||
        !scan.Literal(",\"bins\":") || !scan.UInt64(&bins) ||
        !scan.Literal(",\"count\":") || !scan.Int64(&count) ||
        !scan.Literal(",\"min\":") || !scan.Double(&min) ||
        !scan.Literal(",\"max\":") || !scan.Double(&max) ||
        !scan.Literal(",\"counts\":[")) {
      return Fail(error, "registry line: malformed histogram");
    }
    if (bins == 0 || !(config.lo < config.hi)) {
      return Fail(error, "registry line: invalid histogram binning");
    }
    config.bins = static_cast<std::size_t>(bins);
    std::vector<std::int64_t> counts(config.bins, 0);
    std::int64_t total = 0;
    if (!scan.Literal("]")) {
      for (;;) {
        std::uint64_t bin = 0;
        std::int64_t bin_count = 0;
        if (!scan.Literal("[") || !scan.UInt64(&bin) || !scan.Literal(",") ||
            !scan.Int64(&bin_count) || !scan.Literal("]") || bin >= bins ||
            bin_count < 0) {
          return Fail(error, "registry line: malformed histogram bin");
        }
        counts[bin] = bin_count;
        total += bin_count;
        if (scan.Literal("]")) break;
        if (!scan.Literal(",")) {
          return Fail(error, "registry line: malformed histogram bins");
        }
      }
    }
    if (!scan.Literal("}") || !scan.AtEnd()) {
      return Fail(error, "registry line: trailing histogram bytes");
    }
    if (total != count) {
      return Fail(error, "registry line: histogram bin sum != count");
    }
    into->GetHistogram(name, std::move(labels), config)
        .Merge(stats::Histogram::FromParts(config, std::move(counts), count,
                                           min, max));
    return true;
  }
  return Fail(error, "registry line: unknown kind '" + kind + "'");
}

bool MergeSerializedRegistry(std::string_view jsonl, MetricsRegistry* into,
                             std::string* error) {
  std::size_t begin = 0;
  while (begin < jsonl.size()) {
    std::size_t end = jsonl.find('\n', begin);
    if (end == std::string_view::npos) {
      return Fail(error, "registry jsonl: missing trailing newline");
    }
    if (!MergeSerializedRegistryLine(jsonl.substr(begin, end - begin), into,
                                     error)) {
      return false;
    }
    begin = end + 1;
  }
  return true;
}

}  // namespace kwikr::obs
