#include "obs/exporters.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace kwikr::obs {
namespace {

/// Formats a double the way both exporters need it: shortest round-trip-ish
/// representation, deterministic for identical inputs.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string FormatCount(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Prometheus label values escape backslash, double quote and newline.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Renders {a="x",b="y"} with an optional extra label appended; empty
/// string when there are no labels at all.
std::string LabelBlock(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += SanitizeMetricName(key);
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += "\"";
  }
  out.push_back('}');
  return out;
}

/// Approximate sample sum of a histogram sketch from bin midpoints.
double ApproximateSum(const stats::Histogram& histogram) {
  const auto& config = histogram.config();
  const auto& counts = histogram.counts();
  if (counts.empty()) return 0.0;
  const double width =
      (config.hi - config.lo) / static_cast<double>(counts.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double midpoint = config.lo + (static_cast<double>(i) + 0.5) * width;
    sum += midpoint * static_cast<double>(counts[i]);
  }
  return sum;
}

bool WriteFile(const std::string& text, const std::string& path,
               const char* what) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for %s export\n", path.c_str(),
                 what);
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  const auto rows = registry.Snapshot();
  std::string out;
  std::string last_name;
  for (const auto& row : rows) {
    const std::string name = SanitizeMetricName(row.name);
    if (name != last_name) {
      out += "# TYPE ";
      out += name;
      switch (row.kind) {
        case MetricsRegistry::Row::Kind::kCounter: out += " counter"; break;
        case MetricsRegistry::Row::Kind::kGauge: out += " gauge"; break;
        case MetricsRegistry::Row::Kind::kHistogram: out += " summary"; break;
      }
      out.push_back('\n');
      last_name = name;
    }
    switch (row.kind) {
      case MetricsRegistry::Row::Kind::kCounter:
        out += name + LabelBlock(row.labels) + " " +
               FormatCount(row.counter_value) + "\n";
        break;
      case MetricsRegistry::Row::Kind::kGauge:
        out += name + LabelBlock(row.labels) + " " +
               FormatDouble(row.gauge_value) + "\n";
        break;
      case MetricsRegistry::Row::Kind::kHistogram: {
        for (const double q : {0.5, 0.9, 0.95, 0.99}) {
          out += name + LabelBlock(row.labels, "quantile", FormatDouble(q)) +
                 " " + FormatDouble(row.histogram.Percentile(q * 100.0)) +
                 "\n";
        }
        out += name + "_sum" + LabelBlock(row.labels) + " " +
               FormatDouble(ApproximateSum(row.histogram)) + "\n";
        out += name + "_count" + LabelBlock(row.labels) + " " +
               FormatCount(static_cast<std::uint64_t>(row.histogram.count())) +
               "\n";
        break;
      }
    }
  }
  return out;
}

bool WritePrometheus(const MetricsRegistry& registry,
                     const std::string& path) {
  return WriteFile(PrometheusText(registry), path, "prometheus");
}

std::string MetricsJsonl(const MetricsRegistry& registry) {
  const auto rows = registry.Snapshot();
  std::string out;
  for (const auto& row : rows) {
    out += "{\"metric\":\"" + JsonEscape(row.name) + "\",\"labels\":{";
    bool first = true;
    for (const auto& [key, value] : row.labels) {
      if (!first) out.push_back(',');
      first = false;
      out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}";
    switch (row.kind) {
      case MetricsRegistry::Row::Kind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" +
               FormatCount(row.counter_value);
        break;
      case MetricsRegistry::Row::Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" +
               FormatDouble(row.gauge_value);
        break;
      case MetricsRegistry::Row::Kind::kHistogram:
        out += ",\"kind\":\"histogram\",\"count\":" +
               FormatCount(static_cast<std::uint64_t>(row.histogram.count()));
        out += ",\"min\":" + FormatDouble(row.histogram.min());
        out += ",\"max\":" + FormatDouble(row.histogram.max());
        for (const double p : {50.0, 90.0, 95.0, 99.0}) {
          out += ",\"p" + FormatCount(static_cast<std::uint64_t>(p)) +
                 "\":" + FormatDouble(row.histogram.Percentile(p));
        }
        break;
    }
    out += "}\n";
  }
  return out;
}

bool WriteMetricsJsonl(const MetricsRegistry& registry,
                       const std::string& path) {
  return WriteFile(MetricsJsonl(registry), path, "jsonl");
}

void ChromeTraceWriter::Append(TraceEvent event) {
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::OnSpan(const char* name, const char* category,
                               sim::Time begin, sim::Duration duration,
                               double wall_us, const SpanArgs& args) {
  TraceEvent event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.ts_us = sim::ToMicros(begin);
  event.dur_us = sim::ToMicros(duration);
  event.wall_us = wall_us;
  event.args.assign(args.begin(), args.end());
  Append(std::move(event));
}

void ChromeTraceWriter::OnInstant(const char* name, const char* category,
                                  sim::Time at, const SpanArgs& args) {
  TraceEvent event;
  event.phase = 'i';
  event.name = name;
  event.category = category;
  event.ts_us = sim::ToMicros(at);
  event.args.assign(args.begin(), args.end());
  Append(std::move(event));
}

void ChromeTraceWriter::OnCounter(const char* name, const char* category,
                                  sim::Time at, const SpanArgs& values) {
  TraceEvent event;
  event.phase = 'C';
  event.name = name;
  event.category = category;
  event.ts_us = sim::ToMicros(at);
  event.args.assign(values.begin(), values.end());
  Append(std::move(event));
}

std::string ChromeTraceWriter::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first_event = true;
  for (const auto& event : events_) {
    if (!first_event) out.push_back(',');
    first_event = false;
    out += "{\"name\":\"" + JsonEscape(event.name) + "\"";
    out += ",\"cat\":\"" + JsonEscape(event.category) + "\"";
    out += ",\"ph\":\"";
    out.push_back(event.phase);
    out += "\",\"pid\":1,\"tid\":1";
    out += ",\"ts\":" + FormatDouble(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":" + FormatDouble(event.dur_us);
    }
    if (event.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant.
    }
    const bool has_wall = event.phase == 'X' && event.wall_us >= 0.0;
    if (!event.args.empty() || has_wall) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (has_wall) {
        out += "\"wall_us\":" + FormatDouble(event.wall_us);
        first_arg = false;
      }
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out.push_back(',');
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\":" + FormatDouble(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool ChromeTraceWriter::WriteJson(const std::string& path) const {
  return WriteFile(ToJson(), path, "chrome-trace");
}

}  // namespace kwikr::obs
