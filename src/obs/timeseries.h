#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::obs {

/// Deterministic sim-time series sampler: a periodic EventLoop timer
/// snapshots every registered probe into per-probe ring buffers with a
/// shared clock. All probes are read at the same tick, so the series stay
/// column-aligned, and every sampled value must be sim-derived — then the
/// serialized timeline is bit-identical across reruns and fleet worker
/// counts, exactly like the metrics registry.
///
/// Bounded memory with deterministic decimation: when a series reaches
/// `capacity` samples the sampler keeps every second sample and doubles its
/// effective stride (the tick counter keeps absolute phase, so post-
/// decimation samples remain uniformly spaced). A 10-hour run costs the
/// same memory as a 10-second one; only the resolution differs — and the
/// decimation sequence depends only on tick counts, never on wall clock.
class SeriesSampler {
 public:
  struct Config {
    sim::Duration interval = sim::Millis(10);
    /// Samples retained per series before a decimation halves resolution.
    /// Rounded up to a power of two (minimum 16).
    std::size_t capacity = 2048;
  };

  SeriesSampler(sim::EventLoop& loop, Config config);
  SeriesSampler(const SeriesSampler&) = delete;
  SeriesSampler& operator=(const SeriesSampler&) = delete;

  /// Registers a probe. Call before Start; the callable must stay valid
  /// until the sampler stops (it runs inside loop events).
  void AddProbe(std::string name, std::function<double()> probe);

  /// Invoked after every recorded sample row — the anomaly monitor's
  /// evaluation point. Optional.
  void SetRowHook(std::function<void()> hook) { row_hook_ = std::move(hook); }

  void Start();
  void Stop();

  /// Effective sampling stride after decimations (= interval * 2^d).
  [[nodiscard]] sim::Duration stride() const {
    return config_.interval * static_cast<sim::Duration>(factor_);
  }
  [[nodiscard]] int decimations() const { return decimations_; }
  /// Sample rows currently retained (same for every series).
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t series_count() const { return probes_.size(); }

  struct Series {
    std::string name;
    std::vector<double> values;  ///< values[i] sampled at i * stride.
  };
  [[nodiscard]] std::vector<Series> Snapshot() const;

  /// Canonical timeline JSONL: one `{"type":"series",...}` object per
  /// probe, values at fixed %.3f precision, registration order. When
  /// `call_index` >= 0 each line leads with `"call":N` so per-call lines
  /// from a population run stay attributable after concatenation.
  [[nodiscard]] std::string ToJsonl(std::int64_t call_index = -1) const;

  /// Second exporter: replays every retained sample as Chrome-trace
  /// counter events ('C' phase) into `sink`, one counter track per probe.
  void EmitCounters(TraceSink& sink, const char* category = "timeline") const;

 private:
  void Tick();
  void Decimate();

  sim::EventLoop& loop_;
  Config config_;
  struct Probe {
    std::string name;
    std::function<double()> fn;
    std::vector<double> values;
  };
  std::vector<Probe> probes_;
  sim::PeriodicTimer timer_;
  std::function<void()> row_hook_;
  std::uint64_t tick_ = 0;    ///< timer firings since Start.
  std::uint64_t factor_ = 1;  ///< record every factor-th tick (power of 2).
  std::size_t rows_ = 0;
  int decimations_ = 0;
  bool started_ = false;
};

/// Anomaly triggers over the live sampler + flight recorder: when one
/// fires, the recorder is frozen and recorder + active series are dumped as
/// one canonical JSONL postmortem (deterministic — every line derives from
/// sim state, so the same scenario produces byte-identical dumps).
///
/// Three trigger classes, each disabled at its zero default:
///   - Tq p95 over a sliding window of ping-pair samples above a threshold
///     (the "FQ-CoDel just collapsed / bufferbloat just formed" signal);
///   - retransmit storm: too many kTcpRetransmit flight events inside a
///     window (subscribes to the recorder's listener hook);
///   - estimator divergence: the UKF bandwidth estimate and the controller
///     target disagree by more than a factor (fed from the sampler row).
/// One-shot: the first trigger freezes everything; later signals are
/// ignored so the dump reflects the first incident.
class PostmortemMonitor {
 public:
  struct Config {
    double tq_p95_ms = 0.0;            ///< 0 = trigger disabled.
    std::size_t tq_window = 32;        ///< sliding window (samples).
    std::size_t tq_min_samples = 8;    ///< don't judge a cold window.
    std::uint64_t retransmit_storm = 0;         ///< events; 0 = disabled.
    sim::Duration storm_window = sim::Seconds(1);
    double divergence_factor = 0.0;    ///< ratio either way; 0 = disabled.
    double divergence_floor_kbps = 64.0;  ///< ignore near-idle rates.
  };

  /// `recorder` may be null (then the storm trigger is inert and the dump
  /// carries only series). `dump_path` empty keeps the dump in memory only.
  PostmortemMonitor(sim::EventLoop& loop, SeriesSampler& sampler,
                    FlightRecorder* recorder, Config config,
                    std::string dump_path = {});

  PostmortemMonitor(const PostmortemMonitor&) = delete;
  PostmortemMonitor& operator=(const PostmortemMonitor&) = delete;

  /// Feed one ping-pair queueing-delay sample (ms).
  void OnTqSample(double tq_ms);
  /// Feed the estimator-vs-target pair (kbps), typically once per sampler
  /// row.
  void OnRateSample(double estimate_kbps, double target_kbps);

  [[nodiscard]] bool triggered() const { return triggered_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }
  /// The postmortem JSONL (empty until triggered).
  [[nodiscard]] const std::string& dump() const { return dump_; }

 private:
  void OnFlightEvent(const FlightEvent& event);
  void Trigger(const char* reason, double value, double threshold);

  sim::EventLoop& loop_;
  SeriesSampler& sampler_;
  FlightRecorder* recorder_;
  Config config_;
  std::string dump_path_;
  std::deque<double> tq_window_;
  std::deque<sim::Time> retransmits_;
  bool triggered_ = false;
  std::string reason_;
  std::string dump_;
};

}  // namespace kwikr::obs
