#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/checkpoint.h"
#include "obs/metrics.h"

namespace kwikr::fleet {

/// Multi-process shard runner: the layer above the thread pool.
///
/// RunFleet parallelizes one process across threads but holds every result
/// in RAM; a 10^6-call sweep is memory-bound long before it is CPU-bound.
/// The shard runner forks worker processes (plus an explicit `--shard k/n`
/// mode so independent machines can take disjoint slices), streams each
/// worker's per-item results to spill files as canonical JSONL instead of
/// accumulating them, and checkpoints progress so a killed sweep resumes
/// from the last completed chunk. Merging is hierarchical — item chunk →
/// worker spill → shard → global — and every payload's merge rule is
/// order-free (results concatenate in index order, metrics registries merge
/// associatively/commutatively, timeline lines concatenate in index order,
/// extending fleet::MergeShardStreams' (t, shard) ordering rule to files),
/// so the merged artifacts are byte-identical for any worker x shard split.

/// `--shard k/n`: this invocation owns global shard `index` of `count`.
struct ShardSpec {
  int index = 0;
  int count = 1;
};

struct ItemRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const { return end - begin; }
};

/// Contiguous, as-even-as-possible split of [0, total): part i of `parts`.
/// The first `total % parts` parts get one extra item. Concatenating the
/// parts in index order reconstructs [0, total) exactly, which is what
/// makes shard-major merge order equal global item order.
ItemRange PartitionItems(std::uint64_t total, int parts, int part);

/// What one chunk of items produced. Every payload must be deterministic in
/// the item indices alone (derive randomness via seed-forking on the global
/// index, exactly as RunFleet tasks do).
struct ChunkOutput {
  /// One canonical JSONL line per item, ascending index order. Each line
  /// must start with `{"call":<index>,` — the merge validates the sequence
  /// and a resumed run's bytes against it.
  std::string results_jsonl;
  /// obs::SerializeRegistry of a chunk-local registry (empty = no metrics).
  std::string metrics_jsonl;
  /// Sim-time timeline JSONL, index-stamped (empty = no timeline).
  std::string timeline_jsonl;
};
using ChunkFn = std::function<ChunkOutput(std::uint64_t begin,
                                          std::uint64_t end)>;

struct ShardRunnerConfig {
  std::uint64_t total_items = 0;  ///< global population, across all shards.
  ShardSpec shard;
  int processes = 1;  ///< forked workers; 1 runs inline (no fork).
  std::string spill_dir;
  /// Items per checkpoint chunk: the RAM high-water mark and the resume
  /// granularity. Results beyond the last completed chunk are re-run.
  std::uint64_t checkpoint_every = 256;
  bool resume = false;
  /// Config digest (see CheckpointManifest::fingerprint). Must be equal
  /// across the shard invocations of one sweep.
  std::string fingerprint;
};

struct ShardRunStatus {
  bool ok = false;
  std::string error;
  std::uint64_t items_done = 0;     ///< completed in this shard's spills.
  std::uint64_t items_resumed = 0;  ///< of those, skipped via checkpoints.
  std::uint64_t peak_worker_rss_kb = 0;  ///< max VmHWM across workers.
};

struct SpillPaths {
  std::string results;
  std::string metrics;
  std::string timeline;
  std::string manifest;
};
SpillPaths WorkerSpillPaths(const std::string& spill_dir, ShardSpec shard,
                            int worker);

class ShardRunner {
 public:
  ShardRunner(ShardRunnerConfig config, ChunkFn chunk_fn);

  /// Runs this invocation's shard: forks `processes` workers (inline when
  /// 1), waits for all of them, and reports a dead child — which call range
  /// it owned, and the signal or exit status that took it down — instead of
  /// hanging on the merge barrier. Does NOT merge; call MergeShardSpills
  /// once every shard of the sweep is complete.
  ShardRunStatus Run();

  /// One worker's chunk loop, in this process — the unit tests' (and the
  /// forked children's) entry point. `stop_after_chunks` simulates a kill
  /// at a chunk boundary: the worker checkpoints that many chunks and
  /// returns with ok=true but items_done < range size.
  ShardRunStatus RunWorkerInline(int worker,
                                 std::uint64_t stop_after_chunks = ~0ull);

 private:
  ShardRunnerConfig config_;
  ChunkFn chunk_fn_;
  /// Set (to getpid()) just before forking workers; a forked worker whose
  /// getppid() stops matching this is an orphan of a killed sweep and exits
  /// at the next chunk boundary instead of writing on.
  long parent_pid_ = 0;
};

/// Hierarchical merge consumers. All optional; unset payloads are skipped.
struct MergeConsumer {
  /// Called once per item in ascending global index order.
  std::function<void(std::uint64_t index, std::string_view line)>
      on_result_line;
  /// Every worker's serialized chunk registries merge in here.
  obs::MetricsRegistry* metrics = nullptr;
  /// Timeline bytes, streamed in global index order.
  std::function<void(std::string_view)> on_timeline;
};

struct MergeStatus {
  bool ok = false;
  /// ok && !complete: nothing is wrong, but some shard has not finished
  /// (cluster mode — another machine still owns it). `error` says which.
  bool complete = false;
  std::string error;
  std::uint64_t items = 0;
  std::uint64_t peak_worker_rss_kb = 0;
};

/// Merges every shard's spill files in `config.spill_dir` into the
/// consumers, validating manifests (fingerprint, ranges, completion) and
/// spill integrity (byte counts, line boundaries, the per-line index
/// sequence) along the way. Byte-identical output for any worker x shard
/// split of the same fingerprinted sweep.
MergeStatus MergeShardSpills(const ShardRunnerConfig& config,
                             const MergeConsumer& consumer);

}  // namespace kwikr::fleet
