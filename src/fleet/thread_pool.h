#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kwikr::fleet {

/// Fixed-size worker pool: a lock-guarded FIFO task queue drained by
/// `threads` workers woken through a condition variable.
///
/// This is deliberately the simplest pool that the fleet layer needs — no
/// futures, no work stealing, no task priorities. Determinism never depends
/// on the pool (tasks self-identify via their index and write to their own
/// result slot); the pool only supplies concurrency.
class ThreadPool {
 public:
  /// Starts `threads` workers (values < 1 are treated as 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding tasks, then stops and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — wrap fallible work before
  /// submitting (RunFleet does); an escaped exception terminates.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing.
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kwikr::fleet
