#include "fleet/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "obs/exporters.h"

namespace kwikr::fleet {
namespace {

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Parses `"key":` at the cursor and the given integer after it. The
/// manifest is machine-written with fixed key order, so a strict sequential
/// parse doubles as a corruption check.
bool ParseU64Field(std::string_view text, std::size_t* pos,
                   std::string_view key, std::uint64_t* out) {
  const std::string expect = ",\"" + std::string(key) + "\":";
  if (text.substr(*pos, expect.size()) != expect) return false;
  *pos += expect.size();
  const std::size_t start = *pos;
  std::uint64_t value = 0;
  while (*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[*pos] - '0');
    ++*pos;
  }
  if (*pos == start) return false;
  *out = value;
  return true;
}

}  // namespace

std::string EncodeCheckpointManifest(const CheckpointManifest& manifest) {
  char buffer[512];
  std::string out = "{\"version\":1,\"fingerprint\":\"";
  out += obs::JsonEscape(manifest.fingerprint);
  out += "\"";
  std::snprintf(
      buffer, sizeof(buffer),
      ",\"shard\":%d,\"shard_count\":%d,\"worker\":%d,\"processes\":%d"
      ",\"range_begin\":%" PRIu64 ",\"range_end\":%" PRIu64
      ",\"completed\":%" PRIu64 ",\"results_bytes\":%" PRIu64
      ",\"metrics_bytes\":%" PRIu64 ",\"timeline_bytes\":%" PRIu64
      ",\"peak_rss_kb\":%" PRIu64 "}\n",
      manifest.shard, manifest.shard_count, manifest.worker,
      manifest.processes, manifest.range_begin, manifest.range_end,
      manifest.completed, manifest.results_bytes, manifest.metrics_bytes,
      manifest.timeline_bytes, manifest.peak_rss_kb);
  out += buffer;
  return out;
}

bool DecodeCheckpointManifest(std::string_view text,
                              CheckpointManifest* manifest) {
  constexpr std::string_view kHeader = "{\"version\":1,\"fingerprint\":\"";
  if (text.substr(0, kHeader.size()) != kHeader) return false;
  std::size_t pos = kHeader.size();
  // Unescape the fingerprint (the only free-form string in the manifest).
  std::string fingerprint;
  while (pos < text.size() && text[pos] != '"') {
    char c = text[pos++];
    if (c == '\\') {
      if (pos >= text.size()) return false;
      c = text[pos++];
      switch (c) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        default: return false;  // fingerprints are plain ASCII key=value.
      }
    }
    fingerprint.push_back(c);
  }
  if (pos >= text.size()) return false;
  ++pos;  // closing quote.

  struct Field {
    std::string_view key;
    std::uint64_t value = 0;
  };
  Field fields[] = {
      {"shard"},        {"shard_count"},   {"worker"},
      {"processes"},    {"range_begin"},   {"range_end"},
      {"completed"},    {"results_bytes"}, {"metrics_bytes"},
      {"timeline_bytes"}, {"peak_rss_kb"},
  };
  for (Field& field : fields) {
    if (!ParseU64Field(text, &pos, field.key, &field.value)) return false;
  }
  if (text.substr(pos) != "}\n" && text.substr(pos) != "}") return false;

  manifest->version = 1;
  manifest->fingerprint = std::move(fingerprint);
  manifest->shard = static_cast<int>(fields[0].value);
  manifest->shard_count = static_cast<int>(fields[1].value);
  manifest->worker = static_cast<int>(fields[2].value);
  manifest->processes = static_cast<int>(fields[3].value);
  manifest->range_begin = fields[4].value;
  manifest->range_end = fields[5].value;
  manifest->completed = fields[6].value;
  manifest->results_bytes = fields[7].value;
  manifest->metrics_bytes = fields[8].value;
  manifest->timeline_bytes = fields[9].value;
  manifest->peak_rss_kb = fields[10].value;
  return true;
}

bool WriteCheckpointManifest(const std::string& path,
                             const CheckpointManifest& manifest,
                             std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Fail(error, "checkpoint: cannot open " + tmp + " for writing");
  }
  const std::string text = EncodeCheckpointManifest(manifest);
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
      std::fflush(file) == 0;
  std::fclose(file);
  if (!wrote) {
    std::remove(tmp.c_str());
    return Fail(error, "checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Fail(error, "checkpoint: cannot rename " + tmp + " over " + path);
  }
  return true;
}

std::optional<CheckpointManifest> LoadCheckpointManifest(
    const std::string& path, bool* parse_failed, std::string* error) {
  if (parse_failed != nullptr) *parse_failed = false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string text;
  char buffer[1024];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  CheckpointManifest manifest;
  if (!DecodeCheckpointManifest(text, &manifest)) {
    if (parse_failed != nullptr) *parse_failed = true;
    Fail(error, "checkpoint: " + path + " does not parse — corrupt manifest");
    return std::nullopt;
  }
  return manifest;
}

}  // namespace kwikr::fleet
