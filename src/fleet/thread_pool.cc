#include "fleet/thread_pool.h"

#include <algorithm>
#include <utility>

namespace kwikr::fleet {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: ~ThreadPool promises completion
      // of everything submitted before destruction.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace kwikr::fleet
