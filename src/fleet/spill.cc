#include "fleet/spill.h"

#include <algorithm>
#include <cstdio>
#include <sys/stat.h>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace kwikr::fleet {
namespace {

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool SpillWriter::Open(const std::string& path, std::uint64_t resume_bytes,
                       std::string* error) {
  Close();
  if (resume_bytes == 0) {
    // Fresh (or restarted-from-scratch) worker: plain truncating create.
    file_ = std::fopen(path.c_str(), "wb");
  } else {
    if (!TruncateSpillFile(path, resume_bytes, error)) return false;
    file_ = std::fopen(path.c_str(), "ab");
  }
  if (file_ == nullptr) {
    return Fail(error, "spill: cannot open " + path + " for writing");
  }
  path_ = path;
  bytes_ = resume_bytes;
  return true;
}

bool SpillWriter::Append(std::string_view bytes) {
  if (bytes.empty()) return true;
  if (file_ == nullptr) return false;
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return false;
  }
  bytes_ += bytes.size();
  return true;
}

bool SpillWriter::Flush() {
  return file_ != nullptr && std::fflush(file_) == 0;
}

void SpillWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::optional<std::uint64_t> SpillFileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_size);
}

bool TruncateSpillFile(const std::string& path, std::uint64_t size,
                       std::string* error) {
  const auto current = SpillFileSize(path);
  if (!current.has_value()) {
    if (size == 0) {
      // Creating an empty file counts as truncating a missing one to 0.
      std::FILE* file = std::fopen(path.c_str(), "wb");
      if (file == nullptr) return Fail(error, "spill: cannot create " + path);
      std::fclose(file);
      return true;
    }
    return Fail(error, "spill: " + path + " is missing but its checkpoint "
                "manifest records bytes — cannot resume");
  }
  if (*current < size) {
    return Fail(error, "spill: " + path + " is shorter (" +
                std::to_string(*current) + " bytes) than its checkpoint "
                "manifest records (" + std::to_string(size) +
                ") — corrupt spill, cannot resume");
  }
  if (*current == size) return true;
#if defined(__unix__) || defined(__APPLE__)
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Fail(error, "spill: cannot truncate " + path);
  }
  return true;
#else
  return Fail(error, "spill: truncation unsupported on this platform");
#endif
}

namespace {

/// Shared streaming read loop: hands `limit` bytes of `path` to `consume`
/// in bounded buffers, validating the file is long enough.
bool StreamBytes(const std::string& path, std::uint64_t limit,
                 const std::function<bool(std::string_view)>& consume,
                 std::string* error) {
  if (limit == 0) return true;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Fail(error, "spill: cannot open " + path + " for reading");
  }
  std::vector<char> buffer(1 << 20);
  std::uint64_t remaining = limit;
  bool ok = true;
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, buffer.size()));
    const std::size_t got = std::fread(buffer.data(), 1, want, file);
    if (got == 0) {
      ok = Fail(error, "spill: " + path + " ended " +
                std::to_string(remaining) + " bytes short of its checkpoint "
                "manifest — corrupt spill");
      break;
    }
    if (!consume(std::string_view(buffer.data(), got))) {
      ok = false;
      break;
    }
    remaining -= got;
  }
  std::fclose(file);
  return ok;
}

}  // namespace

bool ForEachSpillLine(const std::string& path, std::uint64_t limit,
                      const std::function<bool(std::string_view)>& fn,
                      std::string* error) {
  std::string carry;  // partial line spanning a buffer boundary.
  const bool ok = StreamBytes(
      path, limit,
      [&](std::string_view chunk) {
        std::size_t begin = 0;
        while (begin < chunk.size()) {
          const std::size_t newline = chunk.find('\n', begin);
          if (newline == std::string_view::npos) {
            carry.append(chunk.substr(begin));
            return true;
          }
          const std::string_view rest = chunk.substr(begin, newline - begin + 1);
          if (carry.empty()) {
            if (!fn(rest)) return false;
          } else {
            carry.append(rest);
            if (!fn(carry)) return false;
            carry.clear();
          }
          begin = newline + 1;
        }
        return true;
      },
      error);
  if (!ok) return false;
  if (!carry.empty()) {
    return Fail(error, "spill: " + path + " checkpointed range ends inside a "
                "line — truncated or corrupt trailing JSONL, refusing to "
                "merge");
  }
  return true;
}

bool ForEachSpillChunk(const std::string& path, std::uint64_t limit,
                       const std::function<void(std::string_view)>& fn,
                       std::string* error) {
  return StreamBytes(
      path, limit,
      [&](std::string_view chunk) {
        fn(chunk);
        return true;
      },
      error);
}

}  // namespace kwikr::fleet
