#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "stats/confusion.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace kwikr::fleet {

/// Thread-safe aggregation of mergeable reducers, keyed by name.
///
/// The intended pattern keeps the lock far off the hot path: each fleet
/// task accumulates into its *own* local RunningSummary / ConfusionMatrix /
/// Histogram while simulating, then merges once into the shared
/// FleetMetrics when it finishes. Because every reducer's Merge is
/// associative and commutative, the aggregate is independent of task
/// completion order — per-sample values are worker-count-invariant, and so
/// is anything derived from them (counts, means, matrix cells, histogram
/// bins; a Histogram quantile is still a sketch, but the same sketch for
/// every worker count).
class FleetMetrics {
 public:
  void MergeSummary(std::string_view key, const stats::RunningSummary& other);
  void MergeConfusion(std::string_view key,
                      const stats::ConfusionMatrix& other);
  void MergeHistogram(std::string_view key, const stats::Histogram& other);

  /// Merges a worker-local obs::MetricsRegistry into the shared one — the
  /// registry counterpart of the reducer merges above, with the same
  /// associativity/commutativity contract (see obs::MetricsRegistry).
  void MergeRegistry(const obs::MetricsRegistry& other);

  /// Snapshot accessors; a key never merged into returns an empty reducer.
  [[nodiscard]] stats::RunningSummary Summary(std::string_view key) const;
  [[nodiscard]] stats::ConfusionMatrix Confusion(std::string_view key) const;
  [[nodiscard]] stats::Histogram HistogramSketch(std::string_view key) const;

  /// The shared registry (itself thread-safe; usable directly).
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, stats::RunningSummary, std::less<>> summaries_;
  std::map<std::string, stats::ConfusionMatrix, std::less<>> confusions_;
  std::map<std::string, stats::Histogram, std::less<>> histograms_;
  obs::MetricsRegistry registry_;
};

}  // namespace kwikr::fleet
