#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace kwikr::fleet {

/// Append-mode spill file with byte accounting.
///
/// A shard worker streams per-call JSONL here instead of accumulating
/// results in RAM. Durability contract for checkpoint/resume: `Flush`
/// pushes everything appended so far into the kernel (fflush → write), so a
/// SIGKILL after Flush can no longer lose those bytes; the checkpoint
/// manifest records a byte offset only after the flush, which means any
/// torn or corrupt trailing line always lies *beyond* the last recorded
/// offset and is discarded (and its chunk re-run) on resume.
class SpillWriter {
 public:
  SpillWriter() = default;
  ~SpillWriter() { Close(); }
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Truncates `path` to `resume_bytes` (creating it when absent) and opens
  /// it for appending. `resume_bytes` is the manifest-recorded offset — 0
  /// for a fresh run.
  bool Open(const std::string& path, std::uint64_t resume_bytes,
            std::string* error);

  bool Append(std::string_view bytes);
  bool Flush();
  void Close();

  /// Bytes in the file up to and including everything appended so far.
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::string path_;
};

/// Size of `path` in bytes; nullopt when it does not exist / can't be stat'd.
std::optional<std::uint64_t> SpillFileSize(const std::string& path);

/// Truncates `path` to exactly `size` bytes (the resume path for dropping a
/// torn tail). Fails when the file is *smaller* than `size` — a spill file
/// shorter than its checkpoint manifest claims is unrecoverable corruption,
/// not a torn tail.
bool TruncateSpillFile(const std::string& path, std::uint64_t size,
                       std::string* error);

/// Streams the first `limit` bytes of `path` line by line, bounded memory.
/// Each callback gets one line including its trailing '\n'. Fails when the
/// file is shorter than `limit` or when the limit cuts a line in half: every
/// checkpointed byte range ends on a line boundary, so a partial line inside
/// it is corruption that must not be silently merged.
bool ForEachSpillLine(const std::string& path, std::uint64_t limit,
                      const std::function<bool(std::string_view)>& fn,
                      std::string* error);

/// Streams the first `limit` bytes of `path` as raw chunks (for payloads
/// merged by concatenation, e.g. timeline JSONL). Same length validation.
bool ForEachSpillChunk(const std::string& path, std::uint64_t limit,
                       const std::function<void(std::string_view)>& fn,
                       std::string* error);

}  // namespace kwikr::fleet
