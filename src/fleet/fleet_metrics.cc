#include "fleet/fleet_metrics.h"

namespace kwikr::fleet {
namespace {

/// Heterogeneous find-or-insert: std::map<…, std::less<>> supports
/// string_view lookup but not string_view emplace, so the key is only
/// materialised on first insertion.
template <typename Map, typename Value>
Value& FindOrInsert(Map& map, std::string_view key, const Value& prototype) {
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(std::string(key), prototype).first;
  }
  return it->second;
}

}  // namespace

void FleetMetrics::MergeSummary(std::string_view key,
                                const stats::RunningSummary& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  FindOrInsert(summaries_, key, stats::RunningSummary{}).Merge(other);
}

void FleetMetrics::MergeConfusion(std::string_view key,
                                  const stats::ConfusionMatrix& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  FindOrInsert(confusions_, key, stats::ConfusionMatrix{}).Merge(other);
}

void FleetMetrics::MergeHistogram(std::string_view key,
                                  const stats::Histogram& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Seeding the slot with an empty copy of `other` adopts its binning, so
  // the config-compatibility requirement is only between callers.
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    stats::Histogram empty(other.config());
    it = histograms_.emplace(std::string(key), empty).first;
  }
  it->second.Merge(other);
}

void FleetMetrics::MergeRegistry(const obs::MetricsRegistry& other) {
  // The registry has its own synchronization; no need for mutex_ here.
  registry_.Merge(other);
}

stats::RunningSummary FleetMetrics::Summary(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = summaries_.find(key);
  return it != summaries_.end() ? it->second : stats::RunningSummary{};
}

stats::ConfusionMatrix FleetMetrics::Confusion(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = confusions_.find(key);
  return it != confusions_.end() ? it->second : stats::ConfusionMatrix{};
}

stats::Histogram FleetMetrics::HistogramSketch(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(key);
  return it != histograms_.end() ? it->second : stats::Histogram{};
}

}  // namespace kwikr::fleet
