#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "fleet/thread_pool.h"

namespace kwikr::fleet {

/// Resolves a user-facing `jobs` knob: values >= 1 pass through, anything
/// else (0, negative) means "one worker per hardware thread".
inline int ResolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// One task that threw instead of producing a result.
struct TaskFailure {
  std::size_t index = 0;
  std::string error;
};

/// Outcome of a fleet run: one result slot per task, ordered by task index
/// (never by completion order), plus the tasks that failed. A failed task's
/// slot holds a default-constructed Result.
template <typename Result>
struct FleetReport {
  std::vector<Result> results;
  std::vector<TaskFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs `fn(index)` for every index in [0, tasks) on `jobs` workers and
/// collects the returned values.
///
/// Determinism contract: the output is bit-identical for every worker count
/// because (a) each task writes only its own pre-sized slot, (b) tasks must
/// derive all randomness from their index (seed with `rng.Fork(index)`,
/// never from shared mutable state), and (c) failures are reported sorted
/// by index. `jobs <= 1` (after ResolveJobs) executes inline on the calling
/// thread — the serial path spawns no threads at all.
///
/// Exception isolation: a throwing task records a TaskFailure instead of
/// tearing down the run; every other task still executes.
template <typename Fn>
auto RunFleet(std::size_t tasks, int jobs, Fn&& fn)
    -> FleetReport<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  static_assert(!std::is_same_v<Result, bool>,
                "std::vector<bool> packs results into shared bits, so "
                "parallel slot writes would race — return int instead");
  FleetReport<Result> report;
  report.results.resize(tasks);

  std::mutex failures_mutex;
  auto run_one = [&](std::size_t index) {
    try {
      report.results[index] = fn(index);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(failures_mutex);
      report.failures.push_back(TaskFailure{index, e.what()});
    } catch (...) {
      std::lock_guard<std::mutex> lock(failures_mutex);
      report.failures.push_back(TaskFailure{index, "non-standard exception"});
    }
  };

  const auto workers = static_cast<std::size_t>(ResolveJobs(jobs));
  if (workers <= 1 || tasks <= 1) {
    for (std::size_t i = 0; i < tasks; ++i) run_one(i);
  } else {
    ThreadPool pool(static_cast<int>(std::min(workers, tasks)));
    for (std::size_t i = 0; i < tasks; ++i) {
      pool.Submit([&run_one, i] { run_one(i); });
    }
    pool.Wait();
  }

  std::sort(report.failures.begin(), report.failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return report;
}

}  // namespace kwikr::fleet
