#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/fleet_runner.h"

namespace kwikr::fleet {

/// Intra-scenario sharding: run the independent BSS groups of ONE scenario
/// (e.g. the baseline and Kwikr arms of a paired A/B environment, which are
/// co-channel replicas that never exchange a frame) as separate fleet tasks,
/// then recombine them deterministically. Population sweeps parallelize
/// across scenarios; this layer parallelizes *inside* one, so a single large
/// scenario also uses all cores.
///
/// The determinism contract extends fleet::RunFleet's: a shard must derive
/// everything from (scenario seed, shard index) — never from another shard —
/// and the merge points below impose a total order on the recombined output
/// that depends only on shard contents, not on completion order.

/// Deterministic cross-shard merge of sim-time event streams.
///
/// Each shard's stream is JSONL whose lines carry a sim-time field
/// (`"t":<integer>`, nanoseconds) and are already non-decreasing in time —
/// the order every timeline/flight-recorder serializer in this repo emits.
/// The merge yields the unique total order sorted by (t, shard index), with
/// a shard's equal-time lines kept in their original relative order. A line
/// without a `t` field (preamble/summary lines) inherits the previous
/// line's time in its shard (first line: t = minimum), so annotations stay
/// attached to the event they follow. The result is byte-identical for any
/// worker count or completion order, which is what makes sharded scenario
/// output comparable against serial golden artifacts.
std::string MergeShardStreams(const std::vector<std::string>& shards);

/// Runs `fn(shard)` for every shard in [0, shards) across the fleet and
/// returns the per-shard results ordered by shard index (RunFleet's
/// contract; completion order never shows). Thin by design: recombination
/// is scenario-specific, so callers pair/merge the ordered results and use
/// MergeShardStreams for any event streams the shards produced.
template <typename Fn>
auto RunScenarioShards(std::size_t shards, int jobs, Fn&& fn)
    -> FleetReport<decltype(fn(std::size_t{0}))> {
  return RunFleet(shards, jobs, std::forward<Fn>(fn));
}

}  // namespace kwikr::fleet
