#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace kwikr::fleet {

/// Per-worker checkpoint manifest: the durable record of how far a shard
/// worker has progressed and how many spill bytes that progress covers.
///
/// Written atomically (tmp + rename) after every flushed chunk, so at any
/// kill point the manifest describes a prefix of the spill files that ends
/// on a chunk boundary. Resume truncates the spills to the recorded byte
/// offsets and continues from `completed`; anything past the offsets (torn
/// lines from the killed chunk) is dropped and re-run.
struct CheckpointManifest {
  int version = 1;
  /// Digest of everything that shapes per-item results (seed, item count,
  /// scenario parameters, shard count, which payloads are enabled...).
  /// Resume and merge refuse a manifest whose fingerprint disagrees — a
  /// checkpoint from a different sweep must never be silently continued.
  std::string fingerprint;
  int shard = 0;
  int shard_count = 1;
  int worker = 0;
  int processes = 1;
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
  /// Next item index to run; `range_end` when the worker is finished.
  std::uint64_t completed = 0;
  std::uint64_t results_bytes = 0;
  std::uint64_t metrics_bytes = 0;
  std::uint64_t timeline_bytes = 0;
  /// Worker-process VmHWM at the last checkpoint, for the flat-memory gate.
  std::uint64_t peak_rss_kb = 0;

  [[nodiscard]] bool done() const { return completed == range_end; }
};

std::string EncodeCheckpointManifest(const CheckpointManifest& manifest);
bool DecodeCheckpointManifest(std::string_view text,
                              CheckpointManifest* manifest);

/// Write-tmp-then-rename so a kill mid-write leaves the previous manifest
/// intact. The spill files must be flushed *before* calling this — the
/// manifest is the commit record.
bool WriteCheckpointManifest(const std::string& path,
                             const CheckpointManifest& manifest,
                             std::string* error);

/// nullopt when the file does not exist; error set when it exists but does
/// not parse (a corrupt manifest is not resumable-from).
std::optional<CheckpointManifest> LoadCheckpointManifest(
    const std::string& path, bool* parse_failed, std::string* error);

}  // namespace kwikr::fleet
