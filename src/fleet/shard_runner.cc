#include "fleet/shard_runner.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <utility>

#include "fleet/spill.h"
#include "obs/registry_io.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/prctl.h>
#include <csignal>
#endif

namespace kwikr::fleet {
namespace {

ShardRunStatus Fail(std::string message) {
  ShardRunStatus status;
  status.error = std::move(message);
  return status;
}

/// VmHWM of this process in kB (0 when /proc is unavailable) — the
/// flat-memory headline is per *worker* process, so each worker records its
/// own peak into its manifest.
std::uint64_t PeakRssKb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  unsigned long kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lu kB", &kb) == 1) break;
  }
  std::fclose(status);
  return kb;
}

/// Validates that `line` is one complete result line for `expected` — the
/// `{"call":<expected>,` prefix ChunkFn promises — so a shuffled, stale, or
/// corrupt spill can never merge silently.
bool CheckResultLine(std::string_view line, std::uint64_t expected) {
  constexpr std::string_view kPrefix = "{\"call\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  std::size_t pos = kPrefix.size();
  std::uint64_t index = 0;
  const std::size_t digits_begin = pos;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    index = index * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  if (pos == digits_begin || pos >= line.size() || line[pos] != ',') {
    return false;
  }
  return index == expected && line.back() == '\n';
}

/// Splits a chunk's results payload back into lines and checks the index
/// sequence [begin, end) — run in the worker right after ChunkFn so a
/// producer bug is caught before the bytes hit the spill.
bool CheckChunkResults(std::string_view results, std::uint64_t begin,
                       std::uint64_t end) {
  std::uint64_t expected = begin;
  std::size_t pos = 0;
  while (pos < results.size()) {
    std::size_t newline = results.find('\n', pos);
    if (newline == std::string_view::npos) return false;
    if (expected >= end ||
        !CheckResultLine(results.substr(pos, newline - pos + 1), expected)) {
      return false;
    }
    ++expected;
    pos = newline + 1;
  }
  return expected == end;
}

std::string RangeText(const ItemRange& range) {
  return "[" + std::to_string(range.begin) + ", " +
         std::to_string(range.end) + ")";
}

/// Exclusive per-worker advisory lock held for the duration of a worker's
/// chunk loop. Two processes must never append to the same spill: a resumed
/// run racing a still-live orphan from a killed sweep would interleave lines
/// and corrupt the stream past repair. The kernel drops a flock on process
/// death — SIGKILL included — so a crashed worker can never wedge a resume;
/// a LIVE one makes the resume fail fast with a clear message instead.
class WorkerLock {
 public:
  WorkerLock() = default;
  ~WorkerLock() { Release(); }
  WorkerLock(const WorkerLock&) = delete;
  WorkerLock& operator=(const WorkerLock&) = delete;

  bool Acquire(const std::string& path, std::string* error) {
#if defined(__unix__) || defined(__APPLE__)
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      if (error != nullptr) *error = "cannot open lock file " + path;
      return false;
    }
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd_);
      fd_ = -1;
      if (error != nullptr) {
        *error = "spill is locked by another live worker process (" + path +
                 ") — an earlier run's worker is still finishing; wait for "
                 "it to exit before resuming";
      }
      return false;
    }
#else
    (void)path;
    (void)error;
#endif
    return true;
  }

  void Release() {
#if defined(__unix__) || defined(__APPLE__)
    if (fd_ >= 0) {
      ::close(fd_);  // closing the fd releases the flock.
      fd_ = -1;
    }
#endif
  }

 private:
  int fd_ = -1;
};

ItemRange WorkerItemRange(const ShardRunnerConfig& config, int shard,
                          int processes, int worker) {
  const ItemRange shard_range =
      PartitionItems(config.total_items, config.shard.count, shard);
  ItemRange range = PartitionItems(shard_range.size(), processes, worker);
  range.begin += shard_range.begin;
  range.end += shard_range.begin;
  return range;
}

}  // namespace

ItemRange PartitionItems(std::uint64_t total, int parts, int part) {
  const auto n = static_cast<std::uint64_t>(std::max(parts, 1));
  const auto i = static_cast<std::uint64_t>(std::clamp(part, 0, parts - 1));
  const std::uint64_t base = total / n;
  const std::uint64_t extra = total % n;
  ItemRange range;
  range.begin = i * base + std::min(i, extra);
  range.end = range.begin + base + (i < extra ? 1 : 0);
  return range;
}

SpillPaths WorkerSpillPaths(const std::string& spill_dir, ShardSpec shard,
                            int worker) {
  const std::string stem = spill_dir + "/shard" + std::to_string(shard.index) +
                           "of" + std::to_string(shard.count) + "_worker" +
                           std::to_string(worker);
  SpillPaths paths;
  paths.results = stem + ".results.jsonl";
  paths.metrics = stem + ".metrics.jsonl";
  paths.timeline = stem + ".timeline.jsonl";
  paths.manifest = stem + ".manifest.json";
  return paths;
}

ShardRunner::ShardRunner(ShardRunnerConfig config, ChunkFn chunk_fn)
    : config_(std::move(config)), chunk_fn_(std::move(chunk_fn)) {}

ShardRunStatus ShardRunner::RunWorkerInline(int worker,
                                            std::uint64_t stop_after_chunks) {
  const ItemRange range =
      WorkerItemRange(config_, config_.shard.index, config_.processes, worker);
  const SpillPaths paths =
      WorkerSpillPaths(config_.spill_dir, config_.shard, worker);

  WorkerLock lock;
  std::string lock_error;
  if (!lock.Acquire(paths.manifest + ".lock", &lock_error)) {
    return Fail("shard worker " + std::to_string(worker) + ": " + lock_error);
  }

  CheckpointManifest manifest;
  manifest.fingerprint = config_.fingerprint;
  manifest.shard = config_.shard.index;
  manifest.shard_count = config_.shard.count;
  manifest.worker = worker;
  manifest.processes = config_.processes;
  manifest.range_begin = range.begin;
  manifest.range_end = range.end;
  manifest.completed = range.begin;

  if (config_.resume) {
    bool parse_failed = false;
    std::string load_error;
    if (auto loaded = LoadCheckpointManifest(paths.manifest, &parse_failed,
                                             &load_error)) {
      if (loaded->fingerprint != config_.fingerprint) {
        return Fail("shard worker " + std::to_string(worker) +
                    ": checkpoint fingerprint mismatch (manifest '" +
                    loaded->fingerprint + "' vs run '" + config_.fingerprint +
                    "') — refusing to resume a different sweep's spill");
      }
      if (loaded->shard != config_.shard.index ||
          loaded->shard_count != config_.shard.count ||
          loaded->worker != worker ||
          loaded->processes != config_.processes ||
          loaded->range_begin != range.begin ||
          loaded->range_end != range.end) {
        return Fail("shard worker " + std::to_string(worker) +
                    ": checkpoint topology mismatch — resume must use the "
                    "same --shard and --processes split as the original run");
      }
      manifest = *loaded;
    } else if (parse_failed) {
      return Fail(load_error);
    }
    // No manifest at all: fall through and start this worker from scratch
    // (e.g. the run was killed before its first checkpoint).
  }
  const std::uint64_t resumed = manifest.completed - range.begin;

  // Open the spills truncated to exactly the checkpointed bytes. A torn or
  // corrupt trailing line from a killed chunk lies beyond these offsets and
  // is dropped here; its items re-run below. A file *shorter* than the
  // manifest fails instead (see TruncateSpillFile).
  SpillWriter results;
  SpillWriter metrics;
  SpillWriter timeline;
  std::string error;
  if (!results.Open(paths.results, manifest.results_bytes, &error) ||
      !metrics.Open(paths.metrics, manifest.metrics_bytes, &error) ||
      !timeline.Open(paths.timeline, manifest.timeline_bytes, &error)) {
    return Fail("shard worker " + std::to_string(worker) + ": " + error);
  }
  // Commit the starting state (fresh runs: an empty manifest) so a kill at
  // any later point resumes against consistent offsets.
  manifest.peak_rss_kb = std::max(manifest.peak_rss_kb, PeakRssKb());
  if (!WriteCheckpointManifest(paths.manifest, manifest, &error)) {
    return Fail("shard worker " + std::to_string(worker) + ": " + error);
  }

  std::uint64_t chunks_done = 0;
  while (manifest.completed < range.end && chunks_done < stop_after_chunks) {
#if defined(__unix__) || defined(__APPLE__)
    // Orphan guard for forked workers: PR_SET_PDEATHSIG is best-effort (a
    // seccomp filter may silence it), so a worker whose parent died — it is
    // reparented, so getppid() changes — stops at the next chunk boundary
    // instead of appending to spills a resumed run is about to take over.
    if (parent_pid_ != 0 && static_cast<long>(::getppid()) != parent_pid_) {
      ::_exit(4);
    }
#endif
    const std::uint64_t chunk_begin = manifest.completed;
    const std::uint64_t chunk_end =
        std::min(chunk_begin + std::max<std::uint64_t>(config_.checkpoint_every,
                                                       1),
                 range.end);
    ChunkOutput output;
    try {
      output = chunk_fn_(chunk_begin, chunk_end);
    } catch (const std::exception& e) {
      return Fail("shard worker " + std::to_string(worker) + ": chunk [" +
                  std::to_string(chunk_begin) + ", " +
                  std::to_string(chunk_end) + ") threw: " + e.what());
    }
    if (!CheckChunkResults(output.results_jsonl, chunk_begin, chunk_end)) {
      return Fail("shard worker " + std::to_string(worker) +
                  ": chunk produced malformed result lines for [" +
                  std::to_string(chunk_begin) + ", " +
                  std::to_string(chunk_end) + ")");
    }
    if (!results.Append(output.results_jsonl) ||
        !metrics.Append(output.metrics_jsonl) ||
        !timeline.Append(output.timeline_jsonl) || !results.Flush() ||
        !metrics.Flush() || !timeline.Flush()) {
      return Fail("shard worker " + std::to_string(worker) +
                  ": spill write failed (disk full?)");
    }
    manifest.completed = chunk_end;
    manifest.results_bytes = results.bytes();
    manifest.metrics_bytes = metrics.bytes();
    manifest.timeline_bytes = timeline.bytes();
    manifest.peak_rss_kb = std::max(manifest.peak_rss_kb, PeakRssKb());
    if (!WriteCheckpointManifest(paths.manifest, manifest, &error)) {
      return Fail("shard worker " + std::to_string(worker) + ": " + error);
    }
    ++chunks_done;
  }

  ShardRunStatus status;
  status.ok = true;
  status.items_done = manifest.completed - range.begin;
  status.items_resumed = resumed;
  status.peak_worker_rss_kb = manifest.peak_rss_kb;
  return status;
}

ShardRunStatus ShardRunner::Run() {
  if (config_.spill_dir.empty()) return Fail("shard runner: no spill dir");
  if (config_.shard.count < 1 || config_.shard.index < 0 ||
      config_.shard.index >= config_.shard.count) {
    return Fail("shard runner: invalid --shard k/n");
  }
  const int processes = std::max(config_.processes, 1);

  if (processes == 1) return RunWorkerInline(0);

#if defined(__unix__) || defined(__APPLE__)
  // The resumed-item tally has to come from the manifests BEFORE the
  // children advance them; the children's own counts die with their address
  // spaces.
  std::uint64_t items_resumed = 0;
  if (config_.resume) {
    for (int worker = 0; worker < processes; ++worker) {
      const SpillPaths paths =
          WorkerSpillPaths(config_.spill_dir, config_.shard, worker);
      bool parse_failed = false;
      std::string error;
      if (const auto manifest =
              LoadCheckpointManifest(paths.manifest, &parse_failed, &error)) {
        if (manifest->fingerprint == config_.fingerprint &&
            manifest->completed >= manifest->range_begin) {
          items_resumed += manifest->completed - manifest->range_begin;
        }
      }
    }
  }

  // Flush before forking so buffered output is not duplicated into every
  // child. The parent must be single-threaded here — the runner forks
  // before any thread pool exists; pools live inside the workers.
  std::fflush(nullptr);
  parent_pid_ = static_cast<long>(::getpid());
  std::vector<pid_t> pids(static_cast<std::size_t>(processes), -1);
  for (int worker = 0; worker < processes; ++worker) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Reap what was already started before reporting.
      for (const pid_t started : pids) {
        if (started > 0) ::waitpid(started, nullptr, 0);
      }
      return Fail("shard runner: fork failed for worker " +
                  std::to_string(worker));
    }
    if (pid == 0) {
#if defined(__linux__)
      // Die with the parent: a SIGKILL'd sweep must not leave orphan
      // workers appending to the spill a resume is about to truncate.
      // Best-effort (seccomp may filter it) — the chunk loop's getppid()
      // orphan guard and the per-worker flock are the hard backstops.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      const ShardRunStatus status = RunWorkerInline(worker);
      if (!status.ok) {
        std::fprintf(stderr, "%s\n", status.error.c_str());
        std::fflush(stderr);
        ::_exit(3);
      }
      ::_exit(0);
    }
    pids[static_cast<std::size_t>(worker)] = pid;
  }

  // The waitpid barrier is the forked-process analogue of ThreadPool's
  // task-exception isolation: every child gets reaped, every failure is
  // attributed to the call range it owned, and a dead worker fails the run
  // with a message instead of wedging the merge.
  std::string failures;
  for (int worker = 0; worker < processes; ++worker) {
    int wait_status = 0;
    if (::waitpid(pids[static_cast<std::size_t>(worker)], &wait_status, 0) <
        0) {
      failures += "shard worker " + std::to_string(worker) +
                  ": waitpid failed; ";
      continue;
    }
    const ItemRange range =
        WorkerItemRange(config_, config_.shard.index, processes, worker);
    if (WIFSIGNALED(wait_status)) {
      const int sig = WTERMSIG(wait_status);
      failures += "shard worker " + std::to_string(worker) + " (calls " +
                  RangeText(range) + ") killed by signal " +
                  std::to_string(sig) + " (" + strsignal(sig) + "); ";
    } else if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
      failures += "shard worker " + std::to_string(worker) + " (calls " +
                  RangeText(range) + ") exited with status " +
                  std::to_string(WIFEXITED(wait_status)
                                     ? WEXITSTATUS(wait_status)
                                     : -1) +
                  " (see its stderr above); ";
    }
  }
  if (!failures.empty()) {
    failures += "spill checkpoints are intact — rerun with --resume to "
                "continue from the last completed call ranges";
    return Fail(std::move(failures));
  }

  // Aggregate progress from the manifests the children committed.
  ShardRunStatus status;
  status.ok = true;
  status.items_resumed = items_resumed;
  for (int worker = 0; worker < processes; ++worker) {
    const SpillPaths paths =
        WorkerSpillPaths(config_.spill_dir, config_.shard, worker);
    bool parse_failed = false;
    std::string error;
    const auto manifest =
        LoadCheckpointManifest(paths.manifest, &parse_failed, &error);
    if (!manifest.has_value()) {
      return Fail("shard runner: worker " + std::to_string(worker) +
                  " exited cleanly but left no readable manifest" +
                  (parse_failed ? (": " + error) : ""));
    }
    status.items_done += manifest->completed - manifest->range_begin;
    status.peak_worker_rss_kb =
        std::max(status.peak_worker_rss_kb, manifest->peak_rss_kb);
  }
  return status;
#else
  return Fail("shard runner: multi-process mode requires a POSIX platform "
              "(use --processes 1)");
#endif
}

MergeStatus MergeShardSpills(const ShardRunnerConfig& config,
                             const MergeConsumer& consumer) {
  MergeStatus status;
  auto fail = [&status](std::string message) -> MergeStatus& {
    status.ok = false;
    status.complete = false;
    status.error = std::move(message);
    return status;
  };
  auto pending = [&status](std::string message) -> MergeStatus& {
    status.ok = true;
    status.complete = false;
    status.error = std::move(message);
    return status;
  };

  std::uint64_t expected_index = 0;
  for (int shard = 0; shard < config.shard.count; ++shard) {
    const ShardSpec spec{shard, config.shard.count};
    // Worker 0's manifest tells us how many processes ran this shard — a
    // cluster may size each shard invocation differently.
    const SpillPaths first = WorkerSpillPaths(config.spill_dir, spec, 0);
    bool parse_failed = false;
    std::string error;
    const auto lead =
        LoadCheckpointManifest(first.manifest, &parse_failed, &error);
    if (!lead.has_value()) {
      if (parse_failed) return fail(error);
      return pending("shard " + std::to_string(shard) + "/" +
                     std::to_string(config.shard.count) +
                     " has no checkpoint yet — merge pending");
    }
    const int processes = std::max(lead->processes, 1);

    for (int worker = 0; worker < processes; ++worker) {
      const SpillPaths paths = WorkerSpillPaths(config.spill_dir, spec, worker);
      const auto manifest =
          LoadCheckpointManifest(paths.manifest, &parse_failed, &error);
      if (!manifest.has_value()) {
        if (parse_failed) return fail(error);
        return pending("shard " + std::to_string(shard) + " worker " +
                       std::to_string(worker) +
                       " has no checkpoint yet — merge pending");
      }
      if (manifest->fingerprint != config.fingerprint) {
        return fail("merge: shard " + std::to_string(shard) + " worker " +
                    std::to_string(worker) +
                    " fingerprint mismatch — the spill dir holds a "
                    "different sweep's checkpoints");
      }
      const ItemRange range = [&] {
        ShardRunnerConfig scoped = config;
        scoped.shard = spec;
        return WorkerItemRange(scoped, shard, processes, worker);
      }();
      if (manifest->range_begin != range.begin ||
          manifest->range_end != range.end ||
          manifest->processes != processes ||
          manifest->shard_count != config.shard.count) {
        return fail("merge: shard " + std::to_string(shard) + " worker " +
                    std::to_string(worker) +
                    " manifest range disagrees with the sweep topology");
      }
      if (!manifest->done()) {
        return pending("shard " + std::to_string(shard) + " worker " +
                       std::to_string(worker) + " is at call " +
                       std::to_string(manifest->completed) + " of " +
                       RangeText(range) + " — merge pending");
      }

      if (manifest->range_begin != expected_index) {
        return fail("merge: shard " + std::to_string(shard) + " worker " +
                    std::to_string(worker) + " starts at " +
                    std::to_string(manifest->range_begin) + ", expected " +
                    std::to_string(expected_index));
      }

      // Results: stream, validate the index sequence, hand lines over.
      if (!ForEachSpillLine(
              paths.results, manifest->results_bytes,
              [&](std::string_view line) {
                if (!CheckResultLine(line, expected_index)) return false;
                if (consumer.on_result_line) {
                  consumer.on_result_line(expected_index, line);
                }
                ++expected_index;
                return true;
              },
              &error)) {
        return fail(error.empty()
                        ? ("merge: " + paths.results +
                           " holds a corrupt or out-of-sequence line near "
                           "call " + std::to_string(expected_index))
                        : error);
      }
      if (expected_index != range.end) {
        return fail("merge: " + paths.results + " holds " +
                    std::to_string(expected_index - range.begin) +
                    " calls, manifest promises " +
                    std::to_string(range.size()));
      }

      // Metrics: parse-merge each serialized chunk registry line.
      if (consumer.metrics != nullptr && manifest->metrics_bytes > 0) {
        if (!ForEachSpillLine(
                paths.metrics, manifest->metrics_bytes,
                [&](std::string_view line) {
                  // Lines keep their '\n'; the codec takes the bare line.
                  return obs::MergeSerializedRegistryLine(
                      line.substr(0, line.size() - 1), consumer.metrics,
                      &error);
                },
                &error)) {
          return fail("merge: " + paths.metrics + ": " + error);
        }
      }

      // Timeline: pure ordered concatenation (per-call lines are already
      // "call":N-stamped and internally (t)-ordered, so worker-major order
      // equals the (t, shard) stream-merge rule applied per call).
      if (consumer.on_timeline && manifest->timeline_bytes > 0) {
        if (!ForEachSpillChunk(paths.timeline, manifest->timeline_bytes,
                               consumer.on_timeline, &error)) {
          return fail("merge: " + paths.timeline + ": " + error);
        }
      }

      status.peak_worker_rss_kb =
          std::max(status.peak_worker_rss_kb, manifest->peak_rss_kb);
    }
  }
  if (expected_index != config.total_items) {
    return fail("merge: shards cover " + std::to_string(expected_index) +
                " calls, sweep declares " +
                std::to_string(config.total_items));
  }
  status.ok = true;
  status.complete = true;
  status.items = expected_index;
  return status;
}

}  // namespace kwikr::fleet
