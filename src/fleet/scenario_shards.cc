#include "fleet/scenario_shards.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string_view>

namespace kwikr::fleet {
namespace {

/// Extracts the sim-time stamp from one JSONL line: the integer after the
/// first `"t":`. Returns false when the line has no stamp.
bool LineTime(std::string_view line, std::int64_t* t) {
  const std::size_t key = line.find("\"t\":");
  if (key == std::string_view::npos) return false;
  std::size_t i = key + 4;
  bool negative = false;
  if (i < line.size() && line[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  std::int64_t value = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    value = value * 10 + (line[i] - '0');
  }
  *t = negative ? -value : value;
  return true;
}

struct MergeLine {
  std::int64_t t = 0;
  std::uint32_t shard = 0;
  std::uint32_t begin = 0;  ///< offset into its shard's stream.
  std::uint32_t length = 0;
};

}  // namespace

std::string MergeShardStreams(const std::vector<std::string>& shards) {
  std::vector<MergeLine> lines;
  std::size_t total_bytes = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string& stream = shards[s];
    total_bytes += stream.size();
    // Untimed lines inherit the previous line's stamp so preamble/summary
    // annotations stay attached; a leading untimed line sorts first.
    std::int64_t last_t = std::numeric_limits<std::int64_t>::min();
    std::size_t begin = 0;
    while (begin < stream.size()) {
      std::size_t end = stream.find('\n', begin);
      if (end == std::string::npos) {
        end = stream.size();
      } else {
        ++end;  // keep the newline with its line.
      }
      std::int64_t t = last_t;
      if (LineTime(std::string_view(stream).substr(begin, end - begin), &t)) {
        last_t = t;
      }
      lines.push_back(MergeLine{t, static_cast<std::uint32_t>(s),
                                static_cast<std::uint32_t>(begin),
                                static_cast<std::uint32_t>(end - begin)});
      begin = end;
    }
  }
  // Stable sort on (t, shard): a shard's equal-time lines keep their
  // original relative order, and ties across shards resolve by shard index
  // — the deterministic cross-shard ordering rule (DESIGN.md §14).
  std::stable_sort(lines.begin(), lines.end(),
                   [](const MergeLine& a, const MergeLine& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.shard < b.shard;
                   });
  std::string out;
  out.reserve(total_bytes);
  for (const MergeLine& line : lines) {
    out.append(shards[line.shard], line.begin, line.length);
  }
  return out;
}

}  // namespace kwikr::fleet
