#pragma once

// Internal: per-algorithm factory functions, one per cc_*.cc translation
// unit. Users go through MakeCongestionControl in congestion_control.h.

#include <memory>

#include "transport/congestion_control.h"

namespace kwikr::transport::detail {

std::unique_ptr<CongestionControl> MakeRenoCc(const CcConfig& config);
std::unique_ptr<CongestionControl> MakeCubicCc(const CcConfig& config);
std::unique_ptr<CongestionControl> MakeWestwoodCc(const CcConfig& config);
std::unique_ptr<CongestionControl> MakeBbrCc(const CcConfig& config);

}  // namespace kwikr::transport::detail
