#include <algorithm>
#include <memory>

#include "transport/cc_impl.h"
#include "transport/congestion_control.h"

namespace kwikr::transport {
namespace {

/// TCP Reno / NewReno window arithmetic, lifted verbatim from the original
/// TcpRenoSender so the refactored sender stays bit-identical: the same
/// doubles mutated by the same operations in the same order for any given
/// ACK/loss/RTO trace.
class RenoCc final : public CongestionControl {
 public:
  explicit RenoCc(const CcConfig& config) : cwnd_(config.initial_cwnd) {}

  void OnAck(std::int64_t /*newly_acked*/, std::int64_t /*in_flight*/,
             sim::Time /*now*/) override {
    // Per-ACK-arrival growth (not per newly-acked segment), exactly as
    // before the interface extraction.
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start.
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance.
    }
  }

  void OnDupAckInRecovery() override { cwnd_ += 1.0; }

  void OnLoss(sim::Time /*now*/) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_ + 3.0;
  }

  void OnPartialAck() override { cwnd_ = std::max(ssthresh_, cwnd_ - 1.0); }

  void OnRecoveryExit(sim::Time /*now*/) override { cwnd_ = ssthresh_; }

  void OnRto(sim::Time /*now*/) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = 1.0;
  }

  void OnRttSample(sim::Duration /*sample*/, sim::Time /*now*/) override {}

  [[nodiscard]] double cwnd() const override { return cwnd_; }
  [[nodiscard]] double ssthresh() const override { return ssthresh_; }
  [[nodiscard]] const char* name() const override { return "reno"; }

 private:
  double cwnd_;
  double ssthresh_ = 1e9;
};

}  // namespace

namespace detail {
std::unique_ptr<CongestionControl> MakeRenoCc(const CcConfig& config) {
  return std::make_unique<RenoCc>(config);
}
}  // namespace detail

}  // namespace kwikr::transport
