#include "transport/udp_stream.h"

#include <algorithm>
#include <utility>

namespace kwikr::transport {

UdpCbrSender::UdpCbrSender(sim::EventLoop& loop, net::PacketIdAllocator& ids,
                           Config config, SendFn send)
    : loop_(loop),
      ids_(ids),
      config_(config),
      send_(std::move(send)),
      timer_(loop, config.interval, [this] { Emit(); }) {}

void UdpCbrSender::Start() { timer_.Start(sim::Duration{0}); }

void UdpCbrSender::Stop() { timer_.Stop(); }

void UdpCbrSender::Emit() {
  net::Packet packet;
  packet.id = ids_.Next();
  packet.protocol = net::Protocol::kUdp;
  packet.src = config_.src;
  packet.dst = config_.dst;
  packet.tos = config_.tos;
  packet.flow = config_.flow;
  packet.size_bytes = config_.packet_bytes;
  packet.created_at = loop_.now();
  packet.udp.sequence = sequence_++;
  packet.udp.sender_timestamp = loop_.now();
  send_(std::move(packet));
}

void UdpOwdReceiver::OnPacket(const net::Packet& packet, sim::Time arrival) {
  if (packet.protocol != net::Protocol::kUdp || packet.flow != flow_) return;
  const sim::Duration owd = arrival - packet.udp.sender_timestamp;
  if (!has_min_ || owd < min_owd_) {
    min_owd_ = owd;
    has_min_ = true;
  }
  samples_.push_back(Sample{arrival, owd});
}

std::vector<double> UdpOwdReceiver::NormalizedOwdMillis() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(sim::ToMillis(s.owd - min_owd_));
  }
  return out;
}

}  // namespace kwikr::transport
