#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::transport {

/// Token-bucket rate limiter with a bounded FIFO backlog, matching the
/// paper's self-congestion experiment ("bandwidth was artificially throttled
/// mid-stream using a token bucket filter", Section 8.3 / Figure 9).
///
/// Packets that arrive when the bucket is empty queue (adding delay); when
/// the backlog is full they are dropped (adding loss). `SetRate` changes the
/// drain rate mid-simulation; rate 0 disables shaping entirely (packets pass
/// through unconditionally).
class TokenBucket {
 public:
  using ForwardFn = std::function<void(net::Packet)>;

  struct Config {
    std::int64_t rate_bps = 0;           ///< 0 = unshaped passthrough.
    std::int64_t burst_bytes = 15'000;
    std::size_t queue_capacity_packets = 100;
  };

  TokenBucket(sim::EventLoop& loop, Config config, ForwardFn forward);

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  void Send(net::Packet packet);

  /// Changes the shaping rate; 0 disables shaping and flushes the backlog.
  void SetRate(std::int64_t rate_bps);

  [[nodiscard]] std::int64_t rate_bps() const { return config_.rate_bps; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  void Refill();
  void Drain();
  void Forward(net::Packet packet);

  sim::EventLoop& loop_;
  Config config_;
  ForwardFn forward_;
  std::deque<net::Packet> queue_;
  double tokens_bytes_;
  sim::Time last_refill_ = 0;
  sim::EventId drain_event_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace kwikr::transport
