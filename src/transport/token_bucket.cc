#include "transport/token_bucket.h"

#include <algorithm>
#include <utility>

namespace kwikr::transport {

TokenBucket::TokenBucket(sim::EventLoop& loop, Config config,
                         ForwardFn forward)
    : loop_(loop),
      config_(config),
      forward_(std::move(forward)),
      tokens_bytes_(static_cast<double>(config.burst_bytes)),
      last_refill_(loop.now()) {}

void TokenBucket::Send(net::Packet packet) {
  if (config_.rate_bps <= 0) {
    Forward(std::move(packet));
    return;
  }
  Refill();
  if (queue_.empty() &&
      tokens_bytes_ >= static_cast<double>(packet.size_bytes)) {
    // Unqueued fast path: spend tokens directly. Same arithmetic as
    // push-then-Drain, but it also works with queue_capacity_packets == 0
    // (a pure policer), which previously dropped despite a full bucket.
    tokens_bytes_ -= static_cast<double>(packet.size_bytes);
    Forward(std::move(packet));
    return;
  }
  if (queue_.size() >= config_.queue_capacity_packets) {
    ++dropped_;
    return;
  }
  queue_.push_back(std::move(packet));
  Drain();
}

void TokenBucket::SetRate(std::int64_t rate_bps) {
  Refill();  // settle tokens at the old rate first.
  config_.rate_bps = rate_bps;
  if (rate_bps <= 0) {
    if (drain_event_ != 0) {
      loop_.Cancel(drain_event_);
      drain_event_ = 0;
    }
    while (!queue_.empty()) {
      Forward(std::move(queue_.front()));
      queue_.pop_front();
    }
    return;
  }
  Drain();
}

void TokenBucket::Refill() {
  const sim::Time now = loop_.now();
  if (config_.rate_bps > 0 && now > last_refill_) {
    tokens_bytes_ += static_cast<double>(config_.rate_bps) / 8.0 *
                     sim::ToSeconds(now - last_refill_);
    tokens_bytes_ =
        std::min(tokens_bytes_, static_cast<double>(config_.burst_bytes));
  }
  last_refill_ = now;
}

void TokenBucket::Drain() {
  Refill();
  while (!queue_.empty() &&
         tokens_bytes_ >= static_cast<double>(queue_.front().size_bytes)) {
    tokens_bytes_ -= static_cast<double>(queue_.front().size_bytes);
    Forward(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (queue_.empty() || drain_event_ != 0) return;
  if (static_cast<std::int64_t>(queue_.front().size_bytes) >
      config_.burst_bytes) {
    // Tokens cap at burst_bytes, so this head can never drain at the
    // current rate; a wake-up would just reschedule itself forever. The
    // packet waits for a SetRate (rate 0 flushes; a real rate re-Drains).
    return;
  }
  // Wake up when enough tokens have accrued for the head packet.
  const double deficit =
      static_cast<double>(queue_.front().size_bytes) - tokens_bytes_;
  const double seconds = deficit * 8.0 / static_cast<double>(config_.rate_bps);
  auto drain = [this] {
    drain_event_ = 0;
    Drain();
  };
  static_assert(sim::InlineTask::fits_inline<decltype(drain)>);
  drain_event_ = loop_.ScheduleIn(sim::FromSeconds(seconds) + 1,
                                  "net.token_drain", std::move(drain));
}

void TokenBucket::Forward(net::Packet packet) {
  ++forwarded_;
  forward_(std::move(packet));
}

}  // namespace kwikr::transport
