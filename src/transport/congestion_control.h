#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/time.h"

namespace kwikr::transport {

/// The sender-side congestion-control algorithms available to TcpSender.
/// kReno is the paper's 2017 cross-traffic world; the others exist to answer
/// the question the paper couldn't: does Ping-Pair's Tq/Ta/Tc attribution
/// survive rate-based (BBR-style) senders and modern AQM bottlenecks?
enum class CcAlgorithm : std::uint8_t {
  kReno,      ///< AIMD + NewReno fast recovery (the historical default).
  kCubic,     ///< RFC 8312 cubic window growth, beta = 0.7.
  kWestwood,  ///< Westwood+: ACK-rate bandwidth estimate sets ssthresh.
  kBbr,       ///< Model-based rate sender: windowed max-BW / min-RTT, paced.
};

/// Schedule name of an algorithm ("reno", "cubic", "westwood", "bbr").
const char* Name(CcAlgorithm algorithm);

/// Parses a schedule name; returns false on unknown input.
bool ParseCcAlgorithm(std::string_view text, CcAlgorithm* out);

/// Parameters every algorithm shares (segment-counted sequence space, like
/// TcpSender itself).
struct CcConfig {
  std::int32_t mss_bytes = 1460;   ///< payload per segment.
  std::int32_t header_bytes = 40;  ///< IP+TCP overhead (wire-rate maths).
  double initial_cwnd = 10.0;      ///< RFC 6928 initial window.
};

/// Congestion-control state machine extracted from the original
/// TcpRenoSender. The sender owns reliability (sequence numbers, dup-ACK
/// counting, RTO timers, what to retransmit) and calls into this interface
/// at every window-relevant transition; the implementation owns cwnd /
/// ssthresh / pacing-rate evolution.
///
/// Units: cwnd and ssthresh are in segments (doubles, exactly as the
/// original Reno arithmetic kept them); pacing_rate_bps is wire bits per
/// second, 0 meaning "not a pacing algorithm — window-limit only".
///
/// Determinism: implementations must be pure functions of the call sequence
/// (no wall clock, no ambient randomness), so a sender driven by the same
/// simulated trace reproduces the same windows bit for bit.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// New cumulative data acknowledged outside fast recovery:
  /// `newly_acked` segments left the network, `in_flight` remain after this
  /// ACK. Reno-family algorithms grow per ACK arrival; rate-based ones feed
  /// their delivery-rate model from `newly_acked` over time.
  virtual void OnAck(std::int64_t newly_acked, std::int64_t in_flight,
                     sim::Time now) = 0;

  /// Duplicate ACK while the sender is already in fast recovery (Reno
  /// inflates the window by one segment; others typically ignore it).
  virtual void OnDupAckInRecovery() = 0;

  /// Third duplicate ACK: the sender is entering fast recovery and will
  /// retransmit the hole. The algorithm applies its multiplicative decrease.
  virtual void OnLoss(sim::Time now) = 0;

  /// NewReno partial ACK inside fast recovery (another hole follows).
  virtual void OnPartialAck() = 0;

  /// The recovery point was reached; the sender leaves fast recovery.
  virtual void OnRecoveryExit(sim::Time now) = 0;

  /// Retransmission timeout fired; the sender restarts from the hole.
  virtual void OnRto(sim::Time now) = 0;

  /// A clean (Karn-filtered) RTT sample from a timed segment.
  virtual void OnRttSample(sim::Duration sample, sim::Time now) = 0;

  [[nodiscard]] virtual double cwnd() const = 0;
  [[nodiscard]] virtual double ssthresh() const = 0;
  /// Current pacing rate in bits/sec; 0 = unpaced (window-limited only).
  [[nodiscard]] virtual std::int64_t pacing_rate_bps() const { return 0; }
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Builds the named algorithm. Never returns null.
std::unique_ptr<CongestionControl> MakeCongestionControl(
    CcAlgorithm algorithm, const CcConfig& config);

}  // namespace kwikr::transport
