#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace kwikr::transport {

/// Constant-bit-rate UDP sender. Used for the interference experiment's
/// simulated call ("a downlink stream of UDP packets with an inter-packet
/// interval of 20 ms", Section 8.1) and for the channel contenders of the
/// channel-access-delay experiments ("uploaded UDP packets at the rate of
/// one per millisecond", Section 8.2).
class UdpCbrSender {
 public:
  struct Config {
    net::Address src = 0;
    net::Address dst = 0;
    net::FlowId flow = net::kNoFlow;
    std::uint8_t tos = net::kTosBestEffort;
    std::int32_t packet_bytes = 1200;
    sim::Duration interval = sim::Millis(20);
  };

  using SendFn = std::function<void(net::Packet)>;

  UdpCbrSender(sim::EventLoop& loop, net::PacketIdAllocator& ids,
               Config config, SendFn send);

  void Start();
  void Stop();
  [[nodiscard]] bool running() const { return timer_.running(); }
  [[nodiscard]] std::uint64_t sent() const { return sequence_; }

 private:
  void Emit();

  sim::EventLoop& loop_;
  net::PacketIdAllocator& ids_;
  Config config_;
  SendFn send_;
  sim::PeriodicTimer timer_;
  std::uint64_t sequence_ = 0;
};

/// Records one-way delay samples of a UDP flow, normalized by the minimum
/// observed delay (the paper's clock-offset normalization in Figure 5).
class UdpOwdReceiver {
 public:
  struct Sample {
    sim::Time arrival = 0;
    sim::Duration owd = 0;  ///< raw arrival - sender_timestamp.
  };

  explicit UdpOwdReceiver(net::FlowId flow) : flow_(flow) {}

  void OnPacket(const net::Packet& packet, sim::Time arrival);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::uint64_t received() const { return samples_.size(); }
  /// Minimum raw OWD seen so far (propagation + clock offset baseline).
  [[nodiscard]] sim::Duration min_owd() const { return min_owd_; }
  /// Normalized OWD (sample minus minimum) in milliseconds, per sample.
  [[nodiscard]] std::vector<double> NormalizedOwdMillis() const;

 private:
  net::FlowId flow_;
  std::vector<Sample> samples_;
  sim::Duration min_owd_ = 0;
  bool has_min_ = false;
};

}  // namespace kwikr::transport
