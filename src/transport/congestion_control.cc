#include "transport/congestion_control.h"

#include "transport/cc_impl.h"

namespace kwikr::transport {

const char* Name(CcAlgorithm algorithm) {
  switch (algorithm) {
    case CcAlgorithm::kReno:
      return "reno";
    case CcAlgorithm::kCubic:
      return "cubic";
    case CcAlgorithm::kWestwood:
      return "westwood";
    case CcAlgorithm::kBbr:
      return "bbr";
  }
  return "unknown";
}

bool ParseCcAlgorithm(std::string_view text, CcAlgorithm* out) {
  if (text == "reno") {
    *out = CcAlgorithm::kReno;
  } else if (text == "cubic") {
    *out = CcAlgorithm::kCubic;
  } else if (text == "westwood") {
    *out = CcAlgorithm::kWestwood;
  } else if (text == "bbr") {
    *out = CcAlgorithm::kBbr;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<CongestionControl> MakeCongestionControl(
    CcAlgorithm algorithm, const CcConfig& config) {
  switch (algorithm) {
    case CcAlgorithm::kCubic:
      return detail::MakeCubicCc(config);
    case CcAlgorithm::kWestwood:
      return detail::MakeWestwoodCc(config);
    case CcAlgorithm::kBbr:
      return detail::MakeBbrCc(config);
    case CcAlgorithm::kReno:
      break;
  }
  return detail::MakeRenoCc(config);
}

}  // namespace kwikr::transport
