#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "net/packet.h"
#include "obs/flight_recorder.h"
#include "sim/event_loop.h"
#include "sim/time.h"
#include "transport/congestion_control.h"
#include "transport/token_bucket.h"

namespace kwikr::transport {

/// Path egress used by transport endpoints: hands the packet to whatever
/// carries it (a wired link, a Wi-Fi station, a token bucket, ...).
using SendFn = std::function<void(net::Packet)>;

/// Bulk-transfer TCP sender. This is the cross-traffic generator the paper
/// uses throughout ("congestion in the form of TCP bulk transfers"). The
/// sender owns reliability — sequence numbers, cumulative/duplicate ACK
/// accounting, fast retransmit on three dup-ACKs, NewReno partial-ACK
/// retransmission, and RTO with exponential backoff — and delegates window
/// and pacing-rate evolution to a pluggable CongestionControl (Reno by
/// default, bit-identical to the original TcpRenoSender; also CUBIC,
/// Westwood+, and a paced BBR-style model). Sequence numbers count
/// segments, not bytes.
class TcpSender {
 public:
  struct Config {
    std::int32_t mss_bytes = 1460;       ///< payload per segment.
    std::int32_t header_bytes = 40;      ///< IP+TCP header overhead.
    double initial_cwnd = 10.0;          ///< RFC 6928 initial window.
    sim::Duration min_rto = sim::Millis(200);
    /// Practical cap: RFC 6298 allows 60 s, but a minute-long dead time
    /// after a congestion episode would dominate every experiment window.
    sim::Duration max_rto = sim::Seconds(8);
    std::int64_t max_in_flight = 1'000;  ///< receive-window stand-in.
    CcAlgorithm cc = CcAlgorithm::kReno;
  };

  TcpSender(sim::EventLoop& loop, net::FlowId flow, net::Address src,
            net::Address dst, net::PacketIdAllocator& ids, SendFn send,
            Config config);
  TcpSender(sim::EventLoop& loop, net::FlowId flow, net::Address src,
            net::Address dst, net::PacketIdAllocator& ids, SendFn send);

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;
  ~TcpSender();

  /// Begins the bulk transfer (unlimited data).
  void Start();
  /// Stops transmitting and cancels timers.
  void Stop();

  /// Feed an incoming ACK packet (tcp.is_ack) to the sender.
  void OnAck(const net::Packet& ack);

  [[nodiscard]] double cwnd() const { return cc_->cwnd(); }
  [[nodiscard]] double ssthresh() const { return cc_->ssthresh(); }
  [[nodiscard]] const CongestionControl& congestion_control() const {
    return *cc_;
  }
  [[nodiscard]] std::int64_t segments_acked() const { return high_ack_; }
  [[nodiscard]] std::int64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::int64_t timeouts() const { return timeouts_; }
  [[nodiscard]] sim::Duration srtt() const { return srtt_; }
  [[nodiscard]] net::FlowId flow() const { return flow_; }
  [[nodiscard]] std::int64_t in_flight() const { return next_seq_ - high_ack_; }
  [[nodiscard]] bool rto_armed() const { return rto_event_ != 0; }
  [[nodiscard]] bool in_fast_recovery() const { return in_fast_recovery_; }

  /// Attaches a flight recorder: retransmissions and RTO firings get
  /// recorded (value = flow id). Null detaches; detached cost is one null
  /// check on paths that are already loss paths.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  void TrySend();
  void SendSegment(std::int64_t seq, bool retransmission);
  void ArmRto();
  void OnRto();
  void EnterFastRecovery();
  void SyncPacer();

  sim::EventLoop& loop_;
  net::FlowId flow_;
  net::Address src_;
  net::Address dst_;
  net::PacketIdAllocator& ids_;
  SendFn send_;
  Config config_;

  std::unique_ptr<CongestionControl> cc_;
  /// Pacer for rate-based algorithms (BBR); null for window-only senders so
  /// the Reno fast path is untouched.
  std::unique_ptr<TokenBucket> pacer_;

  bool running_ = false;
  std::int64_t next_seq_ = 0;   ///< next new segment to send.
  std::int64_t high_ack_ = 0;   ///< cumulative: all segments < high_ack_ acked.
  int dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  std::int64_t recovery_point_ = 0;

  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_ = sim::Seconds(1);
  sim::EventId rto_event_ = 0;
  int rto_backoff_ = 0;
  std::int64_t rtt_probe_seq_ = -1;   ///< segment being timed (Karn's rule).
  sim::Time rtt_probe_sent_ = 0;

  std::int64_t retransmissions_ = 0;
  std::int64_t timeouts_ = 0;
  obs::FlightRecorder* recorder_ = nullptr;
};

/// Historical name from before the CongestionControl extraction; every
/// pre-existing call site constructs a Reno-configured TcpSender.
using TcpRenoSender = TcpSender;

/// TCP receiver half: generates cumulative ACKs (one per segment, no
/// delayed ACK) and tracks goodput for rate plots.
class TcpRenoReceiver {
 public:
  TcpRenoReceiver(net::FlowId flow, net::Address src, net::Address dst,
                  net::PacketIdAllocator& ids, SendFn send,
                  std::int32_t ack_bytes = 40);

  /// Feed an incoming data segment.
  void OnSegment(const net::Packet& segment, sim::Time arrival);

  /// Cumulative in-order segments received.
  [[nodiscard]] std::int64_t segments_received() const { return cumulative_; }
  /// Total in-order payload bytes received.
  [[nodiscard]] std::int64_t bytes_received() const { return bytes_; }

 private:
  net::FlowId flow_;
  net::Address src_;
  net::Address dst_;
  net::PacketIdAllocator& ids_;
  SendFn send_;
  std::int32_t ack_bytes_;
  std::int64_t cumulative_ = 0;  ///< all segments < cumulative_ received.
  std::int64_t bytes_ = 0;
  std::set<std::int64_t> out_of_order_;
};

}  // namespace kwikr::transport
