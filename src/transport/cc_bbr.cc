#include <algorithm>
#include <memory>
#include <vector>

#include "transport/cc_impl.h"
#include "transport/congestion_control.h"

namespace kwikr::transport {
namespace {

/// Model-based, BBR-style rate sender. Instead of probing for loss it
/// maintains a model of the path — a windowed-max filter over delivery-rate
/// samples (bottleneck bandwidth) and a windowed-min filter over RTT
/// samples (propagation delay) — and sets
///
///   cwnd        = cwnd_gain  * BDP        (loss events don't shrink it)
///   pacing_rate = pacing_gain * btl_bw    (enforced by TcpSender's
///                                          TokenBucket pacer)
///
/// through the STARTUP -> DRAIN -> PROBE_BW state machine of the BBR v1
/// draft. This is explicitly a *model*, not a port: no ProbeRTT state, and
/// delivery rate is measured from cumulative-ACK arrivals. It keeps the
/// defining behaviour the AQM grid needs — a sender that regulates the
/// bottleneck queue by pacing rather than by filling it until drop-tail
/// pushes back, so its Tq signature is flat where Reno's saw-tooths.
class BbrCc final : public CongestionControl {
 public:
  static constexpr double kHighGain = 2.885;  ///< 2/ln(2): double each RTT.
  static constexpr double kDrainGain = 1.0 / kHighGain;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kBwWindowRounds = 10;
  static constexpr sim::Duration kMinRttWindow = sim::Seconds(10);

  explicit BbrCc(const CcConfig& config)
      : wire_bits_per_segment_(
            8.0 * static_cast<double>(config.mss_bytes + config.header_bytes)),
        cwnd_(config.initial_cwnd) {}

  void OnAck(std::int64_t newly_acked, std::int64_t in_flight,
             sim::Time now) override {
    // Delivery-rate sample: segments acknowledged per unit time. ACKs that
    // land on the same tick pool into one sample so the rate stays finite.
    pending_acked_ += newly_acked;
    if (last_ack_at_ == 0) {
      last_ack_at_ = now;
      pending_acked_ = 0;
    } else if (now > last_ack_at_) {
      const double bps = static_cast<double>(pending_acked_) *
                         wire_bits_per_segment_ /
                         sim::ToSeconds(now - last_ack_at_);
      // DRAIN throttles the pacer to ~0.35x the estimate, so its delivery
      // rate reflects the gain, not the path; feeding those samples into
      // the max filter would ratchet the model downward once the honest
      // STARTUP samples age out of the window.
      if (state_ != State::kDrain) RecordBwSample(bps);
      pending_acked_ = 0;
      last_ack_at_ = now;
    }
    if (state_ == State::kDrain &&
        static_cast<double>(in_flight) <= BdpSegments()) {
      state_ = State::kProbeBw;
      cycle_index_ = 0;
    }
    UpdateCwnd();
  }

  void OnDupAckInRecovery() override {}

  // BBR's model is loss-agnostic: drops at an AQM bottleneck are signal for
  // window-based senders, not for a pacer already sitting at the estimated
  // bandwidth. The sender still retransmits; the model doesn't flinch.
  void OnLoss(sim::Time /*now*/) override {}
  void OnPartialAck() override {}
  void OnRecoveryExit(sim::Time /*now*/) override {}

  void OnRto(sim::Time now) override {
    // Persistent loss of feedback means the model is stale; restart the
    // bandwidth filter rather than blasting at the old estimate.
    bw_window_.clear();
    full_bw_bps_ = 0.0;
    full_bw_rounds_ = 0;
    state_ = State::kStartup;
    last_ack_at_ = 0;
    pending_acked_ = 0;
    UpdateCwnd();
    (void)now;
  }

  void OnRttSample(sim::Duration sample, sim::Time now) override {
    if (min_rtt_ == 0 || sample <= min_rtt_ ||
        now - min_rtt_stamp_ > kMinRttWindow) {
      min_rtt_ = sample;
      min_rtt_stamp_ = now;
    }
    // The sender times roughly one segment per window, so each clean sample
    // marks a new round trip: advance the round-based machinery.
    ++round_;
    ExpireBwWindow();
    switch (state_) {
      case State::kStartup:
        CheckStartupFull();
        break;
      case State::kDrain:
        break;
      case State::kProbeBw:
        cycle_index_ = (cycle_index_ + 1) % 8;
        break;
    }
    UpdateCwnd();
  }

  [[nodiscard]] double cwnd() const override { return cwnd_; }
  /// BBR has no ssthresh; report the current window so scrapes stay sane.
  [[nodiscard]] double ssthresh() const override { return cwnd_; }

  [[nodiscard]] std::int64_t pacing_rate_bps() const override {
    const double bw = BtlBwBps();
    if (bw <= 0.0) return 0;  // model empty: unpaced first flight.
    double gain = 1.0;
    switch (state_) {
      case State::kStartup:
        gain = kHighGain;
        break;
      case State::kDrain:
        gain = kDrainGain;
        break;
      case State::kProbeBw:
        gain = kCycleGains[cycle_index_];
        break;
    }
    return static_cast<std::int64_t>(gain * bw);
  }

  [[nodiscard]] const char* name() const override { return "bbr"; }

 private:
  enum class State { kStartup, kDrain, kProbeBw };

  static constexpr double kCycleGains[8] = {1.25, 0.75, 1.0, 1.0,
                                            1.0,  1.0,  1.0, 1.0};

  struct BwSample {
    std::int64_t round;
    double bps;
  };

  void RecordBwSample(double bps) {
    bw_window_.push_back({round_, bps});
    ExpireBwWindow();
  }

  void ExpireBwWindow() {
    while (!bw_window_.empty() &&
           bw_window_.front().round < round_ - kBwWindowRounds) {
      bw_window_.erase(bw_window_.begin());
    }
  }

  [[nodiscard]] double BtlBwBps() const {
    double best = 0.0;
    for (const BwSample& s : bw_window_) best = std::max(best, s.bps);
    return best;
  }

  [[nodiscard]] double BdpSegments() const {
    const double bw = BtlBwBps();
    if (bw <= 0.0 || min_rtt_ == 0) return cwnd_;
    return bw * sim::ToSeconds(min_rtt_) / wire_bits_per_segment_;
  }

  void CheckStartupFull() {
    const double bw = BtlBwBps();
    if (bw > full_bw_bps_ * 1.25) {
      full_bw_bps_ = bw;
      full_bw_rounds_ = 0;
      return;
    }
    if (full_bw_bps_ > 0.0 && ++full_bw_rounds_ >= 3) {
      state_ = State::kDrain;  // pipe full: drain the startup queue.
    }
  }

  void UpdateCwnd() {
    if (BtlBwBps() <= 0.0 || min_rtt_ == 0) return;  // keep initial window.
    cwnd_ = std::max(kCwndGain * BdpSegments(), 4.0);
  }

  const double wire_bits_per_segment_;
  double cwnd_;
  State state_ = State::kStartup;
  int cycle_index_ = 0;

  std::vector<BwSample> bw_window_;
  std::int64_t round_ = 0;
  double full_bw_bps_ = 0.0;
  int full_bw_rounds_ = 0;

  sim::Duration min_rtt_ = 0;
  sim::Time min_rtt_stamp_ = 0;

  std::int64_t pending_acked_ = 0;
  sim::Time last_ack_at_ = 0;
};

}  // namespace

namespace detail {
std::unique_ptr<CongestionControl> MakeBbrCc(const CcConfig& config) {
  return std::make_unique<BbrCc>(config);
}
}  // namespace detail

}  // namespace kwikr::transport
