#include <algorithm>
#include <memory>

#include "transport/cc_impl.h"
#include "transport/congestion_control.h"

namespace kwikr::transport {
namespace {

/// TCP Westwood+ : Reno-style growth, but the backoff on loss is informed
/// by an end-to-end bandwidth estimate instead of blind halving. The
/// estimate is the ACK rate (acked wire bytes per sample interval) run
/// through the Westwood+ two-stage low-pass filter; on loss the window
/// collapses to the estimated bandwidth-delay product (bw * RTTmin), which
/// deliberately *drains the standing queue* — the anti-bufferbloat behaviour
/// that makes its Tq signature differ from Reno's.
class WestwoodCc final : public CongestionControl {
 public:
  explicit WestwoodCc(const CcConfig& config)
      : wire_bits_per_segment_(
            8.0 * static_cast<double>(config.mss_bytes + config.header_bytes)),
        cwnd_(config.initial_cwnd) {}

  void OnAck(std::int64_t newly_acked, std::int64_t /*in_flight*/,
             sim::Time now) override {
    // Bandwidth sampling: one sample per RTT-ish interval of ACK arrivals.
    acked_in_interval_ += newly_acked;
    if (interval_start_ == 0) {
      interval_start_ = now;
      acked_in_interval_ = 0;
    } else if (now - interval_start_ >= SampleInterval()) {
      const double seconds = sim::ToSeconds(now - interval_start_);
      const double sample = static_cast<double>(acked_in_interval_) *
                            wire_bits_per_segment_ / seconds;
      // Westwood+ filter: average consecutive raw samples, then EWMA.
      const double smoothed = (sample + prev_sample_) / 2.0;
      prev_sample_ = sample;
      bw_est_bps_ =
          bw_est_bps_ == 0.0 ? smoothed : 0.9 * bw_est_bps_ + 0.1 * smoothed;
      interval_start_ = now;
      acked_in_interval_ = 0;
    }
    // Window growth is plain Reno.
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
    } else {
      cwnd_ += 1.0 / cwnd_;
    }
  }

  void OnDupAckInRecovery() override { cwnd_ += 1.0; }

  void OnLoss(sim::Time /*now*/) override {
    ssthresh_ = BdpSegments();
    // Faster-than-Reno recovery when below the pipe size: jump straight to
    // the estimated BDP rather than deflating below it.
    cwnd_ = std::max(std::min(cwnd_, ssthresh_), 2.0);
  }

  void OnPartialAck() override { cwnd_ = std::max(ssthresh_, cwnd_ - 1.0); }

  void OnRecoveryExit(sim::Time /*now*/) override { cwnd_ = ssthresh_; }

  void OnRto(sim::Time /*now*/) override {
    ssthresh_ = BdpSegments();
    cwnd_ = 1.0;
  }

  void OnRttSample(sim::Duration sample, sim::Time /*now*/) override {
    if (min_rtt_ == 0 || sample < min_rtt_) min_rtt_ = sample;
    srtt_ = srtt_ == 0 ? sample : (7 * srtt_ + sample) / 8;
  }

  [[nodiscard]] double cwnd() const override { return cwnd_; }
  [[nodiscard]] double ssthresh() const override { return ssthresh_; }
  [[nodiscard]] const char* name() const override { return "westwood"; }

 private:
  /// ssthresh on congestion = bw_est * RTTmin expressed in segments; falls
  /// back to Reno halving until the first bandwidth sample lands.
  [[nodiscard]] double BdpSegments() const {
    if (bw_est_bps_ == 0.0 || min_rtt_ == 0) {
      return std::max(cwnd_ / 2.0, 2.0);
    }
    const double segments =
        bw_est_bps_ * sim::ToSeconds(min_rtt_) / wire_bits_per_segment_;
    return std::max(segments, 2.0);
  }

  [[nodiscard]] sim::Duration SampleInterval() const {
    return std::max(srtt_, sim::Millis(50));
  }

  const double wire_bits_per_segment_;
  double cwnd_;
  double ssthresh_ = 1e9;
  double bw_est_bps_ = 0.0;
  double prev_sample_ = 0.0;
  std::int64_t acked_in_interval_ = 0;
  sim::Time interval_start_ = 0;
  sim::Duration min_rtt_ = 0;
  sim::Duration srtt_ = 0;
};

}  // namespace

namespace detail {
std::unique_ptr<CongestionControl> MakeWestwoodCc(const CcConfig& config) {
  return std::make_unique<WestwoodCc>(config);
}
}  // namespace detail

}  // namespace kwikr::transport
