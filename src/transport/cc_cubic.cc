#include <algorithm>
#include <cmath>
#include <memory>

#include "transport/cc_impl.h"
#include "transport/congestion_control.h"

namespace kwikr::transport {
namespace {

/// CUBIC congestion control (RFC 8312): window growth is a cubic function
/// of the time since the last congestion event, anchored at the window
/// where the loss happened (W_max). Less RTT-biased than Reno, so two CUBIC
/// flows sharing the AP queue converge faster — and keep the bottleneck
/// queue fuller, which is exactly the standing-queue signature Ping-Pair's
/// Tq component is supposed to expose.
class CubicCc final : public CongestionControl {
 public:
  static constexpr double kC = 0.4;     ///< RFC 8312 scaling constant.
  static constexpr double kBeta = 0.7;  ///< multiplicative decrease.

  explicit CubicCc(const CcConfig& config) : cwnd_(config.initial_cwnd) {}

  void OnAck(std::int64_t /*newly_acked*/, std::int64_t /*in_flight*/,
             sim::Time now) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start, same as Reno.
      return;
    }
    if (epoch_start_ == 0) {
      // New congestion-avoidance epoch: anchor the cubic at W_max (or at
      // the current window when we are already above it).
      epoch_start_ = now;
      if (cwnd_ < w_max_) {
        k_ = std::cbrt((w_max_ - cwnd_) / kC);
        origin_ = w_max_;
      } else {
        k_ = 0.0;
        origin_ = cwnd_;
      }
    }
    // Aim one RTT ahead so the window reaches the target on schedule.
    const double t = sim::ToSeconds(now - epoch_start_) + srtt_s_;
    const double offs = t - k_;
    const double target = origin_ + kC * offs * offs * offs;
    if (target > cwnd_) {
      cwnd_ += (target - cwnd_) / cwnd_;
    } else {
      // Deep in the concave plateau: creep so the epoch clock still runs.
      cwnd_ += 0.01 / cwnd_;
    }
    // TCP-friendly region (RFC 8312 section 4.2): never grow slower than an
    // AIMD flow with the same beta would.
    if (srtt_s_ > 0.0) {
      const double w_est =
          w_max_ * kBeta + 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * (t / srtt_s_);
      if (cwnd_ < w_est) cwnd_ = w_est;
    }
  }

  void OnDupAckInRecovery() override {}

  void OnLoss(sim::Time /*now*/) override {
    epoch_start_ = 0;
    // Fast convergence: losing below the previous W_max means a new flow is
    // taking its share — release capacity by remembering an even lower peak.
    w_max_ = cwnd_ < w_max_ ? cwnd_ * (2.0 - kBeta) / 2.0 : cwnd_;
    ssthresh_ = std::max(cwnd_ * kBeta, 2.0);
    cwnd_ = ssthresh_;
  }

  void OnPartialAck() override {}

  void OnRecoveryExit(sim::Time /*now*/) override { cwnd_ = ssthresh_; }

  void OnRto(sim::Time /*now*/) override {
    epoch_start_ = 0;
    w_max_ = cwnd_;
    ssthresh_ = std::max(cwnd_ * kBeta, 2.0);
    cwnd_ = 1.0;
  }

  void OnRttSample(sim::Duration sample, sim::Time /*now*/) override {
    const double s = sim::ToSeconds(sample);
    srtt_s_ = srtt_s_ == 0.0 ? s : 0.875 * srtt_s_ + 0.125 * s;
  }

  [[nodiscard]] double cwnd() const override { return cwnd_; }
  [[nodiscard]] double ssthresh() const override { return ssthresh_; }
  [[nodiscard]] const char* name() const override { return "cubic"; }

 private:
  double cwnd_;
  double ssthresh_ = 1e9;
  double w_max_ = 0.0;
  double origin_ = 0.0;
  double k_ = 0.0;
  sim::Time epoch_start_ = 0;  ///< 0 = epoch not started.
  double srtt_s_ = 0.0;
};

}  // namespace

namespace detail {
std::unique_ptr<CongestionControl> MakeCubicCc(const CcConfig& config) {
  return std::make_unique<CubicCc>(config);
}
}  // namespace detail

}  // namespace kwikr::transport
