#include "transport/tcp_reno.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace kwikr::transport {

TcpSender::TcpSender(sim::EventLoop& loop, net::FlowId flow,
                     net::Address src, net::Address dst,
                     net::PacketIdAllocator& ids, SendFn send,
                     Config config)
    : loop_(loop),
      flow_(flow),
      src_(src),
      dst_(dst),
      ids_(ids),
      send_(std::move(send)),
      config_(config),
      cc_(MakeCongestionControl(
          config.cc, CcConfig{config.mss_bytes, config.header_bytes,
                              config.initial_cwnd})) {
  if (config.cc == CcAlgorithm::kBbr) {
    // Rate-based algorithms enforce their pacing rate through a private
    // token bucket in front of the egress. Burst of two wire segments keeps
    // back-to-back pairs legal while spreading the rest of the window over
    // the RTT; rate starts at 0 (unshaped) until the model has a sample.
    const std::int64_t wire_bytes = config.mss_bytes + config.header_bytes;
    TokenBucket::Config pacer_config;
    pacer_config.rate_bps = 0;
    pacer_config.burst_bytes = 2 * wire_bytes;
    pacer_config.queue_capacity_packets =
        static_cast<std::size_t>(config.max_in_flight) + 16;
    pacer_ = std::make_unique<TokenBucket>(
        loop, pacer_config,
        [this](net::Packet packet) { send_(std::move(packet)); });
  }
}

TcpSender::TcpSender(sim::EventLoop& loop, net::FlowId flow,
                     net::Address src, net::Address dst,
                     net::PacketIdAllocator& ids, SendFn send)
    : TcpSender(loop, flow, src, dst, ids, std::move(send), Config{}) {}

TcpSender::~TcpSender() { Stop(); }

void TcpSender::Start() {
  running_ = true;
  TrySend();
}

void TcpSender::Stop() {
  running_ = false;
  if (rto_event_ != 0) {
    loop_.Cancel(rto_event_);
    rto_event_ = 0;
  }
}

void TcpSender::SyncPacer() {
  if (pacer_) pacer_->SetRate(cc_->pacing_rate_bps());
}

void TcpSender::TrySend() {
  if (!running_) return;
  const auto window = static_cast<std::int64_t>(cc_->cwnd());
  const std::int64_t in_flight = next_seq_ - high_ack_;
  std::int64_t budget =
      std::min(window, config_.max_in_flight) - in_flight;
  while (budget > 0) {
    SendSegment(next_seq_, /*retransmission=*/false);
    ++next_seq_;
    --budget;
  }
}

void TcpSender::SendSegment(std::int64_t seq, bool retransmission) {
  net::Packet packet;
  packet.id = ids_.Next();
  packet.protocol = net::Protocol::kTcp;
  packet.src = src_;
  packet.dst = dst_;
  packet.flow = flow_;
  packet.size_bytes = config_.mss_bytes + config_.header_bytes;
  packet.created_at = loop_.now();
  packet.tcp.seq = seq;
  packet.tcp.is_ack = false;

  if (retransmission) {
    ++retransmissions_;
    if (recorder_ != nullptr) {
      recorder_->Record(loop_.now(), obs::FlightEventKind::kTcpRetransmit, 0,
                        static_cast<std::uint64_t>(flow_));
    }
    // Karn's rule: never time a retransmitted segment.
    if (rtt_probe_seq_ == seq) rtt_probe_seq_ = -1;
  } else if (rtt_probe_seq_ < 0) {
    rtt_probe_seq_ = seq;
    rtt_probe_sent_ = loop_.now();
  }

  if (pacer_) {
    pacer_->Send(std::move(packet));
  } else {
    send_(std::move(packet));
  }
  if (rto_event_ == 0) ArmRto();
}

void TcpSender::ArmRto() {
  if (rto_event_ != 0) loop_.Cancel(rto_event_);
  const sim::Duration timeout =
      std::min(config_.max_rto, rto_ << rto_backoff_);
  auto fire_rto = [this] {
    rto_event_ = 0;
    OnRto();
  };
  static_assert(sim::InlineTask::fits_inline<decltype(fire_rto)>);
  rto_event_ = loop_.ScheduleIn(timeout, "tcp.rto", std::move(fire_rto));
}

void TcpSender::OnRto() {
  if (!running_) return;
  if (next_seq_ == high_ack_) return;  // nothing outstanding.
  ++timeouts_;
  if (recorder_ != nullptr) {
    recorder_->Record(loop_.now(), obs::FlightEventKind::kTcpTimeout, 0,
                      static_cast<std::uint64_t>(flow_));
  }
  cc_->OnRto(loop_.now());
  SyncPacer();
  dup_acks_ = 0;
  in_fast_recovery_ = false;
  next_seq_ = high_ack_;  // go-back-N from the hole.
  rto_backoff_ = std::min(rto_backoff_ + 1, 4);
  SendSegment(next_seq_, /*retransmission=*/true);
  ++next_seq_;
  ArmRto();
}

void TcpSender::EnterFastRecovery() {
  cc_->OnLoss(loop_.now());
  in_fast_recovery_ = true;
  recovery_point_ = next_seq_;
  SendSegment(high_ack_, /*retransmission=*/true);
}

void TcpSender::OnAck(const net::Packet& ack) {
  if (!running_) return;
  if (!ack.tcp.is_ack || ack.flow != flow_) return;
  const std::int64_t ack_seq = ack.tcp.ack;

  if (ack_seq > high_ack_) {
    // New data acknowledged.
    rto_backoff_ = 0;
    if (rtt_probe_seq_ >= 0 && ack_seq > rtt_probe_seq_) {
      const sim::Duration sample = loop_.now() - rtt_probe_sent_;
      if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
      } else {
        const sim::Duration err = std::abs(sample - srtt_);
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
      }
      rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.min_rto, config_.max_rto);
      rtt_probe_seq_ = -1;
      cc_->OnRttSample(sample, loop_.now());
    }

    const std::int64_t newly_acked = ack_seq - high_ack_;
    high_ack_ = ack_seq;
    dup_acks_ = 0;
    if (in_fast_recovery_) {
      if (high_ack_ >= recovery_point_) {
        cc_->OnRecoveryExit(loop_.now());
        in_fast_recovery_ = false;
      } else {
        // Partial ACK (NewReno-style): retransmit the next hole.
        SendSegment(high_ack_, /*retransmission=*/true);
        cc_->OnPartialAck();
      }
    } else {
      // Report *wire* in-flight: segments sitting in the pacer's backlog
      // haven't left the host, and counting them would keep a rate-based
      // CC's DRAIN state from ever observing in_flight <= BDP.
      std::int64_t wire_in_flight = next_seq_ - high_ack_;
      if (pacer_ != nullptr) {
        wire_in_flight -= static_cast<std::int64_t>(pacer_->backlog());
      }
      cc_->OnAck(newly_acked, wire_in_flight, loop_.now());
    }
    if (next_seq_ > high_ack_) {
      ArmRto();
    } else if (rto_event_ != 0) {
      loop_.Cancel(rto_event_);
      rto_event_ = 0;
    }
  } else if (ack_seq == high_ack_ && next_seq_ > high_ack_) {
    ++dup_acks_;
    if (in_fast_recovery_) {
      cc_->OnDupAckInRecovery();
    } else if (dup_acks_ == 3) {
      EnterFastRecovery();
    }
  }
  SyncPacer();
  TrySend();
}

TcpRenoReceiver::TcpRenoReceiver(net::FlowId flow, net::Address src,
                                 net::Address dst,
                                 net::PacketIdAllocator& ids, SendFn send,
                                 std::int32_t ack_bytes)
    : flow_(flow),
      src_(src),
      dst_(dst),
      ids_(ids),
      send_(std::move(send)),
      ack_bytes_(ack_bytes) {}

void TcpRenoReceiver::OnSegment(const net::Packet& segment, sim::Time arrival) {
  if (segment.protocol != net::Protocol::kTcp || segment.tcp.is_ack ||
      segment.flow != flow_) {
    return;
  }
  const std::int64_t seq = segment.tcp.seq;
  if (seq == cumulative_ && out_of_order_.empty()) {
    // In-order fast path (the overwhelmingly common case): advancing the
    // cumulative ACK directly skips a tree-node insert + immediate erase —
    // i.e. a heap allocation — per segment.
    ++cumulative_;
    bytes_ += segment.size_bytes - 40;  // approximate payload.
  } else if (seq >= cumulative_) {
    out_of_order_.insert(seq);
    while (!out_of_order_.empty() && *out_of_order_.begin() == cumulative_) {
      out_of_order_.erase(out_of_order_.begin());
      ++cumulative_;
      bytes_ += segment.size_bytes - 40;  // approximate payload.
    }
  }

  net::Packet ack;
  ack.id = ids_.Next();
  ack.protocol = net::Protocol::kTcp;
  ack.src = src_;
  ack.dst = dst_;
  ack.flow = flow_;
  ack.size_bytes = ack_bytes_;
  ack.created_at = arrival;
  ack.tcp.ack = cumulative_;
  ack.tcp.is_ack = true;
  send_(std::move(ack));
}

}  // namespace kwikr::transport
