// A call from a busy coffee shop: neighbours come and go, pulling bulk
// downloads through the same AP. This example shows the Kwikr hints API
// (paper Figure 2): the Ping-Pair detector turns raw probe measurements into
// actionable Wi-Fi hints, the adapter feeds the estimator, and the
// application (here: a printout) can observe the congestion attribution
// live.
//
// Build & run:   ./build/examples/coffee_shop_call
#include <cstdio>

#include "core/kwikr.h"
#include "core/ping_pair.h"
#include "rtc/media.h"
#include "scenario/testbed.h"

using namespace kwikr;

int main() {
  scenario::Testbed testbed(scenario::Testbed::Config{21, wifi::PhyParams{}});
  auto& bss = testbed.AddBss(scenario::Bss::Config{});

  // Our client and its call.
  auto& client = bss.AddStation(testbed.NextStationAddress(), 26'000'000);
  const net::FlowId call_flow = testbed.NextFlowId();
  const net::Address peer = testbed.NextServerAddress();

  rtc::MediaSender::Config sender_config;
  sender_config.src = peer;
  sender_config.dst = client.address();
  sender_config.flow = call_flow;
  rtc::MediaSender sender(testbed.loop(), testbed.ids(), sender_config,
                          [&bss](net::Packet p) {
                            bss.SendFromWan(std::move(p));
                          });

  rtc::MediaReceiver::Config receiver_config;
  receiver_config.src = client.address();
  receiver_config.dst = peer;
  receiver_config.flow = call_flow;
  rtc::MediaReceiver receiver(testbed.loop(), testbed.ids(), receiver_config,
                              [&client](net::Packet p) {
                                client.Send(std::move(p));
                              });
  bss.RegisterWanEndpoint(peer, [&sender](net::Packet p, sim::Time at) {
    sender.OnFeedback(p, at);
  });

  // Ping-Pair probing + the Kwikr adapter, wired per Figure 2.
  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, bss.ap().address());
  core::PingPairProber prober(testbed.loop(), transport,
                              core::PingPairProber::Config{}, call_flow);
  core::KwikrAdapter adapter(testbed.loop());
  adapter.AttachTo(prober);
  receiver.SetCrossTrafficProvider(adapter.CrossTrafficProvider());

  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) {
      prober.OnReply(p, at);
    } else {
      prober.OnFlowPacket(p, at);
      receiver.OnPacket(p, at);
    }
  });

  // Print a hint line whenever the congestion verdict changes.
  bool last_congested = false;
  adapter.AddHintCallback([&](const core::WifiHint& hint) {
    if (hint.congested != last_congested) {
      last_congested = hint.congested;
      std::printf("t=%6.1fs  HINT: %s  (Tq=%.1f ms: self %.1f ms + cross "
                  "%.1f ms)\n", sim::ToSeconds(hint.at),
                  hint.congested ? "Wi-Fi CONGESTED" : "Wi-Fi clear",
                  sim::ToMillis(hint.tq), sim::ToMillis(hint.ta),
                  sim::ToMillis(hint.tc));
    }
  });

  // The coffee shop: three neighbours start heavy downloads at t=30 s and
  // leave at t=90 s.
  for (int i = 0; i < 3; ++i) {
    auto& neighbour =
        bss.AddStation(testbed.NextStationAddress(), 26'000'000);
    testbed.AddTcpBulkFlows(bss, neighbour, 8);
  }
  testbed.ScheduleCrossTraffic(sim::Seconds(30), sim::Seconds(90));

  std::printf("120 s call; neighbours hammer the AP from t=30 s to t=90 s\n");
  sender.Start();
  receiver.Start();
  prober.Start();
  // Periodic status line.
  sim::PeriodicTimer status(testbed.loop(), sim::Seconds(10), [&] {
    std::printf("t=%6.1fs  rate=%5lld kbps  smoothed Tq=%5.1f ms  "
                "Tc=%5.1f ms\n", sim::ToSeconds(testbed.loop().now()),
                static_cast<long long>(
                    receiver.controller().target_rate_bps() / 1000),
                adapter.SmoothedTqMillis(),
                adapter.SmoothedTcSeconds() * 1000.0);
  });
  status.Start();
  testbed.loop().RunUntil(sim::Seconds(120));

  std::printf("\ncall summary: %.0f kbps mean, %.2f%% loss, %llu probe "
              "samples (%llu rounds)\n",
              [&] {
                double sum = 0.0;
                for (double r : receiver.rate_series_kbps()) sum += r;
                return receiver.rate_series_kbps().empty()
                           ? 0.0
                           : sum / receiver.rate_series_kbps().size();
              }(),
              receiver.loss_fraction() * 100.0,
              (unsigned long long)prober.stats().valid,
              (unsigned long long)prober.stats().rounds);
  return 0;
}
