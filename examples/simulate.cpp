// Scenario CLI: run a custom call experiment from the command line and get
// a per-second rate series plus summary metrics (optionally as CSV).
//
//   ./build/examples/simulate --duration 120 --cross-stations 2 --flows 10 \
//       --congest 40:80 --kwikr --seed 7 --csv rates.csv
//
// Flags:
//   --duration <s>         call length (default 120)
//   --seed <n>             RNG seed (default 1)
//   --kwikr                enable Ping-Pair-informed adaptation
//   --gcc                  use the delay-gradient (WebRTC-style) stack
//   --cross-stations <n>   cross-traffic stations (default 2)
//   --flows <n>            TCP flows per cross station (default 10)
//   --congest <a>:<b>      congestion window seconds (default 40:80)
//   --throttle <kbps>      token-bucket throttle during the window
//   --band5                5 GHz band (default 2.4 GHz)
//   --no-wmm               AP without WMM prioritization
//   --rate <mbps>          client MCS rate (default 26)
//   --csv <file>           write the per-second series as CSV
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/call_experiment.h"
#include "stats/percentile.h"

using namespace kwikr;

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--duration s] [--seed n] [--kwikr] [--gcc]\n"
               "  [--cross-stations n] [--flows n] [--congest a:b]\n"
               "  [--throttle kbps] [--band5] [--no-wmm] [--rate mbps]\n"
               "  [--csv file]\n", argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  scenario::ExperimentConfig config;
  config.duration = sim::Seconds(120);
  config.cross_stations = 2;
  config.flows_per_station = 10;
  config.congestion_start = sim::Seconds(40);
  config.congestion_end = sim::Seconds(80);
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--duration") {
      config.duration = sim::Seconds(std::atoll(next()));
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--kwikr") {
      config.calls[0].kwikr = true;
    } else if (arg == "--gcc") {
      config.calls[0].adaptation =
          rtc::MediaReceiver::Adaptation::kDelayGradient;
    } else if (arg == "--cross-stations") {
      config.cross_stations = std::atoi(next());
    } else if (arg == "--flows") {
      config.flows_per_station = std::atoi(next());
    } else if (arg == "--congest") {
      long a = 0;
      long b = 0;
      if (std::sscanf(next(), "%ld:%ld", &a, &b) != 2) Usage(argv[0]);
      config.congestion_start = sim::Seconds(a);
      config.congestion_end = sim::Seconds(b);
    } else if (arg == "--throttle") {
      config.throttle_bps = std::atoll(next()) * 1000;
      config.throttle_start = config.congestion_start;
      config.throttle_end = config.congestion_end;
    } else if (arg == "--band5") {
      config.band = wifi::Band::k5GHz;
    } else if (arg == "--no-wmm") {
      config.wmm_enabled = false;
    } else if (arg == "--rate") {
      config.client_rate_bps = std::atoll(next()) * 1'000'000;
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      Usage(argv[0]);
    }
  }

  const auto metrics = scenario::RunCallExperiment(config);
  const auto& call = metrics.calls[0];

  std::printf("t(s)  rate(kbps)\n");
  for (std::size_t t = 0; t < call.rate_series_kbps.size(); t += 5) {
    std::printf("%4zu  %10.1f\n", t, call.rate_series_kbps[t]);
  }
  std::printf("\nmean rate       : %8.0f kbps\n", call.mean_rate_kbps);
  if (config.congestion_end > config.congestion_start) {
    std::printf("rate in window  : %8.0f kbps\n",
                call.mean_rate_congested_kbps);
  }
  std::printf("loss            : %8.2f %%\n", call.loss_pct);
  std::printf("RTT p50 / p95   : %5.1f / %5.1f ms\n",
              stats::Percentile(call.rtt_ms, 50.0),
              stats::Percentile(call.rtt_ms, 95.0));
  std::printf("probe rounds    : %8llu (%llu valid)\n",
              (unsigned long long)call.probe_stats.rounds,
              (unsigned long long)call.probe_stats.valid);
  std::vector<double> tq;
  for (const auto& s : call.probe_samples) tq.push_back(sim::ToMillis(s.tq));
  std::printf("Tq p50 / p95    : %5.1f / %5.1f ms\n",
              stats::Percentile(tq, 50.0), stats::Percentile(tq, 95.0));
  std::printf("channel busy    : %8.0f %%\n",
              100.0 * metrics.channel_busy_fraction);

  if (!csv_path.empty()) {
    std::FILE* csv = std::fopen(csv_path.c_str(), "w");
    if (csv == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    std::fprintf(csv, "t_s,rate_kbps\n");
    for (std::size_t t = 0; t < call.rate_series_kbps.size(); ++t) {
      std::fprintf(csv, "%zu,%g\n", t, call.rate_series_kbps[t]);
    }
    std::fclose(csv);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
