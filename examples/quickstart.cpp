// Quickstart: measure and attribute Wi-Fi downlink congestion with Ping-Pair
// while an AV call competes with TCP cross-traffic, then compare baseline
// adaptation against Kwikr.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "scenario/call_experiment.h"
#include "stats/percentile.h"

using namespace kwikr;

int main() {
  scenario::ExperimentConfig config;
  config.seed = 7;
  config.duration = sim::Seconds(120);
  config.cross_stations = 2;       // two neighbours...
  config.flows_per_station = 10;   // ...each running 10 TCP bulk downloads
  config.congestion_start = sim::Seconds(40);
  config.congestion_end = sim::Seconds(80);
  config.sample_queue = true;

  std::printf("Running a 120 s call; Wi-Fi congested from t=40 s to t=80 s\n");
  std::printf("%-28s %10s %10s\n", "", "baseline", "kwikr");

  config.calls[0].kwikr = false;
  const auto baseline = scenario::RunCallExperiment(config);
  config.calls[0].kwikr = true;
  const auto kwikr = scenario::RunCallExperiment(config);

  const auto& b = baseline.calls[0];
  const auto& k = kwikr.calls[0];
  std::printf("%-28s %10.0f %10.0f\n", "mean call rate (kbps)",
              b.mean_rate_kbps, k.mean_rate_kbps);
  std::printf("%-28s %10.0f %10.0f\n", "rate during congestion (kbps)",
              b.mean_rate_congested_kbps, k.mean_rate_congested_kbps);
  std::printf("%-28s %10.1f %10.1f\n", "median RTT (ms)",
              stats::Percentile(b.rtt_ms, 50.0),
              stats::Percentile(k.rtt_ms, 50.0));
  std::printf("%-28s %10.2f %10.2f\n", "loss (%)", b.loss_pct, k.loss_pct);

  // What Ping-Pair saw on the Kwikr call.
  std::vector<double> tq;
  std::vector<double> tc;
  for (const auto& s : k.probe_samples) {
    tq.push_back(sim::ToMillis(s.tq));
    tc.push_back(sim::ToMillis(s.tc));
  }
  std::printf("\nPing-Pair on the Kwikr call: %zu samples, "
              "p95 Tq = %.1f ms, p95 Tc = %.1f ms\n",
              tq.size(), stats::Percentile(tq, 95.0),
              stats::Percentile(tc, 95.0));
  std::printf("probe stats: %llu rounds, %llu valid, %llu timeouts, "
              "%llu wrong-order\n",
              (unsigned long long)k.probe_stats.rounds,
              (unsigned long long)k.probe_stats.valid,
              (unsigned long long)k.probe_stats.timeouts,
              (unsigned long long)k.probe_stats.wrong_order);

  // Ground truth from the instrumented AP.
  std::size_t nonempty = 0;
  for (auto q : baseline.queue_samples) nonempty += q > 0 ? 1 : 0;
  std::printf("AP BE queue non-empty in %.0f%% of samples (baseline arm)\n",
              100.0 * static_cast<double>(nonempty) /
                  static_cast<double>(baseline.queue_samples.size()));
  return 0;
}
