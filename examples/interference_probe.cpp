// A miniature Wi-Fi diagnosis session, in the spirit of the paper's
// Section 5 toolbox: check whether the AP honours WMM, measure the channel
// access delay, then watch the downlink with Ping-Pair while a neighbouring
// co-channel network becomes busy.
//
// Build & run:   ./build/examples/interference_probe
#include <cstdio>

#include "core/channel_access.h"
#include "core/ping_pair.h"
#include "core/wmm_detector.h"
#include "scenario/testbed.h"
#include "stats/percentile.h"

using namespace kwikr;

int main() {
  scenario::Testbed testbed(scenario::Testbed::Config{33, wifi::PhyParams{}});
  auto& home = testbed.AddBss(scenario::Bss::Config{});
  scenario::Bss::Config neighbour_config;
  neighbour_config.ap.address = 2;
  auto& neighbour = testbed.AddBss(neighbour_config);

  auto& client = home.AddStation(testbed.NextStationAddress(), 26'000'000);
  auto& sink = home.AddStation(testbed.NextStationAddress(), 26'000'000);
  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, home.ap().address());

  // All three probing components share the client's ICMP receive path.
  core::WmmDetector wmm(testbed.loop(), transport,
                        core::WmmDetector::Config{});
  core::ChannelAccessEstimator access(testbed.loop(), transport,
                                      core::ChannelAccessEstimator::Config{},
                                      testbed.channel().phy());
  core::PingPairProber prober(testbed.loop(), transport,
                              core::PingPairProber::Config{}, 1);
  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol != net::Protocol::kIcmp) return;
    wmm.OnReply(p, at);
    access.OnReply(p, at);
    prober.OnReply(p, at);
  });

  // Step 1: WMM check, with some of our own downlink traffic to observe
  // (a file download to another device in the home).
  testbed.AddTcpBulkFlows(home, sink, 4);
  testbed.StartCrossTraffic();
  testbed.loop().RunUntil(sim::Seconds(5));
  wmm.Run([](const core::WmmResult& result) {
    std::printf("[1] WMM prioritization: %s (%d/%d runs showed the "
                "queue-jump)\n",
                result.wmm_enabled ? "ENABLED — Ping-Pair applicable"
                                   : "not detected — Kwikr falls back",
                result.prioritized_runs, result.completed_runs);
  });
  testbed.loop().RunUntil(sim::Seconds(10));
  testbed.StopCrossTraffic();

  // Step 2: channel access delay on the now-quiet channel.
  access.Start();
  testbed.loop().RunUntil(sim::Seconds(15));
  access.Stop();
  std::printf("[2] channel access delay: %.0f us mean over %zu accepted "
              "probes\n", sim::ToMicros(access.MeanEstimate()),
              access.estimates().size());

  // Step 3: watch the downlink while the co-channel neighbour gets busy.
  auto& neighbour_client =
      neighbour.AddStation(testbed.NextStationAddress(), 26'000'000);
  testbed.AddTcpBulkFlows(neighbour, neighbour_client, 12);
  prober.Start();
  testbed.loop().RunUntil(sim::Seconds(25));
  const std::size_t quiet_end = prober.samples().size();
  testbed.StartCrossTraffic();
  testbed.loop().RunUntil(sim::Seconds(45));
  prober.Stop();

  std::vector<double> quiet_ms;
  std::vector<double> busy_ms;
  for (std::size_t i = 0; i < prober.samples().size(); ++i) {
    const double tq = sim::ToMillis(prober.samples()[i].tq);
    (i < quiet_end ? quiet_ms : busy_ms).push_back(tq);
  }
  std::printf("[3] downlink delay while the neighbour idles: median "
              "%.1f ms; while it downloads: median %.1f ms (p95 %.1f ms)\n",
              stats::Percentile(quiet_ms, 50.0),
              stats::Percentile(busy_ms, 50.0),
              stats::Percentile(busy_ms, 95.0));
  std::printf("    co-channel contention is visible from the client without "
              "AP support or monitor mode.\n");
  return 0;
}
