// A call that survives a Wi-Fi handoff: the client roams from the living
// room AP to the office AP mid-call. The handoff detector (paper Figure 2's
// third hint family) resets all path-learned state — the one-way-delay
// baseline, the Ping-Pair EWMA — and the prober retargets the new gateway
// automatically.
//
// Build & run:   ./build/examples/roaming_call
#include <cstdio>

#include "core/handoff.h"
#include "core/kwikr.h"
#include "core/ping_pair.h"
#include "rtc/media.h"
#include "scenario/testbed.h"

using namespace kwikr;

int main() {
  scenario::Testbed testbed(scenario::Testbed::Config{55, wifi::PhyParams{}});
  auto& living_room = testbed.AddBss(scenario::Bss::Config{});
  scenario::Bss::Config office_config;
  office_config.ap.address = 2;
  auto& office = testbed.AddBss(office_config);

  // The client starts far from the office AP, close to the living room one.
  auto& client = living_room.AddStation(testbed.NextStationAddress(),
                                        65'000'000);
  const net::FlowId call_flow = testbed.NextFlowId();
  const net::Address peer = testbed.NextServerAddress();

  // The wired peer reaches the client through whichever BSS serves it.
  scenario::Bss* serving = &living_room;
  rtc::MediaSender::Config sender_config;
  sender_config.src = peer;
  sender_config.dst = client.address();
  sender_config.flow = call_flow;
  rtc::MediaSender sender(testbed.loop(), testbed.ids(), sender_config,
                          [&serving](net::Packet p) {
                            serving->SendFromWan(std::move(p));
                          });
  rtc::MediaReceiver::Config receiver_config;
  receiver_config.src = client.address();
  receiver_config.dst = peer;
  receiver_config.flow = call_flow;
  rtc::MediaReceiver receiver(testbed.loop(), testbed.ids(), receiver_config,
                              [&client](net::Packet p) {
                                client.Send(std::move(p));
                              });
  auto feedback = [&sender](net::Packet p, sim::Time at) {
    sender.OnFeedback(p, at);
  };
  living_room.RegisterWanEndpoint(peer, feedback);
  office.RegisterWanEndpoint(peer, feedback);

  // Probing + hints.
  scenario::StationProbeTransport transport(testbed.loop(), testbed.ids(),
                                            client, client.gateway());
  core::PingPairProber prober(testbed.loop(), transport,
                              core::PingPairProber::Config{}, call_flow);
  core::KwikrAdapter adapter(testbed.loop());
  adapter.AttachTo(prober);
  receiver.SetCrossTrafficProvider(adapter.CrossTrafficProvider());

  core::HandoffDetector handoff([&] { return testbed.loop().now(); });
  handoff.SetInitialGateway(client.gateway());
  handoff.AddResetHook([&] {
    adapter.Reset();        // the smoothed Tq/Tc described the old AP.
    receiver.OnPathChange();  // the OWD minimum encoded the old path.
  });
  handoff.AddHintCallback([](const core::HandoffHint& hint) {
    std::printf("t=%6.1fs  HINT: handoff AP %u -> AP %u (path state reset)\n",
                sim::ToSeconds(hint.at), hint.old_gateway, hint.new_gateway);
  });
  client.AddRoamCallback([&](net::Address gw) {
    serving = &office;  // upstream routing converges on the new AP.
    handoff.OnGatewayChange(gw);
  });

  client.AddReceiver([&](const net::Packet& p, sim::Time at) {
    if (p.protocol == net::Protocol::kIcmp) {
      prober.OnReply(p, at);
    } else {
      prober.OnFlowPacket(p, at);
      receiver.OnPacket(p, at);
    }
  });

  // The walk to the office at t=40 s: link weakens, then the client roams.
  testbed.loop().ScheduleAt(sim::Seconds(38), [&] {
    client.SetLinkQuality(
        wifi::LinkQualityAtDistance(wifi::Band::k2_4GHz, 40.0));
  });
  testbed.loop().ScheduleAt(sim::Seconds(40), [&] {
    client.Roam(office.ap(), wifi::LinkQuality{65'000'000, 0.0});
  });

  std::printf("80 s call; the client walks to the office and roams at "
              "t=40 s\n");
  sender.Start();
  receiver.Start();
  prober.Start();
  sim::PeriodicTimer status(testbed.loop(), sim::Seconds(10), [&] {
    std::printf("t=%6.1fs  gateway=AP%u  rate=%5lld kbps  Tq=%5.1f ms\n",
                sim::ToSeconds(testbed.loop().now()), client.gateway(),
                static_cast<long long>(receiver.target_rate_bps() / 1000),
                adapter.SmoothedTqMillis());
  });
  status.Start();
  testbed.loop().RunUntil(sim::Seconds(80));

  std::printf("\ncall summary: loss %.2f%%, %llu/%llu probe rounds valid, "
              "%lld handoff(s)\n", receiver.loss_fraction() * 100.0,
              (unsigned long long)prober.stats().valid,
              (unsigned long long)prober.stats().rounds,
              (long long)handoff.handoffs());
  return 0;
}
