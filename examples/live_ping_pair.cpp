// Live Ping-Pair against a real gateway over raw ICMP sockets — the
// counterpart of the paper's standalone Windows/Linux tool (Section 7).
// Requires CAP_NET_RAW (or root).
//
// Usage:   sudo ./build/examples/live_ping_pair <gateway-ip> [rounds]
//          sudo ./build/examples/live_ping_pair <gateway-ip> --wmm
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "live/icmp_socket.h"
#include "live/live_ping_pair.h"
#include "stats/percentile.h"

using namespace kwikr;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <gateway-ip> [rounds|--wmm]\n"
                 "  measures Wi-Fi downlink delay at the gateway with "
                 "Ping-Pair;\n  --wmm runs the WMM prioritization check "
                 "instead.\n", argv[0]);
    return 2;
  }
  const std::uint32_t gateway = live::IcmpSocket::ParseAddress(argv[1]);
  if (gateway == 0) {
    std::fprintf(stderr, "invalid IPv4 address: %s\n", argv[1]);
    return 2;
  }

  live::IcmpSocket socket;
  if (!socket.Open()) {
    std::fprintf(stderr, "%s\n", socket.error().c_str());
    return 1;
  }
  live::LivePingPair prober(socket, gateway, live::LivePingPair::Config{});

  if (argc >= 3 && std::strcmp(argv[2], "--monitor") == 0) {
    // Continuous Kwikr-style monitoring with smoothing + classification.
    live::LiveKwikrMonitor monitor(socket, gateway,
                                   live::LiveKwikrMonitor::Config{});
    std::printf("monitoring %s (ctrl-c to stop)...\n", argv[1]);
    for (;;) {
      const auto report = monitor.Step();
      if (report.valid) {
        std::printf("Tq %7.2f ms (smoothed %7.2f ms)  %s\n",
                    report.last_tq_ms, report.smoothed_tq_ms,
                    report.congested ? "** CONGESTED **" : "clear");
      } else {
        std::printf("(no valid measurement)\n");
      }
    }
  }

  if (argc >= 3 && std::strcmp(argv[2], "--wmm") == 0) {
    const auto wmm = prober.DetectWmm();
    if (!wmm.has_value()) {
      std::printf("WMM check inconclusive (too few completed runs)\n");
    } else {
      std::printf("WMM prioritization: %s\n",
                  *wmm ? "ENABLED" : "not detected");
    }
    return 0;
  }

  const int rounds = argc >= 3 ? std::atoi(argv[2]) : 20;
  std::printf("sending %d ping-pairs to %s (2/s)...\n", rounds, argv[1]);
  const auto samples = prober.Run(rounds);

  std::vector<double> tq;
  int valid = 0;
  for (const auto& s : samples) {
    if (!s.valid) continue;
    ++valid;
    tq.push_back(s.tq_ms);
    std::printf("  tq=%7.2f ms   (rtt high %.2f ms, normal %.2f ms)\n",
                s.tq_ms, s.rtt_high_ms, s.rtt_normal_ms);
  }
  std::printf("\n%d/%d valid pairs; median Tq %.2f ms, p95 %.2f ms\n",
              valid, rounds, stats::Percentile(tq, 50.0),
              stats::Percentile(tq, 95.0));
  std::printf("(>5 ms indicates persistent Wi-Fi downlink congestion — "
              "paper Section 8.1)\n");
  return 0;
}
