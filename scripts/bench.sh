#!/usr/bin/env bash
# Perf-regression bench harness. Builds the bench binaries in Release mode
# and records the repo's two committed perf-trajectory baselines:
#
#   BENCH_eventloop.json — micro_eventloop: schedule/cancel/dispatch
#       throughput of the allocation-free scheduler vs the pre-rewrite
#       std::function + hash-set baseline (events/sec, allocs/event,
#       wall time, peak RSS).
#   BENCH_channel.json   — micro_channel: saturated multi-AC EDCA contention
#       plus a ping-pair probe through wifi::Channel (frames/sec,
#       allocs/frame — must be zero, busy fraction, peak RSS).
#   BENCH_fleet.json     — spill-mode fig10 sweep through the multi-process
#       shard runner (calls/sec, peak worker RSS, RSS per 10^5 calls). Two
#       population sizes gate the flat-memory claim: peak worker RSS of the
#       4x-larger sweep must stay within 1.35x of the smaller one, because
#       spill streaming makes the footprint independent of call count. The
#       merged percentiles are also byte-compared between --processes 1 and
#       --processes 4.
#   BENCH_fig10.json     — fixed-seed fig10 wild-population sweep
#       (simulated events/sec inside a full scenario, wall time, peak RSS),
#       plus a byte-identity check of --metrics-out between --jobs 1 and
#       --jobs 8: the scheduler rewrite must never change simulated results.
#       A second record ("fig10_wild_delay_timeline") repeats the sweep with
#       10 ms timeline sampling on, so the committed trajectory tracks the
#       sampler's events/sec overhead against the sampling-off number; the
#       timeline bytes are also compared between --jobs 1 and --jobs 8, and
#       the timeline run's peak RSS is gated at 2.5x the sampling-off run.
#
# Usage: scripts/bench.sh [--quick] [--no-fig10] [--no-fleet]
#   --quick     shrink the micro workload (CI smoke; not for committing).
#   --no-fig10  skip the scenario sweep (micro numbers only).
#   --no-fleet  skip the spill-mode shard-runner sweep.
set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/common.sh
source scripts/common.sh
jobs=$(nproc 2>/dev/null || echo 4)

quick=""
run_fig10=1
run_fleet=1
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    --no-fig10) run_fig10=0 ;;
    --no-fleet) run_fleet=0 ;;
    *) echo "usage: scripts/bench.sh [--quick] [--no-fig10] [--no-fleet]" >&2
       exit 2 ;;
  esac
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build (Release) =="
# ensure_build_dir wipes a build-bench poisoned by a leftover sanitizer
# cache entry — Release numbers from an instrumented build are garbage.
ensure_build_dir build-bench Release ""
cmake --build build-bench -j "$jobs" \
  --target micro_eventloop micro_channel fig10_wild_delay

echo "== micro_eventloop =="
./build-bench/bench/micro_eventloop $quick --json BENCH_eventloop.json

echo "== micro_channel =="
# --breakdown appends a second record (mode:"breakdown") with per-stage
# cycle shares after the headline mode:"burst" line; gates that read the
# first frames_per_sec match are unaffected.
./build-bench/bench/micro_channel $quick --breakdown --json BENCH_channel.json

if [[ "$run_fig10" == 1 ]]; then
  echo "== fig10 fixed-seed sweep (150 calls, seed 1010) =="
  fig10=./build-bench/bench/fig10_wild_delay

  "$fig10" --calls 150 --jobs 1 --metrics-out "$tmp/metrics_j1.json" \
    | tee "$tmp/fig10_j1.out"
  "$fig10" --calls 150 --jobs 8 --metrics-out "$tmp/metrics_j8.json" \
    | tee "$tmp/fig10_j8.out"

  echo "== determinism: --metrics-out must be byte-identical across --jobs =="
  if ! cmp "$tmp/metrics_j1.json" "$tmp/metrics_j8.json"; then
    echo "FAIL: fig10 metrics differ between --jobs 1 and --jobs 8" >&2
    exit 1
  fi
  echo "fig10 metrics byte-identical between --jobs 1 and --jobs 8"

  # The jobs=8 record (its timing line is the last JSON object the bench
  # prints) becomes the committed trajectory baseline.
  grep '^{"bench":"fig10_wild_delay"' "$tmp/fig10_j8.out" | tail -1 \
    > BENCH_fig10.json

  echo "== fig10 + 10 ms timeline sampling (sampler overhead record) =="
  "$fig10" --calls 150 --jobs 1 --timeline-out "$tmp/timeline_j1.jsonl" \
    > /dev/null
  "$fig10" --calls 150 --jobs 8 --timeline-out "$tmp/timeline_j8.jsonl" \
    | tee "$tmp/fig10_tl_j8.out"

  echo "== determinism: --timeline-out must be byte-identical across --jobs =="
  if ! cmp "$tmp/timeline_j1.jsonl" "$tmp/timeline_j8.jsonl"; then
    echo "FAIL: fig10 timeline differs between --jobs 1 and --jobs 8" >&2
    exit 1
  fi
  echo "fig10 timeline byte-identical between --jobs 1 and --jobs 8"

  # Second trajectory record: same sweep with the sampler attached. The
  # events/sec delta against the first record is the sampling overhead.
  grep '^{"bench":"fig10_wild_delay"' "$tmp/fig10_tl_j8.out" | tail -1 \
    | sed 's/"bench":"fig10_wild_delay"/"bench":"fig10_wild_delay_timeline"/' \
    >> BENCH_fig10.json

  echo "== gate: timeline sampling must not blow up peak RSS =="
  # Relative gate (machine-independent): the timeline run holds every call's
  # serialized series until the final concatenation, and an unbounded
  # sampler once pushed it to 4x the sampling-off footprint. The per-call
  # point budget keeps it under 2.5x; regressions past that fail the run.
  rss_plain=$(grep -o '"peak_rss_kb":[0-9]*' BENCH_fig10.json \
    | head -1 | cut -d: -f2)
  rss_timeline=$(grep -o '"peak_rss_kb":[0-9]*' BENCH_fig10.json \
    | tail -1 | cut -d: -f2)
  if (( rss_timeline * 10 > rss_plain * 25 )); then
    echo "FAIL: timeline peak RSS ${rss_timeline} kB exceeds 2.5x the" \
      "sampling-off ${rss_plain} kB" >&2
    exit 1
  fi
  echo "timeline peak RSS ${rss_timeline} kB vs ${rss_plain} kB sampling-off" \
    "(gate: 2.5x)"
fi

if [[ "$run_fleet" == 1 ]]; then
  echo "== fleet: spill-mode shard-runner sweep =="
  fig10=./build-bench/bench/fig10_wild_delay
  # Two population sizes for the flat-memory gate; --quick shrinks both but
  # keeps the 4x ratio the gate leans on.
  small_calls=400
  large_calls=1600
  if [[ -n "$quick" ]]; then
    small_calls=60
    large_calls=240
  fi

  ensure_spill_dir "$tmp/fleet_small"
  ensure_spill_dir "$tmp/fleet_large"
  ensure_spill_dir "$tmp/fleet_serial"
  "$fig10" --calls "$small_calls" --call-seconds 1 --processes 4 \
    --checkpoint-every 64 --spill-dir "$tmp/fleet_small" \
    | tee "$tmp/fleet_small.out"
  "$fig10" --calls "$large_calls" --call-seconds 1 --processes 4 \
    --checkpoint-every 64 --spill-dir "$tmp/fleet_large" \
    | tee "$tmp/fleet_large.out"
  "$fig10" --calls "$large_calls" --call-seconds 1 --processes 1 \
    --checkpoint-every 64 --spill-dir "$tmp/fleet_serial" > /dev/null

  echo "== determinism: merged percentiles across --processes 1 vs 4 =="
  if ! cmp "$tmp/fleet_serial/merged/percentiles.json" \
           "$tmp/fleet_large/merged/percentiles.json"; then
    echo "FAIL: fleet percentiles differ between --processes 1 and 4" >&2
    exit 1
  fi
  echo "fleet percentiles byte-identical between --processes 1 and 4"

  echo "== gate: spill streaming must keep worker RSS flat =="
  # Absolute RSS is machine-dependent; the *ratio* between a sweep and one
  # 4x its size is not. In-RAM accumulation scales it ~linearly with the
  # call count; spill streaming holds it at the checkpoint-chunk high-water
  # mark, so anything past 1.35x is a regression toward buffering.
  rss_small=$(grep -o '"peak_worker_rss_kb":[0-9]*' "$tmp/fleet_small.out" \
    | cut -d: -f2)
  rss_large=$(grep -o '"peak_worker_rss_kb":[0-9]*' "$tmp/fleet_large.out" \
    | cut -d: -f2)
  if (( rss_large * 100 > rss_small * 135 )); then
    echo "FAIL: peak worker RSS grew from ${rss_small} kB (${small_calls}" \
      "calls) to ${rss_large} kB (${large_calls} calls) — spill streaming" \
      "is no longer flat-memory" >&2
    exit 1
  fi
  echo "peak worker RSS ${rss_small} kB @ ${small_calls} calls vs" \
    "${rss_large} kB @ ${large_calls} calls (gate: 1.35x)"

  if [[ -z "$quick" ]]; then
    grep '^{"bench":"fleet_shard"' "$tmp/fleet_large.out" | tail -1 \
      > BENCH_fleet.json
  fi
fi

echo "== results =="
cat BENCH_eventloop.json
cat BENCH_channel.json
[[ "$run_fig10" == 1 ]] && cat BENCH_fig10.json
[[ "$run_fleet" == 1 && -f BENCH_fleet.json ]] && cat BENCH_fleet.json
echo "bench.sh: done"
