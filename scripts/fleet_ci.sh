#!/usr/bin/env bash
# Fleet-determinism gate (CI's fleet-determinism job runs exactly this):
# proves the shard runner's two headline claims on a mid-size sweep of the
# real fig10 wild-population scenario.
#
#   1. Split invariance — one 600-call sweep, three topologies:
#        1 process  x 1 shard   (the reference)
#        4 processes x 2 shards (two invocations against one spill dir —
#                                the cluster shape; the first merge reports
#                                "pending", the second completes it)
#        8 processes x 1 shard
#      All three must merge to byte-identical percentiles.json,
#      metrics.prom, and timeline.jsonl.
#   2. Crash durability — SIGKILL the sweep mid-run, wait for the orphaned
#      workers to drain, rerun with --resume, and require the merged
#      artifacts to be byte-identical to the uninterrupted reference.
#
# Merged artifacts and the BENCH_fleet.json headline land in $ARTIFACT_DIR
# (default fleet-ci-artifacts/) for upload.
set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/common.sh
source scripts/common.sh
jobs=$(nproc 2>/dev/null || echo 4)
artifact_dir=${ARTIFACT_DIR:-fleet-ci-artifacts}

ensure_build_dir build-bench Release ""
cmake --build build-bench -j "$jobs" --target fig10_wild_delay
fig10=./build-bench/bench/fig10_wild_delay

calls=600
common=(--calls "$calls" --call-seconds 1 --metrics --timeline)
d=build-bench/fleet-ci
mkdir -p "$artifact_dir"

echo "== split invariance: 1x1 vs 4x2 vs 8x1 =="
ensure_spill_dir "$d/1x1"
ensure_spill_dir "$d/4x2"
ensure_spill_dir "$d/8x1"
"$fig10" "${common[@]}" --checkpoint-every 32 --spill-dir "$d/1x1" \
  --processes 1 | tee "$d/1x1.out"
"$fig10" "${common[@]}" --checkpoint-every 32 --spill-dir "$d/4x2" \
  --processes 4 --shard 0/2
"$fig10" "${common[@]}" --checkpoint-every 32 --spill-dir "$d/4x2" \
  --processes 4 --shard 1/2
"$fig10" "${common[@]}" --checkpoint-every 32 --spill-dir "$d/8x1" \
  --processes 8 | tee "$d/8x1.out"
for artifact in percentiles.json metrics.prom timeline.jsonl; do
  cmp "$d/1x1/merged/$artifact" "$d/4x2/merged/$artifact"
  cmp "$d/1x1/merged/$artifact" "$d/8x1/merged/$artifact"
done
echo "merged artifacts byte-identical across 1x1 / 4x2 / 8x1"

echo "== crash durability: SIGKILL mid-run, resume, byte-compare =="
ensure_spill_dir "$d/kill"
"$fig10" "${common[@]}" --checkpoint-every 16 --spill-dir "$d/kill" \
  --processes 2 > "$d/kill_first.out" 2>&1 &
pid=$!
# Kill once the first checkpoints exist, so the resume has real progress to
# pick up — but don't insist the kill lands mid-run: on a fast machine the
# sweep may complete first, in which case the resume degenerates to an
# (equally valid) all-resumed no-op.
for _ in $(seq 1 200); do
  [[ -f "$d/kill/shard0of1_worker0.manifest.json" ]] && break
  sleep 0.05
done
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
# Orphaned workers stop at their next chunk boundary (the runner's getppid
# guard) and may linger briefly as zombies until init reaps them; the
# per-worker flock makes a premature resume fail loudly rather than race,
# but draining first keeps this script deterministic.
for _ in $(seq 1 300); do
  pgrep -f 'fig10_wild_delay.*fleet-ci/kill' > /dev/null || break
  sleep 0.1
done
"$fig10" "${common[@]}" --checkpoint-every 16 --spill-dir "$d/kill" \
  --processes 2 --resume | tee "$d/resume.out"
for artifact in percentiles.json metrics.prom timeline.jsonl; do
  cmp "$d/kill/merged/$artifact" "$d/1x1/merged/$artifact"
done
echo "kill + --resume converged to the uninterrupted artifacts"

grep '^{"bench":"fleet_shard"' "$d/8x1.out" | tail -1 \
  > "$artifact_dir/BENCH_fleet.json"
cp "$d/1x1/merged/percentiles.json" "$d/1x1/merged/metrics.prom" \
   "$d/resume.out" "$artifact_dir/"
echo "fleet_ci.sh: all green (artifacts in $artifact_dir/)"
