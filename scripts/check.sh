#!/usr/bin/env bash
# Repo verification gate:
#   1. tier-1: configure + build + full ctest in ./build
#   2. concurrency: rebuild the observability + fleet tests under
#      ThreadSanitizer (-DKWIKR_SANITIZE=thread) and run `ctest -L obs`
#      (the label covers obs_test and fleet_test, the two suites exercising
#      the shared-registry merge paths).
#
# Usage: scripts/check.sh [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    *) echo "usage: scripts/check.sh [--no-tsan]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== tsan: obs + fleet tests under ThreadSanitizer =="
  cmake -B build-tsan -S . -DKWIKR_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target obs_test fleet_test
  ctest --test-dir build-tsan -L obs --output-on-failure -j "$jobs"
fi

echo "check.sh: all green"
