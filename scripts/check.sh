#!/usr/bin/env bash
# Repo verification gate:
#   1. tier-1: configure + build + full ctest in ./build
#   2. concurrency: rebuild the observability + fleet tests under
#      ThreadSanitizer (-DKWIKR_SANITIZE=thread) and run `ctest -L obs`
#      (the label covers obs_test and fleet_test, the two suites exercising
#      the shared-registry merge paths).
#   3. perf: Release-mode micro_eventloop smoke against the committed
#      BENCH_eventloop.json — fails when dispatch events/sec regresses more
#      than 20% or the dispatch path allocates.
#
# Usage: scripts/check.sh [--no-tsan] [--no-bench]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_tsan=1
run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-bench) run_bench=0 ;;
    *) echo "usage: scripts/check.sh [--no-tsan] [--no-bench]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== tsan: obs + fleet tests under ThreadSanitizer =="
  cmake -B build-tsan -S . -DKWIKR_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target obs_test fleet_test
  ctest --test-dir build-tsan -L obs --output-on-failure -j "$jobs"
fi

if [[ "$run_bench" == 1 && -f BENCH_eventloop.json ]]; then
  echo "== perf: micro_eventloop smoke vs committed baseline =="
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-bench -j "$jobs" --target micro_eventloop
  ./build-bench/bench/micro_eventloop --quick --baseline BENCH_eventloop.json
fi

echo "check.sh: all green"
