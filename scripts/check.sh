#!/usr/bin/env bash
# Repo verification gate (the merge bar — CI runs exactly this):
#   1. tier-1: configure + build + full ctest in ./build
#   2. fleet: `ctest -L fleet_shard` (spill/checkpoint/resume property
#      tests) plus a spill-mode smoke of the fig10 sweep — the same calls
#      under --processes 1 and --processes 2 must merge to byte-identical
#      percentiles, metrics, and timeline artifacts.
#   3. tsan: rebuild the concurrency-sensitive suites under ThreadSanitizer
#      (-DKWIKR_SANITIZE=thread) and run `ctest -L obs` + `ctest -L faults`
#      + `ctest -L frame_path` (twice: default, then with
#      KWIKR_EDCA_NO_SIMD=1 to pin the scalar EDCA fallback)
#      + `ctest -L cc_aqm` + `ctest -L timeline`
#      + `ctest -L fleet_shard` (registry merge paths, fleet sharding, the
#      golden corpus whose byte-stability depends on worker-count
#      independence, the frame-path primitives the sharded runs lean on,
#      the CC x qdisc grid that rides the same fleet, the timeline
#      telemetry whose population byte-identity runs worker-local samplers
#      in parallel, and the multi-process shard runner whose fork/merge
#      paths must stay clean when the chunk functions spin up their own
#      pools).
#   4. perf: Release-mode micro_eventloop + micro_channel smoke against the
#      committed BENCH_eventloop.json / BENCH_channel.json — fails when the
#      headline throughput regresses more than 20% or the dispatch / frame
#      path allocates.
#
# Usage: scripts/check.sh [--ci] [--no-tsan] [--no-bench]
#   --ci  machine-readable per-step summary lines (CHECK-STEP|name|status)
#         on stdout and, when $GITHUB_STEP_SUMMARY is set, a markdown table
#         appended there. All steps run even after a failure so CI reports
#         every broken leg at once; the exit code is non-zero if any failed.
set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/common.sh
source scripts/common.sh
jobs=$(nproc 2>/dev/null || echo 4)

ci=0
run_tsan=1
run_bench=1
for arg in "$@"; do
  case "$arg" in
    --ci) ci=1 ;;
    --no-tsan) run_tsan=0 ;;
    --no-bench) run_bench=0 ;;
    *) echo "usage: scripts/check.sh [--ci] [--no-tsan] [--no-bench]" >&2
       exit 2 ;;
  esac
done

declare -a step_names=()
declare -a step_results=()
failed=0

# run_step <name> <function>: runs the step in a subshell with errexit so a
# failing command anywhere inside fails the whole step (calling a function
# from a conditional would silently disable `set -e` within it — the classic
# exit-propagation bug this wrapper exists to avoid). In --ci mode failures
# are recorded and reported at the end; interactively they abort at once.
run_step() {
  local name="$1" fn="$2"
  echo "== $name =="
  local status=ok
  if ! (set -euo pipefail; "$fn"); then
    status=fail
    failed=1
  fi
  step_names+=("$name")
  step_results+=("$status")
  if [[ "$ci" == 1 ]]; then
    echo "CHECK-STEP|$name|$status"
  elif [[ "$status" == fail ]]; then
    echo "check.sh: step '$name' failed" >&2
    exit 1
  fi
}

skip_step() {
  local name="$1" reason="$2"
  echo "warning: skipping step '$name': $reason" >&2
  step_names+=("$name")
  step_results+=("skipped: $reason")
  [[ "$ci" == 1 ]] && echo "CHECK-STEP|$name|skipped"
  return 0
}

step_tier1() {
  ensure_build_dir build "" ""
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

step_fleet() {
  cmake --build build -j "$jobs" --target fleet_shard_test fig10_wild_delay
  ctest --test-dir build -L fleet_shard --output-on-failure -j "$jobs"
  # Spill-mode smoke: one worker process vs two must merge byte-identically.
  local fig10=./build/bench/fig10_wild_delay
  ensure_spill_dir build/fleet-smoke/p1
  ensure_spill_dir build/fleet-smoke/p2
  "$fig10" --calls 12 --call-seconds 2 --spill-dir build/fleet-smoke/p1 \
    --processes 1 --checkpoint-every 4 --metrics --timeline > /dev/null
  "$fig10" --calls 12 --call-seconds 2 --spill-dir build/fleet-smoke/p2 \
    --processes 2 --checkpoint-every 4 --metrics --timeline > /dev/null
  local artifact
  for artifact in percentiles.json metrics.prom timeline.jsonl; do
    cmp "build/fleet-smoke/p1/merged/$artifact" \
        "build/fleet-smoke/p2/merged/$artifact"
  done
  echo "fleet spill smoke: merged artifacts byte-identical across" \
       "--processes 1 and --processes 2"
}

step_tsan() {
  ensure_build_dir build-tsan "" thread
  cmake --build build-tsan -j "$jobs" \
    --target obs_test fleet_test faults_test frame_path_test cc_aqm_test \
    timeline_test fleet_shard_test golden_runner
  ctest --test-dir build-tsan -L obs --output-on-failure -j "$jobs"
  ctest --test-dir build-tsan -L faults --output-on-failure -j "$jobs"
  ctest --test-dir build-tsan -L frame_path --output-on-failure -j "$jobs"
  # Second frame_path leg with the SIMD EDCA sweeps force-disabled: the
  # scalar fallback is what non-SSE2/NEON builds run, so it must stay green
  # (and race-free) even on hosts where the vector path is the default.
  KWIKR_EDCA_NO_SIMD=1 \
    ctest --test-dir build-tsan -L frame_path --output-on-failure -j "$jobs"
  ctest --test-dir build-tsan -L cc_aqm --output-on-failure -j "$jobs"
  ctest --test-dir build-tsan -L timeline --output-on-failure -j "$jobs"
  ctest --test-dir build-tsan -L fleet_shard --output-on-failure -j "$jobs"
}

step_bench() {
  ensure_build_dir build-bench Release ""
  cmake --build build-bench -j "$jobs" --target micro_eventloop micro_channel
  ./build-bench/bench/micro_eventloop --quick --baseline BENCH_eventloop.json
  if [[ -f BENCH_channel.json ]]; then
    ./build-bench/bench/micro_channel --quick --baseline BENCH_channel.json
  else
    # Not silent for the same reason as the missing-eventloop baseline below.
    echo "warning: BENCH_channel.json not committed; frame-path perf gate" \
         "inactive — run scripts/bench.sh" >&2
    ./build-bench/bench/micro_channel --quick
  fi
}

run_step "tier-1: build + full test suite" step_tier1
run_step "fleet: shard-runner suite + spill split-identity smoke" step_fleet

if [[ "$run_tsan" == 1 ]]; then
  run_step "tsan: obs + faults suites under ThreadSanitizer" step_tsan
else
  skip_step "tsan" "--no-tsan requested"
fi

if [[ "$run_bench" == 0 ]]; then
  skip_step "bench" "--no-bench requested"
elif [[ ! -f BENCH_eventloop.json ]]; then
  # Not silent: a missing baseline means the perf gate is not protecting
  # anything, and whoever reads the log should know that.
  skip_step "bench" "BENCH_eventloop.json not committed; run scripts/bench.sh"
else
  run_step "perf: micro bench smoke vs committed baselines" step_bench
fi

if [[ "$ci" == 1 && -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "### check.sh"
    echo "| step | result |"
    echo "| --- | --- |"
    for i in "${!step_names[@]}"; do
      echo "| ${step_names[$i]} | ${step_results[$i]} |"
    done
  } >> "$GITHUB_STEP_SUMMARY"
fi

if [[ "$failed" == 1 ]]; then
  echo "check.sh: FAILED" >&2
  exit 1
fi
echo "check.sh: all green"
