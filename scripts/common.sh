# Shared helpers for the repo's shell entry points (check.sh, bench.sh).
# Sourced, not executed.

# ensure_build_dir <dir> <build_type> <sanitize>
#
# Configures <dir> with the requested CMAKE_BUILD_TYPE and KWIKR_SANITIZE,
# wiping the directory first when its cached KWIKR_SANITIZE disagrees with
# the request. Without the wipe, a leftover `-DKWIKR_SANITIZE=thread` cache
# entry silently instruments every later "plain" build made in the same
# directory (CMake caches -D values across runs), which both slows the build
# ~10x and invalidates any perf numbers produced from it. Pass "" for
# either value to mean "the project default".
ensure_build_dir() {
  local dir="$1" build_type="${2:-}" sanitize="${3:-}"
  local cache="$dir/CMakeCache.txt"
  if [[ -f "$cache" ]]; then
    local cached_san
    cached_san=$(sed -n 's/^KWIKR_SANITIZE:[^=]*=//p' "$cache")
    if [[ "${cached_san:-}" != "${sanitize:-}" ]]; then
      echo "warning: $dir was configured with KWIKR_SANITIZE='${cached_san:-}'" \
           "but this run wants '${sanitize:-}' — wiping the stale cache" >&2
      rm -rf "$dir"
    fi
  fi
  local args=(-B "$dir" -S .)
  [[ -n "$build_type" ]] && args+=("-DCMAKE_BUILD_TYPE=$build_type")
  # Always pass the sanitize value (including the empty default) so a bare
  # reconfigure can never inherit a stale cached one.
  args+=("-DKWIKR_SANITIZE=$sanitize")
  cmake "${args[@]}" >/dev/null
}

# ensure_spill_dir <dir>
#
# Gives the shard runner a *fresh* spill directory. The runner's resume
# path is deliberately conservative: a checkpoint manifest left behind by an
# earlier sweep with the same fingerprint would short-circuit a fresh run
# ("everything already completed"), and one from a different sweep makes
# --resume refuse outright. Scripted runs that want a clean sweep must
# therefore wipe the directory first — stale manifests are state, not
# cache, and the cache-wipe rules ensure_build_dir applies to sanitizer
# flags apply equally here.
ensure_spill_dir() {
  local dir="$1"
  rm -rf "$dir"
  mkdir -p "$dir"
}
