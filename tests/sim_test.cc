#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/inline_task.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace kwikr::sim {

/// White-box access for the generation-wraparound tests: lets a test place a
/// slot's generation counter at the wrap boundary without 2^32 schedules.
struct EventLoopTestPeer {
  static void SetSlotGeneration(EventLoop& loop, std::uint32_t slot,
                                std::uint32_t generation) {
    loop.SlotAt(slot).generation = generation;
  }
  static std::uint32_t SlotOfId(EventId id) {
    return static_cast<std::uint32_t>((id >> 32) - 1);
  }
  static std::uint32_t GenerationOfId(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
};

namespace {

// ---------------------------------------------------------------- Time ----

TEST(Time, UnitConversions) {
  EXPECT_EQ(Micros(1), 1'000);
  EXPECT_EQ(Millis(1), 1'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Micros(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMicros(Nanos(2500)), 2.5);
}

TEST(Time, FromSecondsRoundTrips) {
  EXPECT_EQ(FromSeconds(0.25), Millis(250));
  EXPECT_EQ(FromSeconds(1e-6), Micros(1));
}

TEST(Time, TransmissionTimeBasics) {
  // 8000 bits at 1 Mbps = 8 ms.
  EXPECT_EQ(TransmissionTime(8000, 1'000'000), Millis(8));
  // Rounds up to a whole tick.
  EXPECT_EQ(TransmissionTime(1, 1'000'000'000), 1);
  EXPECT_EQ(TransmissionTime(100, 0), 0);
}

TEST(Time, TransmissionTimeLargeValuesDontOverflow) {
  // 1 GB at 1 kbps: ~8e12 ms — fits comfortably via the 128-bit intermediate.
  const Duration d = TransmissionTime(8'000'000'000LL, 1'000);
  EXPECT_EQ(d, Seconds(8'000'000));
}

// ----------------------------------------------------------- EventLoop ----

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), Millis(30));
}

TEST(EventLoop, SameTickRunsInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  Time fired_at = -1;
  loop.ScheduleAt(Millis(10), [&] {
    loop.ScheduleIn(Millis(5), [&] { fired_at = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  Time fired_at = -1;
  loop.ScheduleAt(Millis(10), [&] {
    loop.ScheduleAt(Millis(1), [&] { fired_at = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired_at, Millis(10));
}

TEST(EventLoop, CascadeParksEntryAtFullWindowDistance) {
  // Regression: an L1 cascade can legally park an entry a full L0-ring turn
  // (256 ticks) ahead of the scan position — the last tick of the cascaded
  // window when the scan sits just before the window boundary. The wheel's
  // debug assert used to reject that distance and abort. L0 ticks are
  // 2^13 ns wide and an L1 window spans 256 of them, so an event in tick
  // 255 followed by one in tick 511 reproduces the exact geometry.
  constexpr Time kL0Tick = 1 << 13;
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(255 * kL0Tick, [&] { order.push_back(1); });
  loop.ScheduleAt(511 * kL0Tick, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 511 * kL0Tick);
}

TEST(EventLoop, CascadeBoundaryOffsetsDispatchInOrder) {
  // Brute sweep of every pairwise geometry around the L0-ring boundary: a
  // first event pins the scan position, a second lands at distances that
  // straddle one and two full ring turns from it.
  constexpr Time kL0Tick = 1 << 13;
  for (std::int64_t first : {254, 255, 256, 257}) {
    for (std::int64_t delta : {1, 255, 256, 257, 511, 512, 513}) {
      EventLoop loop;
      std::vector<std::int64_t> order;
      loop.ScheduleAt(first * kL0Tick, [&] { order.push_back(first); });
      loop.ScheduleAt((first + delta) * kL0Tick,
                      [&] { order.push_back(first + delta); });
      loop.Run();
      EXPECT_EQ(order, (std::vector<std::int64_t>{first, first + delta}))
          << "first " << first << " delta " << delta;
    }
  }
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.ScheduleAt(Millis(1), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.Run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelOfExecutedEventFails) {
  EventLoop loop;
  const EventId id = loop.ScheduleAt(Millis(1), [] {});
  loop.Run();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoop, DoubleCancelFails) {
  EventLoop loop;
  const EventId id = loop.ScheduleAt(Millis(1), [] {});
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoop, CancelUnknownIdFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(12345));
  EXPECT_FALSE(loop.Cancel(0));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(Millis(10), [&] { ++count; });
  loop.ScheduleAt(Millis(20), [&] { ++count; });
  loop.ScheduleAt(Millis(30), [&] { ++count; });
  loop.RunUntil(Millis(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), Millis(20));
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilAdvancesClockWithoutEvents) {
  EventLoop loop;
  loop.RunUntil(Seconds(5));
  EXPECT_EQ(loop.now(), Seconds(5));
}

TEST(EventLoop, RunForIsRelative) {
  EventLoop loop;
  loop.RunUntil(Millis(10));
  loop.RunFor(Millis(10));
  EXPECT_EQ(loop.now(), Millis(20));
}

TEST(EventLoop, PendingTracksLiveEvents) {
  EventLoop loop;
  const EventId a = loop.ScheduleAt(Millis(1), [] {});
  loop.ScheduleAt(Millis(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, StepExecutesOneEvent) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(Millis(1), [&] { ++count; });
  loop.ScheduleAt(Millis(2), [&] { ++count; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
}

TEST(EventLoop, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.ScheduleIn(Millis(1), recurse);
  };
  loop.ScheduleIn(Millis(1), recurse);
  loop.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), Millis(10));
}

TEST(EventLoop, ExecutedCounterCounts) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.ScheduleIn(i, [] {});
  loop.Run();
  EXPECT_EQ(loop.executed(), 7u);
}

// -------------------------------------------------------- PeriodicTimer ----

TEST(PeriodicTimer, FiresAtFixedCadence) {
  EventLoop loop;
  std::vector<Time> fires;
  PeriodicTimer timer(loop, Millis(10), [&] { fires.push_back(loop.now()); });
  timer.Start();
  loop.RunUntil(Millis(35));
  EXPECT_EQ(fires, (std::vector<Time>{Millis(10), Millis(20), Millis(30)}));
}

TEST(PeriodicTimer, CustomInitialDelay) {
  EventLoop loop;
  std::vector<Time> fires;
  PeriodicTimer timer(loop, Millis(10), [&] { fires.push_back(loop.now()); });
  timer.Start(Duration{0});
  loop.RunUntil(Millis(25));
  EXPECT_EQ(fires, (std::vector<Time>{0, Millis(10), Millis(20)}));
}

TEST(PeriodicTimer, StopHaltsFiring) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(loop, Millis(10), [&] { ++count; });
  timer.Start();
  loop.ScheduleAt(Millis(25), [&] { timer.Stop(); });
  loop.RunUntil(Millis(100));
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartResets) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(loop, Millis(10), [&] { ++count; });
  timer.Start();
  loop.RunUntil(Millis(15));
  timer.Start();  // restart at t=15
  loop.RunUntil(Millis(34));
  EXPECT_EQ(count, 2);  // t=10 and t=25.
}

TEST(PeriodicTimer, DestructorCancels) {
  EventLoop loop;
  int count = 0;
  {
    PeriodicTimer timer(loop, Millis(10), [&] { ++count; });
    timer.Start();
  }
  loop.RunUntil(Millis(100));
  EXPECT_EQ(count, 0);
}

// Contract regression: Fire() reschedules before invoking the callback, so a
// callback that stops its own timer must also cancel that already-pending
// next firing — otherwise "Stop" would still deliver one more tick.
TEST(PeriodicTimer, StopFromInsideCallbackCancelsRescheduledFiring) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(loop, Millis(10), [&] {
    ++count;
    timer.Stop();
  });
  timer.Start();
  loop.RunUntil(Millis(200));
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(timer.running());
  EXPECT_EQ(loop.pending(), 0u);  // the rescheduled firing is gone, not live.
}

TEST(PeriodicTimer, RestartFromInsideCallbackKeepsFiring) {
  EventLoop loop;
  std::vector<Time> fires;
  PeriodicTimer timer(loop, Millis(10), [&] {
    fires.push_back(loop.now());
    if (fires.size() == 1) timer.Start(Millis(5));  // re-anchor mid-stream.
  });
  timer.Start();
  loop.RunUntil(Millis(30));
  EXPECT_EQ(fires, (std::vector<Time>{Millis(10), Millis(15), Millis(25)}));
}

// ------------------------------------------------- scheduler internals ----

// Regression for the RunUntil deadline overrun: with a cancelled event at
// the heap top, the old `top().at <= deadline` check inspected the cancelled
// entry and then executed the NEXT event even when it lay past the deadline.
TEST(EventLoop, RunUntilIgnoresCancelledHeadAtDeadline) {
  EventLoop loop;
  int ran = 0;
  const EventId head = loop.ScheduleAt(Millis(10), [&] { ++ran; });
  loop.ScheduleAt(Millis(30), [&] { ++ran; });
  ASSERT_TRUE(loop.Cancel(head));
  loop.RunUntil(Millis(20));
  EXPECT_EQ(ran, 0);  // nothing past the deadline may run.
  EXPECT_EQ(loop.now(), Millis(20));
  EXPECT_EQ(loop.pending(), 1u);
  loop.RunUntil(Millis(30));
  EXPECT_EQ(ran, 1);
}

TEST(EventLoop, RunUntilWithOnlyCancelledEventsAdvancesClock) {
  EventLoop loop;
  const EventId a = loop.ScheduleAt(Millis(5), [] {});
  const EventId b = loop.ScheduleAt(Millis(6), [] {});
  loop.Cancel(a);
  loop.Cancel(b);
  loop.RunUntil(Millis(50));
  EXPECT_EQ(loop.now(), Millis(50));
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.executed(), 0u);
}

TEST(EventLoop, CompactionBoundsTombstonesUnderCancelChurn) {
  EventLoop loop;
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(loop.ScheduleAt(Millis(i + 1), [] {}));
  }
  // Cancel 900 events spread across the heap. Without compaction the heap
  // would carry all 900 tombstones until they surface at the top.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size() && cancelled < 900; i += 1) {
    if (i % 10 != 9) {  // skip every 10th to interleave live survivors.
      ASSERT_TRUE(loop.Cancel(ids[i]));
      ++cancelled;
    }
  }
  EXPECT_EQ(loop.pending(), 100u);
  // The sweep fires once tombstones exceed three quarters of the heap
  // (below that, lazy top-reaping is cheaper than a sweep — see
  // EventLoop::Cancel), so the steady state can never hold the full cancel
  // count.
  EXPECT_LT(loop.tombstones(), 300u);
  int ran = 0;
  loop.SetProbe(nullptr);
  loop.Run();
  EXPECT_EQ(loop.executed(), 100u);
  EXPECT_EQ(loop.tombstones(), 0u);
  (void)ran;
}

TEST(EventLoop, CancelChurnPreservesFifoOfSurvivors) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(loop.ScheduleAt(Millis(7), [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 0; i < 200; i += 2) loop.Cancel(ids[i]);
  loop.Run();
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(EventLoop, SlotReuseInvalidatesOldIds) {
  EventLoop loop;
  const EventId first = loop.ScheduleAt(Millis(1), [] {});
  ASSERT_TRUE(loop.Cancel(first));
  loop.Run();  // reaps the tombstone, which releases the slot.
  // The freed slot is recycled for the next schedule with a new generation.
  const EventId second = loop.ScheduleAt(Millis(2), [] {});
  EXPECT_EQ(EventLoopTestPeer::SlotOfId(first),
            EventLoopTestPeer::SlotOfId(second));
  EXPECT_NE(first, second);
  EXPECT_FALSE(loop.Cancel(first));  // stale id must not hit the new tenant.
  EXPECT_TRUE(loop.Cancel(second));
}

TEST(EventLoop, GenerationWraparoundRejectsStaleCancel) {
  EventLoop loop;
  // Park slot 0's generation at the 32-bit boundary.
  const EventId seed = loop.ScheduleAt(Millis(1), [] {});
  ASSERT_EQ(EventLoopTestPeer::SlotOfId(seed), 0u);
  loop.Run();
  EventLoopTestPeer::SetSlotGeneration(loop, 0, 0xFFFFFFFFu);

  const EventId pre_wrap = loop.ScheduleAt(Millis(2), [] {});
  EXPECT_EQ(EventLoopTestPeer::GenerationOfId(pre_wrap), 0xFFFFFFFFu);
  loop.Run();  // executing releases the slot; the generation wraps to 0.

  const EventId post_wrap = loop.ScheduleAt(Millis(3), [] {});
  EXPECT_EQ(EventLoopTestPeer::SlotOfId(post_wrap), 0u);
  EXPECT_EQ(EventLoopTestPeer::GenerationOfId(post_wrap), 0u);
  EXPECT_NE(pre_wrap, post_wrap);
  // The stale pre-wrap id carries generation 0xFFFFFFFF and must not cancel
  // the post-wrap tenant of the same slot.
  EXPECT_FALSE(loop.Cancel(pre_wrap));
  EXPECT_TRUE(loop.Cancel(post_wrap));
}

// ----------------------------------------------------------- InlineTask ----

/// Counts constructions/destructions so the tests can prove captured state
/// is destroyed exactly once across moves, schedules, cancels, and runs.
struct Tracked {
  static int live;
  static int total_constructed;
  int payload = 42;
  Tracked() { ++live; ++total_constructed; }
  Tracked(const Tracked& o) : payload(o.payload) { ++live; ++total_constructed; }
  Tracked(Tracked&& o) noexcept : payload(o.payload) {
    ++live;
    ++total_constructed;
  }
  ~Tracked() { --live; }
};
int Tracked::live = 0;
int Tracked::total_constructed = 0;

TEST(InlineTask, MoveTransfersAndDestroysExactlyOnce) {
  Tracked::live = 0;
  int invoked = 0;
  {
    InlineTask a = [t = Tracked{}, &invoked] { invoked += t.payload; };
    EXPECT_TRUE(a.is_inline());
    EXPECT_GE(Tracked::live, 1);
    InlineTask b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(Tracked::live, 1);  // relocation destroyed the source copy.
    b();
    b();  // invocation is non-destructive (PeriodicTimer re-fires it).
    EXPECT_EQ(invoked, 84);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineTask, MoveAssignmentReleasesPreviousTask) {
  Tracked::live = 0;
  InlineTask a = [t = Tracked{}] { (void)t; };
  InlineTask b = [t = Tracked{}] { (void)t; };
  EXPECT_EQ(Tracked::live, 2);
  b = std::move(a);
  EXPECT_EQ(Tracked::live, 1);  // b's old capture destroyed, a's moved in.
  b = InlineTask();
  EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineTask, OversizedCaptureFallsBackToHeapAndStillDestroysOnce) {
  struct Big {
    Tracked t;
    unsigned char ballast[2 * InlineTask::kInlineCapacity] = {};
  };
  static_assert(!InlineTask::fits_inline<Big>);
  Tracked::live = 0;
  int invoked = 0;
  {
    InlineTask task = [big = Big{}, &invoked]() { invoked += big.t.payload; };
    EXPECT_FALSE(task.is_inline());
    InlineTask moved = std::move(task);
    moved();
    EXPECT_EQ(invoked, 42);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineTask, EventLoopDestroysCancelledCapturesEagerly) {
  EventLoop loop;
  Tracked::live = 0;
  const EventId id = loop.ScheduleAt(Millis(1), [t = Tracked{}] { (void)t; });
  EXPECT_EQ(Tracked::live, 1);
  ASSERT_TRUE(loop.Cancel(id));
  // Cancellation releases the capture immediately — not when the tombstone
  // is eventually reaped from the heap.
  EXPECT_EQ(Tracked::live, 0);
  loop.Run();
  EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineTask, InTreeEventClosureShapesFitInline) {
  // Archetypes of every scheduling layer's captures. The wifi.deliver shape
  // (a ~184-byte Frame by value) is the sizing floor for kInlineCapacity.
  struct PacketSized { unsigned char bytes[168]; };
  struct FrameSized { unsigned char bytes[184]; };
  auto this_only = [this] {};
  auto timeout = [this, id = std::uint64_t{1}] {};
  auto packet_hop = [this, p = PacketSized{}]() mutable { (void)p; };
  auto frame_delivery = [this, dest = std::uint32_t{0},
                         f = FrameSized{}]() mutable { (void)f; };
  static_assert(InlineTask::fits_inline<decltype(this_only)>);
  static_assert(InlineTask::fits_inline<decltype(timeout)>);
  static_assert(InlineTask::fits_inline<decltype(packet_hop)>);
  static_assert(InlineTask::fits_inline<decltype(frame_delivery)>);
}

// ------------------------------------------------- differential testing ----

/// Naive reference scheduler: a flat vector scanned for the (time, seq)
/// minimum on every step. Trivially correct; the real loop must match it
/// operation for operation.
class ReferenceScheduler {
 public:
  std::uint64_t Schedule(Time at, int tag) {
    events_.push_back({std::max(at, now_), next_seq_++, tag, false});
    return events_.back().seq;
  }
  bool Cancel(std::uint64_t seq) {
    for (auto& e : events_) {
      if (e.seq == seq && !e.cancelled) {
        e.cancelled = true;
        return true;
      }
    }
    return false;
  }
  /// Runs the earliest live event; returns its tag or -1 when empty.
  int Step() {
    std::size_t best = events_.size();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].cancelled) continue;
      if (best == events_.size() || events_[i].at < events_[best].at ||
          (events_[i].at == events_[best].at &&
           events_[i].seq < events_[best].seq)) {
        best = i;
      }
    }
    if (best == events_.size()) return -1;
    const int tag = events_[best].tag;
    now_ = events_[best].at;
    events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
    events_.erase(std::remove_if(events_.begin(), events_.end(),
                                 [](const auto& e) { return e.cancelled; }),
                  events_.end());
    return tag;
  }
  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.cancelled ? 0 : 1;
    return n;
  }
  [[nodiscard]] Time now() const { return now_; }

 private:
  struct Ref {
    Time at;
    std::uint64_t seq;
    int tag;
    bool cancelled;
  };
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<Ref> events_;
};

// 10^5 randomized mixed schedule/cancel/run operations executed in lockstep
// against the reference scheduler: execution order, cancellation results,
// clock, and pending counts must all agree.
TEST(EventLoop, DifferentialAgainstReferenceScheduler) {
  EventLoop loop;
  ReferenceScheduler ref;
  Rng rng(0xD1FFu);
  std::vector<int> real_log;
  std::vector<int> ref_log;
  // Parallel vectors: the i-th schedule's id in both schedulers.
  std::vector<EventId> real_ids;
  std::vector<std::uint64_t> ref_ids;
  int next_tag = 0;

  for (int op = 0; op < 100'000; ++op) {
    const auto roll = rng.UniformInt(0, 9);
    if (roll < 5) {  // schedule (50%)
      const Time at = loop.now() + rng.UniformInt(0, 100);
      const int tag = next_tag++;
      real_ids.push_back(
          loop.ScheduleAt(at, [tag, &real_log] { real_log.push_back(tag); }));
      ref_ids.push_back(ref.Schedule(at, tag));
    } else if (roll < 8) {  // cancel a random past id, maybe stale (30%)
      if (!real_ids.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(real_ids.size()) - 1));
        EXPECT_EQ(loop.Cancel(real_ids[pick]), ref.Cancel(ref_ids[pick]));
      }
    } else {  // run one event (20%)
      const int expect_tag = ref.Step();
      const bool ran = loop.Step();
      EXPECT_EQ(ran, expect_tag != -1);
      if (ran) {
        ASSERT_FALSE(real_log.empty());
        EXPECT_EQ(real_log.back(), expect_tag);
        EXPECT_EQ(loop.now(), ref.now());
      }
    }
    if (op % 1024 == 0) {
      EXPECT_EQ(loop.pending(), ref.pending());
    }
  }
  // Drain both completely and compare the full execution order.
  while (true) {
    const int tag = ref.Step();
    if (tag == -1) break;
    ref_log.push_back(tag);
  }
  std::size_t drained = real_log.size();
  loop.Run();
  std::vector<int> real_tail(real_log.begin() +
                                 static_cast<std::ptrdiff_t>(drained),
                             real_log.end());
  EXPECT_EQ(real_tail, ref_log);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.now(), ref.now());
}

// --------------------------------------------------------- timer wheel ----
//
// The hierarchical wheel (L0: 256 x 8.192 us buckets, L1: 64 x 2.097 ms
// buckets, heap overflow past 134.2 ms) must be observationally identical to
// the plain 4-ary heap. Below kWheelMinPopulation pending timers inserts
// take the heap path, so these tests first build a padding population that
// forces subsequent inserts into the wheel proper.

namespace {

constexpr Time kL0TickSpan = Time{1} << 13;   // one L0 bucket
constexpr Time kL1TickSpan = Time{1} << 21;   // one L1 bucket (256 L0 ticks)
constexpr Time kL1Horizon = kL1TickSpan * 64; // beyond: overflow heap

/// Schedules enough far-future timers to push TimerEntries() past the
/// sparse-regime threshold, so the timers a test schedules NEXT land in the
/// wheel. Returns their (time, tag) pairs so tests can fold them into the
/// expected order.
std::vector<std::pair<Time, int>> PadPopulation(EventLoop& loop,
                                                std::vector<int>& log,
                                                int first_tag) {
  std::vector<std::pair<Time, int>> padded;
  for (int i = 0; i < 96; ++i) {
    const Time at = Seconds(2) + i * Micros(10);
    const int tag = first_tag + i;
    loop.ScheduleAt(at, [tag, &log] { log.push_back(tag); });
    padded.emplace_back(at, tag);
  }
  return padded;
}

}  // namespace

TEST(EventLoop, WheelCascadeBoundariesPreserveTimeOrder) {
  EventLoop loop;
  std::vector<int> log;
  std::vector<std::pair<Time, int>> scheduled = PadPopulation(loop, log, 1000);

  // Every boundary the bucket math can get wrong: around an L0 bucket edge,
  // the exact L0 window edge where the first cascade fires, an L1 bucket
  // edge (the tick == window << 8 collision case, where the cascaded
  // bucket's first L0 tick IS the cascade tick), the L1 horizon, and past
  // it into the overflow heap — plus same-tick duplicates for FIFO.
  const Time boundary[] = {
      kL0TickSpan - 1, kL0TickSpan, kL0TickSpan + 1,
      kL0TickSpan * 255, kL0TickSpan * 256, kL0TickSpan * 256 + 1,
      kL1TickSpan * 2, kL1TickSpan * 2,              // collision tick, FIFO
      kL1TickSpan * 2 + kL0TickSpan,
      kL1Horizon - 1, kL1Horizon, kL1Horizon + kL1TickSpan,
      kL0TickSpan, kL1Horizon,                       // more duplicates
  };
  int tag = 0;
  for (const Time at : boundary) {
    loop.ScheduleAt(at, [tag, &log] { log.push_back(tag); });
    scheduled.emplace_back(at, tag);
    ++tag;
  }
  loop.Run();

  // Expected: time order, schedule order within a tick (stable sort).
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<int> expect;
  for (const auto& [at, t] : scheduled) expect.push_back(t);
  EXPECT_EQ(log, expect);
}

TEST(EventLoop, CancelInsideWheelBuckets) {
  EventLoop loop;
  std::vector<int> log;
  auto scheduled = PadPopulation(loop, log, 1000);

  // Spread timers across L0, L1, and the overflow heap, then cancel every
  // other one. The (slot, generation) ids must cancel entries that already
  // sit inside wheel buckets, and the survivors' order must be untouched.
  std::vector<EventId> ids;
  for (int i = 0; i < 120; ++i) {
    const Time at = (i % 3 == 0) ? Micros(50) + i * kL0TickSpan
                  : (i % 3 == 1) ? Millis(5) + i * kL1TickSpan / 4
                                 : Millis(200) + i * Millis(1);
    const int tag = i;
    ids.push_back(loop.ScheduleAt(at, [tag, &log] { log.push_back(tag); }));
    scheduled.emplace_back(at, tag);
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(loop.Cancel(ids[i]));
    EXPECT_FALSE(loop.Cancel(ids[i]));  // second cancel: stale id.
  }
  loop.Run();

  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<int> expect;
  for (const auto& [at, t] : scheduled) {
    if (t < 1000 && t % 2 == 0) continue;  // cancelled
    expect.push_back(t);
  }
  EXPECT_EQ(log, expect);
}

TEST(EventLoop, WheelIdleResyncSurvivesFarFutureCancelChurn) {
  // The RTO pattern that motivated the backward resync: a burst of activity
  // leaves far-future guard timers that all get cancelled, the reap-walk
  // parks the scan position ahead of the clock, and the next activity
  // phase's timers must still dispatch in exact (time, seq) order.
  EventLoop loop;
  std::vector<int> log;
  for (int phase = 0; phase < 3; ++phase) {
    std::vector<EventId> guards;
    for (int i = 0; i < 128; ++i) {
      guards.push_back(loop.ScheduleIn(Millis(50) + i * Micros(100), [] {}));
    }
    for (const EventId id : guards) EXPECT_TRUE(loop.Cancel(id));

    std::vector<std::pair<Time, int>> scheduled;
    for (int i = 0; i < 128; ++i) {
      const Time at = loop.now() + Micros(5) + (i % 17) * Micros(40);
      const int tag = phase * 1000 + i;
      loop.ScheduleAt(at, [tag, &log] { log.push_back(tag); });
      scheduled.emplace_back(at, tag);
    }
    log.clear();
    loop.Run();
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<int> expect;
    for (const auto& [at, t] : scheduled) expect.push_back(t);
    ASSERT_EQ(log, expect) << "phase " << phase;
    // Idle gap before the next phase so the resync actually runs.
    loop.RunUntil(loop.now() + Seconds(1));
  }
}

// 10^5 randomized schedule/cancel/step operations executed in lockstep on a
// wheel-mode loop and a heap-only loop: the wheel (with its sparse-regime
// heap fallback and cascades) must be observationally indistinguishable
// from the plain heap — same execution order, clock, cancel results, and
// pending counts. Deltas mix the now-queue, L0, L1, and overflow scales so
// the population migrates between every regime.
TEST(EventLoop, WheelDifferentialAgainstHeapOnlyScheduler) {
  EventLoop wheel(SchedulerMode::kWheel);
  EventLoop heap(SchedulerMode::kHeapOnly);
  Rng rng(0x5EED'0002u);
  std::vector<int> wheel_log;
  std::vector<int> heap_log;
  std::vector<EventId> wheel_ids;
  std::vector<EventId> heap_ids;
  int next_tag = 0;

  for (int op = 0; op < 100'000; ++op) {
    const auto roll = rng.UniformInt(0, 9);
    if (roll < 5) {  // schedule (50%), mixed horizon scales
      const auto scale = rng.UniformInt(0, 3);
      const Duration delta =
          scale == 0 ? rng.UniformInt(0, 100)              // same tick-ish
          : scale == 1 ? rng.UniformInt(0, Millis(2))      // L0 span
          : scale == 2 ? rng.UniformInt(0, Millis(130))    // L1 span
                       : rng.UniformInt(0, Seconds(1));    // overflow heap
      const Time at = wheel.now() + delta;
      const int tag = next_tag++;
      wheel_ids.push_back(
          wheel.ScheduleAt(at, [tag, &wheel_log] { wheel_log.push_back(tag); }));
      heap_ids.push_back(
          heap.ScheduleAt(at, [tag, &heap_log] { heap_log.push_back(tag); }));
    } else if (roll < 8) {  // cancel a random past id, maybe stale (30%)
      if (!wheel_ids.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(wheel_ids.size()) - 1));
        ASSERT_EQ(wheel.Cancel(wheel_ids[pick]), heap.Cancel(heap_ids[pick]))
            << "op " << op;
      }
    } else {  // step one event (20%)
      const bool wheel_ran = wheel.Step();
      const bool heap_ran = heap.Step();
      ASSERT_EQ(wheel_ran, heap_ran) << "op " << op;
      if (wheel_ran) {
        ASSERT_EQ(wheel_log.size(), heap_log.size()) << "op " << op;
        ASSERT_EQ(wheel_log.back(), heap_log.back()) << "op " << op;
        ASSERT_EQ(wheel.now(), heap.now()) << "op " << op;
      }
    }
    if (op % 1024 == 0) {
      ASSERT_EQ(wheel.pending(), heap.pending()) << "op " << op;
    }
  }
  wheel.Run();
  heap.Run();
  EXPECT_EQ(wheel_log, heap_log);
  EXPECT_EQ(wheel.now(), heap.now());
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(heap.pending(), 0u);
  EXPECT_EQ(wheel.executed(), heap.executed());
}

// ----------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(31);
  parent2.Fork();
  int equal = 0;
  for (int i = 0; i < 20; ++i) {
    if (child.Next() == parent.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamForkIsDeterministicAndConst) {
  const Rng base(42);
  Rng a = base.Fork(7);
  Rng b = base.Fork(7);
  // Same parent state + same stream index => identical child stream, and
  // forking never advances the parent (it is const).
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng untouched(42);
  Rng fresh(42);
  base.Fork(123);
  EXPECT_EQ(untouched.Next(), fresh.Next());
}

TEST(Rng, StreamForksAreDecorrelated) {
  const Rng base(42);
  // Consecutive stream indices (the fleet's task indices) must not produce
  // overlapping or correlated streams.
  Rng s0 = base.Fork(0);
  Rng s1 = base.Fork(1);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (s0.Next() == s1.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
  double mean = 0.0;
  Rng s2 = base.Fork(2);
  for (int i = 0; i < 2000; ++i) mean += s2.UniformDouble() / 2000.0;
  EXPECT_NEAR(mean, 0.5, 0.05);
}

}  // namespace
}  // namespace kwikr::sim
